/**
 * @file
 * Quickstart: a four-node fault-tolerant SVM cluster running a
 * lock-protected shared counter — with one node killed mid-run.
 *
 * Demonstrates the core API surface:
 *  - Cluster construction from a Config;
 *  - shared allocation (Cluster::mem().alloc);
 *  - the AppThread programming interface (get/put, lock/unlock,
 *    barrier, compute);
 *  - failure injection and transparent recovery;
 *  - post-run verification via debugRead and the protocol counters.
 *
 * Expected output: the counter equals threads x iterations even
 * though node 2 fail-stops at t = 2 ms, and the recovery statistics
 * show the reconfiguration the paper describes (§4.5).
 */

#include <cstdio>

#include "runtime/cluster.hh"

int
main()
{
    using namespace rsvm;

    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 1;

    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);

    // Fail-stop node 2 two milliseconds into the run.
    cluster.injector().killAt(2, 2 * kMillisecond);

    const int kIters = 25;
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < kIters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(5 * kMicrosecond); // "work" inside the section
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(25 * kMicrosecond); // work outside the section
        }
        t.barrier();
    });
    cluster.run();

    std::uint64_t final_value = 0;
    cluster.debugRead(counter, &final_value, 8);
    std::uint64_t expected =
        static_cast<std::uint64_t>(kIters) * cfg.totalThreads();

    Counters c = cluster.totalCounters();
    std::printf("counter            : %llu (expected %llu) %s\n",
                static_cast<unsigned long long>(final_value),
                static_cast<unsigned long long>(expected),
                final_value == expected ? "OK" : "MISMATCH");
    std::printf("simulated time     : %.2f ms\n",
                static_cast<double>(cluster.wallTime()) / 1e6);
    std::printf("failures detected  : %llu\n",
                static_cast<unsigned long long>(c.failuresDetected));
    std::printf("recoveries         : %llu\n",
                static_cast<unsigned long long>(c.recoveries));
    std::printf("threads restored   : %llu\n",
                static_cast<unsigned long long>(c.threadsRestored));
    std::printf("pages re-replicated: %llu\n",
                static_cast<unsigned long long>(c.pagesReReplicated));
    std::printf("checkpoints taken  : %llu (%llu bytes)\n",
                static_cast<unsigned long long>(c.checkpointsTaken),
                static_cast<unsigned long long>(c.checkpointBytes));
    std::printf("node 2 now hosted on physical node %u\n",
                cluster.hostOf(2));
    return final_value == expected ? 0 : 1;
}

/**
 * @file
 * A replicated shared-memory key-value store — the "server-style"
 * workload the paper's introduction motivates (continuous operation
 * of back-end processing servers across node failures).
 *
 * The store is a fixed-size open-addressing hash table in shared
 * memory, with one lock per bucket group. Every thread runs a client
 * loop of puts and gets; one node is killed mid-run. Because the
 * extended protocol replicates every page on two nodes and recovers
 * transparently, every acknowledged put remains readable after the
 * failure — which the harness checks against a host-side reference
 * map of acknowledged operations.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "base/rng.hh"
#include "runtime/cluster.hh"

namespace {

using namespace rsvm;

constexpr std::uint32_t kSlots = 4096;    // table slots
constexpr std::uint32_t kGroups = 64;     // bucket-group locks
constexpr LockId kLockBase = 500;
constexpr std::uint64_t kEmpty = 0;

struct Slot
{
    std::uint64_t key;
    std::uint64_t value;
};

std::uint32_t
slotOf(std::uint64_t key)
{
    std::uint64_t z = key * 0x9e3779b97f4a7c15ull;
    z ^= z >> 29;
    return static_cast<std::uint32_t>(z % kSlots);
}

} // namespace

int
main()
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;

    Cluster cluster(cfg);
    Addr table = cluster.mem().allocPageAligned(
        static_cast<std::uint64_t>(kSlots) * sizeof(Slot));
    cluster.injector().killAt(1, 3 * kMillisecond);

    const int kOpsPerThread = 150;
    auto slot_addr = [table](std::uint32_t s) {
        return table + static_cast<std::uint64_t>(s) * sizeof(Slot);
    };

    cluster.spawn([&, table](AppThread &t) {
        Rng rng(42 * (t.id() + 1));
        for (int op = 0; op < kOpsPerThread; ++op) {
            // Keys are partitioned per thread so the host-side
            // reference can be reconstructed deterministically.
            // +1 so no key collides with the empty-slot sentinel.
            std::uint64_t key =
                (static_cast<std::uint64_t>(t.id() + 1) << 32) |
                rng.below(64);
            std::uint64_t value =
                (static_cast<std::uint64_t>(t.id()) << 48) | op;
            // Each group lock owns a contiguous range of slots; all
            // probing for a key stays inside its group's range, so
            // the group lock fully serializes it.
            std::uint32_t group = slotOf(key) % kGroups;
            std::uint32_t group_size = kSlots / kGroups;
            std::uint32_t base = group * group_size;
            LockId lock = kLockBase + group;

            t.lock(lock);
            for (std::uint32_t probe = 0; probe < group_size;
                 ++probe) {
                std::uint32_t idx = base + probe;
                std::uint64_t k =
                    t.get<std::uint64_t>(slot_addr(idx));
                if (k == kEmpty || k == key) {
                    t.put<std::uint64_t>(slot_addr(idx), key);
                    t.put<std::uint64_t>(slot_addr(idx) + 8, value);
                    break;
                }
            }
            t.unlock(lock);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();

    // Host-side reference: replay the same deterministic client loops.
    std::map<std::uint64_t, std::uint64_t> expect;
    for (std::uint32_t tid = 0; tid < cfg.totalThreads(); ++tid) {
        Rng rng(42 * (tid + 1));
        for (int op = 0; op < kOpsPerThread; ++op) {
            std::uint64_t key =
                (static_cast<std::uint64_t>(tid + 1) << 32) |
                rng.below(64);
            std::uint64_t value =
                (static_cast<std::uint64_t>(tid) << 48) | op;
            expect[key] = value; // last write wins (per-key lock order
                                 // == program order per thread; keys
                                 // are private to their writer thread)
        }
    }

    // Scan the table and compare.
    std::uint64_t found = 0, wrong = 0;
    for (std::uint32_t idx = 0; idx < kSlots; ++idx) {
        std::uint64_t k = 0, v = 0;
        cluster.debugRead(table + idx * sizeof(Slot), &k, 8);
        cluster.debugRead(table + idx * sizeof(Slot) + 8, &v, 8);
        if (k == kEmpty)
            continue;
        auto it = expect.find(k);
        if (it == expect.end() || it->second != v)
            wrong++;
        else {
            found++;
            expect.erase(it);
        }
    }
    for (auto &kv : expect)
        std::printf("missing key: tid=%llu sub=%llu expected value op=%llu\n",
                    (unsigned long long)((kv.first >> 32) - 1),
                    (unsigned long long)(kv.first & 0xffffffff),
                    (unsigned long long)(kv.second & 0xffffffff));
    Counters c = cluster.totalCounters();
    std::printf("kv store: %llu keys stored, %llu correct, %llu "
                "wrong, %zu expected\n",
                static_cast<unsigned long long>(found + wrong),
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(wrong),
                expect.size());
    std::printf("recoveries=%llu threadsRestored=%llu (node 1 killed "
                "at 3 ms; service continued)\n",
                static_cast<unsigned long long>(c.recoveries),
                static_cast<unsigned long long>(c.threadsRestored));
    bool ok = (wrong == 0) && expect.empty() &&
              c.recoveries >= 1;
    std::printf("%s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

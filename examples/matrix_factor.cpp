/**
 * @file
 * Domain example: blocked LU factorization through the application
 * suite's public entry points, on both protocols, with the
 * execution-time breakdown and replication overhead printed — a
 * miniature of the paper's Figure 7 experiment for a single kernel,
 * runnable in a couple of seconds.
 */

#include <cstdio>
#include <string>

#include "apps/app_common.hh"

int
main(int argc, char **argv)
{
    using namespace rsvm;
    using namespace rsvm::apps;

    std::uint64_t n = 96;
    if (argc > 1)
        n = std::strtoull(argv[1], nullptr, 0);

    double base_total = 0;
    for (ProtocolKind kind :
         {ProtocolKind::Base, ProtocolKind::FaultTolerant}) {
        Config cfg;
        cfg.protocol = kind;
        cfg.numNodes = 4;
        cfg.threadsPerNode = 1;

        Cluster cluster(cfg);
        AppParams p = defaultParams("lu");
        p.size = (n + 31) / 32 * 32;
        AppInstance lu = makeApp("lu", p);
        lu.setup(cluster);
        cluster.spawn(lu.threadFn);
        cluster.run();
        AppResult res = lu.verify(cluster);

        auto six = cluster.avgBreakdown().sixComp();
        double total_ms =
            static_cast<double>(six.compute + six.data + six.sync +
                                six.diffs + six.protocol + six.ckpt) /
            1e6;
        std::printf("%s protocol, %llux%llu matrix:\n",
                    kind == ProtocolKind::Base ? "base"
                                               : "fault-tolerant",
                    static_cast<unsigned long long>(p.size),
                    static_cast<unsigned long long>(p.size));
        std::printf("  compute %.2f ms | data %.2f ms | sync %.2f ms "
                    "| diffs %.2f ms | protocol %.2f ms | ckpt %.2f "
                    "ms\n",
                    six.compute / 1e6, six.data / 1e6, six.sync / 1e6,
                    six.diffs / 1e6, six.protocol / 1e6,
                    six.ckpt / 1e6);
        std::printf("  total %.2f ms, verification: %s\n", total_ms,
                    res.detail.c_str());
        if (kind == ProtocolKind::Base) {
            base_total = total_ms;
        } else if (base_total > 0) {
            std::printf("  replication overhead: %+.0f%% (the paper "
                        "reports 20-67%% across the suite, §5.3.1)\n",
                        (total_ms / base_total - 1.0) * 100.0);
        }
        if (!res.ok)
            return 1;
    }
    return 0;
}

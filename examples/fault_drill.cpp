/**
 * @file
 * Fault drill: kill a node at each named protocol point (§4.5's case
 * analysis made executable) and report what recovery did — whether
 * the interrupted release rolled forward or backward, how many pages
 * were reconciled, and that the final result stayed exactly correct.
 *
 * This is the scenario table of §4.5.2/§4.5.3 as a program:
 *
 *   point                      expected recovery action
 *   -------------------------- ---------------------------------------
 *   before release             roll back to previous checkpoints
 *   after commit / point A     roll back (nothing propagated yet)
 *   mid phase 1                roll back (partial tentative updates
 *                              cancelled from the committed copies)
 *   after phase 1              roll back (timestamp not yet saved)
 *   after point B              roll back (checkpoint exists, but the
 *                              timestamp save had not completed)
 *   after timestamp save       roll FORWARD (tentative -> committed)
 *   mid phase 2                roll FORWARD
 *   after release              nothing to reconcile; plain restart
 */

#include <cstdio>

#include "net/failure.hh"
#include "runtime/cluster.hh"

namespace {

using namespace rsvm;

struct DrillResult
{
    bool reached = false;
    bool correct = false;
    std::uint64_t rolledForward = 0;
    std::uint64_t rolledBack = 0;
    std::uint64_t restored = 0;
    double recoveryMs = 0;
};

DrillResult
drill(const char *failpoint, int occurrence)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().armFailpoint(2, failpoint, occurrence);

    const int kIters = 15;
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < kIters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();

    DrillResult r;
    std::uint64_t v = 0;
    cluster.debugRead(counter, &v, 8);
    Counters c = cluster.totalCounters();
    r.reached = !cluster.injector().killed().empty();
    r.correct =
        (v == static_cast<std::uint64_t>(kIters) * cfg.totalThreads());
    r.rolledForward = c.pagesRolledForward;
    r.rolledBack = c.pagesRolledBack;
    r.restored = c.threadsRestored;
    if (cluster.recovery())
        r.recoveryMs = static_cast<double>(
                           cluster.recovery()->lastRecoveryTime()) /
                       1e6;
    return r;
}

} // namespace

int
main()
{
    const struct
    {
        const char *name;
        int occurrence;
    } points[] = {
        {failpoints::kBeforeRelease, 3},
        {failpoints::kAfterCommit, 3},
        {failpoints::kAfterPointA, 3},
        {failpoints::kMidPhase1, 3},
        {failpoints::kAfterPhase1, 3},
        {failpoints::kAfterPointB, 3},
        {failpoints::kAfterTsSave, 3},
        {failpoints::kMidPhase2, 3},
        {failpoints::kAfterRelease, 3},
        {failpoints::kInAcquire, 3},
    };

    std::printf("%-26s %8s %8s %10s %10s %9s %12s\n", "failpoint",
                "reached", "exact", "rolledFwd", "rolledBack",
                "restored", "recovery(ms)");
    int failures = 0;
    for (const auto &p : points) {
        DrillResult r = drill(p.name, p.occurrence);
        std::printf("%-26s %8s %8s %10llu %10llu %9llu %12.3f\n",
                    p.name, r.reached ? "yes" : "no",
                    r.correct ? "yes" : "NO",
                    static_cast<unsigned long long>(r.rolledForward),
                    static_cast<unsigned long long>(r.rolledBack),
                    static_cast<unsigned long long>(r.restored),
                    r.recoveryMs);
        if (!r.correct)
            failures++;
    }
    std::printf("\nEvery row must be exact: a failure at any protocol "
                "point preserves the\nlock-protected counter's "
                "exactly-once semantics (guarantees 1-3 of §4).\n");
    return failures ? 1 : 0;
}

/**
 * @file
 * Application-suite correctness: every mini-SPLASH-2 kernel, on both
 * protocols and both node/thread geometries, must produce output
 * identical to its serial reference.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/app_common.hh"

namespace rsvm {
namespace {

using apps::AppParams;
using apps::AppResult;

struct AppCase
{
    const char *app;
    ProtocolKind protocol;
    std::uint32_t nodes;
    std::uint32_t tpn;
    double scale; // problem-size scale vs default (keep tests fast)
};

std::string
appCaseName(const testing::TestParamInfo<AppCase> &info)
{
    const AppCase &c = info.param;
    std::string s = c.app;
    for (char &ch : s)
        if (ch == '-')
            ch = '_';
    s += (c.protocol == ProtocolKind::Base) ? "_base" : "_ft";
    s += "_n" + std::to_string(c.nodes) + "t" + std::to_string(c.tpn);
    return s;
}

class AppCorrectness : public testing::TestWithParam<AppCase>
{
};

TEST_P(AppCorrectness, MatchesSerialReference)
{
    const AppCase &c = GetParam();
    Config cfg;
    cfg.protocol = c.protocol;
    cfg.numNodes = c.nodes;
    cfg.threadsPerNode = c.tpn;
    cfg.sharedBytes = 64u << 20;

    AppParams p = apps::defaultParams(c.app);
    if (c.scale != 1.0) {
        p.size = static_cast<std::uint64_t>(
            static_cast<double>(p.size) * c.scale);
        // Keep structural constraints (powers, multiples) by snapping.
        if (std::string(c.app) == "fft") {
            std::uint64_t m = 1;
            while (m * m < p.size)
                m <<= 1;
            p.size = m * m;
        } else if (std::string(c.app) == "lu") {
            p.size = (p.size + 31) / 32 * 32;
        } else if (std::string(c.app) == "volrend") {
            p.size = (p.size + 7) / 8 * 8;
        } else {
            std::uint64_t q = cfg.totalThreads();
            p.size = (p.size + q - 1) / q * q;
        }
    }
    AppResult r = apps::runAndVerify(cfg, c.app, p);
    EXPECT_TRUE(r.ok) << r.detail;
}

std::vector<AppCase>
appMatrix()
{
    std::vector<AppCase> cases;
    const char *names[] = {"fft",      "lu",    "water-nsq",
                           "water-sp", "radix", "volrend"};
    for (const char *name : names) {
        // Small geometry at reduced scale for both protocols.
        cases.push_back({name, ProtocolKind::Base, 4, 1, 0.5});
        cases.push_back({name, ProtocolKind::FaultTolerant, 4, 1,
                         0.5});
        // SMP geometry (the paper's 2 threads/node).
        cases.push_back({name, ProtocolKind::FaultTolerant, 4, 2,
                         0.5});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, AppCorrectness,
                         testing::ValuesIn(appMatrix()), appCaseName);

} // namespace
} // namespace rsvm

/**
 * @file
 * Reliable-transport tests on a faulty wire.
 *
 * The wire may drop, duplicate, reorder and delay messages
 * (net/netfault); the transport in net/vmmc must hide all of it:
 * every protocol handler observes exactly-once, in-order delivery,
 * every blocking operation eventually completes, and a whole
 * fault-tolerant cluster run produces bit-exact results. These are
 * property-style sweeps over fault rates and seeds — the fault stream
 * is deterministic per seed, so every failure is reproducible.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/config.hh"
#include "net/failure.hh"
#include "net/netfault.hh"
#include "net/nic.hh"
#include "net/vmmc.hh"
#include "runtime/cluster.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

/** Raw engine/net/vmmc fixture with wire-fault knobs applied. */
struct LossyFixture
{
    Config cfg;
    std::unique_ptr<Engine> eng;
    std::unique_ptr<Network> net;
    std::unique_ptr<Vmmc> vmmc;

    LossyFixture(double drop, double dup, double reorder,
                 std::uint64_t seed, std::uint32_t nodes = 4)
    {
        cfg.numNodes = nodes;
        cfg.netDropProb = drop;
        cfg.netDupProb = dup;
        cfg.netReorderProb = reorder;
        cfg.netJitterMax = 5 * kMicrosecond;
        cfg.seed = seed;
        eng = std::make_unique<Engine>(cfg);
        net = std::make_unique<Network>(*eng, cfg, nodes);
        vmmc = std::make_unique<Vmmc>(*eng, *net, cfg);
    }
};

TEST(Transport, ExactlyOnceInOrderAcrossRatesAndSeeds)
{
    const double rates[] = {0.01, 0.05, 0.20};
    const std::uint64_t seeds[] = {1, 7, 42};
    for (double rate : rates) {
        for (std::uint64_t seed : seeds) {
            LossyFixture f(rate, rate, rate, seed);
            constexpr int kMsgs = 40;
            std::vector<int> order;
            bool done = false;
            SimThread &t = f.eng->createThread("sender");
            t.start([&] {
                CompletionBatch batch(t);
                for (int i = 0; i < kMsgs; ++i) {
                    f.vmmc->depositAsync(
                        t, 0, 1, 256,
                        [&order, i] { order.push_back(i); }, &batch);
                }
                EXPECT_EQ(batch.wait(Comp::Protocol), CommStatus::Ok);
                done = true;
            });
            f.eng->run();
            ASSERT_TRUE(done) << "rate=" << rate << " seed=" << seed;
            ASSERT_EQ(order.size(), static_cast<size_t>(kMsgs))
                << "rate=" << rate << " seed=" << seed;
            for (int i = 0; i < kMsgs; ++i)
                EXPECT_EQ(order[i], i);
            // At 1%+ fault rates over 40+ messages the injector
            // virtually always fires at least once; if it never did,
            // the sweep would be vacuous.
            const Counters &w = f.net->faults().counters();
            EXPECT_GT(w.netDropsInjected + w.netDupsInjected +
                          w.netReordersInjected + w.netDelaysInjected,
                      0u)
                << "rate=" << rate << " seed=" << seed;
        }
    }
}

TEST(Transport, FullDuplicationWireDeliversOnce)
{
    // Every message (including acks) is delivered twice; receive-side
    // suppression must make the handlers exactly-once anyway.
    LossyFixture f(0.0, 1.0, 0.0, 3);
    int applied = 0;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CompletionBatch batch(t);
        for (int i = 0; i < 10; ++i)
            f.vmmc->depositAsync(t, 0, 1, 128, [&] { applied++; },
                                 &batch);
        EXPECT_EQ(batch.wait(Comp::Protocol), CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(applied, 10);
    EXPECT_GT(f.net->faults().counters().netDupsInjected, 0u);
    EXPECT_GT(f.vmmc->transportCounters().dupDrops, 0u);
}

TEST(Transport, ReorderingWireStaysInOrder)
{
    LossyFixture f(0.0, 0.0, 0.5, 11);
    std::vector<int> order;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CompletionBatch batch(t);
        for (int i = 0; i < 30; ++i)
            f.vmmc->depositAsync(t, 0, 1, 64,
                                 [&order, i] { order.push_back(i); },
                                 &batch);
        EXPECT_EQ(batch.wait(Comp::Protocol), CommStatus::Ok);
    });
    f.eng->run();
    ASSERT_EQ(order.size(), 30u);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(order[i], i);
    // The wire really did reorder: the receiver held out-of-order
    // arrivals rather than never seeing one.
    EXPECT_GT(f.net->faults().counters().netReordersInjected, 0u);
    EXPECT_GT(f.vmmc->transportCounters().reorderDepthHist.count(), 0u);
}

TEST(Transport, TargetedDropIsRetransmitted)
{
    // Fault-free wire except: drop exactly the 2nd data message from
    // node 0 to node 1. The transport must recover it by timeout.
    LossyFixture f(0.0, 0.0, 0.0, 5);
    f.net->faults().arm(failpoints::kNetDrop, 0, 1,
                        static_cast<int>(MsgKind::Data), 2);
    std::vector<int> order;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CompletionBatch batch(t);
        for (int i = 0; i < 3; ++i)
            f.vmmc->depositAsync(t, 0, 1, 64,
                                 [&order, i] { order.push_back(i); },
                                 &batch);
        EXPECT_EQ(batch.wait(Comp::Protocol), CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(f.net->faults().counters().netDropsInjected, 1u);
    EXPECT_GE(f.vmmc->transportCounters().retransmits, 1u);
}

TEST(Transport, FetchCompletesOnLossyWire)
{
    LossyFixture f(0.1, 0.1, 0.1, 9);
    std::uint32_t got = 0;
    SimThread &t = f.eng->createThread("requester");
    t.start([&] {
        CommStatus s = f.vmmc->fetch(
            t, 0, 2, 64,
            [&](std::shared_ptr<Replier> r) {
                r->reply(4096, [&] { got = 0xbeef; });
            },
            Comp::DataWait);
        EXPECT_EQ(s, CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(got, 0xbeefu);
}

TEST(Transport, PiggybackedAcksFlowOnReverseTraffic)
{
    // Symmetric traffic 0<->1: reverse-direction data messages carry
    // cumulative acks, so at least some acks ride for free.
    LossyFixture f(0.02, 0.02, 0.02, 13);
    int a = 0, b = 0;
    SimThread &t0 = f.eng->createThread("fwd");
    SimThread &t1 = f.eng->createThread("rev");
    t0.start([&] {
        for (int i = 0; i < 15; ++i)
            f.vmmc->deposit(t0, 0, 1, 128, [&] { a++; },
                            Comp::Protocol);
    });
    t1.start([&] {
        for (int i = 0; i < 15; ++i)
            f.vmmc->deposit(t1, 1, 0, 128, [&] { b++; },
                            Comp::Protocol);
    });
    f.eng->run();
    EXPECT_EQ(a, 15);
    EXPECT_EQ(b, 15);
    EXPECT_GT(f.vmmc->transportCounters().acksPiggybacked, 0u);
}

TEST(Transport, SameSeedIsBitExactlyReproducible)
{
    auto run = [](std::uint64_t seed) {
        LossyFixture f(0.1, 0.1, 0.1, seed);
        std::vector<SimTime> times;
        SimThread &t = f.eng->createThread("sender");
        t.start([&] {
            for (int i = 0; i < 20; ++i) {
                f.vmmc->deposit(t, 0, 3, 512,
                                [&] { times.push_back(f.eng->now()); },
                                Comp::Protocol);
            }
        });
        f.eng->run();
        return times;
    };
    EXPECT_EQ(run(21), run(21));
    EXPECT_NE(run(21), run(22));
}

// ---- Failpoint-name validation (fail fast on typos) -------------------

using TransportDeath = ::testing::Test;

TEST(TransportDeath, UnknownFailpointNameDiesLoudly)
{
    Config cfg;
    Engine eng(cfg);
    FailureInjector inj(eng);
    EXPECT_EXIT(inj.armFailpoint(0, "release:comit_typo"),
                ::testing::ExitedWithCode(1), "unknown failpoint");
}

TEST(TransportDeath, NetFaultArmRejectsNonNetPoint)
{
    Config cfg;
    NetFaultInjector nf(cfg);
    EXPECT_EXIT(nf.arm("release:commit", 0, 1, NetFaultInjector::kAnyKind),
                ::testing::ExitedWithCode(1), "netfault");
}

TEST(Transport, KnownFailpointNamesStillArm)
{
    Config cfg;
    Engine eng(cfg);
    FailureInjector inj(eng);
    inj.armFailpoint(0, failpoints::kNetDrop);
    inj.armFailpoint(1, failpoints::kInBarrier);
    EXPECT_TRUE(inj.anyArmed());
}

// ---- Whole-cluster runs on a lossy wire ------------------------------

Config
lossyFtConfig(double rate, std::uint64_t seed)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 16u << 20;
    cfg.netDropProb = rate;
    cfg.netDupProb = rate;
    cfg.netReorderProb = rate;
    cfg.netJitterMax = 5 * kMicrosecond;
    cfg.seed = seed;
    return cfg;
}

std::uint64_t
runCounter(Cluster &cluster, int iters)
{
    Addr counter = cluster.mem().alloc(8);
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    std::uint64_t v = 0;
    cluster.debugRead(counter, &v, 8);
    return v;
}

TEST(Transport, FtClusterBitExactOnLossyWire)
{
    for (std::uint64_t seed : {1ull, 33ull}) {
        Config cfg = lossyFtConfig(0.02, seed);
        Cluster cluster(cfg);
        std::uint64_t v = runCounter(cluster, 12);
        EXPECT_EQ(v, 12u * cfg.totalThreads()) << "seed=" << seed;
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
        Counters c = cluster.totalCounters();
        EXPECT_GT(c.netDropsInjected, 0u);
        EXPECT_GT(c.retransmits, 0u);
        EXPECT_EQ(c.falseSuspicionsFenced, 0u)
            << "loss alone must not trip the failure detector";
    }
}

TEST(Transport, FtClusterSurvivesLossPlusKill)
{
    Config cfg = lossyFtConfig(0.01, 17);
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    std::uint64_t v = runCounter(cluster, 15);
    EXPECT_EQ(v, 15u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 1u);
    EXPECT_GT(c.retransmits, 0u);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Edge-case tests for the network layer: engine-context deposits,
 * probes, NIC revive, header accounting, and counter integrity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/config.hh"
#include "net/nic.hh"
#include "net/vmmc.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

struct Fx
{
    Config cfg;
    std::unique_ptr<Engine> eng;
    std::unique_ptr<Network> net;
    std::unique_ptr<Vmmc> vmmc;

    explicit Fx(std::uint32_t nodes = 3)
    {
        cfg.numNodes = nodes;
        eng = std::make_unique<Engine>(cfg);
        net = std::make_unique<Network>(*eng, cfg, nodes);
        vmmc = std::make_unique<Vmmc>(*eng, *net, cfg);
    }
};

TEST(NetEdge, DepositFromEventDelivers)
{
    Fx f;
    int hits = 0;
    f.eng->schedule(10, [&] {
        f.vmmc->depositFromEvent(0, 1, 64, [&] { hits++; });
    });
    f.eng->run();
    EXPECT_EQ(hits, 1);
}

TEST(NetEdge, DepositFromEventToDeadNodeIsDroppedAndNotified)
{
    Fx f;
    PhysNodeId dead = kInvalidNode;
    f.vmmc->setPeerDeathHook([&](PhysNodeId p) { dead = p; });
    f.net->nic(1).kill();
    int hits = 0;
    f.eng->schedule(10, [&] {
        f.vmmc->depositFromEvent(0, 1, 64, [&] { hits++; });
    });
    f.eng->run();
    EXPECT_EQ(hits, 0);
    EXPECT_EQ(dead, 1u);
}

TEST(NetEdge, ProbeReportsLiveness)
{
    Fx f;
    bool alive1 = false, alive2 = true;
    f.net->nic(2).kill();
    f.eng->schedule(0, [&] {
        f.net->nic(0).probe(1, [&](bool a) { alive1 = a; });
        f.net->nic(0).probe(2, [&](bool a) { alive2 = a; });
    });
    f.eng->run();
    EXPECT_TRUE(alive1);
    EXPECT_FALSE(alive2);
    EXPECT_EQ(f.net->nic(0).counters().heartbeatsSent, 2u);
}

TEST(NetEdge, ReviveRestoresDelivery)
{
    Fx f;
    f.net->nic(1).kill();
    EXPECT_FALSE(f.net->nodeAlive(1));
    f.net->nic(1).revive();
    EXPECT_TRUE(f.net->nodeAlive(1));
    int hits = 0;
    SimThread &t = f.eng->createThread("s");
    t.start([&] {
        EXPECT_EQ(f.vmmc->deposit(t, 0, 1, 64, [&] { hits++; },
                                  Comp::Protocol),
                  CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(hits, 1);
}

TEST(NetEdge, BytesAccountingIncludesHeaders)
{
    Fx f;
    SimThread &t = f.eng->createThread("s");
    t.start([&] {
        f.vmmc->deposit(t, 0, 1, 100, [] {}, Comp::Protocol);
    });
    f.eng->run();
    Counters c = f.net->nic(0).counters();
    EXPECT_EQ(c.messagesSent, 1u);
    EXPECT_EQ(c.bytesSent, 100u + f.cfg.msgHeaderBytes);
}

TEST(NetEdge, LoopbackDoesNotTouchTheNic)
{
    Fx f;
    f.vmmc->setHost(1, 0);
    SimThread &t = f.eng->createThread("s");
    int hits = 0;
    t.start([&] {
        f.vmmc->deposit(t, 0, 1, 4096, [&] { hits++; },
                        Comp::Protocol);
    });
    f.eng->run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(f.net->nic(0).counters().messagesSent, 0u);
}

TEST(NetEdge, SweepChargesProbeCost)
{
    Fx f;
    SimThread &t = f.eng->createThread("s");
    t.start([&] {
        PhysNodeId dead;
        EXPECT_FALSE(f.vmmc->sweepForFailures(t, &dead));
    });
    f.eng->run();
    EXPECT_EQ(t.times().get(Comp::Protocol),
              f.cfg.heartbeatProbeCost);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for the NIC/Network/VMMC communication model: timing,
 * FIFO delivery, post-queue blocking, loopback, failure semantics,
 * deferred replies, and completion batches.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "base/config.hh"
#include "net/failure.hh"
#include "net/nic.hh"
#include "net/vmmc.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

struct NetFixture
{
    Config cfg;
    std::unique_ptr<Engine> eng;
    std::unique_ptr<Network> net;
    std::unique_ptr<Vmmc> vmmc;

    explicit NetFixture(std::uint32_t nodes = 4)
    {
        cfg.numNodes = nodes;
        eng = std::make_unique<Engine>(cfg);
        net = std::make_unique<Network>(*eng, cfg, nodes);
        vmmc = std::make_unique<Vmmc>(*eng, *net, cfg);
    }
};

TEST(Nic, DeliveryTimingMatchesModel)
{
    NetFixture f;
    int delivered_at = -1;
    SimTime when = 0;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CommStatus s = f.vmmc->deposit(
            t, 0, 1, 968, [&] { when = f.eng->now(); delivered_at = 1; },
            Comp::Protocol);
        EXPECT_EQ(s, CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(delivered_at, 1);
    // sendOverhead + wire(968+32 bytes @100MB/s = 10000ns) + wireLatency
    // + recvOverhead = 2000 + 10000 + 4000 + 2000 = 18000.
    EXPECT_EQ(when, 18000u);
}

TEST(Nic, FifoDeliveryPerChannel)
{
    NetFixture f;
    std::vector<int> order;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CompletionBatch batch(t);
        for (int i = 0; i < 8; ++i) {
            f.vmmc->depositAsync(t, 0, 1, 100,
                                 [&order, i] { order.push_back(i); },
                                 &batch);
        }
        EXPECT_EQ(batch.wait(Comp::Protocol), CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Nic, FullPostQueueBlocksPoster)
{
    NetFixture f;
    f.cfg.nicPostQueue = 2;
    Engine eng(f.cfg);
    Network net(eng, f.cfg, 2);
    int delivered = 0;
    SimThread &t = eng.createThread("sender");
    t.start([&] {
        for (int i = 0; i < 10; ++i) {
            Message m;
            m.src = 0;
            m.dst = 1;
            m.payloadBytes = 4096;
            m.deliver = [&] { delivered++; };
            EXPECT_EQ(net.nic(0).post(t, std::move(m)),
                      WakeStatus::Normal);
        }
    });
    eng.run();
    EXPECT_EQ(delivered, 10);
    EXPECT_GT(net.nic(0).counters().postQueueStalls, 0u);
}

TEST(Nic, BandwidthSerializesDepartures)
{
    NetFixture f;
    // Two 4 KB messages: second must arrive one full occupancy later.
    std::vector<SimTime> arrivals;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        CompletionBatch batch(t);
        for (int i = 0; i < 2; ++i) {
            f.vmmc->depositAsync(
                t, 0, 1, 4096,
                [&] { arrivals.push_back(f.eng->now()); }, &batch);
        }
        batch.wait(Comp::Protocol);
    });
    f.eng->run();
    ASSERT_EQ(arrivals.size(), 2u);
    SimTime occupancy = f.cfg.sendOverhead + f.cfg.wireTime(4096 + 32);
    EXPECT_EQ(arrivals[1] - arrivals[0], occupancy);
}

TEST(Vmmc, LoopbackSkipsTheWire)
{
    NetFixture f;
    // Map logical 1 onto physical 0 so 0->1 is a loopback.
    f.vmmc->setHost(1, 0);
    SimTime when = 0;
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        EXPECT_EQ(f.vmmc->deposit(t, 0, 1, 4096,
                                  [&] { when = f.eng->now(); },
                                  Comp::Protocol),
                  CommStatus::Ok);
    });
    f.eng->run();
    EXPECT_EQ(when, f.cfg.localLoopback);
}

TEST(Vmmc, FetchRoundTrip)
{
    NetFixture f;
    int result = 0;
    SimThread &t = f.eng->createThread("requester");
    t.start([&] {
        CommStatus s = f.vmmc->fetch(
            t, 0, 2, 64,
            [&](std::shared_ptr<Replier> rep) {
                rep->reply(4096, [&] { result = 42; });
            },
            Comp::DataWait);
        EXPECT_EQ(s, CommStatus::Ok);
        EXPECT_EQ(result, 42);
    });
    f.eng->run();
    EXPECT_EQ(result, 42);
    EXPECT_GT(t.times().get(Comp::DataWait), 0u);
}

TEST(Vmmc, DeferredReplyCompletesLater)
{
    NetFixture f;
    std::shared_ptr<Replier> saved;
    int result = 0;
    SimThread &t = f.eng->createThread("requester");
    t.start([&] {
        CommStatus s = f.vmmc->fetch(
            t, 0, 2, 64,
            [&](std::shared_ptr<Replier> rep) { saved = rep; },
            Comp::DataWait);
        EXPECT_EQ(s, CommStatus::Ok);
        EXPECT_EQ(result, 7);
    });
    // Complete the reply 200 us after the request was made.
    f.eng->schedule(200 * kMicrosecond, [&] {
        ASSERT_TRUE(saved != nullptr);
        saved->reply(128, [&] { result = 7; });
    });
    f.eng->run();
    EXPECT_EQ(result, 7);
}

TEST(Vmmc, DepositToDeadNodeReturnsError)
{
    NetFixture f;
    f.net->nic(2).kill();
    PhysNodeId dead_seen = kInvalidNode;
    f.vmmc->setPeerDeathHook([&](PhysNodeId p) { dead_seen = p; });
    SimThread &t = f.eng->createThread("sender");
    t.start([&] {
        EXPECT_EQ(f.vmmc->deposit(t, 0, 2, 100, [] {}, Comp::Protocol),
                  CommStatus::Error);
    });
    f.eng->run();
    EXPECT_EQ(dead_seen, 2u);
}

TEST(Vmmc, InFlightDepositToDyingNodeFailsCompletion)
{
    NetFixture f;
    SimThread &t = f.eng->createThread("sender");
    CommStatus status = CommStatus::Ok;
    bool applied = false;
    t.start([&] {
        status = f.vmmc->deposit(t, 0, 2, 4096, [&] { applied = true; },
                                 Comp::Protocol);
    });
    // Kill node 2 while the message is in flight (before arrival).
    f.eng->schedule(3000, [&] { f.net->nic(2).kill(); });
    f.eng->run();
    EXPECT_EQ(status, CommStatus::Error);
    EXPECT_FALSE(applied);
}

TEST(Vmmc, FetchFromDeadNodeDetectsViaHeartbeat)
{
    NetFixture f;
    SimThread &t = f.eng->createThread("requester");
    std::shared_ptr<Replier> saved;
    CommStatus status = CommStatus::Ok;
    t.start([&] {
        status = f.vmmc->fetch(
            t, 0, 2, 64,
            [&](std::shared_ptr<Replier> rep) { saved = rep; },
            Comp::DataWait);
    });
    // The handler stashes the reply (deferred) and node 2 dies before
    // ever replying: the requester's heart-beat must detect it.
    f.eng->schedule(100 * kMicrosecond, [&] { f.net->nic(2).kill(); });
    f.eng->run(true);
    EXPECT_EQ(status, CommStatus::Error);
    EXPECT_GT(t.times().get(Comp::DataWait),
              static_cast<SimTime>(f.cfg.heartbeatTimeout) - 1);
}

TEST(Vmmc, StaleDeferredReplyIsDroppedAfterAbandon)
{
    NetFixture f;
    SimThread &t = f.eng->createThread("requester");
    std::shared_ptr<Replier> saved;
    int applies = 0;
    CommStatus first = CommStatus::Ok, second = CommStatus::Ok;
    t.start([&] {
        // First fetch: handler defers, peer 3 dies, fetch errors out.
        first = f.vmmc->fetch(
            t, 0, 2, 64,
            [&](std::shared_ptr<Replier> rep) { saved = rep; },
            Comp::DataWait);
        // Second fetch to a live node must not be confused by the
        // stale deferred reply firing mid-wait.
        second = f.vmmc->fetch(
            t, 0, 1, 64,
            [&](std::shared_ptr<Replier> rep) {
                rep->reply(64, [&] { applies += 100; });
            },
            Comp::DataWait);
    });
    f.eng->schedule(100 * kMicrosecond, [&] { f.net->nic(3).kill(); });
    // Fire the stale reply while the second fetch is in progress.
    f.eng->schedule(1100 * kMicrosecond, [&] {
        if (saved)
            saved->reply(64, [&] { applies += 1; });
    });
    f.eng->run(true);
    EXPECT_EQ(first, CommStatus::Error);
    EXPECT_EQ(second, CommStatus::Ok);
    EXPECT_EQ(applies, 100) << "stale apply must not run";
}

TEST(Vmmc, CompletionBatchReportsPartialFailure)
{
    NetFixture f;
    SimThread &t = f.eng->createThread("sender");
    CommStatus status = CommStatus::Ok;
    t.start([&] {
        CompletionBatch batch(t);
        f.vmmc->depositAsync(t, 0, 1, 4096, [] {}, &batch);
        f.vmmc->depositAsync(t, 0, 2, 4096, [] {}, &batch);
        f.vmmc->depositAsync(t, 0, 3, 4096, [] {}, &batch);
        status = batch.wait(Comp::Diff);
    });
    f.eng->schedule(1000, [&] { f.net->nic(2).kill(); });
    f.eng->run(true);
    EXPECT_EQ(status, CommStatus::Error);
}

TEST(Failure, TimedKillFires)
{
    NetFixture f;
    FailureInjector inj(*f.eng);
    std::vector<PhysNodeId> killed;
    inj.setKillAction([&](PhysNodeId p) {
        killed.push_back(p);
        f.net->nic(p).kill();
    });
    inj.killAt(1, 5 * kMillisecond);
    f.eng->run();
    EXPECT_EQ(killed, (std::vector<PhysNodeId>{1}));
    EXPECT_FALSE(f.net->nodeAlive(1));
}

TEST(Failure, FailpointFiresOnNthOccurrence)
{
    NetFixture f;
    FailureInjector inj(*f.eng);
    int kills = 0;
    inj.setKillAction([&](PhysNodeId) { kills++; });
    inj.armFailpoint(0, failpoints::kAfterPhase1, 3);
    EXPECT_FALSE(inj.failpoint(0, failpoints::kAfterPhase1));
    EXPECT_FALSE(inj.failpoint(0, failpoints::kAfterPhase1));
    EXPECT_FALSE(inj.failpoint(1, failpoints::kAfterPhase1));
    EXPECT_FALSE(inj.failpoint(0, failpoints::kMidPhase2));
    EXPECT_TRUE(inj.failpoint(0, failpoints::kAfterPhase1));
    EXPECT_EQ(kills, 1);
    // Disarmed after firing.
    EXPECT_FALSE(inj.failpoint(0, failpoints::kAfterPhase1));
}

TEST(Failure, KillNowIsIdempotent)
{
    NetFixture f;
    FailureInjector inj(*f.eng);
    int kills = 0;
    inj.setKillAction([&](PhysNodeId) { kills++; });
    inj.killNow(2);
    inj.killNow(2);
    EXPECT_EQ(kills, 1);
    EXPECT_EQ(inj.killed().size(), 1u);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Property-based "chaos" tests: randomized race-free shared-memory
 * programs whose final state is computable in closed form, run on
 * both protocols and (for the extended protocol) with fail-stop
 * failures injected at randomized times.
 *
 * Program model: V shared int64 cells packed onto a few pages (heavy
 * false sharing by construction), each cell bound to one lock. Every
 * thread executes a seeded script of phases separated by barriers;
 * each phase performs locked add-accumulations on random cells and
 * unlocked accumulations on thread-private cells. Because every
 * update is an addition protected by the cell's lock (or private),
 * the final value of every cell is the exact sum of all script
 * deltas, independent of interleaving — any deviation is a protocol
 * bug (lost update, stale read, resurrected write, double replay).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/log.hh"
#include "base/rng.hh"
#include "runtime/cluster.hh"

namespace rsvm {
namespace {

constexpr std::uint32_t kCells = 96;
constexpr std::uint32_t kLocks = 12;
constexpr LockId kLockBase = 700;
constexpr int kPhases = 4;
constexpr int kOpsPerPhase = 18;

struct ChaosOp
{
    std::uint32_t cell;
    std::int64_t delta;
    bool locked;
};

/** Deterministic script for one thread. */
std::vector<ChaosOp>
scriptFor(std::uint64_t seed, std::uint32_t tid, std::uint32_t nthreads)
{
    Rng rng(seed * 1000003 + tid);
    std::vector<ChaosOp> ops;
    for (int phase = 0; phase < kPhases; ++phase) {
        for (int i = 0; i < kOpsPerPhase; ++i) {
            ChaosOp op;
            if (rng.chance(0.3)) {
                // Thread-private cell: no lock needed.
                op.cell = kCells + tid;
                op.locked = false;
            } else {
                op.cell = static_cast<std::uint32_t>(
                    rng.below(kCells));
                op.locked = true;
            }
            op.delta = static_cast<std::int64_t>(rng.below(1000)) -
                       500;
            ops.push_back(op);
        }
    }
    (void)nthreads;
    return ops;
}

struct ChaosCase
{
    std::uint64_t seed;
    ProtocolKind protocol;
    std::uint32_t nodes;
    std::uint32_t tpn;
    /** Number of fail-stop kills to schedule (0 = failure-free). */
    std::uint32_t kills;
    /** Enable the adaptive-placement subsystem (svm/homing). */
    bool homing = false;
    /** Optional migration failpoint to arm (implies one more kill). */
    const char *migPoint = nullptr;
};

std::string
chaosName(const testing::TestParamInfo<ChaosCase> &info)
{
    const ChaosCase &c = info.param;
    std::string s = "seed" + std::to_string(c.seed);
    s += (c.protocol == ProtocolKind::Base) ? "_base" : "_ft";
    s += "_n" + std::to_string(c.nodes) + "t" + std::to_string(c.tpn);
    if (c.kills == 1)
        s += "_kill";
    else if (c.kills > 1)
        s += "_kill" + std::to_string(c.kills);
    if (c.homing)
        s += "_dyn";
    if (c.migPoint) {
        std::string p = c.migPoint;
        s += "_mig" + p.substr(p.find(':') + 1);
    }
    return s;
}

class ChaosTest : public testing::TestWithParam<ChaosCase>
{
};

TEST_P(ChaosTest, FinalStateMatchesClosedForm)
{
    const ChaosCase &c = GetParam();
    Config cfg;
    cfg.protocol = c.protocol;
    cfg.numNodes = c.nodes;
    cfg.threadsPerNode = c.tpn;
    cfg.seed = c.seed;
    if (c.homing) {
        // Aggressive knobs: the chaos page layout is maximal false
        // sharing, so this stresses placement stability (hysteresis
        // must not ping-pong multi-writer pages) and the migration
        // handoff racing ordinary protocol traffic.
        cfg.dynamicHoming = true;
        cfg.homingEpoch = 200 * kMicrosecond;
        cfg.homingMinBytes = 256;
        cfg.homingHysteresis = 1.1;
        cfg.homingCooldownEpochs = 1;
    }

    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    std::uint32_t total_cells = kCells + nthreads;
    Addr cells = cluster.mem().allocPageAligned(total_cells * 8ull);

    if (c.kills > 0) {
        // Schedule pseudo-random kills at pseudo-random times. With
        // more than one kill the victims may repeat (a dead node's
        // later kill must be a harmless no-op) and a kill may land
        // inside a prior recovery — both on purpose.
        Rng rng(c.seed ^ 0xdeadbeef);
        for (std::uint32_t k = 0; k < c.kills; ++k) {
            PhysNodeId victim = static_cast<PhysNodeId>(
                rng.below(c.nodes));
            SimTime when =
                (500 + rng.below(4000 + 4000 * k)) * kMicrosecond;
            cluster.injector().killAt(victim, when);
        }
    }
    if (c.migPoint)
        cluster.injector().armFailpoint(2, c.migPoint, 1);

    std::uint64_t seed = c.seed;
    cluster.spawn([cells, seed](AppThread &t) {
        std::vector<ChaosOp> ops =
            scriptFor(seed, t.id(), t.clusterThreads());
        std::size_t idx = 0;
        for (int phase = 0; phase < kPhases; ++phase) {
            for (int i = 0; i < kOpsPerPhase; ++i, ++idx) {
                // ops is an owning stack local; this is safe under
                // checkpoint/restore because (a) it is never resized
                // after construction, and (b) a killed thread's body
                // never returns, so the allocation a restored stack
                // references is still alive. Restart-from-zero runs
                // the body afresh and rebuilds it.
                const ChaosOp &op = ops[idx];
                Addr a = cells + 8ull * op.cell;
                if (op.locked)
                    t.lock(kLockBase + op.cell % kLocks);
                std::int64_t v = t.get<std::int64_t>(a);
                if (op.cell == 8)
                    RSVM_LOG(LogComp::App,
                             "t%u cell8 %lld %+lld -> %lld", t.id(),
                             (long long)v, (long long)op.delta,
                             (long long)(v + op.delta));
                t.put<std::int64_t>(a, v + op.delta);
                if (op.locked)
                    t.unlock(kLockBase + op.cell % kLocks);
                t.compute(5 * kMicrosecond);
            }
            t.barrier();
        }
    });
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        // Multi-kill schedules may legitimately destroy every copy of
        // some state; a clean, reasoned loss is an acceptable outcome.
        // A crash, assert, or silent corruption is not.
        EXPECT_GE(c.kills + (c.migPoint ? 1u : 0u), 2u)
            << "single kill must never lose the cluster: " << e.what();
        EXPECT_FALSE(cluster.lostReason().empty());
        // Every declared loss carries its exact machine-checkable
        // reason, and the exception code matches the cluster's record.
        EXPECT_NE(e.code(), LossReason::None);
        EXPECT_EQ(e.code(), cluster.lostCode());
        return;
    }

    // Closed-form expectation: every cell's final value is the sum of
    // all deltas applied to it across all scripts.
    std::vector<std::int64_t> expect(total_cells, 0);
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        for (const ChaosOp &op : scriptFor(seed, tid, nthreads))
            expect[op.cell] += op.delta;
    }
    for (std::uint32_t cell = 0; cell < total_cells; ++cell) {
        std::int64_t got = 0;
        cluster.debugRead(cells + 8ull * cell, &got, 8);
        EXPECT_EQ(got, expect[cell]) << "cell " << cell;
    }
    if (c.kills > 0 && !cluster.injector().killed().empty())
        EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

std::vector<ChaosCase>
chaosMatrix()
{
    std::vector<ChaosCase> cases;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        cases.push_back({seed, ProtocolKind::Base, 4, 1, 0});
        cases.push_back({seed, ProtocolKind::Base, 4, 2, 0});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 4, 1, 0});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 4, 2, 0});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 4, 1, 1});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 4, 2, 1});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 8, 2, 1});
        // Randomized multi-kill schedules: successive and possibly
        // overlapping failures, including kills landing mid-recovery.
        cases.push_back({seed, ProtocolKind::FaultTolerant, 8, 1, 2});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 8, 2, 3});
        // Adaptive placement under chaos: failure-free, random-kill,
        // multi-kill, and a migration-handoff kill (point rotated by
        // seed so the sweep covers every handoff step).
        cases.push_back(
            {seed, ProtocolKind::FaultTolerant, 4, 1, 0, true});
        cases.push_back(
            {seed, ProtocolKind::FaultTolerant, 4, 2, 1, true});
        cases.push_back(
            {seed, ProtocolKind::FaultTolerant, 8, 2, 2, true});
        cases.push_back({seed, ProtocolKind::FaultTolerant, 4, 1, 0,
                         true,
                         failpoints::kMigrationPoints[seed % 4]});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         testing::ValuesIn(chaosMatrix()), chaosName);

} // namespace
} // namespace rsvm

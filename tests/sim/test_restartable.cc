/**
 * @file
 * Tests for the restartable-operation checkpoint machinery: boundary
 * images (context + operation closure recorded at API entry),
 * parked-image restores, the op-bookkeeping rules of
 * SimThread::restoreFromImage, and idempotent re-execution.
 */

#include <gtest/gtest.h>

#include "base/config.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
cfg2()
{
    Config c;
    c.numNodes = 2;
    return c;
}

TEST(Restartable, OpRunsOnceNormally)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    int runs = 0;
    t.start([&] {
        t.runRestartableOp([&] {
            runs++;
            t.delay(100, Comp::Compute);
        });
        EXPECT_FALSE(t.inRestartableOp());
    });
    eng.run();
    EXPECT_EQ(runs, 1);
}

TEST(Restartable, BoundaryImageReExecutesTheOp)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    int runs = 0;
    int completions = 0;
    t.start([&] {
        t.runRestartableOp([&] {
            runs++;
            // Park until someone wakes us (simulating a blocked
            // protocol operation). A Restarted wake re-parks via the
            // retry-loop discipline.
            while (t.park(Comp::LockWait) != WakeStatus::Normal) {
            }
        });
        completions++;
    });

    SimThread::CkptImage image;
    eng.schedule(50, [&] {
        ASSERT_EQ(t.state(), ThreadState::Parked);
        ASSERT_TRUE(t.inRestartableOp());
        image = t.captureForCkpt();
        EXPECT_TRUE(image.atBoundary);
        EXPECT_TRUE(static_cast<bool>(image.op));
    });
    eng.schedule(100, [&] { t.kill(); });
    eng.schedule(200, [&] { t.restoreFromImage(image); });
    eng.schedule(300, [&] { t.wake(WakeStatus::Normal); });
    eng.run();
    EXPECT_EQ(t.state(), ThreadState::Finished);
    EXPECT_EQ(runs, 2) << "boundary restore re-executes the op";
    EXPECT_EQ(completions, 1);
}

TEST(Restartable, ParkedImageOutsideOpResumesInPlace)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    int after_delay = 0;
    t.start([&] {
        // A plain compute delay: not inside a restartable op.
        t.delay(10000, Comp::Compute);
        after_delay++;
    });
    SimThread::CkptImage image;
    eng.schedule(50, [&] {
        image = t.captureForCkpt();
        EXPECT_FALSE(image.atBoundary);
        EXPECT_FALSE(static_cast<bool>(image.op));
    });
    eng.schedule(100, [&] { t.kill(); });
    eng.schedule(200, [&] { t.restoreFromImage(image); });
    eng.run();
    EXPECT_EQ(t.state(), ThreadState::Finished);
    // Restored mid-delay: the delay returns (early) and the body
    // continues exactly once.
    EXPECT_EQ(after_delay, 1);
}

TEST(Restartable, FinishedThreadsCaptureAsMarkers)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    t.start([&] {});
    eng.run();
    SimThread::CkptImage image = t.captureForCkpt();
    EXPECT_TRUE(image.finished);
    EXPECT_FALSE(image.snap.valid());
}

TEST(Restartable, OpBookkeepingResetOnFreshStart)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    int phase = 0;
    t.start([&] {
        phase = 1;
        t.runRestartableOp([&] {
            while (t.park(Comp::LockWait) != WakeStatus::Normal) {
            }
        });
        phase = 2;
    });
    // Kill while inside the op (its member bookkeeping says opActive),
    // then restart from the top: the stale op state must not trip the
    // no-nesting assertion.
    eng.schedule(50, [&] { t.kill(); });
    eng.schedule(100, [&] {
        t.start([&] {
            phase = 10;
            t.runRestartableOp([&] { t.delay(10, Comp::Compute); });
            phase = 11;
        });
    });
    eng.run();
    EXPECT_EQ(phase, 11);
}

TEST(Restartable, NestedOpsAreRejected)
{
    Engine eng(cfg2());
    SimThread &t = eng.createThread("w");
    t.start([&] {
        t.runRestartableOp([&] {
            EXPECT_DEATH(t.runRestartableOp([] {}),
                         "must not nest");
        });
    });
    eng.run();
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for the discrete-event engine, fibers, SimThread blocking
 * discipline, time accounting, and checkpoint snapshot/restore.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/config.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
smallConfig()
{
    Config cfg;
    cfg.numNodes = 2;
    return cfg;
}

TEST(Engine, EventsRunInTimeOrder)
{
    Engine eng(smallConfig());
    std::vector<int> order;
    eng.schedule(300, [&] { order.push_back(3); });
    eng.schedule(100, [&] { order.push_back(1); });
    eng.schedule(200, [&] { order.push_back(2); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 300u);
}

TEST(Engine, SameTimeEventsRunInScheduleOrder)
{
    Engine eng(smallConfig());
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eng.schedule(50, [&order, i] { order.push_back(i); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingWorks)
{
    Engine eng(smallConfig());
    SimTime fired = 0;
    eng.schedule(10, [&] {
        eng.schedule(15, [&] { fired = eng.now(); });
    });
    eng.run();
    EXPECT_EQ(fired, 25u);
}

TEST(Engine, RunUntilStopsAtDeadline)
{
    Engine eng(smallConfig());
    int count = 0;
    eng.schedule(10, [&] { count++; });
    eng.schedule(100, [&] { count++; });
    EXPECT_FALSE(eng.runUntil(50));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eng.now(), 50u);
    EXPECT_TRUE(eng.runUntil(200));
    EXPECT_EQ(count, 2);
}

TEST(SimThread, DelayAdvancesTimeAndCharges)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("worker");
    SimTime end = 0;
    t.start([&] {
        t.delay(1000, Comp::Compute);
        t.delay(500, Comp::DataWait);
        end = eng.now();
    });
    eng.run();
    EXPECT_EQ(end, 1500u);
    EXPECT_EQ(t.state(), ThreadState::Finished);
    EXPECT_EQ(t.times().get(Comp::Compute), 1000u);
    EXPECT_EQ(t.times().get(Comp::DataWait), 500u);
}

TEST(SimThread, ParkAndWake)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("sleeper");
    WakeStatus ws = WakeStatus::Timeout;
    t.start([&] { ws = t.park(Comp::LockWait); });
    eng.schedule(2000, [&] { t.wake(WakeStatus::Normal); });
    eng.run();
    EXPECT_EQ(ws, WakeStatus::Normal);
    EXPECT_EQ(t.times().get(Comp::LockWait), 2000u);
}

TEST(SimThread, ParkForTimesOut)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("waiter");
    WakeStatus ws = WakeStatus::Normal;
    t.start([&] { ws = t.parkFor(750, Comp::BarrierWait); });
    eng.run();
    EXPECT_EQ(ws, WakeStatus::Timeout);
    EXPECT_EQ(eng.now(), 750u);
}

TEST(SimThread, WakeBeforeTimeoutSuppressesTimer)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("waiter");
    std::vector<WakeStatus> seen;
    t.start([&] {
        seen.push_back(t.parkFor(10000, Comp::LockWait));
        // Park again: a stale timer event from the first park must not
        // wake this second park.
        seen.push_back(t.parkFor(50000, Comp::LockWait));
    });
    eng.schedule(100, [&] { t.wake(WakeStatus::Normal); });
    eng.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], WakeStatus::Normal);
    EXPECT_EQ(seen[1], WakeStatus::Timeout);
    EXPECT_EQ(eng.now(), 100u + 50000u);
}

TEST(SimThread, LatchedWakeIsNotLost)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("latch");
    WakeStatus ws = WakeStatus::Timeout;
    t.start([&] {
        // Wake arrives while we are running; the next park must return
        // immediately with that status.
        t.wake(WakeStatus::Error);
        ws = t.park(Comp::Protocol);
    });
    eng.run();
    EXPECT_EQ(ws, WakeStatus::Error);
    EXPECT_EQ(eng.now(), 0u);
}

TEST(SimThread, TwoThreadsInterleaveDeterministically)
{
    Engine eng(smallConfig());
    SimThread &a = eng.createThread("a");
    SimThread &b = eng.createThread("b");
    std::vector<std::string> order;
    a.start([&] {
        for (int i = 0; i < 3; ++i) {
            a.delay(100, Comp::Compute);
            order.push_back("a");
        }
    });
    b.start([&] {
        for (int i = 0; i < 2; ++i) {
            b.delay(150, Comp::Compute);
            order.push_back("b");
        }
    });
    eng.run();
    // At t=300 both timers fire; b's timer was scheduled earlier (at
    // t=150) so it carries the smaller sequence number and b resumes
    // first — deterministically.
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "a"}));
}

TEST(SimThread, KillPreventsFurtherExecution)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("victim");
    int steps = 0;
    t.start([&] {
        steps++;
        t.delay(100, Comp::Compute);
        steps++;
    });
    eng.schedule(50, [&] { t.kill(); });
    eng.run(true);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(t.state(), ThreadState::Dead);
}

TEST(SimThread, KillSelfStopsImmediately)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("suicide");
    int steps = 0;
    t.start([&] {
        steps++;
        t.killSelf();
    });
    eng.run(true);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(t.state(), ThreadState::Dead);
}

TEST(Snapshot, ParkedThreadRestoreReplaysFromParkPoint)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("ckpt");
    std::vector<int> log;
    int phase2_runs = 0;
    t.start([&] {
        log.push_back(1);
        // Retry-loop discipline: a Restarted wake re-executes the wait.
        WakeStatus ws;
        do {
            ws = t.park(Comp::LockWait);
            log.push_back(2);
        } while (ws == WakeStatus::Restarted);
        phase2_runs++;
        log.push_back(3);
    });

    Fiber::Snapshot snap;
    eng.schedule(100, [&] {
        ASSERT_EQ(t.state(), ThreadState::Parked);
        snap = t.captureParked();
    });
    // Kill the thread after the snapshot, then restore it.
    eng.schedule(200, [&] { t.kill(); });
    eng.schedule(300, [&] { t.restoreSnapshot(snap); });
    // The restored thread re-parks; complete it with a normal wake.
    eng.schedule(400, [&] { t.wake(WakeStatus::Normal); });
    eng.run();
    EXPECT_EQ(t.state(), ThreadState::Finished);
    EXPECT_EQ(phase2_runs, 1);
    // 1 (initial), 2 (restarted wake), 2 (normal wake), 3 (done).
    EXPECT_EQ(log, (std::vector<int>{1, 2, 2, 3}));
}

TEST(Snapshot, SelfCaptureReturnsTwice)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("selfckpt");
    Fiber::Snapshot snap;
    int captured_paths = 0;
    int restored_paths = 0;
    int local_marker = 0;
    t.start([&] {
        local_marker = 42;
        if (t.captureSelf(snap)) {
            captured_paths++;
            // Simulate progress after the checkpoint, then die.
            t.delay(100, Comp::Compute);
            t.killSelf();
        } else {
            // Restored: stack-local state from capture time is intact.
            restored_paths++;
            t.clearPendingWake();
            EXPECT_EQ(local_marker, 42);
        }
    });
    eng.schedule(500, [&] { t.restoreSnapshot(snap); });
    eng.run(true);
    EXPECT_EQ(captured_paths, 1);
    EXPECT_EQ(restored_paths, 1);
    EXPECT_EQ(t.state(), ThreadState::Finished);
}

TEST(Snapshot, RestorePreservesDeepStackLocals)
{
    Engine eng(smallConfig());
    SimThread &t = eng.createThread("deep", 256 * 1024);
    Fiber::Snapshot snap;
    long result = 0;

    // Build a deep, data-carrying stack, park at the bottom, snapshot,
    // kill, restore, and check the recursion completes with intact
    // stack values.
    std::function<long(SimThread &, int)> recurse =
        [&](SimThread &self, int depth) -> long {
        volatile long salt = depth * 31 + 7;
        if (depth == 0) {
            WakeStatus ws;
            do {
                ws = self.park(Comp::Protocol);
            } while (ws == WakeStatus::Restarted);
            return salt;
        }
        long below = recurse(self, depth - 1);
        return below + salt;
    };
    t.start([&] { result = recurse(t, 40); });

    eng.schedule(10, [&] {
        ASSERT_EQ(t.state(), ThreadState::Parked);
        snap = t.captureParked();
        t.kill();
    });
    eng.schedule(20, [&] { t.restoreSnapshot(snap); });
    eng.schedule(30, [&] { t.wake(WakeStatus::Normal); });
    eng.run();

    long expected = 0;
    for (int d = 0; d <= 40; ++d)
        expected += d * 31 + 7;
    EXPECT_EQ(result, expected);
    EXPECT_GT(snap.stack.size(), 0u);
}

TEST(Breakdown, FourAndSixComponentViewsTotalEqually)
{
    TimeBreakdown b;
    b.charge(Comp::Compute, 100, false);
    b.charge(Comp::DataWait, 50, false);
    b.charge(Comp::LockWait, 25, false);
    b.charge(Comp::BarrierWait, 30, true);
    b.charge(Comp::Diff, 40, false);
    b.charge(Comp::Diff, 10, true);
    b.charge(Comp::Ckpt, 15, false);
    b.charge(Comp::Protocol, 5, true);
    auto four = b.fourComp();
    auto six = b.sixComp();
    SimTime four_total = four.compute + four.data + four.lock +
                         four.barrier;
    SimTime six_total = six.compute + six.data + six.sync + six.diffs +
                        six.protocol + six.ckpt;
    EXPECT_EQ(four_total, b.total());
    EXPECT_EQ(six_total, b.total());
    EXPECT_EQ(four.lock, 25u + 40u + 15u);
    EXPECT_EQ(four.barrier, 30u + 10u + 5u);
    EXPECT_EQ(six.sync, 55u);
}

TEST(Config, OverridesParse)
{
    Config cfg;
    EXPECT_TRUE(cfg.applyOverride("numNodes=4"));
    EXPECT_TRUE(cfg.applyOverride("protocol=base"));
    EXPECT_TRUE(cfg.applyOverride("lockAlgo=queuing"));
    EXPECT_TRUE(cfg.applyOverride("bandwidthBytesPerSec=2e8"));
    EXPECT_FALSE(cfg.applyOverride("nonsense=1"));
    EXPECT_FALSE(cfg.applyOverride("garbage"));
    EXPECT_EQ(cfg.numNodes, 4u);
    EXPECT_EQ(cfg.protocol, ProtocolKind::Base);
    EXPECT_EQ(cfg.lockAlgo, LockAlgo::Queuing);
    EXPECT_DOUBLE_EQ(cfg.bandwidthBytesPerSec, 2e8);
}

TEST(Config, WireTimeMatchesBandwidth)
{
    Config cfg;
    cfg.bandwidthBytesPerSec = 100e6; // 100 MB/s => 10 ns per byte
    EXPECT_EQ(cfg.wireTime(4096), 40960u);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * End-of-run invariant checks for the extended protocol: after a
 * quiescent run (with or without failures), every page's committed
 * copy must equal its tentative copy byte-for-byte and version-for-
 * version (§4.5.2's precondition, checked globally), and the memory
 * replication factor must hold.
 */

#include <gtest/gtest.h>

#include "apps/app_common.hh"
#include "net/failure.hh"
#include "runtime/cluster.hh"

namespace rsvm {
namespace {

TEST(Invariants, ReplicasConsistentAfterCleanRun)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 8);
    cluster.spawn([data](AppThread &t) {
        for (int round = 0; round < 4; ++round) {
            for (int p = 0; p < 8; ++p) {
                if (static_cast<std::uint32_t>(p) %
                        t.clusterThreads() == t.id()) {
                    t.put<std::uint64_t>(data + 4096ull * p,
                                         round * 10 + p);
                }
            }
            t.lock(3);
            t.put<std::uint64_t>(data + 8,
                                 t.get<std::uint64_t>(data + 8) + 1);
            t.unlock(3);
            t.barrier();
        }
    });
    cluster.run();
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Invariants, ReplicasConsistentAfterRecovery)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 20; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Invariants, ReplicasConsistentAfterAppRuns)
{
    for (const char *app : {"lu", "radix"}) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 4;
        cfg.sharedBytes = 64u << 20;
        apps::AppParams p = apps::defaultParams(app);
        p.size /= 2;
        if (std::string(app) == "lu")
            p.size = (p.size + 31) / 32 * 32;
        else
            p.size = (p.size + 3) / 4 * 4;
        Cluster cluster(cfg);
        apps::AppInstance inst = apps::makeApp(app, p);
        inst.setup(cluster);
        cluster.spawn(inst.threadFn);
        cluster.run();
        EXPECT_TRUE(inst.verify(cluster).ok) << app;
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u) << app;
    }
}

TEST(Invariants, ParanoidModeChecksEveryBarrier)
{
    // paranoidChecks makes every barrier representative validate the
    // replica-consistency invariant; a run completing is the assert.
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    cfg.paranoidChecks = true;
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 4);
    cluster.spawn([data](AppThread &t) {
        for (int r = 0; r < 5; ++r) {
            t.lock(4);
            std::uint64_t v = t.get<std::uint64_t>(data);
            t.put<std::uint64_t>(data, v + 1);
            t.unlock(4);
            t.barrier();
        }
    });
    cluster.run();
    std::uint64_t v = 0;
    cluster.debugRead(data, &v, 8);
    EXPECT_EQ(v, 5u * cfg.totalThreads());
}

TEST(Invariants, FailpointRecoveryKeepsReplicasConsistent)
{
    for (const char *fp :
         {failpoints::kMidPhase1, failpoints::kAfterTsSave,
          failpoints::kMidPhase2}) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 4;
        Cluster cluster(cfg);
        Addr counter = cluster.mem().alloc(8);
        cluster.injector().armFailpoint(2, fp, 4);
        cluster.spawn([counter](AppThread &t) {
            for (int i = 0; i < 12; ++i) {
                t.lock(1);
                std::uint64_t v = t.get<std::uint64_t>(counter);
                t.put<std::uint64_t>(counter, v + 1);
                t.unlock(1);
                t.compute(15 * kMicrosecond);
            }
            t.barrier();
        });
        cluster.run();
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u) << fp;
        std::uint64_t v = 0;
        cluster.debugRead(counter, &v, 8);
        EXPECT_EQ(v, 12u * cfg.totalThreads()) << fp;
    }
}

} // namespace
} // namespace rsvm

/**
 * @file
 * End-of-run invariant checks for the extended protocol: after a
 * quiescent run (with or without failures), every page's committed
 * copy must equal its tentative copy byte-for-byte and version-for-
 * version (§4.5.2's precondition, checked globally), and the memory
 * replication factor must hold.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app_common.hh"
#include "net/failure.hh"
#include "runtime/cluster.hh"

namespace rsvm {
namespace {

TEST(Invariants, ReplicasConsistentAfterCleanRun)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 8);
    cluster.spawn([data](AppThread &t) {
        for (int round = 0; round < 4; ++round) {
            for (int p = 0; p < 8; ++p) {
                if (static_cast<std::uint32_t>(p) %
                        t.clusterThreads() == t.id()) {
                    t.put<std::uint64_t>(data + 4096ull * p,
                                         round * 10 + p);
                }
            }
            t.lock(3);
            t.put<std::uint64_t>(data + 8,
                                 t.get<std::uint64_t>(data + 8) + 1);
            t.unlock(3);
            t.barrier();
        }
    });
    cluster.run();
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Invariants, ReplicasConsistentAfterRecovery)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 20; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Invariants, ReplicasConsistentAfterAppRuns)
{
    for (const char *app : {"lu", "radix"}) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 4;
        cfg.sharedBytes = 64u << 20;
        apps::AppParams p = apps::defaultParams(app);
        p.size /= 2;
        if (std::string(app) == "lu")
            p.size = (p.size + 31) / 32 * 32;
        else
            p.size = (p.size + 3) / 4 * 4;
        Cluster cluster(cfg);
        apps::AppInstance inst = apps::makeApp(app, p);
        inst.setup(cluster);
        cluster.spawn(inst.threadFn);
        cluster.run();
        EXPECT_TRUE(inst.verify(cluster).ok) << app;
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u) << app;
    }
}

TEST(Invariants, ParanoidModeChecksEveryBarrier)
{
    // paranoidChecks makes every barrier representative validate the
    // replica-consistency invariant; a run completing is the assert.
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    cfg.paranoidChecks = true;
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 4);
    cluster.spawn([data](AppThread &t) {
        for (int r = 0; r < 5; ++r) {
            t.lock(4);
            std::uint64_t v = t.get<std::uint64_t>(data);
            t.put<std::uint64_t>(data, v + 1);
            t.unlock(4);
            t.barrier();
        }
    });
    cluster.run();
    std::uint64_t v = 0;
    cluster.debugRead(data, &v, 8);
    EXPECT_EQ(v, 5u * cfg.totalThreads());
}

TEST(Invariants, FailpointRecoveryKeepsReplicasConsistent)
{
    for (const char *fp :
         {failpoints::kMidPhase1, failpoints::kAfterTsSave,
          failpoints::kMidPhase2}) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 4;
        Cluster cluster(cfg);
        Addr counter = cluster.mem().alloc(8);
        cluster.injector().armFailpoint(2, fp, 4);
        cluster.spawn([counter](AppThread &t) {
            for (int i = 0; i < 12; ++i) {
                t.lock(1);
                std::uint64_t v = t.get<std::uint64_t>(counter);
                t.put<std::uint64_t>(counter, v + 1);
                t.unlock(1);
                t.compute(15 * kMicrosecond);
            }
            t.barrier();
        });
        cluster.run();
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u) << fp;
        std::uint64_t v = 0;
        cluster.debugRead(counter, &v, 8);
        EXPECT_EQ(v, 12u * cfg.totalThreads()) << fp;
    }
}

TEST(Invariants, NoPhase2ApplyBeforeTimestampSave)
{
    // §4.2/§4.5: the saved timestamp declares a release complete, so
    // the committed (phase-2) copies may only change AFTER the
    // releaser's timestamp save has landed at its backup. Observe both
    // events through the propagation pipeline's trace probe and check
    // the ordering per (origin, interval) under each release-path
    // failpoint. Recovery's roll-forward re-applies diffs engine-side
    // and intentionally bypasses the probe.
    for (const char *fp :
         {failpoints::kMidPhase1, failpoints::kAfterPhase1,
          failpoints::kAfterPointB, failpoints::kAfterTsSave,
          failpoints::kMidPhase2}) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 4;
        Cluster cluster(cfg);
        Addr counter = cluster.mem().alloc(8);
        cluster.injector().armFailpoint(2, fp, 4);

        std::vector<std::string> violations;
        std::map<NodeId, IntervalNum> maxSaved;
        std::uint64_t tsSaves = 0, phase2Applies = 0;
        cluster.node(0).context().traceProbe =
            [&](const char *event, NodeId origin, IntervalNum iv) {
                if (std::string_view(event) == "ts-save") {
                    tsSaves++;
                    if (iv > maxSaved[origin])
                        maxSaved[origin] = iv;
                } else if (std::string_view(event) == "phase2-apply") {
                    phase2Applies++;
                    if (maxSaved[origin] < iv) {
                        violations.push_back(
                            "phase2 apply of origin " +
                            std::to_string(origin) + " interval " +
                            std::to_string(iv) +
                            " before its ts-save (saved up to " +
                            std::to_string(maxSaved[origin]) + ")");
                    }
                }
            };

        cluster.spawn([counter](AppThread &t) {
            for (int i = 0; i < 12; ++i) {
                t.lock(1);
                std::uint64_t v = t.get<std::uint64_t>(counter);
                t.put<std::uint64_t>(counter, v + 1);
                t.unlock(1);
                t.compute(15 * kMicrosecond);
            }
            t.barrier();
        });
        cluster.run();

        EXPECT_TRUE(violations.empty())
            << fp << ": " << violations.size() << " violation(s), first: "
            << violations.front();
        // The probe must actually have observed the protocol.
        EXPECT_GT(tsSaves, 0u) << fp;
        EXPECT_GT(phase2Applies, 0u) << fp;
        EXPECT_EQ(cluster.checkReplicaConsistency(), 0u) << fp;
        std::uint64_t v = 0;
        cluster.debugRead(counter, &v, 8);
        EXPECT_EQ(v, 12u * cfg.totalThreads()) << fp;
    }
}

TEST(Invariants, NoPhase2ApplyBeforeTimestampSaveBatched)
{
    // Same ordering invariant with the batched pipeline path
    // (coalescing, packing and Vmmc::postBatch) engaged.
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    cfg.batchDiffs = true;
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 8);
    cluster.injector().armFailpoint(2, failpoints::kMidPhase2, 4);

    std::vector<std::string> violations;
    std::map<NodeId, IntervalNum> maxSaved;
    std::uint64_t phase2Applies = 0;
    cluster.node(0).context().traceProbe =
        [&](const char *event, NodeId origin, IntervalNum iv) {
            if (std::string_view(event) == "ts-save") {
                if (iv > maxSaved[origin])
                    maxSaved[origin] = iv;
            } else if (std::string_view(event) == "phase2-apply") {
                phase2Applies++;
                if (maxSaved[origin] < iv) {
                    violations.push_back("origin " +
                                         std::to_string(origin) +
                                         " interval " +
                                         std::to_string(iv));
                }
            }
        };

    cluster.spawn([data](AppThread &t) {
        for (int round = 0; round < 4; ++round) {
            for (int p = 0; p < 8; ++p) {
                if (static_cast<std::uint32_t>(p) %
                        t.clusterThreads() == t.id()) {
                    t.put<std::uint64_t>(data + 4096ull * p,
                                         round * 10 + p);
                }
            }
            t.lock(3);
            t.put<std::uint64_t>(data + 8,
                                 t.get<std::uint64_t>(data + 8) + 1);
            t.unlock(3);
            t.barrier();
        }
    });
    cluster.run();

    EXPECT_TRUE(violations.empty())
        << violations.size() << " violation(s), first: "
        << violations.front();
    EXPECT_GT(phase2Applies, 0u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Failure-injection tests for the extended protocol (§4.5).
 *
 * The central property: a fail-stop node failure at ANY protocol point
 * must leave the computation's final result identical to the
 * failure-free run. A lock-protected counter gives exactly-once
 * semantics (a rolled-back increment is replayed, a rolled-forward one
 * is not repeated); barrier-phase workloads check release consistency
 * across recovery; counters check that recovery actually ran.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/failure.hh"
#include "runtime/cluster.hh"

namespace rsvm {
namespace {

Config
ftConfig(std::uint32_t nodes = 4, std::uint32_t tpn = 1)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = tpn;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

/** Lock-counter workload; returns the final counter value. */
std::uint64_t
runCounterWorkload(Cluster &cluster, int iters)
{
    Addr counter = cluster.mem().alloc(8);
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    std::uint64_t final_value = 0;
    cluster.debugRead(counter, &final_value, 8);
    return final_value;
}

TEST(Failure, TimedKillDuringCounterWorkload)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 20);
    EXPECT_EQ(v, 20u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 1u);
    EXPECT_GE(c.threadsRestored, 1u);
}

TEST(Failure, KillBarrierManagerNode)
{
    // Node 0 is the initial barrier manager and lock home for many
    // locks: killing it exercises manager re-election and lock-home
    // remapping.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(0, 2 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 20);
    EXPECT_EQ(v, 20u * cfg.totalThreads());
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

TEST(Failure, SmpNodesRecoverBothThreads)
{
    Config cfg = ftConfig(4, 2);
    Cluster cluster(cfg);
    cluster.injector().killAt(1, 3 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 12);
    EXPECT_EQ(v, 12u * cfg.totalThreads());
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

TEST(Failure, EarlyKillBeforeAnyRelease)
{
    // Failure before the victim ever checkpointed: its threads restart
    // from the beginning (tag 0).
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(3, 30 * kMicrosecond);
    std::uint64_t v = runCounterWorkload(cluster, 10);
    EXPECT_EQ(v, 10u * cfg.totalThreads());
}

TEST(Failure, SuccessiveFailuresOfDifferentNodes)
{
    Config cfg = ftConfig(5, 1);
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.injector().killAt(4, 30 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 25);
    EXPECT_EQ(v, 25u * cfg.totalThreads());
    EXPECT_GE(cluster.totalCounters().recoveries, 2u);
}

TEST(Failure, KillingTheRehostTargetRecoversBothLogicalNodes)
{
    // Node 1 dies and is re-hosted on node 2's physical machine; then
    // THAT machine dies, taking both logical nodes 1 and 2 with it.
    // Both must recover (the paper's "multiple, successive" failures).
    Config cfg = ftConfig(5, 1);
    Cluster cluster(cfg);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.injector().killAt(2, 40 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 25);
    EXPECT_EQ(v, 25u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 2u);
    // Logical nodes 1 and 2 both live somewhere healthy now.
    EXPECT_TRUE(cluster.physAlive(cluster.hostOf(1)));
    EXPECT_TRUE(cluster.physAlive(cluster.hostOf(2)));
}

TEST(Failure, BarrierPhasesSurviveFailure)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    const int kPhases = 6;
    Addr cells = cluster.mem().allocPageAligned(4096 * nthreads);
    auto cell = [&](std::uint32_t i) { return cells + 4096ull * i; };

    cluster.injector().killAt(1, 1 * kMillisecond);

    cluster.spawn([&, cells](AppThread &t) {
        std::uint32_t n = t.clusterThreads();
        t.put<std::uint64_t>(cell(t.id()), t.id() + 1);
        t.barrier();
        for (int phase = 0; phase < kPhases; ++phase) {
            std::uint64_t left =
                t.get<std::uint64_t>(cell((t.id() + n - 1) % n));
            std::uint64_t right =
                t.get<std::uint64_t>(cell((t.id() + 1) % n));
            t.compute(100 * kMicrosecond);
            t.barrier();
            t.put<std::uint64_t>(cell(t.id()), left + right);
            t.barrier();
        }
    });
    cluster.run();

    std::vector<std::uint64_t> ref(nthreads), next(nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i)
        ref[i] = i + 1;
    for (int phase = 0; phase < kPhases; ++phase) {
        for (std::uint32_t i = 0; i < nthreads; ++i)
            next[i] = ref[(i + nthreads - 1) % nthreads] +
                      ref[(i + 1) % nthreads];
        ref = next;
    }
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        std::uint64_t got = 0;
        cluster.debugRead(cell(i), &got, 8);
        EXPECT_EQ(got, ref[i]) << "cell " << i;
    }
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

// ---- Failpoint sweep: kill a node at each named protocol point ------

class FailpointSweep
    : public testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(FailpointSweep, CounterStaysExactlyOnce)
{
    const char *fp = std::get<0>(GetParam());
    int occurrence = std::get<1>(GetParam());
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, fp, occurrence);
    std::uint64_t v = runCounterWorkload(cluster, 15);
    EXPECT_EQ(v, 15u * cfg.totalThreads())
        << "failpoint " << fp << " occurrence " << occurrence;
    // The failpoint may or may not have been reached (some points only
    // exist on some paths); if it fired, recovery must have run.
    if (!cluster.injector().killed().empty())
        EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, FailpointSweep,
    testing::Values(
        std::make_tuple(failpoints::kBeforeRelease, 1),
        std::make_tuple(failpoints::kBeforeRelease, 5),
        std::make_tuple(failpoints::kAfterCommit, 1),
        std::make_tuple(failpoints::kAfterCommit, 4),
        std::make_tuple(failpoints::kAfterPointA, 2),
        std::make_tuple(failpoints::kMidPhase1, 1),
        std::make_tuple(failpoints::kMidPhase1, 3),
        std::make_tuple(failpoints::kAfterPhase1, 1),
        std::make_tuple(failpoints::kAfterPhase1, 4),
        std::make_tuple(failpoints::kAfterTsSave, 1),
        std::make_tuple(failpoints::kAfterTsSave, 3),
        std::make_tuple(failpoints::kAfterPointB, 1),
        std::make_tuple(failpoints::kAfterPointB, 2),
        std::make_tuple(failpoints::kMidPhase2, 1),
        std::make_tuple(failpoints::kMidPhase2, 5),
        std::make_tuple(failpoints::kAfterRelease, 1),
        std::make_tuple(failpoints::kAfterRelease, 6),
        std::make_tuple(failpoints::kInAcquire, 2)),
    [](const testing::TestParamInfo<std::tuple<const char *, int>>
           &info) {
        std::string s = std::get<0>(info.param);
        for (char &c : s)
            if (c == ':' || c == '-')
                c = '_';
        return s + "_occ" + std::to_string(std::get<1>(info.param));
    });

TEST(FailureSemantics, RollForwardAndBackBothObserved)
{
    // Across the failpoint sweep configurations, dying after the
    // timestamp save must roll forward, dying in phase 1 must roll
    // back. Check the recovery counters directly.
    {
        Config cfg = ftConfig();
        Cluster cluster(cfg);
        cluster.injector().armFailpoint(2, failpoints::kAfterTsSave, 2);
        runCounterWorkload(cluster, 15);
        Counters c = cluster.totalCounters();
        EXPECT_GT(c.pagesRolledForward + c.pagesReReplicated, 0u);
    }
    {
        Config cfg = ftConfig();
        Cluster cluster(cfg);
        cluster.injector().armFailpoint(2, failpoints::kMidPhase1, 2);
        runCounterWorkload(cluster, 15);
        Counters c = cluster.totalCounters();
        EXPECT_GE(c.recoveries, 1u);
    }
}

TEST(FailureSemantics, VictimWritesBeforeLastSyncSurvive)
{
    // Guarantee 2 (§4): writes a failed node performed before its last
    // synchronization point must survive at the homes.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    Addr data = cluster.mem().allocPageAligned(4096 * 4);
    // Kill node 2 well after it wrote + released, while it computes.
    cluster.injector().armFailpoint(2, failpoints::kAfterRelease, 1);

    cluster.spawn([&, data](AppThread &t) {
        Addr mine = data + 4096ull * t.id();
        t.lock(7);
        t.put<std::uint64_t>(mine, 0xBEEF0000 + t.id());
        t.unlock(7); // sync point: the write must survive failure
        t.compute(500 * kMicrosecond);
        t.barrier();
        std::uint64_t got = t.get<std::uint64_t>(mine);
        EXPECT_EQ(got, 0xBEEF0000u + t.id());
        t.barrier();
    });
    cluster.run();
    for (std::uint32_t i = 0; i < cfg.totalThreads(); ++i) {
        std::uint64_t got = 0;
        cluster.debugRead(data + 4096ull * i, &got, 8);
        EXPECT_EQ(got, 0xBEEF0000u + i) << "thread " << i;
    }
}

TEST(FailureSemantics, SelfSecondaryHomeRollForwardSurvives)
{
    // The victim is the SECONDARY home of the page it writes: its
    // tentative copy (the only off-committed replica of its last
    // release) dies with it. A crash after the timestamp save must
    // still roll the release forward — the diffs are replicated to
    // the backup together with the timestamp (§4.5.2 applied to the
    // self-secondary corner the paper's prose glosses over).
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8); // page 0: primary 0, sec 1
    ASSERT_EQ(cluster.mem().secondaryHome(0), 1u);
    cluster.injector().armFailpoint(1, failpoints::kAfterTsSave, 2);

    const int kIters = 15;
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < kIters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    std::uint64_t v = 0;
    cluster.debugRead(counter, &v, 8);
    EXPECT_EQ(v, static_cast<std::uint64_t>(kIters) *
                     cfg.totalThreads());
    EXPECT_TRUE(!cluster.injector().killed().empty());
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

TEST(FailureSemantics, RecoveryTimeIsBounded)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    runCounterWorkload(cluster, 15);
    ASSERT_NE(cluster.recovery(), nullptr);
    SimTime rt = cluster.recovery()->lastRecoveryTime();
    EXPECT_GT(rt, 0u);
    EXPECT_LT(rt, 100 * kMillisecond);
}

TEST(FailureSemantics, RehostedNodeKeepsWorking)
{
    // After recovery the failed logical node lives on its backup's
    // physical host and keeps participating (continuous operation).
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 30);
    EXPECT_EQ(v, 30u * cfg.totalThreads());
    EXPECT_EQ(cluster.hostOf(2), cluster.hostOf(3))
        << "node 2 should be re-hosted on its backup (node 3)";
}

} // namespace
} // namespace rsvm

/**
 * @file
 * False-suspicion tests for the heartbeat/lease failure detector.
 *
 * The detector can be wrong: a node that is merely slow (its links
 * stalled) goes silent past the lease and is declared dead while
 * still computing. The required behaviour is fail-stop *enforcement*:
 * the suspect is fenced (nothing it sent may apply anywhere), then
 * converted to a clean kill, and recovery proceeds exactly as for a
 * real crash — the run finishes with bit-exact results and no
 * split-brain, because the fenced node never learns the post-recovery
 * cluster epoch.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "net/netfault.hh"
#include "runtime/cluster.hh"

namespace rsvm {
namespace {

Config
ftConfig()
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

std::uint64_t
runCounterWorkload(Cluster &cluster, int iters)
{
    Addr counter = cluster.mem().alloc(8);
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    std::uint64_t v = 0;
    cluster.debugRead(counter, &v, 8);
    return v;
}

TEST(FalseSuspicion, StalledNodeIsFencedAndRunStaysBitExact)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    // Stall every link touching node 2 from 1ms to 4ms: it is alive
    // and mid-workload but silent for 3ms — three times the lease
    // (heartbeatPeriod 250us * missedLeases 4 = 1ms), so the detector
    // must declare it around the 2ms mark, well inside the stall.
    cluster.network().faults().stallNode(2, 1 * kMillisecond,
                                         4 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 30);

    // Bit-exact despite the false declaration: node 2's threads were
    // checkpoint-restored elsewhere and their increments replayed
    // exactly once.
    EXPECT_EQ(v, 30u * cfg.totalThreads());
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);

    Counters c = cluster.totalCounters();
    // The declaration was a false suspicion (node 2 was alive) and
    // was converted to a clean fail-stop kill.
    EXPECT_EQ(c.falseSuspicionsFenced, 1u);
    EXPECT_GE(c.heartbeatsMissed, cfg.missedLeases);
    EXPECT_GE(c.recoveries, 1u);
    const auto &killed = cluster.injector().killed();
    EXPECT_TRUE(std::find(killed.begin(), killed.end(), PhysNodeId{2}) !=
                killed.end());
    EXPECT_FALSE(cluster.network().nodeAlive(2));
    ASSERT_NE(cluster.failureDetector(), nullptr);
    EXPECT_TRUE(cluster.failureDetector()->declared(2));

    // Fencing did real work: the stalled node's delayed in-flight
    // messages arrived after the declaration and were rejected
    // (fenced sender or stale epoch) instead of applying.
    EXPECT_GE(c.fencedDrops + c.staleEpochRejected, 1u);
}

TEST(FalseSuspicion, HealthyLossyClusterNeverFencesAnyone)
{
    // Regression guard for detector over-eagerness: ordinary loss and
    // jitter must not amount to a missed lease.
    Config cfg = ftConfig();
    cfg.netDropProb = 0.02;
    cfg.netDupProb = 0.02;
    cfg.netReorderProb = 0.02;
    cfg.netJitterMax = 10 * kMicrosecond;
    Cluster cluster(cfg);
    std::uint64_t v = runCounterWorkload(cluster, 15);
    EXPECT_EQ(v, 15u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_EQ(c.falseSuspicionsFenced, 0u);
    EXPECT_EQ(c.recoveries, 0u);
    EXPECT_GT(c.heartbeatsSent, 0u);
}

TEST(FalseSuspicion, RealDeathIsDeclaredByLeases)
{
    // With the detector in charge, a genuinely dead node is found by
    // missed leases (no oracle): recovery still runs and the result
    // is exact.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(1, 2 * kMillisecond);
    std::uint64_t v = runCounterWorkload(cluster, 30);
    EXPECT_EQ(v, 30u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 1u);
    // A real death is not a false suspicion.
    EXPECT_EQ(c.falseSuspicionsFenced, 0u);
    ASSERT_NE(cluster.failureDetector(), nullptr);
    EXPECT_TRUE(cluster.failureDetector()->declared(1));
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Migration-under-fire tests: a fail-stop failure lands at every step
 * of a live home handoff (migration:* failpoints), on every victim.
 * The handoff's crash-safety contract: a kill at plan/transfer rolls
 * the migration back to the old homes, a kill at commit/cleanup rolls
 * forward to the new ones — and in both cases recovery then restores
 * the cluster and the application's final state is exact. A single
 * kill must NEVER lose the cluster; only double kills may, and then
 * only cleanly.
 *
 * The workload is the adversarial one for this subsystem: every
 * thread's hot page is deliberately mis-homed so migrations are
 * guaranteed to be in flight while the failures land, plus a shared
 * lock-counter whose exactly-once semantics detect lost or replayed
 * updates across the restore.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
homingFtConfig(std::uint32_t nodes = 4)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 16u << 20;
    cfg.dynamicHoming = true;
    // Aggressive knobs: short epochs, low floor, minimal hysteresis,
    // so migrations are dense while the failpoints are armed.
    cfg.homingEpoch = 150 * kMicrosecond;
    cfg.homingMinBytes = 64;
    cfg.homingHysteresis = 1.05;
    cfg.homingCooldownEpochs = 1;
    return cfg;
}

struct RunOutcome
{
    std::uint64_t counter = 0;
    std::vector<std::uint64_t> cells;
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

/**
 * Mis-homed per-page writers plus a shared lock-counter. Each thread
 * owns one page initially homed on the NEXT node over, writes it every
 * iteration (keeping migrations flowing), and bumps the counter under
 * a global lock (exactly-once detector).
 */
RunOutcome
runMisHomed(Cluster &cluster, int iters)
{
    const Config &cfg = cluster.config();
    AddressSpace &as = cluster.mem();
    const std::uint32_t nthreads = cfg.totalThreads();
    Addr counter = as.alloc(8);
    Addr base = as.allocPageAligned(
        std::uint64_t(nthreads) * cfg.pageSize);
    for (std::uint32_t i = 0; i < nthreads; ++i)
        as.setPrimaryHome(as.pageOf(base + std::uint64_t(i) *
                                               cfg.pageSize),
                          (i + 1) % cfg.numNodes);

    const std::uint32_t psz = cfg.pageSize;
    cluster.spawn([counter, base, psz, iters](AppThread &t) {
        Addr mine = base + std::uint64_t(t.id()) * psz;
        for (int i = 1; i <= iters; ++i) {
            t.lock(10 + t.id());
            for (std::uint32_t off = 0; off < 512; off += 8)
                t.put<std::uint64_t>(mine + off,
                                     std::uint64_t(i) * 100 + off);
            t.unlock(10 + t.id());
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(2 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(15 * kMicrosecond);
        }
        t.barrier();
    });

    RunOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
        return out;
    }
    cluster.debugRead(counter, &out.counter, 8);
    out.cells.resize(nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i)
        cluster.debugRead(base + std::uint64_t(i) * psz,
                          &out.cells[i], 8);
    return out;
}

void
expectExact(const RunOutcome &out, const Config &cfg, int iters)
{
    EXPECT_EQ(out.counter, std::uint64_t(iters) * cfg.totalThreads());
    for (std::uint32_t i = 0; i < out.cells.size(); ++i)
        EXPECT_EQ(out.cells[i], std::uint64_t(iters) * 100)
            << "thread " << i << "'s page lost its last write";
}

// ---- Single-kill sweep: migration point x victim ----------------------

class MigrationUnderFire
    : public testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(MigrationUnderFire, SingleKillAlwaysRecovers)
{
    const char *point = std::get<0>(GetParam());
    PhysNodeId victim =
        static_cast<PhysNodeId>(std::get<1>(GetParam()));
    Config cfg = homingFtConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(victim, point, 1);

    const int iters = 25;
    RunOutcome out = runMisHomed(cluster, iters);
    // One fail-stop failure, three survivors: losing the cluster here
    // is a migration-crash-safety bug, full stop.
    ASSERT_FALSE(out.lost)
        << "point=" << point << " victim=" << victim << ": "
        << out.reason;
    expectExact(out, cfg, iters);

    ASSERT_EQ(cluster.injector().killed().size(), 1u)
        << "failpoint " << point << " never fired on node " << victim;
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 1u);
    EXPECT_GE(c.homeMigrations + c.migrationsRolledBack, 1u)
        << "the sweep should exercise actual migrations";
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationUnderFire,
    testing::Combine(testing::ValuesIn(failpoints::kMigrationPoints),
                     testing::Values(0, 1, 2, 3)),
    [](const testing::TestParamInfo<std::tuple<const char *, int>>
           &ti) {
        std::string s = std::get<0>(ti.param);
        s += "_victim";
        s += std::to_string(std::get<1>(ti.param));
        for (char &c : s)
            if (c == ':' || c == '-')
                c = '_';
        return s;
    });

// ---- Roll-back vs roll-forward evidence ------------------------------

TEST(MigrationRollback, TransferKillRollsBackAndRetries)
{
    // A death observed at the transfer step aborts the handoff before
    // the directory flip: the rolled-back counter must tick, and the
    // page must still migrate eventually (a later epoch retries).
    Config cfg = homingFtConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kMigTransfer, 1);

    const int iters = 25;
    RunOutcome out = runMisHomed(cluster, iters);
    ASSERT_FALSE(out.lost) << out.reason;
    expectExact(out, cfg, iters);
    Counters c = cluster.totalCounters();
    EXPECT_GE(c.migrationsRolledBack, 1u);
    EXPECT_GE(c.homeMigrations, 1u)
        << "migration should be retried after the rollback";
}

TEST(MigrationRollforward, CommitKillKeepsNewHomes)
{
    // A death observed at the commit step — after the directory flip —
    // rolls FORWARD: the migration counts as done and the new homes
    // stand. The workload must still verify across the recovery.
    Config cfg = homingFtConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kMigCommit, 1);

    const int iters = 25;
    RunOutcome out = runMisHomed(cluster, iters);
    ASSERT_FALSE(out.lost) << out.reason;
    expectExact(out, cfg, iters);
    EXPECT_GE(cluster.totalCounters().homeMigrations, 1u);
}

// ---- Double schedules ------------------------------------------------

TEST(MigrationDoubleKill, CommitThenRecoveryResume)
{
    // Migration-then-kill: the commit-step death starts a recovery
    // cycle, and the victim's backup dies at that cycle's resume step.
    // Either a verified result or a clean, reasoned loss is
    // acceptable; an assert, hang, or wrong result is a bug.
    Config cfg = homingFtConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kMigCommit, 1);
    cluster.injector().armFailpoint(3, failpoints::kRecResume, 1);

    const int iters = 25;
    RunOutcome out = runMisHomed(cluster, iters);
    if (out.lost) {
        EXPECT_EQ(cluster.injector().killed().size(), 2u)
            << "declared lost without the double kill: " << out.reason;
        EXPECT_FALSE(out.reason.empty());
        EXPECT_NE(out.code, LossReason::None) << out.reason;
        return;
    }
    expectExact(out, cfg, iters);
    if (!cluster.injector().killed().empty()) {
        EXPECT_GE(cluster.totalCounters().recoveries, 1u);
    }
}

TEST(MigrationDoubleKill, ReleaseDeathThenTransferDeath)
{
    // Kill-during-migration: a release-path death first (recovery
    // restores node 2), then a second node dies at the transfer step
    // of a post-recovery migration. The rolled-back handoff and the
    // second recovery cycle must compose.
    Config cfg = homingFtConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kAfterPhase1, 2);
    cluster.injector().armFailpoint(3, failpoints::kMigTransfer, 1);

    const int iters = 25;
    RunOutcome out = runMisHomed(cluster, iters);
    if (out.lost) {
        EXPECT_EQ(cluster.injector().killed().size(), 2u)
            << "declared lost without the double kill: " << out.reason;
        EXPECT_FALSE(out.reason.empty());
        EXPECT_NE(out.code, LossReason::None) << out.reason;
        return;
    }
    expectExact(out, cfg, iters);
    if (cluster.injector().killed().size() == 2) {
        EXPECT_GE(cluster.totalCounters().recoveries, 2u);
    }
}

} // namespace
} // namespace rsvm

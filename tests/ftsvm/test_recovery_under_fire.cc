/**
 * @file
 * Recovery-under-fire tests: a second fail-stop failure lands WHILE
 * the recovery manager is mid-cycle, at every recovery step. The
 * required behavior is binary and crash-free: either the cluster
 * recovers and the computation's final state is exact, or recovery
 * cleanly declares the cluster unrecoverable (ClusterLostError from
 * Cluster::run()). An assert, hang, or wrong result is a bug.
 *
 * The headline scenario is the backup-chain case: the victim's BACKUP
 * dies after the victim but before re-protection finished, so the
 * checkpoint store's only live replica disappears mid-recovery. The
 * manager must fall back to the salvaged copy it took at pass start.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
ftConfig(std::uint32_t nodes = 4, std::uint32_t tpn = 1)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = tpn;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

/** Lock-counter workload returning {counter value, lost?}. */
struct RunOutcome
{
    std::uint64_t value = 0;
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

RunOutcome
runCounter(Cluster &cluster, int iters)
{
    Addr counter = cluster.mem().alloc(8);
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    RunOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
        return out;
    }
    cluster.debugRead(counter, &out.value, 8);
    return out;
}

// ---- Double-kill sweep: release point x recovery point ---------------

class RecoveryUnderFire
    : public testing::TestWithParam<
          std::tuple<const char *, const char *>>
{
};

TEST_P(RecoveryUnderFire, VerifiedResumeOrCleanLoss)
{
    const char *release_fp = std::get<0>(GetParam());
    const char *recovery_fp = std::get<1>(GetParam());
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    // Kill node 2 at a release-path point; then its backup (node 3,
    // which holds node 2's checkpoint store) at a recovery-path point
    // of the resulting cycle.
    cluster.injector().armFailpoint(2, release_fp, 2);
    cluster.injector().armFailpoint(3, recovery_fp, 1);

    RunOutcome out = runCounter(cluster, 15);
    if (out.lost) {
        // A clean, reasoned loss is acceptable under a double kill —
        // but only when both kills actually happened.
        EXPECT_EQ(cluster.injector().killed().size(), 2u)
            << "declared lost without the double kill: " << out.reason;
        EXPECT_FALSE(out.reason.empty());
        EXPECT_NE(out.code, LossReason::None) << out.reason;
        return;
    }
    EXPECT_EQ(out.value, 15u * cfg.totalThreads())
        << "release=" << release_fp << " recovery=" << recovery_fp;
    if (!cluster.injector().killed().empty())
        EXPECT_GE(cluster.totalCounters().recoveries, 1u);
    // A second kill mid-recovery must have aborted and restarted the
    // pass, never crashed it.
    if (cluster.injector().killed().size() == 2)
        EXPECT_GE(cluster.totalCounters().recoveryRestarts, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryUnderFire,
    testing::Combine(testing::ValuesIn(failpoints::kReleasePoints),
                     testing::ValuesIn(failpoints::kRecoveryPoints)),
    [](const testing::TestParamInfo<
        std::tuple<const char *, const char *>> &info) {
        std::string s = std::get<0>(info.param);
        s += "_then_";
        s += std::get<1>(info.param);
        for (char &c : s)
            if (c == ':' || c == '-')
                c = '_';
        return s;
    });

// ---- The backup-chain case ------------------------------------------

TEST(BackupChain, SalvagedStoreRestoresProtectedNode)
{
    // Node 2 dies with a saved timestamp; its backup node 3 dies at
    // the resume step of node 2's recovery — after the store's only
    // live replica was already consumed, before re-protection copied
    // it anywhere. The salvaged copy taken at pass start must restore
    // node 2; losing the cluster here is a bug.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kAfterTsSave, 2);
    cluster.injector().armFailpoint(3, failpoints::kRecResume, 1);

    RunOutcome out = runCounter(cluster, 15);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 15u * cfg.totalThreads());
    if (cluster.injector().killed().size() == 2) {
        Counters c = cluster.totalCounters();
        EXPECT_GE(c.recoveryRestarts, 1u);
        EXPECT_GE(c.recoveries, 1u);
        // All four logical nodes live somewhere healthy again.
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            EXPECT_TRUE(cluster.physAlive(cluster.hostOf(n)))
                << "node " << n;
    }
}

TEST(BackupChain, SimultaneousVictimAndBackupDeath)
{
    // Victim and backup die at the same instant: the quiesce sees both
    // at once, and the backup's store copy is salvageable only through
    // the OTHER nodes' evidence. Either a verified result or a clean
    // loss is acceptable; a crash is not.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.injector().killAt(3, 2 * kMillisecond);

    RunOutcome out = runCounter(cluster, 15);
    if (out.lost) {
        EXPECT_FALSE(out.reason.empty());
        EXPECT_NE(out.code, LossReason::None) << out.reason;
        return;
    }
    EXPECT_EQ(out.value, 15u * cfg.totalThreads());
    EXPECT_GE(cluster.totalCounters().recoveries, 1u);
}

TEST(BackupChain, CascadeAcrossEveryRecoveryPointStillEnds)
{
    // Chain three kills: victim, backup-at-resume, then another node
    // at re-protect of the SECOND cycle. Recovery must still converge
    // (possibly to a clean loss once < 2 physical hosts survive).
    Config cfg = ftConfig(5, 1);
    Cluster cluster(cfg);
    cluster.injector().armFailpoint(2, failpoints::kAfterTsSave, 2);
    cluster.injector().armFailpoint(3, failpoints::kRecResume, 1);
    cluster.injector().armFailpoint(4, failpoints::kRecReProtect, 1);

    RunOutcome out = runCounter(cluster, 20);
    if (out.lost) {
        EXPECT_FALSE(out.reason.empty());
        EXPECT_NE(out.code, LossReason::None) << out.reason;
        return;
    }
    EXPECT_EQ(out.value, 20u * cfg.totalThreads());
}

// ---- Injector bookkeeping -------------------------------------------

TEST(InjectorBookkeeping, TimedKillOnDeadNodeDoesNotReKill)
{
    Config cfg;
    Engine eng(cfg);
    FailureInjector inj(eng);
    int kills = 0;
    PhysNodeId last = 0;
    inj.setKillAction([&](PhysNodeId p) {
        kills++;
        last = p;
    });

    // Two timed kills aimed at the same node, plus an earlier direct
    // kill: the action must run exactly once, and the armed state must
    // drain to empty so quiesce-side spin loops terminate.
    inj.killAt(1, 100);
    inj.killAt(1, 200);
    EXPECT_TRUE(inj.anyArmed());
    eng.at(50, [&] { inj.killNow(1); });
    eng.run(/*tolerate_parked=*/true);

    EXPECT_EQ(kills, 1);
    EXPECT_EQ(last, 1u);
    EXPECT_FALSE(inj.anyArmed());
    ASSERT_EQ(inj.killed().size(), 1u);
    EXPECT_EQ(inj.killed()[0], 1u);
}

TEST(InjectorBookkeeping, FailpointKillRetiresPendingTimedKill)
{
    Config cfg;
    Engine eng(cfg);
    FailureInjector inj(eng);
    int kills = 0;
    inj.setKillAction([&](PhysNodeId) { kills++; });

    inj.killAt(2, 500);
    inj.armFailpoint(2, "release:mid-phase1", 1);
    // The failpoint fires first; the later timed kill must become a
    // no-op instead of double-killing or underflowing bookkeeping.
    EXPECT_TRUE(inj.failpoint(2, "release:mid-phase1"));
    EXPECT_EQ(kills, 1);
    EXPECT_FALSE(inj.anyArmed());
    eng.run(true);
    EXPECT_EQ(kills, 1);
    EXPECT_FALSE(inj.anyArmed());
}

TEST(InjectorBookkeeping, ArmedPointsForOtherNodesSurvive)
{
    Config cfg;
    Engine eng(cfg);
    FailureInjector inj(eng);
    int kills = 0;
    inj.setKillAction([&](PhysNodeId) { kills++; });

    inj.killAt(1, 100);
    inj.killAt(3, 300);
    eng.runUntil(150);
    EXPECT_EQ(kills, 1);
    EXPECT_TRUE(inj.anyArmed()) << "node 3's kill is still pending";
    eng.run(true);
    EXPECT_EQ(kills, 2);
    EXPECT_FALSE(inj.anyArmed());
}

} // namespace
} // namespace rsvm

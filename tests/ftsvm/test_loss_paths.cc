/**
 * @file
 * Declared-loss paths: every way recovery can conclude the cluster is
 * unrecoverable must produce a clean ClusterLostError carrying the
 * exact machine-checkable LossReason for that path — and must leave
 * the engine fully drained (no leaked events), because CI runs these
 * under asan and a leaked event is a latent use-after-free.
 *
 * Paths covered:
 *  - TooFewHosts: survivors span fewer than two physical nodes;
 *  - ReplicasExhausted, k=1 variant: a sole-replica (scratch) page's
 *    only home dies while survivors reference it;
 *  - ReplicasExhausted, k=2 variant: both homes of a page die at once
 *    (idle homes, so no earlier path preempts the declaration);
 *  - StaleCheckpointStore (backup-chain exhaustion): a node and its
 *    backup die together, destroying the only store that could roll
 *    the node back below what survivors already observed;
 *  - LockStateLost: both homes of a contended lock die at once;
 *  - AllNodesFailed: simultaneous whole-cluster kill, declared by the
 *    runtime's nobody-left fallback.
 */

#include <gtest/gtest.h>

#include <string>

#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
ftConfig(std::uint32_t nodes = 4, std::uint32_t tpn = 1)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = tpn;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

struct RunOutcome
{
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

RunOutcome
run(Cluster &cluster)
{
    RunOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
    }
    return out;
}

void
expectCleanLoss(Cluster &cluster, const RunOutcome &out,
                LossReason expected)
{
    ASSERT_TRUE(out.lost) << "expected a declared loss";
    EXPECT_EQ(out.code, expected) << out.reason;
    // what() leads with the reason-code name.
    EXPECT_NE(out.reason.find(lossReasonName(expected)),
              std::string::npos)
        << out.reason;
    EXPECT_EQ(cluster.engine().pendingEvents(), 0u)
        << "declared loss leaked engine events";
}

TEST(LossPaths, TooFewHosts)
{
    // A two-node cluster losing one node cannot place two replicas of
    // anything on distinct hosts: recovery must declare, not limp on.
    Config cfg = ftConfig(2);
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 60; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::TooFewHosts);
}

TEST(LossPaths, SoleReplicaPageDeathIsReplicasExhausted)
{
    // A k = 1 page lives only at its home (node 2); when that host
    // dies, survivors that referenced the page have nothing to rebuild
    // from. The k = 1 contract: scratch data may die with its home —
    // but referencing it afterwards is a reasoned loss, not a crash.
    Config cfg = ftConfig(4);
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    Addr counter = as.allocPageAligned(cfg.pageSize);
    as.setPrimaryHome(as.pageOf(counter), 2);
    as.setReplicationDegree(as.pageOf(counter), 1);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 60; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::ReplicasExhausted);
}

TEST(LossPaths, BothHomesDeadIsReplicasExhausted)
{
    // The k = 2 exhaustion: the page's primary (0) and secondary (1)
    // die simultaneously. Only node 3 ever writes, so the dead nodes
    // have no committed intervals and no earlier declaration (store
    // or host checks) can preempt the page scan.
    Config cfg = ftConfig(4);
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    Addr counter = as.allocPageAligned(cfg.pageSize);
    as.setPrimaryHome(as.pageOf(counter), 0);
    cluster.injector().killAt(0, 2 * kMillisecond);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        if (t.node() != 3) {
            t.compute(10 * kMillisecond);
            return;
        }
        for (int i = 0; i < 120; ++i) {
            t.lock(3); // lock 3 homes at 3 (primary) and 0 (secondary)
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(3);
            t.compute(20 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::ReplicasExhausted);
}

TEST(LossPaths, BackupChainExhaustionIsStaleCheckpointStore)
{
    // Node 2 and its backup node 3 die together: node 2's checkpoint
    // store has no surviving replica, yet nodes 0/1 observed committed
    // intervals of node 2 that a from-scratch restart of it would
    // un-happen. That contradiction is the stale-store declaration.
    Config cfg = ftConfig(4);
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.injector().killAt(3, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 60; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::StaleCheckpointStore);
}

TEST(LossPaths, BothLockHomesDeadIsLockStateLost)
{
    // Lock 1's homes are nodes 1 (primary) and 2 (secondary); both die
    // while nodes 0 and 3 contend on it. The dead nodes never release
    // anything (no committed intervals, trivially fresh stores) and
    // the counter page is homed on survivors, so the lock scan is the
    // first — and only — path that can declare.
    Config cfg = ftConfig(4);
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    Addr counter = as.allocPageAligned(cfg.pageSize);
    as.setPrimaryHome(as.pageOf(counter), 3);
    cluster.injector().killAt(1, 2 * kMillisecond);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        if (t.node() == 1 || t.node() == 2) {
            t.compute(10 * kMillisecond);
            return;
        }
        for (int i = 0; i < 120; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(5 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::LockStateLost);
}

TEST(LossPaths, SimultaneousTotalLossIsAllNodesFailed)
{
    Config cfg = ftConfig(4);
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(p, 2 * kMillisecond);
    cluster.spawn([counter](AppThread &t) {
        for (int i = 0; i < 60; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
    });
    RunOutcome out = run(cluster);
    expectCleanLoss(cluster, out, LossReason::AllNodesFailed);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for checkpoint storage (two-slot alternation, tags,
 * finished markers, metadata) and the lock directory's failure
 * remapping.
 */

#include <gtest/gtest.h>

#include "ftsvm/checkpoint.hh"
#include "svm/locks.hh"

namespace rsvm {
namespace {

ThreadCkpt
makeCkpt(IntervalNum tag)
{
    ThreadCkpt c;
    c.tag = tag;
    c.valid = true;
    c.image.snap.sp = 0x1000 + tag; // marker only
    return c;
}

TEST(CkptStore, SlotsAlternateByTagParity)
{
    CkptStore cs;
    cs.save(7, makeCkpt(1));
    cs.save(7, makeCkpt(2));
    // Both live simultaneously (different parity slots).
    ASSERT_NE(cs.find(7, 1), nullptr);
    ASSERT_NE(cs.find(7, 2), nullptr);
    // Tag 3 overwrites tag 1 (same slot), tag 2 survives.
    cs.save(7, makeCkpt(3));
    EXPECT_EQ(cs.find(7, 1), nullptr);
    ASSERT_NE(cs.find(7, 2), nullptr);
    ASSERT_NE(cs.find(7, 3), nullptr);
    EXPECT_EQ(cs.find(7, 3)->image.snap.sp, 0x1000u + 3);
}

TEST(CkptStore, FindIsExactTagMatch)
{
    CkptStore cs;
    cs.save(1, makeCkpt(4));
    EXPECT_EQ(cs.find(1, 2), nullptr); // same parity, wrong tag
    EXPECT_EQ(cs.find(1, 6), nullptr);
    EXPECT_EQ(cs.find(2, 4), nullptr); // wrong thread
    ASSERT_NE(cs.find(1, 4), nullptr);
}

TEST(CkptStore, FinishedMarkerIsFindable)
{
    CkptStore cs;
    ThreadCkpt c;
    c.tag = 5;
    c.finished = true;
    cs.save(3, std::move(c));
    const ThreadCkpt *found = cs.find(3, 5);
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(found->finished);
    EXPECT_FALSE(found->valid);
}

TEST(CkptStore, MetaAccumulatesIntervalPages)
{
    CkptStore cs;
    VectorClock ts(4);
    ts[0] = 3;
    cs.saveMeta(ts, 3, 7, {1, 2, 3});
    EXPECT_TRUE(cs.hasSaved);
    EXPECT_EQ(cs.savedInterval, 3u);
    EXPECT_EQ(cs.savedBarrierEpoch, 7u);
    ts[0] = 4;
    cs.saveMeta(ts, 4, 7, {9});
    EXPECT_EQ(cs.savedInterval, 4u);
    // Both intervals' page lists retained (interval-table rebuild).
    EXPECT_EQ(cs.intervalPages.at(3).size(), 3u);
    EXPECT_EQ(cs.intervalPages.at(4).size(), 1u);
}

TEST(LockDirectory, InitialHomesAreDistinct)
{
    LockDirectory dir(64, 4);
    for (LockId l = 0; l < 64; ++l) {
        EXPECT_EQ(dir.primaryHome(l), l % 4);
        EXPECT_NE(dir.primaryHome(l), dir.secondaryHome(l));
    }
}

TEST(LockDirectory, RemapEvictsFailedNode)
{
    LockDirectory dir(64, 4);
    auto eligible = [](NodeId cand, NodeId) { return cand != 2; };
    std::vector<LockId> moved;
    dir.remapHomes(2, eligible,
                   [&moved](LockId l, NodeId) { moved.push_back(l); });
    for (LockId l = 0; l < 64; ++l) {
        EXPECT_NE(dir.primaryHome(l), 2u);
        EXPECT_NE(dir.secondaryHome(l), 2u);
        EXPECT_NE(dir.primaryHome(l), dir.secondaryHome(l));
    }
    EXPECT_FALSE(moved.empty());
    // Locks with primary == 2 promoted their old secondary (3).
    EXPECT_EQ(dir.primaryHome(2), 3u);
}

TEST(LockDirectory, SuccessiveRemapsStayConsistent)
{
    LockDirectory dir(32, 5);
    std::vector<bool> dead(5, false);
    auto eligible = [&](NodeId cand, NodeId) { return !dead[cand]; };
    auto noop = [](LockId, NodeId) {};
    dead[0] = true;
    dir.remapHomes(0, eligible, noop);
    dead[3] = true;
    dir.remapHomes(3, eligible, noop);
    for (LockId l = 0; l < 32; ++l) {
        EXPECT_FALSE(dead[dir.primaryHome(l)]);
        EXPECT_FALSE(dead[dir.secondaryHome(l)]);
        EXPECT_NE(dir.primaryHome(l), dir.secondaryHome(l));
    }
}

} // namespace
} // namespace rsvm

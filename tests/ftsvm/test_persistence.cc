/**
 * @file
 * Persistence-tier tests (base/persist + runtime/persist_manager):
 *
 *  - the tier is OFF the critical path: enabling it must leave wall
 *    time, the release-latency histogram and the final memory image
 *    bit-exactly identical to a persistence-off run;
 *  - whole-cluster loss with the tier enabled cold-restarts from the
 *    durable watermark and finishes bit-exact (simultaneous and
 *    staggered kills, and with the restart itself under failpoint
 *    fire);
 *  - a writer death with records queued stalls the watermark forever
 *    (dropped records, skipped captures) and the stalled log still
 *    restores correctly — partial epochs are discarded, never
 *    replayed;
 *  - without the tier the same total loss is a clean, reason-coded
 *    ClusterLostError with no event leaked in the engine.
 */

#include <gtest/gtest.h>

#include <string>

#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "runtime/persist_manager.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
ftConfig(std::uint32_t nodes = 4, std::uint32_t tpn = 1)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = tpn;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

Config
persistConfig(std::uint32_t nodes = 4, std::uint32_t tpn = 1)
{
    Config cfg = ftConfig(nodes, tpn);
    cfg.persistEnabled = true;
    cfg.persistEpoch = 500 * kMicrosecond;
    return cfg;
}

struct RunOutcome
{
    std::uint64_t value = 0;
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

/** Lock-counter workload; every thread runs @p iters increments. */
RunOutcome
runCounter(Cluster &cluster, Addr counter, int iters)
{
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    RunOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
        return out;
    }
    cluster.debugRead(counter, &out.value, 8);
    return out;
}

// ---- Off the critical path -------------------------------------------

TEST(Persistence, TierIsBitExactlyOffTheCriticalPath)
{
    // Same seed, same workload, tier off vs on: the application's
    // event stream must be untouched — identical wall time, identical
    // release-phase latency totals and histogram, identical result.
    const int kIters = 60;
    Config off_cfg = ftConfig();
    Cluster off(off_cfg);
    Addr c_off = off.mem().alloc(8);
    RunOutcome r_off = runCounter(off, c_off, kIters);
    ASSERT_FALSE(r_off.lost) << r_off.reason;

    Config on_cfg = persistConfig();
    Cluster on(on_cfg);
    Addr c_on = on.mem().alloc(8);
    ASSERT_EQ(c_off, c_on);
    RunOutcome r_on = runCounter(on, c_on, kIters);
    ASSERT_FALSE(r_on.lost) << r_on.reason;

    EXPECT_EQ(r_off.value, r_on.value);
    EXPECT_EQ(off.wallTime(), on.wallTime())
        << "persistence charged simulated time to the application";

    Counters c0 = off.totalCounters();
    Counters c1 = on.totalCounters();
    EXPECT_EQ(c0.phase1WallNs, c1.phase1WallNs);
    EXPECT_EQ(c0.phase2WallNs, c1.phase2WallNs);
    EXPECT_EQ(c0.phaseWallHist.count(), c1.phaseWallHist.count());
    EXPECT_EQ(c0.phaseWallHist.sum(), c1.phaseWallHist.sum());
    EXPECT_EQ(c0.phaseWallHist.min(), c1.phaseWallHist.min());
    EXPECT_EQ(c0.phaseWallHist.max(), c1.phaseWallHist.max());

    // ... and the tier itself must have actually worked meanwhile.
    PersistManager *pm = on.persistManager();
    ASSERT_NE(pm, nullptr);
    EXPECT_FALSE(pm->stalled());
    EXPECT_GT(pm->watermark(), 0u);
    EXPECT_GT(c1.persistEpochsClosed, 0u);
    EXPECT_GT(c1.persistRecordsDurable, 0u);
    EXPECT_EQ(c1.persistRecordsDropped, 0u);
    EXPECT_EQ(off.persistManager(), nullptr);
}

// ---- Cold restart ----------------------------------------------------

TEST(Persistence, ColdRestartAfterSimultaneousTotalLoss)
{
    // Reference: the same workload, no faults.
    Config ref_cfg = persistConfig();
    Cluster ref(ref_cfg);
    Addr c_ref = ref.mem().alloc(8);
    RunOutcome r_ref = runCounter(ref, c_ref, 60);
    ASSERT_FALSE(r_ref.lost) << r_ref.reason;

    Config cfg = persistConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(p, 2 * kMillisecond);
    RunOutcome out = runCounter(cluster, counter, 60);
    ASSERT_TRUE(out.lost) << "kill-all did not lose the cluster";
    EXPECT_EQ(out.code, LossReason::AllNodesFailed) << out.reason;

    cluster.coldRestart();
    cluster.run();

    std::uint64_t value = 0;
    cluster.debugRead(counter, &value, 8);
    EXPECT_EQ(value, r_ref.value) << "restored run diverged";
    Counters c = cluster.totalCounters();
    EXPECT_EQ(c.coldRestarts, 1u);
    EXPECT_EQ(c.coldRestartAttempts, 1u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Persistence, ColdRestartAfterStaggeredTotalLoss)
{
    // Nodes die 100 us apart: the tail deaths land while earlier ones
    // are mid-recovery, so the loss is declared by a live node (not
    // the all-dead fallback), and the watermark likely stalls with
    // records dropped. Restore must still be exact.
    Config cfg = persistConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(
            p, 2 * kMillisecond + p * 100 * kMicrosecond);
    RunOutcome out = runCounter(cluster, counter, 60);
    ASSERT_TRUE(out.lost) << "kill-all did not lose the cluster";
    EXPECT_NE(out.code, LossReason::None);

    cluster.coldRestart();
    cluster.run();

    std::uint64_t value = 0;
    cluster.debugRead(counter, &value, 8);
    EXPECT_EQ(value, 60u * cfg.totalThreads());
    EXPECT_EQ(cluster.totalCounters().coldRestarts, 1u);
}

TEST(Persistence, RestartRetriesWhenKilledMidRebuild)
{
    // A node dies at the persist:rebuild failpoint inside the first
    // restart attempt; the attempt must be abandoned and retried, and
    // the second attempt must restore exactly.
    Config cfg = persistConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(p, 2 * kMillisecond);
    cluster.injector().armFailpoint(1, failpoints::kPersistRebuild, 1);
    RunOutcome out = runCounter(cluster, counter, 60);
    ASSERT_TRUE(out.lost);

    cluster.coldRestart();
    cluster.run();

    std::uint64_t value = 0;
    cluster.debugRead(counter, &value, 8);
    EXPECT_EQ(value, 60u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_EQ(c.coldRestarts, 1u);
    EXPECT_GE(c.coldRestartAttempts, 2u);
}

// ---- Stall semantics -------------------------------------------------

TEST(Persistence, WriterDeathStallsWatermarkAndDiscardsPartials)
{
    // Node 2 dies at its first persist:enqueue — records of that
    // epoch are lost with its volatile buffers, so the watermark can
    // never pass the epoch and captures stop. Later durable records
    // of the incomplete epoch are partials: a cold restart after a
    // subsequent total loss must count and discard them, and the
    // (older) stalled watermark must still restore bit-exactly.
    Config cfg = persistConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().armFailpoint(2, failpoints::kPersistEnqueue, 1);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(p, 4 * kMillisecond);
    RunOutcome out = runCounter(cluster, counter, 80);
    ASSERT_TRUE(out.lost);

    PersistManager *pm = cluster.persistManager();
    ASSERT_NE(pm, nullptr);
    EXPECT_TRUE(pm->stalled());
    std::uint64_t stalled_wm = pm->watermark();

    cluster.coldRestart();
    cluster.run();

    std::uint64_t value = 0;
    cluster.debugRead(counter, &value, 8);
    EXPECT_EQ(value, 80u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_GT(c.persistRecordsDropped, 0u);
    EXPECT_GT(c.persistCapturesSkipped, 0u);
    EXPECT_GT(c.persistPartialsDiscarded, 0u);
    // The tier resumed after the restart: the stall is gone and the
    // watermark moved past the frozen value.
    EXPECT_FALSE(pm->stalled());
    EXPECT_GT(pm->watermark(), stalled_wm);
}

// ---- Without the tier ------------------------------------------------

TEST(Persistence, KillAllWithoutTierIsCleanReasonedLoss)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        cluster.injector().killAt(p, 2 * kMillisecond);
    RunOutcome out = runCounter(cluster, counter, 60);
    ASSERT_TRUE(out.lost);
    EXPECT_EQ(out.code, LossReason::AllNodesFailed) << out.reason;
    EXPECT_NE(out.reason.find("all-nodes-failed"), std::string::npos);
    // The engine drained cleanly: a declared loss leaks no events.
    EXPECT_EQ(cluster.engine().pendingEvents(), 0u);
    EXPECT_EQ(cluster.totalCounters().coldRestarts, 0u);
}

} // namespace
} // namespace rsvm

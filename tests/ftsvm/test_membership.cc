/**
 * @file
 * Elastic-membership tests: node join/rejoin, the bulk state
 * transfer, kills landing at every join:* step, and the per-page
 * replication-degree policy.
 *
 * The contract under test mirrors the migration/recovery suites:
 * every scenario must end crash-free in one of two clean outcomes —
 * a verified bit-exact result, or a reasoned ClusterLostError. A
 * joiner that dies before the commit flip must be rolled back out
 * (fenced again, no recovery pass); a death at or after the flip is
 * an ordinary member death. On the degree axis: a single kill is
 * survivable at k >= 2, an adjacent double kill destroys k = 2 pages
 * but not k = 3 ones, and a k = 1 page whose only home dies is a
 * deterministic clean loss.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "apps/app_common.hh"
#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "sim/engine.hh"

namespace rsvm {
namespace {

Config
ftConfig(std::uint32_t nodes = 4, std::uint32_t k = 2)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 16u << 20;
    cfg.replicationDegree = k;
    return cfg;
}

/** Lock-counter workload returning {counter value, lost?}. */
struct RunOutcome
{
    std::uint64_t value = 0;
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

RunOutcome
runCounter(Cluster &cluster, int iters)
{
    Addr counter = cluster.mem().alloc(8);
    cluster.spawn([counter, iters](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(1);
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    RunOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
        return out;
    }
    cluster.debugRead(counter, &out.value, 8);
    return out;
}

// ---- Validation (armFailpoint-style) ---------------------------------

using MembershipDeath = ::testing::Test;

TEST(MembershipDeath, UnknownHostIdDiesLoudly)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    EXPECT_EXIT(cluster.joinManager()->requestJoin(7),
                ::testing::ExitedWithCode(1), "unknown physical node");
}

TEST(MembershipDeath, ScheduledJoinValidatesAtArmTime)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    EXPECT_EXIT(
        cluster.joinManager()->scheduleJoin(1 * kMillisecond, 99),
        ::testing::ExitedWithCode(1), "unknown physical node");
}

TEST(Membership, LiveMemberIsRejectedCleanly)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    std::string why;
    EXPECT_FALSE(cluster.joinManager()->requestJoin(1, &why));
    EXPECT_NE(why.find("already a live member"), std::string::npos);
    EXPECT_EQ(cluster.joinManager()->counters().joinsRejected, 1u);
    EXPECT_EQ(cluster.joinManager()->queued(), 0u);
}

// ---- The basic rejoin loop -------------------------------------------

TEST(Membership, KillRecoverRejoinIsBitExact)
{
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.joinManager()->scheduleJoin(6 * kMillisecond, 2);

    RunOutcome out = runCounter(cluster, 60);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 60u * cfg.totalThreads());

    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 1u);
    EXPECT_EQ(c.joins, 1u);
    EXPECT_EQ(c.rejoins, 1u);
    EXPECT_EQ(c.joinsRolledBack, 0u);
    EXPECT_GT(c.bulkTransferBytes, 0u);
    // The joiner is a full member again: alive, unfenced, hosting its
    // native logical node.
    EXPECT_TRUE(cluster.physAlive(2));
    EXPECT_EQ(cluster.hostOf(2), 2u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(Membership, RejoinThenKillAgainIsBitExact)
{
    // The acceptance loop: kill -> recover -> rejoin -> kill the same
    // host again -> recover again. The second death of phys 2 is an
    // ordinary member death of a readmitted node; nothing about its
    // first life (stale channels, old epoch, rolled-back state) may
    // leak into the second recovery.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    // The modeled recovery pass for this config runs ~33 ms, and the
    // cluster stalls under it: the join (requested at 8 ms) queues
    // behind the pass and commits around 39 ms, so the second kill
    // goes at 45 ms and the workload is sized to outlast it.
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.joinManager()->scheduleJoin(8 * kMillisecond, 2);
    cluster.injector().killAt(2, 45 * kMillisecond);

    RunOutcome out = runCounter(cluster, 300);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 300u * cfg.totalThreads());
    ASSERT_EQ(cluster.injector().killed().size(), 2u)
        << "the workload must outlast both kills";

    Counters c = cluster.totalCounters();
    EXPECT_GE(c.recoveries, 2u);
    EXPECT_EQ(c.rejoins, 1u);
    EXPECT_EQ(c.joinsRolledBack, 0u);
}

TEST(Membership, JoinDuringRecoveryQueuesBehindThePass)
{
    // The join request lands an instant after the kill, while the
    // recovery pass is still quiescing: it must queue, wait the pass
    // out, and then complete normally.
    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.joinManager()->scheduleJoin(2 * kMillisecond + 10, 2);

    RunOutcome out = runCounter(cluster, 60);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 60u * cfg.totalThreads());
    Counters c = cluster.totalCounters();
    EXPECT_EQ(c.rejoins, 1u);
    EXPECT_EQ(c.joinsRolledBack, 0u);
}

// ---- Kills at every join step ----------------------------------------

class JoinUnderFire
    : public testing::TestWithParam<std::tuple<const char *, bool>>
{
};

TEST_P(JoinUnderFire, RolledBackOrHandedToRecovery)
{
    const char *point = std::get<0>(GetParam());
    const bool kill_joiner = std::get<1>(GetParam());
    const bool pre_commit =
        std::string(point) == failpoints::kJoinAdmit ||
        std::string(point) == failpoints::kJoinTransfer;

    Config cfg = ftConfig();
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.joinManager()->scheduleJoin(6 * kMillisecond, 2);
    cluster.injector().armFailpoint(kill_joiner ? 2 : 3, point, 1);

    RunOutcome out = runCounter(cluster, 80);
    Counters c = cluster.totalCounters();
    if (out.lost) {
        // A reasoned loss is acceptable only for the multi-failure
        // shapes (bystander death stacking on the earlier kill).
        EXPECT_FALSE(out.reason.empty());
        EXPECT_FALSE(kill_joiner && pre_commit)
            << "a pre-commit joiner death must never lose the "
               "cluster: "
            << out.reason;
        return;
    }
    EXPECT_EQ(out.value, 80u * cfg.totalThreads())
        << "point=" << point << " joiner=" << kill_joiner;
    if (kill_joiner && pre_commit &&
        cluster.injector().killed().size() == 2) {
        // The joiner died before the flip: rolled back out, fenced,
        // and NOT the subject of a second recovery pass.
        EXPECT_EQ(c.joinsRolledBack, 1u);
        EXPECT_EQ(c.rejoins, 0u);
        EXPECT_FALSE(cluster.physAlive(2));
    }
    if (kill_joiner && !pre_commit &&
        cluster.injector().killed().size() == 2) {
        // Post-commit: the join completed; the death is an ordinary
        // member death and recovery ran again.
        EXPECT_EQ(c.rejoins, 1u);
        EXPECT_GE(c.recoveries, 2u);
    }
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinUnderFire,
    testing::Combine(testing::ValuesIn(failpoints::kJoinPoints),
                     testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<const char *, bool>>
           &info) {
        std::string s = std::get<0>(info.param);
        s += std::get<1>(info.param) ? "_joiner" : "_bystander";
        for (char &c : s)
            if (c == ':' || c == '-')
                c = '_';
        return s;
    });

// ---- Replication-degree policy ---------------------------------------

class ReplicationSweep : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(ReplicationSweep, SingleKillSurvivableAtKTwoPlus)
{
    const std::uint32_t k = GetParam();
    Config cfg = ftConfig(4, k);
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);

    RunOutcome out = runCounter(cluster, 40);
    if (k >= 2) {
        ASSERT_FALSE(out.lost) << "k=" << k << ": " << out.reason;
    }
    if (!out.lost) {
        EXPECT_EQ(out.value, 40u * cfg.totalThreads()) << "k=" << k;
        EXPECT_GE(cluster.totalCounters().recoveries, 1u);
    } else {
        EXPECT_FALSE(out.reason.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(K, ReplicationSweep,
                         testing::Values(1u, 2u, 3u),
                         [](const testing::TestParamInfo<std::uint32_t>
                                &pi) {
                             return "k" + std::to_string(pi.param);
                         });

/**
 * The slice workload: thread t fills page t of a shared array, a
 * barrier commits everything to the homes, thread 0 touches every
 * page (so a later total loss of any page is *referenced* and must be
 * declared, never silently zero-filled), then everyone computes
 * through a 10 ms window where the kills land.
 */
struct SliceOutcome
{
    bool lost = false;
    LossReason code = LossReason::None;
    std::string reason;
};

SliceOutcome
runSlices(Cluster &cluster, Addr *arr_out)
{
    const Config &cfg = cluster.config();
    const std::uint32_t n = cfg.numNodes;
    const std::uint32_t page = cfg.pageSize;
    Addr arr = cluster.mem().allocPageAligned(
        static_cast<std::uint64_t>(n) * page);
    *arr_out = arr;
    cluster.spawn([arr, n, page](AppThread &t) {
        const std::uint64_t me = t.id();
        Addr mine = arr + me * page;
        for (std::uint64_t i = 0; i < 4; ++i)
            t.put<std::uint64_t>(mine + 8 * i, (me + 1) * 1000 + i);
        t.barrier();
        if (t.id() == 0) {
            std::uint64_t sum = 0;
            for (std::uint32_t s = 0; s < n; ++s)
                sum += t.get<std::uint64_t>(arr + s * page);
            if (sum == ~0ull)
                t.put<std::uint64_t>(arr, sum); // never taken
        }
        t.barrier();
        t.compute(10 * kMillisecond);
        t.barrier();
    });
    SliceOutcome out;
    try {
        cluster.run();
    } catch (const ClusterLostError &e) {
        out.lost = true;
        out.code = e.code();
        out.reason = e.what();
    }
    return out;
}

TEST(ReplicationDegree, SoleReplicaDeathIsCleanLossAtKOne)
{
    // k = 1: page 2's only home is node 2, and thread 0 referenced it.
    // Killing phys 2 must be a deterministic, reasoned loss — not a
    // hang, assert, or silent zero-fill.
    Config cfg = ftConfig(4, 1);
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 5 * kMillisecond);
    Addr arr = 0;
    SliceOutcome out = runSlices(cluster, &arr);
    ASSERT_TRUE(out.lost)
        << "a referenced k=1 page lost its only home, but the "
           "cluster claims it recovered";
    EXPECT_EQ(out.code, LossReason::ReplicasExhausted) << out.reason;
    EXPECT_NE(out.reason.find("gone"), std::string::npos)
        << out.reason;
}

TEST(ReplicationDegree, AdjacentDoubleKillDestroysKTwoPages)
{
    // k = 2: the page homed {2,3} loses both replicas when 2 and 3
    // die together. Backups are pre-spread onto survivors so thread
    // state is recoverable — the loss must be pinned on the page.
    Config cfg = ftConfig(4, 2);
    Cluster cluster(cfg);
    cluster.setBackupOf(2, 0);
    cluster.setBackupOf(3, 1);
    cluster.injector().killAt(2, 5 * kMillisecond);
    cluster.injector().killAt(3, 5 * kMillisecond);
    Addr arr = 0;
    SliceOutcome out = runSlices(cluster, &arr);
    ASSERT_TRUE(out.lost);
    EXPECT_EQ(out.code, LossReason::ReplicasExhausted) << out.reason;
    EXPECT_NE(out.reason.find("page"), std::string::npos)
        << out.reason;
}

TEST(ReplicationDegree, KThreeSurvivesSimultaneousDoubleKill)
{
    // The same adjacent double kill with k = 3: every page keeps at
    // least one live replica ({p, p+1, p+2} mod 4 always intersects
    // the survivors {0,1}), so the run must complete and the final
    // shared state must be exact.
    Config cfg = ftConfig(4, 3);
    Cluster cluster(cfg);
    cluster.setBackupOf(2, 0);
    cluster.setBackupOf(3, 1);
    cluster.injector().killAt(2, 5 * kMillisecond);
    cluster.injector().killAt(3, 5 * kMillisecond);
    Addr arr = 0;
    SliceOutcome out = runSlices(cluster, &arr);
    ASSERT_FALSE(out.lost) << out.reason;
    for (std::uint64_t s = 0; s < cfg.numNodes; ++s) {
        for (std::uint64_t i = 0; i < 4; ++i) {
            std::uint64_t v = 0;
            cluster.debugRead(arr + s * cfg.pageSize + 8 * i, &v, 8);
            EXPECT_EQ(v, (s + 1) * 1000 + i)
                << "slice " << s << " word " << i;
        }
    }
    EXPECT_EQ(cluster.totalCounters().recoveries, 1u)
        << "simultaneous deaths should be handled in one pass";
}

TEST(ReplicationDegree, RegionOverrideMixesDegrees)
{
    // Per-region policy: a hot/critical region at k = 3, scratch at
    // k = 1, everything else at the default k = 2. The kill takes a
    // k = 3 page's primary; the run must survive and the degree
    // distribution must show all three classes.
    Config cfg = ftConfig(4, 2);
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    Addr hot = as.allocPageAligned(2 * cfg.pageSize);
    Addr scratch = as.allocPageAligned(cfg.pageSize);
    as.setReplicationDegreeRange(hot, 2 * cfg.pageSize, 3);
    as.setReplicationDegreeRange(scratch, cfg.pageSize, 1);
    EXPECT_EQ(as.replicationDegree(as.pageOf(hot)), 3u);
    EXPECT_EQ(as.effectiveDegree(as.pageOf(hot)), 3u);
    EXPECT_EQ(as.replicationDegree(as.pageOf(scratch)), 1u);
    EXPECT_TRUE(as.secondaryHomes(as.pageOf(scratch)).empty());

    cluster.injector().killAt(as.primaryHome(as.pageOf(hot)),
                              2 * kMillisecond);
    RunOutcome out = runCounter(cluster, 40);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 40u * cfg.totalThreads());

    Counters c = cluster.totalCounters();
    EXPECT_GE(c.pagesPerDegreeHist.count(), 3u);
}

TEST(ReplicationDegree, RejoinRestoresTargetDegree)
{
    // A k = 3 cluster of 3 nodes loses one: every page shrinks to an
    // effective degree of 2 (no third host exists). When the host
    // rejoins, the commit step re-grows the deficit replicas on it.
    Config cfg = ftConfig(3, 3);
    Cluster cluster(cfg);
    cluster.injector().killAt(2, 2 * kMillisecond);
    cluster.joinManager()->scheduleJoin(6 * kMillisecond, 2);

    RunOutcome out = runCounter(cluster, 60);
    ASSERT_FALSE(out.lost) << out.reason;
    EXPECT_EQ(out.value, 60u * cfg.totalThreads());

    Counters c = cluster.totalCounters();
    EXPECT_EQ(c.rejoins, 1u);
    EXPECT_GT(c.pagesReGrown, 0u);
    AddressSpace &as = cluster.mem();
    PageId touched = as.pageOf(0);
    EXPECT_EQ(as.effectiveDegree(touched), 3u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

// ---- The six-app acceptance loop -------------------------------------

TEST(MembershipApps, KillRejoinKillAgainStaysExactOnEveryApp)
{
    // kill -> recover -> rejoin -> kill again, on every kernel of the
    // suite, verified against the serial reference. Apps that finish
    // before a stage simply skip it (the injector/queue drain); any
    // verification mismatch or crash is a failure.
    for (const std::string &app : apps::appNames()) {
        Config cfg = ftConfig();
        cfg.sharedBytes = 64u << 20;
        apps::AppParams params = apps::defaultParams(app);
        apps::AppInstance inst = apps::makeApp(app, params);
        Cluster cluster(cfg);
        cluster.injector().killAt(2, 2 * kMillisecond);
        cluster.joinManager()->scheduleJoin(6 * kMillisecond, 2);
        cluster.injector().killAt(2, 10 * kMillisecond);
        inst.setup(cluster);
        cluster.spawn(inst.threadFn);
        try {
            cluster.run();
        } catch (const ClusterLostError &e) {
            ADD_FAILURE() << app << ": lost: " << e.what();
            continue;
        }
        apps::AppResult r = inst.verify(cluster);
        EXPECT_TRUE(r.ok) << app << ": " << r.detail;
        Counters c = cluster.totalCounters();
        if (!cluster.injector().killed().empty()) {
            EXPECT_GE(c.recoveries, 1u) << app;
        }
    }
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for the diff engine, page table, and address space.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/config.hh"
#include "mem/addrspace.hh"
#include "mem/diff.hh"
#include "mem/pagetable.hh"

namespace rsvm {
namespace {

std::vector<std::byte>
filled(std::size_t n, unsigned char v)
{
    return std::vector<std::byte>(n, std::byte{v});
}

TEST(Diff, IdenticalPagesProduceEmptyDiff)
{
    auto a = filled(4096, 0xab);
    Diff d = diff::compute(7, 1, 3, a, a);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.modifiedBytes(), 0u);
    EXPECT_EQ(d.page, 7u);
    EXPECT_EQ(d.origin, 1u);
    EXPECT_EQ(d.interval, 3u);
}

TEST(Diff, SingleWordChange)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[100] = std::byte{0xff};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    ASSERT_EQ(d.runs.size(), 1u);
    // Word granularity: the run covers the enclosing 32-bit word.
    EXPECT_EQ(d.runs[0].offset, 100u);
    EXPECT_EQ(d.runs[0].bytes.size(), 4u);
    EXPECT_EQ(d.modifiedBytes(), 4u);
}

TEST(Diff, AdjacentWordsCoalesce)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    for (int i = 64; i < 96; ++i)
        cur[i] = std::byte{1};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].offset, 64u);
    EXPECT_EQ(d.runs[0].bytes.size(), 32u);
}

TEST(Diff, DisjointRunsStaySeparate)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[0] = std::byte{1};
    cur[2048] = std::byte{2};
    cur[4095] = std::byte{3};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    EXPECT_EQ(d.runs.size(), 3u);
}

TEST(Diff, ApplyReconstructsModifiedPage)
{
    auto twin = filled(4096, 0x5a);
    auto cur = twin;
    for (int i = 0; i < 4096; i += 37)
        cur[i] = std::byte{static_cast<unsigned char>(i & 0xff)};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    auto target = twin; // start from the twin state
    diff::apply(d, target.data(), target.size());
    EXPECT_EQ(std::memcmp(target.data(), cur.data(), 4096), 0);
}

TEST(Diff, ApplyMergesFalseSharingWrites)
{
    // Two writers modify disjoint halves; both diffs applied to a
    // common home copy must merge cleanly (multi-writer support).
    auto base = filled(4096, 0);
    auto a = base, b = base;
    for (int i = 0; i < 2048; ++i)
        a[i] = std::byte{1};
    for (int i = 2048; i < 4096; ++i)
        b[i] = std::byte{2};
    Diff da = diff::compute(0, 0, 1, a, base);
    Diff db = diff::compute(0, 1, 1, b, base);
    auto home = base;
    diff::apply(da, home.data(), home.size());
    diff::apply(db, home.data(), home.size());
    for (int i = 0; i < 2048; ++i)
        ASSERT_EQ(home[i], std::byte{1}) << i;
    for (int i = 2048; i < 4096; ++i)
        ASSERT_EQ(home[i], std::byte{2}) << i;
}

TEST(Diff, WireBytesAccountForHeaders)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[8] = std::byte{1};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    EXPECT_EQ(d.wireBytes(), 4u + 8u + 16u);
}

TEST(Coalesce, CleanRunListIsUntouched)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[0] = std::byte{1};
    cur[2048] = std::byte{2};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    ASSERT_EQ(d.runs.size(), 2u);
    diff::CoalesceStats cs = diff::coalesceRuns(d);
    EXPECT_EQ(cs.runsMerged, 0u);
    EXPECT_EQ(cs.bytesRebuilt, 0u);
    EXPECT_EQ(d.runs.size(), 2u);
}

TEST(Coalesce, AdjacentRunsMerge)
{
    Diff d;
    d.runs.push_back({0, filled(8, 0xaa)});
    d.runs.push_back({8, filled(8, 0xbb)});
    diff::CoalesceStats cs = diff::coalesceRuns(d);
    EXPECT_EQ(cs.runsMerged, 1u);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].offset, 0u);
    ASSERT_EQ(d.runs[0].bytes.size(), 16u);
    EXPECT_EQ(d.runs[0].bytes[0], std::byte{0xaa});
    EXPECT_EQ(d.runs[0].bytes[8], std::byte{0xbb});
}

TEST(Coalesce, OverlappingRunsLaterWins)
{
    // Overlap arises when an early-flushed diff and the commit-time
    // diff of the same page merge; apply() order makes later bytes
    // win, and coalescing must preserve exactly that.
    Diff d;
    d.runs.push_back({0, filled(16, 0x11)});
    d.runs.push_back({8, filled(16, 0x22)});
    diff::CoalesceStats cs = diff::coalesceRuns(d);
    EXPECT_EQ(cs.runsMerged, 1u);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].offset, 0u);
    ASSERT_EQ(d.runs[0].bytes.size(), 24u);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(d.runs[0].bytes[i], std::byte{0x11}) << i;
    for (int i = 8; i < 24; ++i)
        ASSERT_EQ(d.runs[0].bytes[i], std::byte{0x22}) << i;
}

TEST(Coalesce, UnsortedRunsAreNormalized)
{
    Diff d;
    d.runs.push_back({64, filled(4, 3)});
    d.runs.push_back({0, filled(4, 1)});
    d.runs.push_back({4, filled(4, 2)});
    diff::coalesceRuns(d);
    ASSERT_EQ(d.runs.size(), 2u);
    EXPECT_EQ(d.runs[0].offset, 0u);
    EXPECT_EQ(d.runs[0].bytes.size(), 8u);
    EXPECT_EQ(d.runs[1].offset, 64u);
    EXPECT_EQ(d.runs[1].bytes.size(), 4u);
}

TEST(Coalesce, DuplicatePageDiffsMergeIntoFirst)
{
    Diff a;
    a.page = 5;
    a.origin = 1;
    a.interval = 2;
    a.runs.push_back({0, filled(8, 0x11)});
    Diff b = a; // same (page, origin, interval)
    b.runs.clear();
    b.runs.push_back({4, filled(8, 0x22)});
    Diff other;
    other.page = 6;
    other.origin = 1;
    other.interval = 2;
    other.runs.push_back({0, filled(4, 0x33)});

    std::vector<Diff> diffs{a, other, b};
    diff::CoalesceStats cs = diff::coalesce(diffs);
    EXPECT_EQ(cs.pagesMerged, 1u);
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0].page, 5u);
    EXPECT_EQ(diffs[1].page, 6u);
    // b's overlapping bytes won in the merged first occurrence.
    ASSERT_EQ(diffs[0].runs.size(), 1u);
    EXPECT_EQ(diffs[0].runs[0].bytes.size(), 12u);
    EXPECT_EQ(diffs[0].runs[0].bytes[3], std::byte{0x11});
    EXPECT_EQ(diffs[0].runs[0].bytes[4], std::byte{0x22});
}

TEST(Coalesce, RoundTripApplyIsByteIdentical)
{
    // The acid test: applying the coalesced diff list must produce a
    // byte-identical page to applying the original messy list.
    auto mk_run = [](std::uint32_t off, std::size_t len,
                     unsigned char v) {
        return DiffRun{off, filled(len, v)};
    };
    std::vector<Diff> messy;
    Diff d1;
    d1.page = 0;
    d1.origin = 2;
    d1.interval = 7;
    d1.runs = {mk_run(100, 40, 0x01), mk_run(120, 40, 0x02),
               mk_run(60, 44, 0x03)};
    Diff d2 = d1; // duplicate key, later runs
    d2.runs = {mk_run(110, 8, 0x04), mk_run(400, 12, 0x05)};
    messy.push_back(d1);
    messy.push_back(d2);

    auto expect = filled(4096, 0x5a);
    for (const Diff &d : messy)
        diff::apply(d, expect.data(), expect.size());

    diff::coalesce(messy);
    auto got = filled(4096, 0x5a);
    for (const Diff &d : messy)
        diff::apply(d, got.data(), got.size());

    ASSERT_EQ(messy.size(), 1u);
    EXPECT_EQ(std::memcmp(got.data(), expect.data(), 4096), 0);
    // And the result is the minimal disjoint sorted set.
    for (std::size_t i = 1; i < messy[0].runs.size(); ++i) {
        ASSERT_GT(messy[0].runs[i].offset,
                  messy[0].runs[i - 1].offset +
                      messy[0].runs[i - 1].bytes.size());
    }
}

TEST(Pack, RespectsByteBudgetAndOrder)
{
    std::vector<Diff> diffs;
    for (int i = 0; i < 6; ++i) {
        Diff d;
        d.page = static_cast<PageId>(i);
        d.runs.push_back({0, filled(100, 1)});
        diffs.push_back(std::move(d));
    }
    std::uint32_t per = diffs[0].wireBytes(); // 100 + 8 + 16 = 124
    // Budget fits exactly two diffs per chunk.
    auto chunks = diff::pack(std::move(diffs), 2 * per);
    ASSERT_EQ(chunks.size(), 3u);
    PageId next = 0;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.size(), 2u);
        std::uint32_t bytes = 0;
        for (const Diff &d : c) {
            EXPECT_EQ(d.page, next++); // order preserved
            bytes += d.wireBytes();
        }
        EXPECT_LE(bytes, 2 * per);
    }
}

TEST(Pack, OversizedDiffGetsOwnChunk)
{
    std::vector<Diff> diffs;
    Diff small;
    small.page = 0;
    small.runs.push_back({0, filled(8, 1)});
    Diff big;
    big.page = 1;
    big.runs.push_back({0, filled(4096, 2)});
    diffs.push_back(small);
    diffs.push_back(big);
    diffs.push_back(small);
    auto chunks = diff::pack(std::move(diffs), 256);
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0].size(), 1u);
    EXPECT_EQ(chunks[1].size(), 1u);
    EXPECT_EQ(chunks[1][0].page, 1u);
    EXPECT_EQ(chunks[2].size(), 1u);
}

TEST(PageTable, EntryCreationAndStates)
{
    Config cfg;
    PageTable pt(cfg, 4);
    EXPECT_EQ(pt.find(5), nullptr);
    PageEntry &e = pt.entry(5);
    EXPECT_EQ(e.state, PageState::Invalid);
    EXPECT_EQ(e.reqVer.size(), 4u);
    EXPECT_EQ(pt.find(5), &e);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, EnsureDataZeroFills)
{
    Config cfg;
    PageTable pt(cfg, 2);
    PageEntry &e = pt.entry(0);
    std::byte *d = pt.ensureData(e);
    for (unsigned i = 0; i < cfg.pageSize; ++i)
        ASSERT_EQ(d[i], std::byte{0});
    // Idempotent: same buffer on second call.
    EXPECT_EQ(pt.ensureData(e), d);
}

TEST(PageTable, TwinLifecycle)
{
    Config cfg;
    PageTable pt(cfg, 2);
    PageEntry &e = pt.entry(0);
    std::byte *d = pt.ensureData(e);
    d[17] = std::byte{9};
    pt.makeTwin(e);
    d[17] = std::byte{10};
    ASSERT_TRUE(e.twin);
    EXPECT_EQ(e.twin[17], std::byte{9});
    EXPECT_EQ(e.data[17], std::byte{10});
    pt.dropTwin(e);
    EXPECT_FALSE(e.twin);
}

TEST(PageTable, ResetDropsEverything)
{
    Config cfg;
    PageTable pt(cfg, 2);
    pt.entry(1);
    pt.entry(2);
    pt.reset();
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.find(1), nullptr);
}

TEST(AddressSpace, AllocationAlignsAndAdvances)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    Addr a = as.alloc(10);
    Addr b = as.alloc(10);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 16u);
    Addr c = as.allocPageAligned(100);
    EXPECT_EQ(c % cfg.pageSize, 0u);
    EXPECT_GT(c, b);
}

TEST(AddressSpace, DefaultHomesAreRoundRobinAndDistinct)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    for (PageId p = 0; p < 16; ++p) {
        EXPECT_EQ(as.primaryHome(p), p % 4);
        EXPECT_EQ(as.secondaryHome(p), (p + 1) % 4);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
}

TEST(AddressSpace, ExplicitHomeAssignmentKeepsReplicasDistinct)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    as.setPrimaryHome(3, 0); // secondary for page 3 was 0
    EXPECT_EQ(as.primaryHome(3), 0u);
    EXPECT_NE(as.secondaryHome(3), 0u);
    as.setPrimaryHomeRange(0, 3 * cfg.pageSize + 1, 2);
    for (PageId p = 0; p <= 3; ++p) {
        EXPECT_EQ(as.primaryHome(p), 2u);
        EXPECT_NE(as.secondaryHome(p), 2u);
    }
}

TEST(AddressSpace, RemapAfterPrimaryFailurePromotesSecondary)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4);
    auto eligible = [](NodeId cand, const std::vector<NodeId> &) {
        return cand != 1;
    };
    std::vector<PageId> movedPages;
    as.remapHomes(1, eligible, [&](PageId p, NodeId survivor) {
        movedPages.push_back(p);
        EXPECT_NE(survivor, 1u);
    });
    for (PageId p = 0; p < as.numPages(); ++p) {
        EXPECT_NE(as.primaryHome(p), 1u);
        EXPECT_NE(as.secondaryHome(p), 1u);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
    // Pages whose primary was 1: promoted old secondary (2).
    EXPECT_EQ(as.primaryHome(1), 2u);
    // Pages whose secondary was 1 (primary 0) got a new secondary.
    EXPECT_NE(as.secondaryHome(0), 1u);
    EXPECT_FALSE(movedPages.empty());
}

TEST(AddressSpace, PerPageReplicationDegree)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4); // default degree 2
    EXPECT_EQ(as.replicationDegree(0), 2u);
    EXPECT_EQ(as.secondaryHomes(0).size(), 1u);

    as.setReplicationDegree(0, 3);
    EXPECT_EQ(as.replicationDegree(0), 3u);
    EXPECT_EQ(as.effectiveDegree(0), 3u);
    std::vector<NodeId> homes = as.homeSet(0);
    ASSERT_EQ(homes.size(), 3u);
    for (std::size_t i = 0; i < homes.size(); ++i) {
        for (std::size_t j = i + 1; j < homes.size(); ++j)
            EXPECT_NE(homes[i], homes[j]);
        EXPECT_TRUE(as.isHome(0, homes[i]));
    }

    as.setReplicationDegree(1, 1);
    EXPECT_EQ(as.effectiveDegree(1), 1u);
    EXPECT_TRUE(as.secondaryHomes(1).empty());
    EXPECT_TRUE(as.isHome(1, as.primaryHome(1)));

    // Degree is clamped to the node count.
    as.setReplicationDegree(2, 9);
    EXPECT_EQ(as.replicationDegree(2), 4u);
    EXPECT_EQ(as.homeSet(2).size(), 4u);
}

TEST(AddressSpace, RemapShrinksAndGrowRestoresDegree)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4);
    as.setReplicationDegree(0, 3);
    std::vector<bool> dead(4, false);
    auto eligible = [&](NodeId cand, const std::vector<NodeId> &) {
        return !dead[cand];
    };
    auto noop = [](PageId, NodeId) {};
    dead[1] = true;
    as.remapHomes(1, eligible, noop);
    dead[2] = true;
    as.remapHomes(2, eligible, noop);
    // Only two placeable nodes remain: the degree-3 page shrinks.
    EXPECT_EQ(as.effectiveDegree(0), 2u);
    for (NodeId h : as.homeSet(0))
        EXPECT_FALSE(dead[h]);
    // A rejoin re-grows the set up to the target.
    EXPECT_TRUE(as.growHomeSet(0, 1));
    EXPECT_EQ(as.effectiveDegree(0), 3u);
    EXPECT_TRUE(as.isHome(0, 1));
    EXPECT_FALSE(as.growHomeSet(0, 2)) << "already at target degree";
}

TEST(AddressSpace, RemapToleratesSuccessiveFailures)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4);
    std::vector<bool> dead(4, false);
    auto eligible = [&](NodeId cand, const std::vector<NodeId> &) {
        return !dead[cand];
    };
    auto noop = [](PageId, NodeId) {};
    dead[1] = true;
    as.remapHomes(1, eligible, noop);
    dead[3] = true;
    as.remapHomes(3, eligible, noop);
    for (PageId p = 0; p < as.numPages(); ++p) {
        EXPECT_FALSE(dead[as.primaryHome(p)]);
        EXPECT_FALSE(dead[as.secondaryHome(p)]);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for the diff engine, page table, and address space.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "base/config.hh"
#include "mem/addrspace.hh"
#include "mem/diff.hh"
#include "mem/pagetable.hh"

namespace rsvm {
namespace {

std::vector<std::byte>
filled(std::size_t n, unsigned char v)
{
    return std::vector<std::byte>(n, std::byte{v});
}

TEST(Diff, IdenticalPagesProduceEmptyDiff)
{
    auto a = filled(4096, 0xab);
    Diff d = diff::compute(7, 1, 3, a, a);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.modifiedBytes(), 0u);
    EXPECT_EQ(d.page, 7u);
    EXPECT_EQ(d.origin, 1u);
    EXPECT_EQ(d.interval, 3u);
}

TEST(Diff, SingleWordChange)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[100] = std::byte{0xff};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    ASSERT_EQ(d.runs.size(), 1u);
    // Word granularity: the run covers the enclosing 32-bit word.
    EXPECT_EQ(d.runs[0].offset, 100u);
    EXPECT_EQ(d.runs[0].bytes.size(), 4u);
    EXPECT_EQ(d.modifiedBytes(), 4u);
}

TEST(Diff, AdjacentWordsCoalesce)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    for (int i = 64; i < 96; ++i)
        cur[i] = std::byte{1};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].offset, 64u);
    EXPECT_EQ(d.runs[0].bytes.size(), 32u);
}

TEST(Diff, DisjointRunsStaySeparate)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[0] = std::byte{1};
    cur[2048] = std::byte{2};
    cur[4095] = std::byte{3};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    EXPECT_EQ(d.runs.size(), 3u);
}

TEST(Diff, ApplyReconstructsModifiedPage)
{
    auto twin = filled(4096, 0x5a);
    auto cur = twin;
    for (int i = 0; i < 4096; i += 37)
        cur[i] = std::byte{static_cast<unsigned char>(i & 0xff)};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    auto target = twin; // start from the twin state
    diff::apply(d, target.data(), target.size());
    EXPECT_EQ(std::memcmp(target.data(), cur.data(), 4096), 0);
}

TEST(Diff, ApplyMergesFalseSharingWrites)
{
    // Two writers modify disjoint halves; both diffs applied to a
    // common home copy must merge cleanly (multi-writer support).
    auto base = filled(4096, 0);
    auto a = base, b = base;
    for (int i = 0; i < 2048; ++i)
        a[i] = std::byte{1};
    for (int i = 2048; i < 4096; ++i)
        b[i] = std::byte{2};
    Diff da = diff::compute(0, 0, 1, a, base);
    Diff db = diff::compute(0, 1, 1, b, base);
    auto home = base;
    diff::apply(da, home.data(), home.size());
    diff::apply(db, home.data(), home.size());
    for (int i = 0; i < 2048; ++i)
        ASSERT_EQ(home[i], std::byte{1}) << i;
    for (int i = 2048; i < 4096; ++i)
        ASSERT_EQ(home[i], std::byte{2}) << i;
}

TEST(Diff, WireBytesAccountForHeaders)
{
    auto twin = filled(4096, 0);
    auto cur = twin;
    cur[8] = std::byte{1};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    EXPECT_EQ(d.wireBytes(), 4u + 8u + 16u);
}

TEST(PageTable, EntryCreationAndStates)
{
    Config cfg;
    PageTable pt(cfg, 4);
    EXPECT_EQ(pt.find(5), nullptr);
    PageEntry &e = pt.entry(5);
    EXPECT_EQ(e.state, PageState::Invalid);
    EXPECT_EQ(e.reqVer.size(), 4u);
    EXPECT_EQ(pt.find(5), &e);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, EnsureDataZeroFills)
{
    Config cfg;
    PageTable pt(cfg, 2);
    PageEntry &e = pt.entry(0);
    std::byte *d = pt.ensureData(e);
    for (unsigned i = 0; i < cfg.pageSize; ++i)
        ASSERT_EQ(d[i], std::byte{0});
    // Idempotent: same buffer on second call.
    EXPECT_EQ(pt.ensureData(e), d);
}

TEST(PageTable, TwinLifecycle)
{
    Config cfg;
    PageTable pt(cfg, 2);
    PageEntry &e = pt.entry(0);
    std::byte *d = pt.ensureData(e);
    d[17] = std::byte{9};
    pt.makeTwin(e);
    d[17] = std::byte{10};
    ASSERT_TRUE(e.twin);
    EXPECT_EQ(e.twin[17], std::byte{9});
    EXPECT_EQ(e.data[17], std::byte{10});
    pt.dropTwin(e);
    EXPECT_FALSE(e.twin);
}

TEST(PageTable, ResetDropsEverything)
{
    Config cfg;
    PageTable pt(cfg, 2);
    pt.entry(1);
    pt.entry(2);
    pt.reset();
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.find(1), nullptr);
}

TEST(AddressSpace, AllocationAlignsAndAdvances)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    Addr a = as.alloc(10);
    Addr b = as.alloc(10);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 16u);
    Addr c = as.allocPageAligned(100);
    EXPECT_EQ(c % cfg.pageSize, 0u);
    EXPECT_GT(c, b);
}

TEST(AddressSpace, DefaultHomesAreRoundRobinAndDistinct)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    for (PageId p = 0; p < 16; ++p) {
        EXPECT_EQ(as.primaryHome(p), p % 4);
        EXPECT_EQ(as.secondaryHome(p), (p + 1) % 4);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
}

TEST(AddressSpace, ExplicitHomeAssignmentKeepsReplicasDistinct)
{
    Config cfg;
    AddressSpace as(cfg, 4);
    as.setPrimaryHome(3, 0); // secondary for page 3 was 0
    EXPECT_EQ(as.primaryHome(3), 0u);
    EXPECT_NE(as.secondaryHome(3), 0u);
    as.setPrimaryHomeRange(0, 3 * cfg.pageSize + 1, 2);
    for (PageId p = 0; p <= 3; ++p) {
        EXPECT_EQ(as.primaryHome(p), 2u);
        EXPECT_NE(as.secondaryHome(p), 2u);
    }
}

TEST(AddressSpace, RemapAfterPrimaryFailurePromotesSecondary)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4);
    auto eligible = [](NodeId cand, NodeId) { return cand != 1; };
    std::vector<PageId> movedPages;
    as.remapHomes(1, eligible, [&](PageId p, NodeId survivor) {
        movedPages.push_back(p);
        EXPECT_NE(survivor, 1u);
    });
    for (PageId p = 0; p < as.numPages(); ++p) {
        EXPECT_NE(as.primaryHome(p), 1u);
        EXPECT_NE(as.secondaryHome(p), 1u);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
    // Pages whose primary was 1: promoted old secondary (2).
    EXPECT_EQ(as.primaryHome(1), 2u);
    // Pages whose secondary was 1 (primary 0) got a new secondary.
    EXPECT_NE(as.secondaryHome(0), 1u);
    EXPECT_FALSE(movedPages.empty());
}

TEST(AddressSpace, RemapToleratesSuccessiveFailures)
{
    Config cfg;
    cfg.sharedBytes = 16 * cfg.pageSize;
    AddressSpace as(cfg, 4);
    std::vector<bool> dead(4, false);
    auto eligible = [&](NodeId cand, NodeId) { return !dead[cand]; };
    auto noop = [](PageId, NodeId) {};
    dead[1] = true;
    as.remapHomes(1, eligible, noop);
    dead[3] = true;
    as.remapHomes(3, eligible, noop);
    for (PageId p = 0; p < as.numPages(); ++p) {
        EXPECT_FALSE(dead[as.primaryHome(p)]);
        EXPECT_FALSE(dead[as.secondaryHome(p)]);
        EXPECT_NE(as.primaryHome(p), as.secondaryHome(p));
    }
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Unit tests for vector timestamps and barrier/epoch behaviors at the
 * cluster level (manager re-election is covered by the failure suite;
 * here the failure-free invariants).
 */

#include <gtest/gtest.h>

#include "runtime/cluster.hh"
#include "svm/timestamp.hh"

namespace rsvm {
namespace {

TEST(VectorClock, DominatesIsElementwise)
{
    VectorClock a(3), b(3);
    a[0] = 2;
    a[1] = 5;
    a[2] = 1;
    b = a;
    EXPECT_TRUE(a.dominates(b));
    EXPECT_TRUE(b.dominates(a));
    b[2] = 2;
    EXPECT_FALSE(a.dominates(b));
    EXPECT_TRUE(b.dominates(a));
    a[0] = 9;
    // Now incomparable.
    EXPECT_FALSE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
}

TEST(VectorClock, MaxWithIsMonotonicMerge)
{
    VectorClock a(4), b(4);
    a[0] = 1;
    a[2] = 7;
    b[1] = 3;
    b[2] = 5;
    a.maxWith(b);
    EXPECT_EQ(a[0], 1u);
    EXPECT_EQ(a[1], 3u);
    EXPECT_EQ(a[2], 7u);
    EXPECT_EQ(a[3], 0u);
    // Merging twice changes nothing.
    VectorClock before = a;
    a.maxWith(b);
    EXPECT_TRUE(a == before);
}

TEST(VectorClock, ToStringIsReadable)
{
    VectorClock a(3);
    a[1] = 42;
    EXPECT_EQ(a.toString(), "[0,42,0]");
}

TEST(Barriers, ManyEpochsAdvanceInLockstep)
{
    Config cfg;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 2;
    cfg.protocol = ProtocolKind::FaultTolerant;
    Cluster cluster(cfg);
    Addr round = cluster.mem().allocPageAligned(8);
    std::uint64_t violations = 0;

    const int kRounds = 30;
    cluster.spawn([&, round](AppThread &t) {
        for (int r = 0; r < kRounds; ++r) {
            if (t.id() == 0)
                t.put<std::uint64_t>(round, r + 1);
            t.barrier();
            // After the barrier everyone must see round r+1.
            std::uint64_t v = t.get<std::uint64_t>(round);
            if (v != static_cast<std::uint64_t>(r + 1))
                violations++;
            t.barrier();
        }
    });
    cluster.run();
    EXPECT_EQ(violations, 0u);
    std::uint64_t final_round = 0;
    cluster.debugRead(round, &final_round, 8);
    EXPECT_EQ(final_round, static_cast<std::uint64_t>(kRounds));
}

TEST(Barriers, UnbalancedArrivalOrderStillSynchronizes)
{
    // Threads reach the barrier at wildly different times; nobody may
    // pass until all have arrived.
    Config cfg;
    cfg.numNodes = 4;
    Cluster cluster(cfg);
    Addr arrived = cluster.mem().allocPageAligned(8 * 4);
    std::uint64_t violations = 0;

    cluster.spawn([&, arrived](AppThread &t) {
        // Stagger arrivals by up to 2 ms.
        t.compute((1 + t.id()) * 500 * kMicrosecond);
        t.lock(2);
        std::uint64_t me = 1;
        t.put<std::uint64_t>(arrived + 8ull * t.id(), me);
        t.unlock(2);
        t.barrier();
        // Everyone must observe all arrivals.
        for (std::uint32_t p = 0; p < t.clusterThreads(); ++p) {
            if (t.get<std::uint64_t>(arrived + 8ull * p) != 1)
                violations++;
        }
        t.barrier();
    });
    cluster.run();
    EXPECT_EQ(violations, 0u);
}

TEST(Counters, ReleasesAndBarriersAreCounted)
{
    Config cfg;
    cfg.numNodes = 4;
    cfg.protocol = ProtocolKind::FaultTolerant;
    Cluster cluster(cfg);
    Addr x = cluster.mem().alloc(8);
    cluster.spawn([x](AppThread &t) {
        for (int i = 0; i < 3; ++i) {
            t.lock(1);
            t.put<std::uint64_t>(x, t.get<std::uint64_t>(x) + 1);
            t.unlock(1);
        }
        t.barrier();
        t.barrier();
    });
    cluster.run();
    Counters c = cluster.totalCounters();
    // 4 threads x 3 releases (plus possible intra-node handoffs that
    // skip the protocol — with 1 thread/node there are none).
    EXPECT_EQ(c.releases, 12u);
    // 2 barriers x 4 node representatives.
    EXPECT_EQ(c.barriers, 8u);
    EXPECT_GT(c.checkpointsTaken, 0u);
    EXPECT_GT(c.diffMsgsSent, 0u);
    EXPECT_EQ(c.failuresDetected, 0u);
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Adaptive home placement (svm/homing): profiler accounting, placement
 * policy (activity floor, hysteresis, cooldown, budget, secondary
 * distinctness), and the end-to-end migration path — a deliberately
 * mis-homed workload must end with its hot pages re-homed at their
 * writers, verified results, and consistent replicas.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/cluster.hh"
#include "svm/homing/policy.hh"
#include "svm/homing/profiler.hh"

namespace rsvm {
namespace {

// --------------------------------------------------------------- profiler

TEST(HomingProfiler, TrafficCombinesDiffBytesAndFetches)
{
    HomingProfiler prof(4, 4096);
    prof.recordDiff(7, 2, 1000, true);
    prof.recordDiff(7, 2, 500, true);
    prof.recordFetch(7, 3);
    const PageProfile *p = prof.find(7);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(prof.traffic(*p, 2), 1500u);
    EXPECT_EQ(prof.traffic(*p, 3), 4096u);
    EXPECT_EQ(prof.traffic(*p, 0), 0u);
}

TEST(HomingProfiler, MisHomedBytesAccumulateAndResetOnDecay)
{
    HomingProfiler prof(2, 4096);
    prof.recordDiff(0, 0, 300, true);
    prof.recordDiff(0, 0, 200, false); // home-local: not mis-homed
    prof.recordDiff(1, 1, 100, true);
    EXPECT_EQ(prof.epochMisHomedBytes(), 400u);
    prof.decay();
    EXPECT_EQ(prof.epochMisHomedBytes(), 0u);
}

TEST(HomingProfiler, DecayHalvesAndDropsEmptyProfiles)
{
    HomingProfiler prof(2, 4096);
    prof.recordDiff(3, 1, 8, true);
    prof.decay(); // 8 -> 4
    ASSERT_NE(prof.find(3), nullptr);
    EXPECT_EQ(prof.traffic(*prof.find(3), 1), 4u);
    prof.decay(); // -> 2
    prof.decay(); // -> 1
    prof.decay(); // -> 0: profile dropped
    EXPECT_EQ(prof.find(3), nullptr);
}

TEST(HomingProfiler, CooldownKeepsProfileAliveThroughDecay)
{
    HomingProfiler prof(2, 4096);
    prof.recordDiff(5, 1, 1, true);
    prof.setCooldown(5, 10);
    prof.noteEpoch(2);
    prof.decay(); // counters hit zero, but cooldown 10 > epoch 2
    EXPECT_NE(prof.find(5), nullptr);
    prof.noteEpoch(11);
    prof.decay(); // cooldown expired and counters empty: dropped
    EXPECT_EQ(prof.find(5), nullptr);
}

// ----------------------------------------------------------------- policy

/** All logical nodes on distinct physical hosts. */
bool
allDistinct(NodeId cand, NodeId other)
{
    return cand != other;
}

Config
policyConfig()
{
    Config cfg;
    cfg.numNodes = 4;
    cfg.homingMinBytes = 100;
    cfg.homingHysteresis = 1.5;
    cfg.homingBudget = 64;
    return cfg;
}

TEST(PlacementPolicy, ElectsDominantWriterAndSwapsOldPrimary)
{
    Config cfg = policyConfig();
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    // Page 0 is initially homed (0, 1); node 2 produces all traffic.
    prof.recordDiff(0, 2, 10000, true);

    PlacementPolicy pol(cfg);
    auto picks = pol.plan(prof, as, 4, true, allDistinct, 1);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0].page, 0u);
    EXPECT_EQ(picks[0].newPrimary, 2u);
    // Old primary preferred as the new secondary: the pair swaps
    // without creating a third copy site.
    EXPECT_EQ(picks[0].newSecondary, 0u);
    EXPECT_EQ(picks[0].score, 10000u);
}

TEST(PlacementPolicy, ActivityFloorKeepsColdPagesPut)
{
    Config cfg = policyConfig();
    cfg.homingMinBytes = 100000;
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    prof.recordDiff(0, 2, 10000, true);

    PlacementPolicy pol(cfg);
    EXPECT_TRUE(pol.plan(prof, as, 4, true, allDistinct, 1).empty());
}

TEST(PlacementPolicy, HysteresisBlocksMarginalWinners)
{
    Config cfg = policyConfig();
    cfg.homingHysteresis = 2.0;
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    // Page 1 is homed at node 1. A challenger with less than 2x the
    // home's traffic must not move the page...
    prof.recordDiff(1, 1, 1000, false);
    prof.recordDiff(1, 2, 1500, true);
    PlacementPolicy pol(cfg);
    EXPECT_TRUE(pol.plan(prof, as, 4, true, allDistinct, 1).empty());

    // ...but a 2.5x challenger does.
    prof.recordDiff(1, 2, 1000, true);
    auto picks = pol.plan(prof, as, 4, true, allDistinct, 1);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0].newPrimary, 2u);
}

TEST(PlacementPolicy, CooldownDefersFreshlyMigratedPages)
{
    Config cfg = policyConfig();
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    prof.recordDiff(0, 2, 10000, true);
    prof.setCooldown(0, 5);

    PlacementPolicy pol(cfg);
    EXPECT_TRUE(pol.plan(prof, as, 4, true, allDistinct, 3).empty());
    EXPECT_EQ(pol.plan(prof, as, 4, true, allDistinct, 5).size(), 1u);
}

TEST(PlacementPolicy, BudgetTruncatesToHighestAdvantage)
{
    Config cfg = policyConfig();
    cfg.homingBudget = 2;
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    // Five mis-homed pages with increasing traffic; only the two
    // hottest may move. Use pages homed at node 0 (0, 4, 8, ...).
    for (PageId i = 0; i < 5; ++i)
        prof.recordDiff(i * 4, 2, 1000 * (i + 1), true);

    PlacementPolicy pol(cfg);
    auto picks = pol.plan(prof, as, 4, true, allDistinct, 1);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0].page, 16u); // score 5000
    EXPECT_EQ(picks[1].page, 12u); // score 4000
}

TEST(PlacementPolicy, SecondaryMustLiveOnDistinctHost)
{
    Config cfg = policyConfig();
    AddressSpace as(cfg, 4);
    HomingProfiler prof(4, cfg.pageSize);
    // Page 0 homed (0, 1); node 3 is the dominant writer, node 1 a
    // lesser writer. Hosts: node 0 is co-hosted with node 3, so the
    // old primary is NOT an eligible secondary — the policy must fall
    // back to the next-best traffic node on a distinct host (node 1).
    prof.recordDiff(0, 3, 10000, true);
    prof.recordDiff(0, 1, 2000, true);
    std::vector<PhysNodeId> host = {2, 1, 2, 2};
    auto eligible = [&host](NodeId cand, NodeId other) {
        return host[cand] != host[other];
    };

    PlacementPolicy pol(cfg);
    auto picks = pol.plan(prof, as, 4, true, eligible, 1);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0].newPrimary, 3u);
    EXPECT_EQ(picks[0].newSecondary, 1u);

    // With every other node co-hosted with the winner, no eligible
    // secondary exists and the page must stay put.
    std::vector<PhysNodeId> onehost = {2, 2, 2, 2};
    auto none = [&onehost](NodeId cand, NodeId other) {
        return onehost[cand] != onehost[other];
    };
    EXPECT_TRUE(pol.plan(prof, as, 4, true, none, 1).empty());
}

// ------------------------------------------------------------ end to end

Config
homingConfig()
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 16u << 20;
    cfg.dynamicHoming = true;
    cfg.homingEpoch = 150 * kMicrosecond;
    cfg.homingMinBytes = 64;
    cfg.homingHysteresis = 1.05;
    cfg.homingCooldownEpochs = 1;
    return cfg;
}

TEST(HomingEndToEnd, MisHomedHotPagesMigrateToTheirWriters)
{
    Config cfg = homingConfig();
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    const std::uint32_t nthreads = cfg.totalThreads();
    Addr base = as.allocPageAligned(
        std::uint64_t(nthreads) * cfg.pageSize);
    // Deliberately mis-home every thread's private page on the next
    // node over: all release diffs start out crossing the wire.
    std::vector<PageId> pages(nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        pages[i] = as.pageOf(base + std::uint64_t(i) * cfg.pageSize);
        as.setPrimaryHome(pages[i], (i + 1) % cfg.numNodes);
    }

    const int iters = 30;
    const Addr cbase = base;
    const std::uint32_t psz = cfg.pageSize;
    cluster.spawn([cbase, psz, iters](AppThread &t) {
        Addr mine = cbase + std::uint64_t(t.id()) * psz;
        for (int i = 1; i <= iters; ++i) {
            t.lock(10 + t.id());
            for (std::uint32_t off = 0; off < 512; off += 8)
                t.put<std::uint64_t>(mine + off,
                                     std::uint64_t(i) * 1000 + off);
            t.unlock(10 + t.id());
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();

    Counters total = cluster.totalCounters();
    EXPECT_GE(total.homeMigrations, 1u) << "no page ever migrated";
    EXPECT_GT(total.migratedBytes, 0u);
    EXPECT_GT(total.misHomedDiffBytes, 0u);
    // The hot pages must have been re-homed at their writers.
    std::uint32_t rehomed = 0;
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        if (as.primaryHome(pages[i]) == i % cfg.numNodes)
            rehomed++;
    }
    EXPECT_GE(rehomed, nthreads / 2)
        << "most single-writer pages should end at their writer";
    // Results stay exact and replicas consistent.
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        for (std::uint32_t off = 0; off < 512; off += 8) {
            std::uint64_t v = 0;
            cluster.debugRead(base + std::uint64_t(i) * psz + off, &v,
                              8);
            EXPECT_EQ(v, std::uint64_t(iters) * 1000 + off)
                << "thread " << i << " offset " << off;
        }
    }
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

TEST(HomingEndToEnd, WellHomedWorkloadDoesNotChurn)
{
    Config cfg = homingConfig();
    Cluster cluster(cfg);
    AddressSpace &as = cluster.mem();
    const std::uint32_t nthreads = cfg.totalThreads();
    Addr base = as.allocPageAligned(
        std::uint64_t(nthreads) * cfg.pageSize);
    for (std::uint32_t i = 0; i < nthreads; ++i)
        as.setPrimaryHome(as.pageOf(base + std::uint64_t(i) *
                                               cfg.pageSize),
                          i % cfg.numNodes);

    const Addr cbase = base;
    const std::uint32_t psz = cfg.pageSize;
    cluster.spawn([cbase, psz](AppThread &t) {
        Addr mine = cbase + std::uint64_t(t.id()) * psz;
        for (int i = 1; i <= 20; ++i) {
            t.lock(10 + t.id());
            t.put<std::uint64_t>(mine, std::uint64_t(i));
            t.unlock(10 + t.id());
            t.compute(20 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();

    // Every page already lives at its only writer: nothing to do.
    EXPECT_EQ(cluster.totalCounters().homeMigrations, 0u);
    EXPECT_EQ(cluster.checkReplicaConsistency(), 0u);
}

} // namespace
} // namespace rsvm

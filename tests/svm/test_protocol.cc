/**
 * @file
 * Integration tests for the SVM protocols (base GeNIMA and the
 * fault-tolerant extension) in the failure-free case: coherence
 * through locks and barriers, multi-writer false sharing, mutual
 * exclusion, intra-SMP lock handoff, and determinism.
 *
 * Parameterized over (protocol, lock algorithm, nodes, threads/node).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "runtime/cluster.hh"

namespace rsvm {
namespace {

struct ProtoCase
{
    ProtocolKind protocol;
    LockAlgo lockAlgo;
    std::uint32_t nodes;
    std::uint32_t threadsPerNode;
};

std::string
caseName(const testing::TestParamInfo<ProtoCase> &info)
{
    const ProtoCase &c = info.param;
    std::string s;
    s += (c.protocol == ProtocolKind::Base) ? "base" : "ft";
    s += (c.lockAlgo == LockAlgo::Queuing) ? "_queue" : "_poll";
    s += "_n" + std::to_string(c.nodes);
    s += "t" + std::to_string(c.threadsPerNode);
    return s;
}

Config
configFor(const ProtoCase &c)
{
    Config cfg;
    cfg.protocol = c.protocol;
    cfg.lockAlgo = c.lockAlgo;
    cfg.numNodes = c.nodes;
    cfg.threadsPerNode = c.threadsPerNode;
    cfg.sharedBytes = 16u << 20;
    return cfg;
}

class ProtocolTest : public testing::TestWithParam<ProtoCase>
{
};

TEST_P(ProtocolTest, ProducerConsumerThroughLock)
{
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    Addr flag = cluster.mem().alloc(8);
    Addr data = cluster.mem().allocPageAligned(4096);
    const LockId kLock = 1;

    cluster.spawn([&](AppThread &t) {
        if (t.id() == 0) {
            for (int i = 0; i < 64; ++i)
                t.put<std::uint64_t>(data + 8 * i, 1000 + i);
            t.lock(kLock);
            t.put<std::uint64_t>(flag, 1);
            t.unlock(kLock);
        } else {
            // Spin on the flag under the lock, then check the data.
            for (;;) {
                t.lock(kLock);
                std::uint64_t f = t.get<std::uint64_t>(flag);
                t.unlock(kLock);
                if (f == 1)
                    break;
                t.compute(10 * kMicrosecond);
            }
            for (int i = 0; i < 64; ++i) {
                EXPECT_EQ(t.get<std::uint64_t>(data + 8 * i),
                          1000u + i)
                    << "thread " << t.id() << " slot " << i;
            }
        }
        t.barrier();
    });
    cluster.run();
}

TEST_P(ProtocolTest, BarrierPublishesAllWrites)
{
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    // One page-aligned slice per thread so homes distribute.
    Addr base = cluster.mem().allocPageAligned(4096 * nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        cluster.mem().setPrimaryHomeRange(base + 4096ull * i, 4096,
                                          i / cfg.threadsPerNode);
    }

    cluster.spawn([&](AppThread &t) {
        Addr mine = base + 4096ull * t.id();
        for (int i = 0; i < 16; ++i)
            t.put<std::uint64_t>(mine + 8 * i, t.id() * 100 + i);
        t.barrier();
        // Everyone reads everyone's slice.
        for (std::uint32_t peer = 0; peer < t.clusterThreads();
             ++peer) {
            Addr theirs = base + 4096ull * peer;
            for (int i = 0; i < 16; ++i) {
                EXPECT_EQ(t.get<std::uint64_t>(theirs + 8 * i),
                          peer * 100u + i)
                    << "reader " << t.id() << " peer " << peer;
            }
        }
        t.barrier();
    });
    cluster.run();
}

TEST_P(ProtocolTest, FalseSharingMergesAtHome)
{
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    // All threads write disjoint words of ONE page.
    Addr page = cluster.mem().allocPageAligned(4096);

    cluster.spawn([&](AppThread &t) {
        std::uint32_t words = 4096 / 8;
        std::uint32_t chunk = words / t.clusterThreads();
        for (std::uint32_t w = t.id() * chunk;
             w < (t.id() + 1) * chunk; ++w)
            t.put<std::uint64_t>(page + 8ull * w, 7'000'000 + w);
        t.barrier();
        for (std::uint32_t w = 0; w < chunk * t.clusterThreads();
             ++w) {
            EXPECT_EQ(t.get<std::uint64_t>(page + 8ull * w),
                      7'000'000u + w)
                << "reader " << t.id() << " word " << w;
        }
        t.barrier();
    });
    cluster.run();
}

TEST_P(ProtocolTest, LockedCounterIsMutuallyExclusive)
{
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    const LockId kLock = 3;
    const int kIters = 25;

    cluster.spawn([&](AppThread &t) {
        for (int i = 0; i < kIters; ++i) {
            t.lock(kLock);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(2 * kMicrosecond);
            t.put<std::uint64_t>(counter, v + 1);
            t.unlock(kLock);
        }
        t.barrier();
        EXPECT_EQ(t.get<std::uint64_t>(counter),
                  static_cast<std::uint64_t>(kIters) *
                      t.clusterThreads());
    });
    cluster.run();
    std::uint64_t final = 0;
    cluster.debugRead(counter, &final, 8);
    EXPECT_EQ(final,
              static_cast<std::uint64_t>(kIters) * cfg.totalThreads());
}

TEST_P(ProtocolTest, ChainedLocksPropagateCausally)
{
    // A token is passed 0 -> 1 -> ... -> N-1 via per-hop locks; each
    // hop adds its id. Causality must carry all previous additions.
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    Addr value = cluster.mem().alloc(8);
    Addr turn = cluster.mem().alloc(8);
    const LockId kLock = 5;

    cluster.spawn([&](AppThread &t) {
        std::uint32_t n = t.clusterThreads();
        for (;;) {
            t.lock(kLock);
            std::uint64_t whose = t.get<std::uint64_t>(turn);
            if (whose >= n) {
                t.unlock(kLock);
                break;
            }
            if (whose == t.id()) {
                std::uint64_t v = t.get<std::uint64_t>(value);
                t.put<std::uint64_t>(value, v + t.id() + 1);
                t.put<std::uint64_t>(turn, whose + 1);
            }
            t.unlock(kLock);
            t.compute(5 * kMicrosecond);
            if (whose >= n)
                break;
        }
        t.barrier();
        std::uint64_t expect = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            expect += i + 1;
        EXPECT_EQ(t.get<std::uint64_t>(value), expect);
    });
    cluster.run();
}

TEST_P(ProtocolTest, RepeatedBarrierPhases)
{
    // Neighbor averaging over several barrier-separated phases: each
    // phase reads values written by a different thread in the prior
    // phase (classic stencil-style dependence).
    Config cfg = configFor(GetParam());
    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    const int kPhases = 5;
    Addr cells = cluster.mem().allocPageAligned(4096 * nthreads);
    auto cell = [&](std::uint32_t i) { return cells + 4096ull * i; };

    cluster.spawn([&](AppThread &t) {
        std::uint32_t n = t.clusterThreads();
        t.put<std::uint64_t>(cell(t.id()), t.id());
        t.barrier();
        for (int phase = 0; phase < kPhases; ++phase) {
            std::uint64_t left =
                t.get<std::uint64_t>(cell((t.id() + n - 1) % n));
            std::uint64_t right =
                t.get<std::uint64_t>(cell((t.id() + 1) % n));
            t.barrier();
            t.put<std::uint64_t>(cell(t.id()), left + right);
            t.barrier();
        }
    });
    cluster.run();

    // Serial reference.
    std::vector<std::uint64_t> ref(nthreads), next(nthreads);
    for (std::uint32_t i = 0; i < nthreads; ++i)
        ref[i] = i;
    for (int phase = 0; phase < kPhases; ++phase) {
        for (std::uint32_t i = 0; i < nthreads; ++i)
            next[i] = ref[(i + nthreads - 1) % nthreads] +
                      ref[(i + 1) % nthreads];
        ref = next;
    }
    for (std::uint32_t i = 0; i < nthreads; ++i) {
        std::uint64_t got = 0;
        cluster.debugRead(cell(i), &got, 8);
        EXPECT_EQ(got, ref[i]) << "cell " << i;
    }
}

TEST_P(ProtocolTest, DeterministicAcrossRuns)
{
    auto once = [&]() -> SimTime {
        Config cfg = configFor(GetParam());
        Cluster cluster(cfg);
        Addr counter = cluster.mem().alloc(8);
        cluster.spawn([&](AppThread &t) {
            for (int i = 0; i < 5; ++i) {
                t.lock(2);
                std::uint64_t v = t.get<std::uint64_t>(counter);
                t.put<std::uint64_t>(counter, v + 1);
                t.unlock(2);
                t.compute(3 * kMicrosecond);
            }
            t.barrier();
        });
        cluster.run();
        return cluster.wallTime();
    };
    EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolTest,
    testing::Values(
        ProtoCase{ProtocolKind::Base, LockAlgo::CentralizedPolling, 4,
                  1},
        ProtoCase{ProtocolKind::Base, LockAlgo::CentralizedPolling, 8,
                  2},
        ProtoCase{ProtocolKind::Base, LockAlgo::Queuing, 4, 1},
        ProtoCase{ProtocolKind::Base, LockAlgo::Queuing, 8, 2},
        ProtoCase{ProtocolKind::FaultTolerant,
                  LockAlgo::CentralizedPolling, 2, 1},
        ProtoCase{ProtocolKind::FaultTolerant,
                  LockAlgo::CentralizedPolling, 4, 1},
        ProtoCase{ProtocolKind::FaultTolerant,
                  LockAlgo::CentralizedPolling, 4, 2},
        ProtoCase{ProtocolKind::FaultTolerant,
                  LockAlgo::CentralizedPolling, 8, 2},
        // The replicated queuing lock the paper implemented before
        // abandoning it (§4.3) — failure-free operation only.
        ProtoCase{ProtocolKind::FaultTolerant, LockAlgo::Queuing, 4,
                  1},
        ProtoCase{ProtocolKind::FaultTolerant, LockAlgo::Queuing, 8,
                  2}),
    caseName);

TEST(ProtocolCounters, FtDiffsHomePagesAndBaseDoesNot)
{
    // FFT-style owner-writes pattern: every node writes only pages it
    // homes. The base protocol sends no diffs for them; the extended
    // protocol diffs everything twice (§5.3.1).
    auto run = [&](ProtocolKind kind) {
        Config cfg;
        cfg.numNodes = 4;
        cfg.protocol = kind;
        Cluster cluster(cfg);
        Addr base = cluster.mem().allocPageAligned(4096 * 4);
        for (PageId i = 0; i < 4; ++i)
            cluster.mem().setPrimaryHome(
                cluster.mem().pageOf(base) + i, i);
        cluster.spawn([&](AppThread &t) {
            Addr mine = base + 4096ull * t.id();
            for (int i = 0; i < 8; ++i)
                t.put<std::uint64_t>(mine + 8 * i, i);
            t.barrier();
        });
        cluster.run();
        return cluster.totalCounters();
    };
    Counters base_counters = run(ProtocolKind::Base);
    Counters ft_counters = run(ProtocolKind::FaultTolerant);
    EXPECT_EQ(base_counters.homePagesDiffed, 0u);
    EXPECT_EQ(base_counters.diffMsgsSent, 0u);
    EXPECT_GT(ft_counters.homePagesDiffed, 0u);
    // Every diff goes to two homes in the FT protocol.
    EXPECT_EQ(ft_counters.diffMsgsSent, 2 * ft_counters.pagesDiffed);
    EXPECT_GT(ft_counters.checkpointsTaken, 0u);
    EXPECT_EQ(base_counters.checkpointsTaken, 0u);
}

TEST(ProtocolMemory, FtRoughlyDoublesSharedMemory)
{
    // §1: "memory for shared data is roughly doubled". Count page
    // buffers (working + twins + committed + tentative) after an
    // owner-writes run.
    auto run = [&](ProtocolKind kind) -> std::size_t {
        Config cfg;
        cfg.numNodes = 4;
        cfg.protocol = kind;
        Cluster cluster(cfg);
        Addr base = cluster.mem().allocPageAligned(4096 * 8);
        cluster.spawn([&](AppThread &t) {
            for (int p = 0; p < 8; ++p) {
                if (static_cast<std::uint32_t>(p) % 4 == t.id())
                    t.put<std::uint64_t>(base + 4096ull * p, p);
            }
            t.barrier();
        });
        cluster.run();
        // Count allocated page-sized buffers across the cluster. The
        // base protocol's homeBytes aliases the working copy, so only
        // count the replicated (committed) copies for the FT run.
        std::size_t pages = 0;
        for (NodeId n = 0; n < 4; ++n) {
            SvmNode &node = cluster.node(n);
            for (auto &[pid, e] : node.pageTable())
                pages += (e.data ? 1 : 0) + (e.twin ? 1 : 0);
            if (kind == ProtocolKind::FaultTolerant) {
                for (PageId pid = 0;
                     pid < cluster.mem().numPages(); ++pid) {
                    if (node.homeBytes(pid))
                        pages += 1;
                }
            }
        }
        return pages;
    };
    std::size_t base_pages = run(ProtocolKind::Base);
    std::size_t ft_pages = run(ProtocolKind::FaultTolerant);
    EXPECT_GT(ft_pages, base_pages)
        << "replication should increase shared-memory footprint";
}

} // namespace
} // namespace rsvm

/**
 * @file
 * Regression tests for sharing patterns that historically exposed
 * protocol bugs during development:
 *
 *  - strided scatter/gather across arrays (caught the stale fetch
 *    install: a reply that was version-adequate at request time
 *    installing after newer write notices arrived);
 *  - packed per-thread rows under fine-grained locks (caught the
 *    8-byte diff granule clobbering adjacent 4-byte writes);
 *  - read-modify-writes under many locks from SMP nodes (caught the
 *    flushed-pending-diff visibility hole and the lost intra-node
 *    fault-in race).
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/cluster.hh"

namespace rsvm {
namespace {

struct ShareCase
{
    ProtocolKind protocol;
    std::uint32_t nodes;
    std::uint32_t tpn;
};

std::string
shareName(const testing::TestParamInfo<ShareCase> &info)
{
    const ShareCase &c = info.param;
    std::string s =
        (c.protocol == ProtocolKind::Base) ? "base" : "ft";
    return s + "_n" + std::to_string(c.nodes) + "t" +
           std::to_string(c.tpn);
}

class SharingTest : public testing::TestWithParam<ShareCase>
{
  protected:
    Config
    config() const
    {
        Config cfg;
        cfg.protocol = GetParam().protocol;
        cfg.numNodes = GetParam().nodes;
        cfg.threadsPerNode = GetParam().tpn;
        cfg.sharedBytes = 16u << 20;
        return cfg;
    }
};

TEST_P(SharingTest, StridedScatterGatherRoundTrips)
{
    Config cfg = config();
    Cluster cluster(cfg);
    const std::uint32_t n = 8192;
    std::uint32_t nthreads = cfg.totalThreads();
    Addr a = cluster.mem().allocPageAligned(n * 4ull);
    Addr b = cluster.mem().allocPageAligned(n * 4ull);
    std::uint64_t errors = 0;

    cluster.spawn([&, a, b](AppThread &t) {
        std::uint32_t nt = t.clusterThreads();
        std::uint32_t chunk = n / nt;
        std::uint32_t lo = t.id() * chunk;
        for (std::uint32_t i = lo; i < lo + chunk; ++i)
            t.put<std::uint32_t>(a + 4ull * i, i);
        t.barrier();
        for (int pass = 0; pass < 3; ++pass) {
            // Scatter own contiguous chunk to strided positions.
            for (std::uint32_t k = 0; k < chunk; ++k) {
                std::uint32_t v =
                    t.get<std::uint32_t>(a + 4ull * (lo + k));
                t.put<std::uint32_t>(b + 4ull * (k * nt + t.id()), v);
            }
            t.barrier();
            // Gather back and check.
            for (std::uint32_t k = 0; k < chunk; ++k) {
                std::uint32_t v = t.get<std::uint32_t>(
                    b + 4ull * (k * nt + t.id()));
                if (v != lo + k)
                    errors++;
                t.put<std::uint32_t>(a + 4ull * (lo + k), v);
            }
            t.barrier();
        }
    });
    cluster.run();
    EXPECT_EQ(errors, 0u);
}

TEST_P(SharingTest, PackedRowsPublishAcrossBarriers)
{
    Config cfg = config();
    Cluster cluster(cfg);
    std::uint32_t nthreads = cfg.totalThreads();
    // All rows packed into one page: adjacent 4-byte values written by
    // different nodes (the diff-granularity regression).
    std::uint32_t row_words = 4096 / 4 / nthreads;
    Addr rows = cluster.mem().allocPageAligned(4096);
    std::uint64_t errors = 0;

    cluster.spawn([&, rows](AppThread &t) {
        std::uint32_t nt = t.clusterThreads();
        std::uint32_t rw = 4096 / 4 / nt;
        for (int pass = 0; pass < 4; ++pass) {
            for (std::uint32_t w = 0; w < rw; ++w) {
                t.put<std::uint32_t>(
                    rows + 4ull * (t.id() * rw + w),
                    pass * 100000 + t.id() * 1000 + w);
            }
            t.barrier();
            for (std::uint32_t peer = 0; peer < nt; ++peer) {
                for (std::uint32_t w = 0; w < rw; ++w) {
                    std::uint32_t v = t.get<std::uint32_t>(
                        rows + 4ull * (peer * rw + w));
                    if (v != pass * 100000u + peer * 1000u + w)
                        errors++;
                }
            }
            t.barrier();
        }
    });
    cluster.run();
    EXPECT_EQ(errors, 0u);
    (void)row_words;
}

TEST_P(SharingTest, ManyLockRmwIsExactlyOnce)
{
    Config cfg = config();
    Cluster cluster(cfg);
    const int kCounters = 48, kIters = 60;
    Addr base = cluster.mem().allocPageAligned(kCounters * 8);
    std::uint32_t nthreads = cfg.totalThreads();

    // Host-precomputed deterministic access sequences.
    std::vector<std::vector<int>> seq(nthreads);
    std::vector<std::uint64_t> expect(kCounters, 0);
    for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
        Rng r(777 + tid);
        for (int i = 0; i < kIters; ++i) {
            int c = static_cast<int>(r.below(kCounters));
            seq[tid].push_back(c);
            expect[c]++;
        }
    }

    cluster.spawn([&, base](AppThread &t) {
        for (int i = 0; i < kIters; ++i) {
            int c = seq[t.id()][i];
            t.lock(400 + c);
            std::uint64_t v = t.get<std::uint64_t>(base + 8ull * c);
            t.put<std::uint64_t>(base + 8ull * c, v + 1);
            t.unlock(400 + c);
            t.compute(3 * kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    for (int c = 0; c < kCounters; ++c) {
        std::uint64_t v = 0;
        cluster.debugRead(base + 8ull * c, &v, 8);
        ASSERT_EQ(v, expect[c]) << "counter " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SharingTest,
    testing::Values(ShareCase{ProtocolKind::Base, 4, 1},
                    ShareCase{ProtocolKind::Base, 4, 2},
                    ShareCase{ProtocolKind::Base, 8, 2},
                    ShareCase{ProtocolKind::FaultTolerant, 4, 1},
                    ShareCase{ProtocolKind::FaultTolerant, 4, 2},
                    ShareCase{ProtocolKind::FaultTolerant, 8, 2}),
    shareName);

} // namespace
} // namespace rsvm

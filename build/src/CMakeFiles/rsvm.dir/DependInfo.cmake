
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/config.cc" "src/CMakeFiles/rsvm.dir/base/config.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/base/config.cc.o.d"
  "/root/repo/src/base/log.cc" "src/CMakeFiles/rsvm.dir/base/log.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/base/log.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/rsvm.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/base/stats.cc.o.d"
  "/root/repo/src/ftsvm/checkpoint.cc" "src/CMakeFiles/rsvm.dir/ftsvm/checkpoint.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/ftsvm/checkpoint.cc.o.d"
  "/root/repo/src/ftsvm/ft_protocol.cc" "src/CMakeFiles/rsvm.dir/ftsvm/ft_protocol.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/ftsvm/ft_protocol.cc.o.d"
  "/root/repo/src/ftsvm/recovery.cc" "src/CMakeFiles/rsvm.dir/ftsvm/recovery.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/ftsvm/recovery.cc.o.d"
  "/root/repo/src/mem/addrspace.cc" "src/CMakeFiles/rsvm.dir/mem/addrspace.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/mem/addrspace.cc.o.d"
  "/root/repo/src/mem/diff.cc" "src/CMakeFiles/rsvm.dir/mem/diff.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/mem/diff.cc.o.d"
  "/root/repo/src/mem/pagetable.cc" "src/CMakeFiles/rsvm.dir/mem/pagetable.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/mem/pagetable.cc.o.d"
  "/root/repo/src/net/failure.cc" "src/CMakeFiles/rsvm.dir/net/failure.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/net/failure.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/rsvm.dir/net/network.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/net/network.cc.o.d"
  "/root/repo/src/net/nic.cc" "src/CMakeFiles/rsvm.dir/net/nic.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/net/nic.cc.o.d"
  "/root/repo/src/net/vmmc.cc" "src/CMakeFiles/rsvm.dir/net/vmmc.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/net/vmmc.cc.o.d"
  "/root/repo/src/runtime/app_api.cc" "src/CMakeFiles/rsvm.dir/runtime/app_api.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/runtime/app_api.cc.o.d"
  "/root/repo/src/runtime/cluster.cc" "src/CMakeFiles/rsvm.dir/runtime/cluster.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/runtime/cluster.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/rsvm.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/fiber.cc" "src/CMakeFiles/rsvm.dir/sim/fiber.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/fiber.cc.o.d"
  "/root/repo/src/sim/thread.cc" "src/CMakeFiles/rsvm.dir/sim/thread.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/sim/thread.cc.o.d"
  "/root/repo/src/svm/base_protocol.cc" "src/CMakeFiles/rsvm.dir/svm/base_protocol.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/svm/base_protocol.cc.o.d"
  "/root/repo/src/svm/locks.cc" "src/CMakeFiles/rsvm.dir/svm/locks.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/svm/locks.cc.o.d"
  "/root/repo/src/svm/protocol.cc" "src/CMakeFiles/rsvm.dir/svm/protocol.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/svm/protocol.cc.o.d"
  "/root/repo/src/svm/timestamp.cc" "src/CMakeFiles/rsvm.dir/svm/timestamp.cc.o" "gcc" "src/CMakeFiles/rsvm.dir/svm/timestamp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

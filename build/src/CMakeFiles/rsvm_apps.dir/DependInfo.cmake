
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_common.cc" "src/CMakeFiles/rsvm_apps.dir/apps/app_common.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/app_common.cc.o.d"
  "/root/repo/src/apps/fft.cc" "src/CMakeFiles/rsvm_apps.dir/apps/fft.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/fft.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/CMakeFiles/rsvm_apps.dir/apps/lu.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/lu.cc.o.d"
  "/root/repo/src/apps/radix.cc" "src/CMakeFiles/rsvm_apps.dir/apps/radix.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/radix.cc.o.d"
  "/root/repo/src/apps/volrend.cc" "src/CMakeFiles/rsvm_apps.dir/apps/volrend.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/volrend.cc.o.d"
  "/root/repo/src/apps/water_nsq.cc" "src/CMakeFiles/rsvm_apps.dir/apps/water_nsq.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/water_nsq.cc.o.d"
  "/root/repo/src/apps/water_sp.cc" "src/CMakeFiles/rsvm_apps.dir/apps/water_sp.cc.o" "gcc" "src/CMakeFiles/rsvm_apps.dir/apps/water_sp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rsvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rsvm_apps.dir/apps/app_common.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/app_common.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/fft.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/fft.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/lu.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/lu.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/radix.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/radix.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/volrend.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/volrend.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/water_nsq.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/water_nsq.cc.o.d"
  "CMakeFiles/rsvm_apps.dir/apps/water_sp.cc.o"
  "CMakeFiles/rsvm_apps.dir/apps/water_sp.cc.o.d"
  "librsvm_apps.a"
  "librsvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

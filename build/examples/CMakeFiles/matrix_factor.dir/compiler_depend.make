# Empty compiler generated dependencies file for matrix_factor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/matrix_factor.dir/matrix_factor.cpp.o"
  "CMakeFiles/matrix_factor.dir/matrix_factor.cpp.o.d"
  "matrix_factor"
  "matrix_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/t_sim[1]_include.cmake")
include("/root/repo/build/tests/t_net[1]_include.cmake")
include("/root/repo/build/tests/t_mem[1]_include.cmake")
include("/root/repo/build/tests/t_protocol[1]_include.cmake")
include("/root/repo/build/tests/t_failure[1]_include.cmake")
include("/root/repo/build/tests/t_apps[1]_include.cmake")
include("/root/repo/build/tests/t_sharing[1]_include.cmake")
include("/root/repo/build/tests/t_ckpt[1]_include.cmake")
include("/root/repo/build/tests/t_timestamp[1]_include.cmake")
include("/root/repo/build/tests/t_invariants[1]_include.cmake")
include("/root/repo/build/tests/t_net_edge[1]_include.cmake")
include("/root/repo/build/tests/t_chaos[1]_include.cmake")
include("/root/repo/build/tests/t_restartable[1]_include.cmake")

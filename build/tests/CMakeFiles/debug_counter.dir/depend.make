# Empty dependencies file for debug_counter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/debug_counter.dir/__/tools/debug_counter.cc.o"
  "CMakeFiles/debug_counter.dir/__/tools/debug_counter.cc.o.d"
  "debug_counter"
  "debug_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

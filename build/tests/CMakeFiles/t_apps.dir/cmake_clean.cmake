file(REMOVE_RECURSE
  "CMakeFiles/t_apps.dir/apps/test_apps.cc.o"
  "CMakeFiles/t_apps.dir/apps/test_apps.cc.o.d"
  "t_apps"
  "t_apps.pdb"
  "t_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for t_apps.
# This may be replaced when dependencies are built.

# Empty dependencies file for t_invariants.
# This may be replaced when dependencies are built.

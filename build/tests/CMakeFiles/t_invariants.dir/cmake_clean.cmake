file(REMOVE_RECURSE
  "CMakeFiles/t_invariants.dir/ftsvm/test_invariants.cc.o"
  "CMakeFiles/t_invariants.dir/ftsvm/test_invariants.cc.o.d"
  "t_invariants"
  "t_invariants.pdb"
  "t_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

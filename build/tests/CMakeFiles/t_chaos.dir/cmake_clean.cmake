file(REMOVE_RECURSE
  "CMakeFiles/t_chaos.dir/properties/test_chaos.cc.o"
  "CMakeFiles/t_chaos.dir/properties/test_chaos.cc.o.d"
  "t_chaos"
  "t_chaos.pdb"
  "t_chaos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for t_chaos.
# This may be replaced when dependencies are built.

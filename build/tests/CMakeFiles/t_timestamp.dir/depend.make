# Empty dependencies file for t_timestamp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_timestamp.dir/svm/test_timestamp.cc.o"
  "CMakeFiles/t_timestamp.dir/svm/test_timestamp.cc.o.d"
  "t_timestamp"
  "t_timestamp.pdb"
  "t_timestamp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/t_sim.dir/sim/test_sim.cc.o"
  "CMakeFiles/t_sim.dir/sim/test_sim.cc.o.d"
  "t_sim"
  "t_sim.pdb"
  "t_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for t_sim.
# This may be replaced when dependencies are built.

# Empty dependencies file for t_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_mem.dir/mem/test_mem.cc.o"
  "CMakeFiles/t_mem.dir/mem/test_mem.cc.o.d"
  "t_mem"
  "t_mem.pdb"
  "t_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

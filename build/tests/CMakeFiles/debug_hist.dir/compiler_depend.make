# Empty compiler generated dependencies file for debug_hist.
# This may be replaced when dependencies are built.

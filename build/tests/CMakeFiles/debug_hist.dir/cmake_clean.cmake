file(REMOVE_RECURSE
  "CMakeFiles/debug_hist.dir/__/tools/debug_hist.cc.o"
  "CMakeFiles/debug_hist.dir/__/tools/debug_hist.cc.o.d"
  "debug_hist"
  "debug_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

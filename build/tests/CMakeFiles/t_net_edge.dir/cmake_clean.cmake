file(REMOVE_RECURSE
  "CMakeFiles/t_net_edge.dir/net/test_net_edge.cc.o"
  "CMakeFiles/t_net_edge.dir/net/test_net_edge.cc.o.d"
  "t_net_edge"
  "t_net_edge.pdb"
  "t_net_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_net_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for t_net_edge.
# This may be replaced when dependencies are built.

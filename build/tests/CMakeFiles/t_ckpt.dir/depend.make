# Empty dependencies file for t_ckpt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_ckpt.dir/ftsvm/test_ckpt.cc.o"
  "CMakeFiles/t_ckpt.dir/ftsvm/test_ckpt.cc.o.d"
  "t_ckpt"
  "t_ckpt.pdb"
  "t_ckpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for t_failure.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_failure.dir/ftsvm/test_failure.cc.o"
  "CMakeFiles/t_failure.dir/ftsvm/test_failure.cc.o.d"
  "t_failure"
  "t_failure.pdb"
  "t_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/t_protocol.dir/svm/test_protocol.cc.o"
  "CMakeFiles/t_protocol.dir/svm/test_protocol.cc.o.d"
  "t_protocol"
  "t_protocol.pdb"
  "t_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for t_protocol.
# This may be replaced when dependencies are built.

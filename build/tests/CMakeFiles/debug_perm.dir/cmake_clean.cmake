file(REMOVE_RECURSE
  "CMakeFiles/debug_perm.dir/__/tools/debug_perm.cc.o"
  "CMakeFiles/debug_perm.dir/__/tools/debug_perm.cc.o.d"
  "debug_perm"
  "debug_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

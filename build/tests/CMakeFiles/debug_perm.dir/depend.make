# Empty dependencies file for debug_perm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_net.dir/net/test_net.cc.o"
  "CMakeFiles/t_net.dir/net/test_net.cc.o.d"
  "t_net"
  "t_net.pdb"
  "t_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for t_net.
# This may be replaced when dependencies are built.

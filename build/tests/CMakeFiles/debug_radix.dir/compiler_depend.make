# Empty compiler generated dependencies file for debug_radix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/debug_radix.dir/__/tools/debug_radix.cc.o"
  "CMakeFiles/debug_radix.dir/__/tools/debug_radix.cc.o.d"
  "debug_radix"
  "debug_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

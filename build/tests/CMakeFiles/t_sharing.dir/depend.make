# Empty dependencies file for t_sharing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/t_sharing.dir/svm/test_sharing.cc.o"
  "CMakeFiles/t_sharing.dir/svm/test_sharing.cc.o.d"
  "t_sharing"
  "t_sharing.pdb"
  "t_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

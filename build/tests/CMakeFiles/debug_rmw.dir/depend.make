# Empty dependencies file for debug_rmw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/debug_rmw.dir/__/tools/debug_rmw.cc.o"
  "CMakeFiles/debug_rmw.dir/__/tools/debug_rmw.cc.o.d"
  "debug_rmw"
  "debug_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/debug_wsp.dir/__/tools/debug_wsp.cc.o"
  "CMakeFiles/debug_wsp.dir/__/tools/debug_wsp.cc.o.d"
  "debug_wsp"
  "debug_wsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_wsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

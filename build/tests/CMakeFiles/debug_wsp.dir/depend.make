# Empty dependencies file for debug_wsp.
# This may be replaced when dependencies are built.

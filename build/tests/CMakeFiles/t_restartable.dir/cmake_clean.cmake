file(REMOVE_RECURSE
  "CMakeFiles/t_restartable.dir/sim/test_restartable.cc.o"
  "CMakeFiles/t_restartable.dir/sim/test_restartable.cc.o.d"
  "t_restartable"
  "t_restartable.pdb"
  "t_restartable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_restartable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

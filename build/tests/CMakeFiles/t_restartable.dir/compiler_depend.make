# Empty compiler generated dependencies file for t_restartable.
# This may be replaced when dependencies are built.

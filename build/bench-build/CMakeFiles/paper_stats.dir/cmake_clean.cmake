file(REMOVE_RECURSE
  "../bench/paper_stats"
  "../bench/paper_stats.pdb"
  "CMakeFiles/paper_stats.dir/paper_stats.cc.o"
  "CMakeFiles/paper_stats.dir/paper_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

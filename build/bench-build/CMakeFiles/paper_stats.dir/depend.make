# Empty dependencies file for paper_stats.
# This may be replaced when dependencies are built.

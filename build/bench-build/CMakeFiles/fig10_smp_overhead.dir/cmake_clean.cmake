file(REMOVE_RECURSE
  "../bench/fig10_smp_overhead"
  "../bench/fig10_smp_overhead.pdb"
  "CMakeFiles/fig10_smp_overhead.dir/fig10_smp_overhead.cc.o"
  "CMakeFiles/fig10_smp_overhead.dir/fig10_smp_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_smp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

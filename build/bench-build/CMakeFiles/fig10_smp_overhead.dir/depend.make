# Empty dependencies file for fig10_smp_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/recovery_time"
  "../bench/recovery_time.pdb"
  "CMakeFiles/recovery_time.dir/recovery_time.cc.o"
  "CMakeFiles/recovery_time.dir/recovery_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

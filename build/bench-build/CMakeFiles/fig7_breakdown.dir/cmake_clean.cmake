file(REMOVE_RECURSE
  "../bench/fig7_breakdown"
  "../bench/fig7_breakdown.pdb"
  "CMakeFiles/fig7_breakdown.dir/fig7_breakdown.cc.o"
  "CMakeFiles/fig7_breakdown.dir/fig7_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

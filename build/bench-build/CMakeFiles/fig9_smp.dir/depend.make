# Empty dependencies file for fig9_smp.
# This may be replaced when dependencies are built.

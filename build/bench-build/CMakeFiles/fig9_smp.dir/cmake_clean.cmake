file(REMOVE_RECURSE
  "../bench/fig9_smp"
  "../bench/fig9_smp.pdb"
  "CMakeFiles/fig9_smp.dir/fig9_smp.cc.o"
  "CMakeFiles/fig9_smp.dir/fig9_smp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig8_overhead"
  "../bench/fig8_overhead.pdb"
  "CMakeFiles/fig8_overhead.dir/fig8_overhead.cc.o"
  "CMakeFiles/fig8_overhead.dir/fig8_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/batching_ablation"
  "../bench/batching_ablation.pdb"
  "CMakeFiles/batching_ablation.dir/batching_ablation.cc.o"
  "CMakeFiles/batching_ablation.dir/batching_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

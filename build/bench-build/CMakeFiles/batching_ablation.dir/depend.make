# Empty dependencies file for batching_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/postqueue_sweep"
  "../bench/postqueue_sweep.pdb"
  "CMakeFiles/postqueue_sweep.dir/postqueue_sweep.cc.o"
  "CMakeFiles/postqueue_sweep.dir/postqueue_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postqueue_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for postqueue_sweep.
# This may be replaced when dependencies are built.

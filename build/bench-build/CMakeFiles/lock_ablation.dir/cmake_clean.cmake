file(REMOVE_RECURSE
  "../bench/lock_ablation"
  "../bench/lock_ablation.pdb"
  "CMakeFiles/lock_ablation.dir/lock_ablation.cc.o"
  "CMakeFiles/lock_ablation.dir/lock_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lock_ablation.
# This may be replaced when dependencies are built.

/**
 * @file
 * Deterministic fault-injection campaign orchestrator.
 *
 * Enumerates kill schedules — every release-path failpoint at one or
 * two occurrences on a victim node, and (with --max-kills >= 2)
 * double-kill schedules pairing a release-path kill with a second kill
 * of the victim's BACKUP at every recovery-path failpoint (the
 * backup-chain case) — and runs each schedule in-process against a
 * real application kernel, verifying the final shared state against
 * the serial reference.
 *
 * Homing scenarios additionally enable the adaptive-placement
 * subsystem with scrambled initial homes (so live migrations are
 * guaranteed in flight) and kill at the migration:* failpoints —
 * singles at every handoff step, migration-then-kill doubles (a
 * migration-step death whose recovery cycle is then hit at every
 * recovery failpoint) and kill-during-migration doubles (a
 * release-path death followed by a second death at a post-recovery
 * migration step).
 *
 * Every scenario must end in one of three clean outcomes:
 *  - "pass":          the run completed and verified bit-exact;
 *  - "unrecoverable": recovery declared a clean ClusterLostError
 *                     (acceptable: the schedule destroyed all copies);
 *  - "not-triggered": the armed failpoint was never reached.
 * A verification mismatch, unexpected exception, or crash is "fail"
 * and makes the process exit non-zero. Asserts abort the process,
 * which CI reports as failure — the campaign's core claim is that no
 * schedule can crash the runtime.
 *
 * With --net-faults RATE every scenario additionally runs on a lossy
 * wire (drop = dup = reorder = RATE per message, plus delivery
 * jitter), so each kill schedule also exercises the reliable
 * transport's retransmission and dedup machinery. Two kinds of
 * kill-free scenario join the matrix: a pure-loss baseline per app
 * (lossy wire, nobody dies, bit-exact result required) and a
 * false-suspicion scenario per app (a node's links stalled past the
 * failure detector's lease: the alive-but-silent node must be fenced,
 * converted to a clean fail-stop kill, and the run must still verify).
 *
 * With --join the matrix additionally exercises elastic membership
 * (runtime/membership): the victim dies early and is scheduled to
 * rejoin — after the recovery pass (join-after-kill), in the window
 * between its death and the detector's declaration (the join must
 * queue behind the pass), and with a second kill armed at each join:*
 * failpoint on both the joiner (the join must roll back) and a
 * bystander (the join must abort and requeue behind the new recovery).
 * A join armed but never reached — the workload finished first — is
 * "not-triggered", like any unfired failpoint.
 *
 * With --kill-all the matrix adds whole-cluster-loss scenarios per
 * app: every physical node is killed mid-run (simultaneously and
 * staggered). With the persistence tier enabled the run must cold-
 * restart from the persisted watermark and still verify bit-exact —
 * including with a persist:* failpoint killing a node at every tier
 * stage (enqueue, drain, watermark advance, restart scan, rebuild).
 * With the tier disabled the same schedule must end in a clean,
 * reason-coded ClusterLostError, never a crash.
 *
 * Every scenario runs under a wall-clock watchdog (--watchdog SECS,
 * default 180, 0 disables): a hung scenario kills the process with
 * exit code 2 instead of wedging CI.
 *
 * Usage:
 *   fault_campaign [--apps fft,lu] [--max-kills 2] [--nodes 4]
 *                  [--net-faults RATE] [--join] [--kill-all]
 *                  [--watchdog SECS] [--out matrix.json]
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/app_common.hh"
#include "net/failure.hh"
#include "runtime/cluster.hh"
#include "runtime/persist_manager.hh"

namespace {

using namespace rsvm;

// The victim and (initial) backup of the victim: logical node n
// starts on phys n with backup n+1.
constexpr PhysNodeId kVictim = 2;
constexpr PhysNodeId kBackup = 3;

struct Kill
{
    PhysNodeId node;
    const char *point;
    std::uint64_t occurrence;
};

struct Scenario
{
    std::string app;
    std::vector<Kill> kills;
    /** Run with dynamicHoming + scrambled homes (migration:* points). */
    bool homing = false;
    /**
     * Stall every link touching the victim for a multi-lease window:
     * the node is alive but silent, so the failure detector must
     * falsely suspect it, fence it, and convert it to a clean kill.
     */
    bool stall = false;
    /**
     * Kill the victim at 2 ms, then schedule its rejoin at joinAt.
     * Entries in @c kills are then join:* failpoints armed on the
     * joiner or a bystander.
     */
    bool join = false;
    SimTime joinAt = 0;
    /**
     * Kill EVERY physical node at 3 ms (+ node index * killAllStagger).
     * With @c persist the cluster must cold-restart from the durable
     * watermark and verify; without it the run must end in a clean
     * ClusterLostError. Entries in @c kills may arm persist:* points
     * for an extra death at a tier stage.
     */
    bool killAll = false;
    SimTime killAllStagger = 0;
    /** Enable the async persistence tier. */
    bool persist = false;
};

struct Outcome
{
    std::string verdict; // pass | unrecoverable | not-triggered | fail
    std::string detail;
    std::size_t killsFired = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t restarts = 0;
    std::uint64_t migrations = 0;
    std::uint64_t migrationsRolledBack = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t dupDrops = 0;
    std::uint64_t staleEpochRejected = 0;
    std::uint64_t falseSuspicions = 0;
    std::uint64_t joinsCompleted = 0;
    std::uint64_t joinsRolledBack = 0;
    std::uint64_t bulkTransferBytes = 0;
    std::string lossCode; // empty unless a ClusterLostError was seen
    std::uint64_t coldRestarts = 0;
    std::uint64_t coldRestartAttempts = 0;
    std::uint64_t watermark = 0;
    std::uint64_t persistRecordsDurable = 0;
    std::uint64_t persistRecordsDropped = 0;
    std::uint64_t persistPartialsDiscarded = 0;
};

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

Outcome
runScenario(const Scenario &sc, std::uint32_t nodes, double net_rate)
{
    Outcome out;
    try {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = nodes;
        cfg.sharedBytes = 64u << 20;
        if (net_rate > 0.0) {
            cfg.netDropProb = net_rate;
            cfg.netDupProb = net_rate;
            cfg.netReorderProb = net_rate;
            cfg.netJitterMax = 20 * kMicrosecond;
        }
        if (sc.homing) {
            cfg.dynamicHoming = true;
            // Dense epochs and a low floor keep migrations in flight
            // for the whole run, so the armed points actually land
            // inside handoffs.
            cfg.homingEpoch = 200 * kMicrosecond;
            cfg.homingMinBytes = 512;
            cfg.homingHysteresis = 1.1;
            cfg.homingCooldownEpochs = 1;
        }
        if (sc.persist) {
            cfg.persistEnabled = true;
            // Dense capture epochs so several are durable before the
            // 3 ms whole-cluster kill lands.
            cfg.persistEpoch = 500 * kMicrosecond;
        }

        apps::AppParams params = apps::defaultParams(sc.app);
        apps::AppInstance inst = apps::makeApp(sc.app, params);

        Cluster cluster(cfg);
        for (const Kill &k : sc.kills)
            cluster.injector().armFailpoint(k.node, k.point,
                                            k.occurrence);
        if (sc.stall) {
            // Three leases of silence (heartbeatPeriod 250us *
            // missedLeases 4 = 1ms lease) starting mid-workload.
            cluster.network().faults().stallNode(
                2, 1 * kMillisecond, 4 * kMillisecond);
        }
        if (sc.join) {
            cluster.injector().killAt(kVictim, 2 * kMillisecond);
            cluster.joinManager()->scheduleJoin(sc.joinAt, kVictim);
        }
        if (sc.killAll) {
            for (PhysNodeId p = 0; p < nodes; ++p)
                cluster.injector().killAt(
                    p, 3 * kMillisecond + p * sc.killAllStagger);
        }
        inst.setup(cluster);
        if (sc.homing) {
            // Scramble the app's tuned placement round-robin so the
            // policy has real mis-homed traffic to chase.
            AddressSpace &as = cluster.mem();
            std::uint64_t used = as.used();
            PageId last = as.pageOf(used == 0 ? 0 : used - 1);
            for (PageId p = 0; p <= last; ++p)
                as.setPrimaryHome(p, p % cfg.numNodes);
        }
        cluster.spawn(inst.threadFn);
        bool restarted = false;
        try {
            cluster.run();
        } catch (const ClusterLostError &e) {
            if (!(sc.killAll && sc.persist))
                throw;
            // The expected whole-cluster loss: restart from the
            // durable watermark and run the application to completion.
            out.lossCode = lossReasonName(e.code());
            cluster.coldRestart();
            restarted = true;
            cluster.run();
        }

        out.killsFired = cluster.injector().killed().size();
        Counters c = cluster.totalCounters();
        out.recoveries = c.recoveries;
        out.restarts = c.recoveryRestarts;
        out.migrations = c.homeMigrations;
        out.migrationsRolledBack = c.migrationsRolledBack;
        out.retransmits = c.retransmits;
        out.dupDrops = c.dupDrops;
        out.staleEpochRejected = c.staleEpochRejected;
        out.falseSuspicions = c.falseSuspicionsFenced;
        out.joinsCompleted = c.rejoins;
        out.joinsRolledBack = c.joinsRolledBack;
        out.bulkTransferBytes = c.bulkTransferBytes;
        out.coldRestarts = c.coldRestarts;
        out.coldRestartAttempts = c.coldRestartAttempts;
        out.persistRecordsDurable = c.persistRecordsDurable;
        out.persistRecordsDropped = c.persistRecordsDropped;
        out.persistPartialsDiscarded = c.persistPartialsDiscarded;
        if (const PersistManager *pm = cluster.persistManager())
            out.watermark = pm->watermark();
        if (sc.killAll && sc.persist && !restarted) {
            // The workload beat the 3 ms whole-cluster kill; nothing
            // was proven (tiny configs only — must not count as pass).
            out.verdict = "not-triggered";
            out.detail = "workload finished before the kill-all";
            return out;
        }
        if (!sc.killAll && !sc.kills.empty() && out.killsFired == 0) {
            out.verdict = "not-triggered";
            return out;
        }
        if (sc.join && c.joins == 0) {
            out.verdict = "not-triggered";
            out.detail = "join never started (workload finished first)";
            return out;
        }
        if (sc.join && !sc.kills.empty() &&
            out.killsFired < sc.kills.size() + 1) {
            // The timed kill always fires; the armed join point only
            // fires if a join actually reached that step.
            out.verdict = "not-triggered";
            out.detail = "armed join point never fired";
            return out;
        }
        if (sc.stall && out.falseSuspicions == 0) {
            // The run outlasted the stall without a declaration; the
            // scenario proved nothing (but also must not fail).
            out.verdict = "not-triggered";
            out.detail = "stall never tripped the detector";
            return out;
        }
        apps::AppResult r = inst.verify(cluster);
        if (r.ok) {
            out.verdict = "pass";
        } else {
            out.verdict = "fail";
            out.detail = r.detail;
        }
    } catch (const ClusterLostError &e) {
        // The clean unrecoverable outcome: the schedule really did
        // destroy every copy of some state, and recovery said so.
        out.verdict = "unrecoverable";
        out.detail = e.what();
        out.lossCode = lossReasonName(e.code());
    } catch (const std::exception &e) {
        out.verdict = "fail";
        out.detail = std::string("unexpected exception: ") + e.what();
    }
    return out;
}

// ---- Per-scenario wall-clock watchdog ---------------------------------
// A wedged scenario (lost event, infinite retry) must kill the
// process with a distinct exit code instead of hanging CI. The
// message is pre-rendered before alarm() so the handler only write()s.

char g_watchdogMsg[256] =
    "fault_campaign: watchdog timeout\n";

extern "C" void
watchdogFired(int)
{
    ssize_t w = write(2, g_watchdogMsg, std::strlen(g_watchdogMsg));
    (void)w;
    _exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> app_list = {"fft", "lu"};
    int max_kills = 2;
    std::uint32_t nodes = 4;
    double net_rate = 0.0;
    bool with_join = false;
    bool with_kill_all = false;
    unsigned watchdog_secs = 180;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--apps") {
            app_list = splitList(value());
        } else if (arg == "--max-kills") {
            max_kills = std::atoi(value());
        } else if (arg == "--nodes") {
            nodes = static_cast<std::uint32_t>(std::atoi(value()));
        } else if (arg == "--net-faults") {
            net_rate = std::atof(value());
        } else if (arg == "--join") {
            with_join = true;
        } else if (arg == "--kill-all") {
            with_kill_all = true;
        } else if (arg == "--watchdog") {
            watchdog_secs =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::fprintf(stderr,
                         "usage: fault_campaign [--apps a,b] "
                         "[--max-kills N] [--nodes N] "
                         "[--net-faults RATE] [--join] [--kill-all] "
                         "[--watchdog SECS] [--out f.json]\n");
            return 2;
        }
    }
    if (nodes < 4) {
        std::fprintf(stderr, "need >= 4 nodes for double kills\n");
        return 2;
    }

    const PhysNodeId victim = kVictim;
    const PhysNodeId backup = kBackup;

    std::vector<Scenario> scenarios;
    for (const std::string &app : app_list) {
        if (net_rate > 0.0) {
            // Pure-loss baseline: no kill at all — the run must
            // complete bit-exact on the lossy wire alone, with the
            // detector declaring nobody.
            scenarios.push_back({app, {}});
        }
        // False suspicion: a stalled-but-alive node is declared dead,
        // fenced, and converted to a clean kill; the run must still
        // verify bit-exact.
        scenarios.push_back(
            {app, {}, /*homing=*/false, /*stall=*/true});
        for (const char *rp : failpoints::kReleasePoints) {
            for (std::uint64_t occ : {1ull, 2ull})
                scenarios.push_back({app, {{victim, rp, occ}}});
        }
        if (max_kills >= 2) {
            for (const char *rp : failpoints::kReleasePoints) {
                for (const char *cp : failpoints::kRecoveryPoints) {
                    scenarios.push_back(
                        {app, {{victim, rp, 1}, {backup, cp, 1}}});
                }
            }
        }
        // Homing scenarios: singles at every migration handoff step
        // (first and a later occurrence, so both a cold and a warm
        // handoff get hit).
        for (const char *mp : failpoints::kMigrationPoints) {
            for (std::uint64_t occ : {1ull, 3ull})
                scenarios.push_back(
                    {app, {{victim, mp, occ}}, /*homing=*/true});
        }
        if (max_kills >= 2) {
            // Migration-then-kill: the handoff-step death's recovery
            // cycle is itself hit at every recovery failpoint.
            for (const char *mp : failpoints::kMigrationPoints) {
                for (const char *cp : failpoints::kRecoveryPoints) {
                    scenarios.push_back({app,
                                         {{victim, mp, 1},
                                          {backup, cp, 1}},
                                         /*homing=*/true});
                }
            }
            // Kill-during-migration: a release-path death first, then
            // a second node dies at a post-recovery migration step.
            for (const char *rp : failpoints::kReleasePoints) {
                for (const char *mp : failpoints::kMigrationPoints) {
                    scenarios.push_back({app,
                                         {{victim, rp, 1},
                                          {backup, mp, 1}},
                                         /*homing=*/true});
                }
            }
        }
        if (with_kill_all) {
            auto killAllScenario = [&app](bool persist, SimTime stagger,
                                          std::vector<Kill> kills = {}) {
                Scenario sc;
                sc.app = app;
                sc.kills = std::move(kills);
                sc.killAll = true;
                sc.killAllStagger = stagger;
                sc.persist = persist;
                return sc;
            };
            // No stable storage (the paper's model): a whole-cluster
            // kill must end in a clean, reason-coded loss.
            scenarios.push_back(killAllScenario(false, 0));
            // With the tier: simultaneous and staggered total loss
            // must cold-restart from the watermark and verify.
            scenarios.push_back(killAllScenario(true, 0));
            scenarios.push_back(
                killAllScenario(true, 50 * kMicrosecond));
            // A second death at every persistence-tier stage: the
            // runtime-side points land during normal operation (an
            // extra single failure before the total loss), the
            // restart-side points land inside coldRestart() and force
            // a rebuild retry.
            for (const char *pp : failpoints::kPersistPoints) {
                scenarios.push_back(killAllScenario(
                    true, 0, {{kVictim, pp, 1}}));
            }
        }
        if (with_join) {
            // The victim dies at 2 ms; its recovery pass completes
            // around 36 ms of modeled time, so a 6 ms join request
            // queues behind the pass and commits shortly after it.
            const SimTime joinAfter = 6 * kMillisecond;
            // Join-after-kill: the baseline rejoin must complete and
            // the run must verify bit-exact on the restored cluster.
            scenarios.push_back({app, {}, /*homing=*/false,
                                 /*stall=*/false, /*join=*/true,
                                 joinAfter});
            // Join-during-recovery: the request lands in the window
            // between the death and the detector's declaration; it
            // must hold until the pass finishes, never mid-pass.
            scenarios.push_back({app, {}, /*homing=*/false,
                                 /*stall=*/false, /*join=*/true,
                                 2 * kMillisecond + 10 * kMicrosecond});
            // Kill-during-join: a second death at every join step, on
            // the joiner (pre-commit: roll the join back out) and on a
            // bystander (abort, requeue behind the new recovery).
            for (const char *jp : failpoints::kJoinPoints) {
                scenarios.push_back({app, {{victim, jp, 1}},
                                     /*homing=*/false, /*stall=*/false,
                                     /*join=*/true, joinAfter});
                scenarios.push_back({app, {{backup, jp, 1}},
                                     /*homing=*/false, /*stall=*/false,
                                     /*join=*/true, joinAfter});
            }
        }
    }

    if (watchdog_secs > 0)
        std::signal(SIGALRM, watchdogFired);

    std::string json = "{\n  \"scenarios\": [\n";
    int n_pass = 0, n_lost = 0, n_idle = 0, n_fail = 0;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &sc = scenarios[i];
        if (watchdog_secs > 0) {
            std::snprintf(g_watchdogMsg, sizeof g_watchdogMsg,
                          "fault_campaign: scenario %zu/%zu (%s) "
                          "exceeded the %u s watchdog\n",
                          i + 1, scenarios.size(), sc.app.c_str(),
                          watchdog_secs);
            alarm(watchdog_secs);
        }
        Outcome o = runScenario(sc, nodes, net_rate);
        if (watchdog_secs > 0)
            alarm(0);
        if (sc.killAll && sc.persist && o.verdict == "unrecoverable") {
            // The persistence tier's whole contract: a total loss with
            // the tier enabled must be survivable via cold restart.
            o.verdict = "fail";
            o.detail =
                "cold restart failed to revive the cluster: " + o.detail;
        }
        if (o.verdict == "unrecoverable" && sc.homing &&
            sc.kills.size() == 1) {
            // The migration handoff's crash-safety contract: one
            // fail-stop death at any handoff step leaves the cluster
            // recoverable, full stop.
            o.verdict = "fail";
            o.detail = "single migration-point kill lost the cluster: " +
                       o.detail;
        }
        if (o.verdict == "pass")
            n_pass++;
        else if (o.verdict == "unrecoverable")
            n_lost++;
        else if (o.verdict == "not-triggered")
            n_idle++;
        else
            n_fail++;

        std::string kills;
        for (std::size_t k = 0; k < sc.kills.size(); ++k) {
            if (k)
                kills += ", ";
            kills += "{\"node\": " +
                     std::to_string(sc.kills[k].node) +
                     ", \"point\": \"" + sc.kills[k].point +
                     "\", \"occurrence\": " +
                     std::to_string(sc.kills[k].occurrence) + "}";
        }
        json += "    {\"app\": \"" + sc.app + "\", \"homing\": " +
                (sc.homing ? "true" : "false") + ", \"stall\": " +
                (sc.stall ? "true" : "false") + ", \"join\": " +
                (sc.join ? "true" : "false") + ", \"kill_all\": " +
                (sc.killAll ? "true" : "false") + ", \"persist\": " +
                (sc.persist ? "true" : "false") + ", \"kills\": [" +
                kills + "], \"outcome\": \"" + o.verdict +
                "\", \"loss_code\": \"" + o.lossCode +
                "\", \"cold_restarts\": " +
                std::to_string(o.coldRestarts) +
                ", \"cold_restart_attempts\": " +
                std::to_string(o.coldRestartAttempts) +
                ", \"watermark\": " + std::to_string(o.watermark) +
                ", \"persist_records_durable\": " +
                std::to_string(o.persistRecordsDurable) +
                ", \"persist_records_dropped\": " +
                std::to_string(o.persistRecordsDropped) +
                ", \"persist_partials_discarded\": " +
                std::to_string(o.persistPartialsDiscarded) +
                ", \"kills_fired\": " + std::to_string(o.killsFired) +
                ", \"recoveries\": " + std::to_string(o.recoveries) +
                ", \"recovery_restarts\": " +
                std::to_string(o.restarts) +
                ", \"home_migrations\": " +
                std::to_string(o.migrations) +
                ", \"migrations_rolled_back\": " +
                std::to_string(o.migrationsRolledBack) +
                ", \"retransmits\": " + std::to_string(o.retransmits) +
                ", \"dup_drops\": " + std::to_string(o.dupDrops) +
                ", \"stale_epoch_rejected\": " +
                std::to_string(o.staleEpochRejected) +
                ", \"false_suspicions\": " +
                std::to_string(o.falseSuspicions) +
                ", \"joins_completed\": " +
                std::to_string(o.joinsCompleted) +
                ", \"joins_rolled_back\": " +
                std::to_string(o.joinsRolledBack) +
                ", \"bulk_transfer_bytes\": " +
                std::to_string(o.bulkTransferBytes) +
                ", \"detail\": \"" + jsonEscape(o.detail) + "\"}";
        json += (i + 1 < scenarios.size()) ? ",\n" : "\n";

        std::fprintf(stderr, "[%3zu/%zu] %-8s%s%s%s%s%s %-50s %s\n",
                     i + 1, scenarios.size(), sc.app.c_str(),
                     sc.homing ? " [homing]" : "",
                     sc.stall ? " [stall]" : "",
                     sc.join ? " [join]" : "",
                     sc.killAll ? " [kill-all]" : "",
                     sc.persist ? " [persist]" : "", kills.c_str(),
                     o.verdict.c_str());
    }
    json += "  ],\n  \"summary\": {\"pass\": " +
            std::to_string(n_pass) +
            ", \"unrecoverable\": " + std::to_string(n_lost) +
            ", \"not_triggered\": " + std::to_string(n_idle) +
            ", \"fail\": " + std::to_string(n_fail) + "}\n}\n";

    if (!out_path.empty()) {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 2;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    } else {
        std::fwrite(json.data(), 1, json.size(), stdout);
    }

    std::fprintf(stderr,
                 "campaign: %d pass, %d unrecoverable, %d not-triggered"
                 ", %d FAIL\n",
                 n_pass, n_lost, n_idle, n_fail);
    return n_fail == 0 ? 0 : 1;
}

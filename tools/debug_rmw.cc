#include <cstdio>
#include "runtime/cluster.hh"
#include "base/rng.hh"
using namespace rsvm;
// Many lock-protected counters packed in one page; random access order.
int main() {
    Config cfg; cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4; cfg.threadsPerNode = 2;
    Cluster cluster(cfg);
    const int kCounters = 64, kIters = 200;
    Addr base = cluster.mem().allocPageAligned(kCounters * 8);
    std::vector<std::uint32_t> expect(kCounters, 0);
    // Precompute each thread's access sequence (host side, deterministic)
    std::vector<std::vector<int>> seq(8);
    for (int t = 0; t < 8; ++t) {
        Rng r(1000 + t);
        for (int i = 0; i < kIters; ++i) {
            int c = r.below(kCounters);
            seq[t].push_back(c);
            expect[c]++;
        }
    }
    cluster.spawn([&](AppThread& t) {
        for (int i = 0; i < kIters; ++i) {
            int c = seq[t.id()][i];
            t.lock(200 + c);
            std::uint64_t v = t.get<std::uint64_t>(base + 8*c);
            t.put<std::uint64_t>(base + 8*c, v + 1);
            t.unlock(200 + c);
        }
        t.barrier();
    });
    cluster.run();
    int errors = 0;
    for (int c = 0; c < kCounters; ++c) {
        std::uint64_t v=0; cluster.debugRead(base + 8*c, &v, 8);
        if (v != expect[c]) { errors++; std::printf("counter %d: %llu want %u\n", c, (unsigned long long)v, expect[c]); }
    }
    std::printf("errors=%d\n", errors);
    return errors ? 1 : 0;
}

#include <algorithm>
#include <cstdio>
#include <vector>
#include "apps/app_common.hh"
using namespace rsvm;
using namespace rsvm::apps;
int main() {
    Config cfg; cfg.protocol = ProtocolKind::Base; cfg.numNodes = 4;
    cfg.sharedBytes = 64u<<20;
    AppParams p = defaultParams("radix"); p.size = 32768;
    Cluster cluster(cfg);
    AppInstance app = makeApp("radix", p);
    app.setup(cluster);
    cluster.spawn(app.threadFn);
    cluster.run();
    // dump
    std::vector<std::uint32_t> ref(p.size), got(p.size);
    for (std::uint32_t i = 0; i < p.size; ++i) { std::uint64_t z=(i+1)*0x9e3779b97f4a7c15ull; z=(z^(z>>30))*0xbf58476d1ce4e5b9ull; z^=z>>27; ref[i]=(std::uint32_t)z; }
    std::stable_sort(ref.begin(), ref.end());
    // result is in keysA = first page-aligned alloc = address 0? read via debugRead at... we don't know addr; use verify for ok then dump mismatch count via sortedness check:
    AppResult r = app.verify(cluster);
    // dump first words of both key arrays (they are the first two
    // page-aligned allocations: keysA at 4096, keysB after it)
    for (Addr base : {Addr(4096)}) {
        std::printf("base %llu: ", (unsigned long long)base);
        for (int i = 0; i < 8; ++i) {
            std::uint32_t w=0; cluster.debugRead(base + 4*i, &w, 4);
            std::printf("%u ", w);
        }
        std::printf("\n");
    }
    std::printf("ref: "); for (int i=0;i<8;++i) std::printf("%u ", ref[i]); std::printf("\n");
    std::printf("refmax: %u  got0..: see above\n", ref[p.size-1]);
    std::printf("verify: %s\n", r.detail.c_str());
    return 0;
}

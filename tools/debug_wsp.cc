#include <cstdio>
#include "apps/app_common.hh"
using namespace rsvm; using namespace rsvm::apps;
int main(int argc, char** argv) {
    Config cfg; cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4; cfg.threadsPerNode = 2; cfg.sharedBytes = 64u<<20;
    AppParams p = defaultParams("water-sp");
    p.size = 112; // the failing test's snapped size
    if (argc > 1) p.size = std::atoi(argv[1]);
    if (argc > 2) p.steps = std::atoi(argv[2]);
    Cluster cluster(cfg);
    AppInstance app = makeApp("water-sp", p);
    // force array starts one page after pos (n*24 <= 4096 for n<=170)

    app.setup(cluster);
    cluster.spawn(app.threadFn);
    cluster.run();
    AppResult r = app.verify(cluster);
    std::printf("%s\n", r.detail.c_str());
    return r.ok ? 0 : 1;
}
// (steps arg: ./debug_wsp [size] [steps])

#include <cstdio>
#include "runtime/cluster.hh"
using namespace rsvm;
// Scatter pattern like radix: thread t writes positions i where (i%4)==t,
// alternating src/dst arrays across passes.
int main() {
    Config cfg; cfg.protocol = ProtocolKind::Base; cfg.numNodes = 4;
    Cluster cluster(cfg);
    const std::uint32_t n = 16384;
    Addr A = cluster.mem().allocPageAligned(n * 4);
    Addr B = cluster.mem().allocPageAligned(n * 4);
    for (unsigned t = 0; t < 4; ++t) {
        cluster.mem().setPrimaryHomeRange(A + t * (n) , n, t); // quarter each
        cluster.mem().setPrimaryHomeRange(B + t * (n), n, t);
    }
    int errors = 0;
    cluster.spawn([&](AppThread& t) {
        // init own contiguous quarter of A
        std::uint32_t chunk = n / 4, lo = t.id() * chunk;
        for (std::uint32_t i = lo; i < lo + chunk; ++i)
            t.put<std::uint32_t>(A + 4ull * i, i);
        t.barrier();
        Addr src = A, dst = B;
        for (int pass = 0; pass < 4; ++pass) {
            // scatter: read own contiguous chunk, write strided dst
            for (std::uint32_t k = 0; k < chunk; ++k) {
                std::uint32_t v = t.get<std::uint32_t>(src + 4ull * (lo + k));
                std::uint32_t pos = k * 4 + t.id(); // strided position
                t.put<std::uint32_t>(dst + 4ull * pos, v);
            }
            t.barrier();
            // gather back: read strided, write own chunk
            for (std::uint32_t k = 0; k < chunk; ++k) {
                std::uint32_t v = t.get<std::uint32_t>(dst + 4ull * (k * 4 + t.id()));
                if (v != lo + k) {
                    if (errors < 8)
                        std::fprintf(stderr, "pass %d t%u k%u: got %u want %u\n",
                                     pass, t.id(), k, v, lo + k);
                    errors++;
                }
                t.put<std::uint32_t>(src + 4ull * (lo + k), v);
            }
            t.barrier();
        }
    });
    cluster.run();
    std::printf("errors=%d\n", errors);
}

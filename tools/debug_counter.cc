#include <cstdio>
#include "runtime/cluster.hh"
#include "net/failure.hh"
using namespace rsvm;
int main() {
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 4;
    cfg.sharedBytes = 16u<<20;
    Cluster cluster(cfg);
    Addr counter = cluster.mem().alloc(8);
    cluster.injector().killAt(0, 2*kMillisecond);
    cluster.spawn([counter](AppThread& t){
        for (int i = 0; i < 20; ++i) {
            t.lock(1);
            std::uint64_t v = t.get<std::uint64_t>(counter);
            t.compute(3*kMicrosecond);
            t.put<std::uint64_t>(counter, v+1);
            std::fprintf(stderr, "%12llu inc by t%u iter %d: %llu -> %llu\n",
                (unsigned long long)t.sim().engine().now(), t.id(), i,
                (unsigned long long)v, (unsigned long long)(v+1));
            t.unlock(1);
            t.compute(20*kMicrosecond);
        }
        t.barrier();
    });
    cluster.run();
    std::uint64_t v=0; cluster.debugRead(counter, &v, 8);
    std::printf("final=%llu expected=%u\n", (unsigned long long)v, 20u*cfg.totalThreads());
    return 0;
}

#include <cstdio>
#include "runtime/cluster.hh"
using namespace rsvm;
int main() {
    Config cfg; cfg.protocol = ProtocolKind::Base; cfg.numNodes = 4;
    Cluster cluster(cfg);
    // One shared page; each thread owns a 1KB row (like radix hist).
    Addr hist = cluster.mem().allocPageAligned(4096);
    Addr out = cluster.mem().allocPageAligned(4096 * 4);
    int errors = 0;
    cluster.spawn([&](AppThread& t) {
        for (int pass = 0; pass < 4; ++pass) {
            // publish own row under per-group locks
            for (int g = 0; g < 8; ++g) {
                t.lock(100 + g);
                for (int d = g * 32; d < (g + 1) * 32; ++d)
                    t.put<std::uint32_t>(hist + t.id() * 1024 + d * 4,
                                         pass * 1000 + t.id() * 100 + d);
                t.unlock(100 + g);
            }
            t.barrier();
            // read all rows
            for (unsigned p = 0; p < 4; ++p)
                for (int d = 0; d < 256; ++d) {
                    std::uint32_t v = t.get<std::uint32_t>(hist + p * 1024 + d * 4);
                    std::uint32_t want = pass * 1000 + p * 100 + d;
                    if (v != want) {
                        if (errors < 10)
                            std::fprintf(stderr, "pass %d reader %u row %u d %d: got %u want %u\n",
                                         pass, t.id(), p, d, v, want);
                        errors++;
                    }
                }
            t.barrier();
        }
    });
    cluster.run();
    std::printf("errors=%d\n", errors);
    return 0;
}

/**
 * @file
 * Ablation for the §6 future-work optimization "decreasing contention
 * at the network interface by sending fewer and larger messages":
 * per-destination diff batching on vs off, for the diff-heavy kernels
 * under the extended protocol, including a small-post-queue variant
 * where the message-count reduction matters most.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# Diff batching ablation (extended protocol, 8 "
                "nodes x 2 threads)\n");
    std::printf("%-8s %8s %8s %12s %12s %14s %12s\n", "app", "queue",
                "batch", "wall(ms)", "diffMsgs", "postStalls", "ok");

    int failures = 0;
    for (const char *app : {"fft", "lu", "water-sp"}) {
        for (std::uint32_t queue : {8u, 64u}) {
            for (bool batch : {false, true}) {
                Config cfg;
                cfg.protocol = ProtocolKind::FaultTolerant;
                cfg.numNodes = 8;
                cfg.threadsPerNode = 2;
                cfg.nicPostQueue = queue;
                cfg.batchDiffs = batch;
                cfg.sharedBytes = 256u << 20;
                Cluster cluster(cfg);
                apps::AppParams p =
                    scaledParams(app, scale, cfg.totalThreads());
                apps::AppInstance inst = apps::makeApp(app, p);
                inst.setup(cluster);
                cluster.spawn(inst.threadFn);
                cluster.run();
                bool ok = inst.verify(cluster).ok;
                Counters c = cluster.totalCounters();
                std::printf("%-8s %8u %8s %12.2f %12llu %14llu %12s\n",
                            app, queue, batch ? "on" : "off",
                            ms(cluster.wallTime()),
                            static_cast<unsigned long long>(
                                c.diffMsgsSent),
                            static_cast<unsigned long long>(
                                c.postQueueStalls),
                            ok ? "ok" : "VERIFY-FAILED");
                if (!ok)
                    failures++;
            }
        }
    }
    std::printf("\n# Expectation: batching collapses the per-release "
                "message burst (diffMsgs\n# drops to ~2 per release), "
                "eliminating post-queue stalls on small queues.\n");
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * Ablation for the §6 future-work optimization "decreasing contention
 * at the network interface by sending fewer and larger messages":
 * per-destination diff batching on vs off, for the diff-heavy kernels
 * under the extended protocol, including a small-post-queue variant
 * where the message-count reduction matters most.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# Diff batching ablation (extended protocol, 8 "
                "nodes x 2 threads)\n");
    std::printf("%-8s %8s %8s %12s %12s %10s %14s %12s %12s %12s\n",
                "app", "queue", "batch", "wall(ms)", "diffMsgs",
                "msgs/rel", "postStalls", "runsMerged", "pagesPack",
                "ok");

    int failures = 0;
    for (const char *app : {"fft", "lu", "water-sp"}) {
        for (std::uint32_t queue : {8u, 64u}) {
            for (bool batch : {false, true}) {
                Config cfg;
                cfg.protocol = ProtocolKind::FaultTolerant;
                cfg.numNodes = 8;
                cfg.threadsPerNode = 2;
                cfg.nicPostQueue = queue;
                cfg.batchDiffs = batch;
                cfg.sharedBytes = 256u << 20;
                Cluster cluster(cfg);
                apps::AppParams p =
                    scaledParams(app, scale, cfg.totalThreads());
                apps::AppInstance inst = apps::makeApp(app, p);
                inst.setup(cluster);
                cluster.spawn(inst.threadFn);
                cluster.run();
                bool ok = inst.verify(cluster).ok;
                Counters c = cluster.totalCounters();
                // Release operations with diffs = propagation phases
                // over two (the FT protocol runs phase 1 + phase 2
                // per release, including barrier releases).
                double rel_ops =
                    static_cast<double>(c.propPhases) / 2.0;
                double msgs_per_rel =
                    rel_ops > 0
                        ? static_cast<double>(c.diffMsgsSent) / rel_ops
                        : 0.0;
                std::printf("%-8s %8u %8s %12.2f %12llu %10.2f %14llu "
                            "%12llu %12llu %12s\n",
                            app, queue, batch ? "on" : "off",
                            ms(cluster.wallTime()),
                            static_cast<unsigned long long>(
                                c.diffMsgsSent),
                            msgs_per_rel,
                            static_cast<unsigned long long>(
                                c.postQueueStalls),
                            static_cast<unsigned long long>(
                                c.propRunsMerged),
                            static_cast<unsigned long long>(
                                c.propPagesPacked),
                            ok ? "ok" : "VERIFY-FAILED");
                if (batch) {
                    std::printf("#   pipeline: phases=%llu "
                                "destBatches=%llu batchBytes{%s} "
                                "batchPages{%s}\n",
                                static_cast<unsigned long long>(
                                    c.propPhases),
                                static_cast<unsigned long long>(
                                    c.propDestBatches),
                                c.batchBytesHist.toString().c_str(),
                                c.batchPagesHist.toString().c_str());
                    std::printf("#   phase walls: phase1=%.2fms "
                                "phase2=%.2fms perPhase{%s}\n",
                                ms(c.phase1WallNs), ms(c.phase2WallNs),
                                c.phaseWallHist.toString().c_str());
                }
                if (!ok)
                    failures++;
            }
        }
    }
    std::printf("\n# Expectation: batching collapses the per-release "
                "message burst (msgs/rel\n# drops toward 2: one batch "
                "per phase per destination), eliminating\n# post-queue "
                "stalls on small queues.\n");
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

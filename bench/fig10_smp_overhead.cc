/**
 * @file
 * Figure 10: overhead breakdown (six-component format) with 2 compute
 * threads per node — the configuration where the paper reports the
 * extended protocol's overhead band widening to 24–100 %, with LU's
 * barrier/diff costs and Water-Nsquared's checkpointing cost most
 * pronounced.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# Figure 10: overhead breakdown, 8 nodes x 2 "
                "threads/node (ms of simulated time, per-thread "
                "average)\n");
    std::printf("%-11s %-8s %9s %9s %9s %9s %9s %9s %10s %s\n", "app",
                "proto", "compute", "data", "sync", "diffs", "proto",
                "ckpt", "total", "ok");
    int failures = 0;
    for (const std::string &app : benchApps()) {
        for (ProtocolKind kind :
             {ProtocolKind::Base, ProtocolKind::FaultTolerant}) {
            RunResult r = runApp(app, kind, 8, 2, scale);
            auto six = r.avg.sixComp();
            double total = ms(six.compute + six.data + six.sync +
                              six.diffs + six.protocol + six.ckpt);
            std::printf("%-11s %-8s %9.2f %9.2f %9.2f %9.2f %9.2f "
                        "%9.2f %10.2f %s\n",
                        app.c_str(), protoName(kind), ms(six.compute),
                        ms(six.data), ms(six.sync), ms(six.diffs),
                        ms(six.protocol), ms(six.ckpt), total,
                        r.verified ? "ok" : "VERIFY-FAILED");
            if (!r.verified)
                failures++;
        }
    }
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * Shared harness for the paper-figure benchmarks.
 *
 * Each figure binary runs the six-application suite under the base and
 * extended protocols on the paper's cluster geometry and prints the
 * execution-time breakdowns the corresponding figure plots. Absolute
 * numbers depend on the timing model; the *shape* (which component
 * dominates which application, and the base-vs-extended overhead band)
 * is the reproduction target — see EXPERIMENTS.md.
 *
 * RSVM_BENCH_SCALE (float, default 1.0) scales problem sizes;
 * RSVM_BENCH_APPS (comma list) restricts the suite.
 */

#ifndef RSVM_BENCH_BENCH_COMMON_HH
#define RSVM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_common.hh"

namespace rsvm {
namespace bench {

/** Result of one application run. */
struct RunResult
{
    std::string app;
    ProtocolKind protocol;
    SimTime wall = 0;
    TimeBreakdown avg;
    Counters counters;
    bool verified = false;
};

inline double
ms(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

inline double
benchScale()
{
    if (const char *s = std::getenv("RSVM_BENCH_SCALE"))
        return std::atof(s);
    return 1.0;
}

inline std::vector<std::string>
benchApps()
{
    std::vector<std::string> apps;
    if (const char *s = std::getenv("RSVM_BENCH_APPS")) {
        std::string spec(s);
        std::size_t pos = 0;
        while (pos < spec.size()) {
            std::size_t comma = spec.find(',', pos);
            if (comma == std::string::npos)
                comma = spec.size();
            apps.push_back(spec.substr(pos, comma - pos));
            pos = comma + 1;
        }
        return apps;
    }
    return apps::appNames();
}

/** Scale an app's default problem size, respecting its constraints. */
inline apps::AppParams
scaledParams(const std::string &name, double scale,
             std::uint32_t total_threads)
{
    apps::AppParams p = apps::defaultParams(name);
    if (scale != 1.0) {
        p.size = static_cast<std::uint64_t>(
            static_cast<double>(p.size) * scale);
    }
    if (name == "fft") {
        std::uint64_t m = 1;
        while (m * m < p.size)
            m <<= 1;
        p.size = m * m;
    } else if (name == "lu") {
        p.size = (p.size + 31) / 32 * 32;
    } else if (name == "volrend") {
        p.size = (p.size + 7) / 8 * 8;
    } else {
        p.size = (p.size + total_threads - 1) / total_threads *
                 total_threads;
    }
    return p;
}

/**
 * Run one application on a caller-built Config. @p post_setup (if
 * given) runs after the app's setup — i.e. after its explicit home
 * assignment — and before the threads spawn, so benchmarks can
 * perturb page placement without touching the apps.
 */
inline RunResult
runApp(const std::string &name, const Config &config, double scale,
       const std::function<void(Cluster &)> &post_setup = {})
{
    Cluster cluster(config);
    apps::AppParams p =
        scaledParams(name, scale, config.totalThreads());
    apps::AppInstance app = apps::makeApp(name, p);
    app.setup(cluster);
    if (post_setup)
        post_setup(cluster);
    cluster.spawn(app.threadFn);
    cluster.run();

    RunResult r;
    r.app = name;
    r.protocol = config.protocol;
    r.wall = cluster.wallTime();
    r.avg = cluster.avgBreakdown();
    r.counters = cluster.totalCounters();
    r.verified = app.verify(cluster).ok;
    return r;
}

/** Run one application once on the paper's default geometry. */
inline RunResult
runApp(const std::string &name, ProtocolKind protocol,
       std::uint32_t nodes, std::uint32_t tpn, double scale)
{
    Config cfg;
    cfg.protocol = protocol;
    cfg.numNodes = nodes;
    cfg.threadsPerNode = tpn;
    cfg.sharedBytes = 256u << 20;
    return runApp(name, cfg, scale);
}

inline const char *
protoName(ProtocolKind k)
{
    return k == ProtocolKind::Base ? "base(0)" : "ext (1)";
}

} // namespace bench
} // namespace rsvm

#endif // RSVM_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Figure 9: execution-time breakdown with 2 compute threads per node
 * (the paper's SMP configuration), four-component format. Thin wrapper
 * over the fig7 harness in --smp mode so each figure has its own
 * binary.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# Figure 9: execution time breakdown, 8 nodes x 2 "
                "threads/node (ms of simulated time, per-thread "
                "average)\n");
    std::printf("%-11s %-8s %9s %9s %9s %9s %10s %9s %s\n", "app",
                "proto", "compute", "data", "lock", "barrier", "total",
                "overhead", "ok");
    int failures = 0;
    for (const std::string &app : benchApps()) {
        double base_total = 0;
        for (ProtocolKind kind :
             {ProtocolKind::Base, ProtocolKind::FaultTolerant}) {
            RunResult r = runApp(app, kind, 8, 2, scale);
            auto four = r.avg.fourComp();
            double total = ms(four.compute + four.data + four.lock +
                              four.barrier);
            std::string overhead = "-";
            if (kind == ProtocolKind::Base) {
                base_total = total;
            } else if (base_total > 0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.0f%%",
                              (total / base_total - 1.0) * 100.0);
                overhead = buf;
            }
            std::printf("%-11s %-8s %9.2f %9.2f %9.2f %9.2f %10.2f "
                        "%9s %s\n",
                        app.c_str(), protoName(kind),
                        ms(four.compute), ms(four.data), ms(four.lock),
                        ms(four.barrier), total, overhead.c_str(),
                        r.verified ? "ok" : "VERIFY-FAILED");
            if (!r.verified)
                failures++;
        }
    }
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * Per-application protocol statistics reported in the prose of §5.3:
 * lock counts (Water-Nsq 4105, Water-SpFL 518, Radix 66 on the paper's
 * sizes), checkpoint counts and average thread stack sizes (2–2.8 KB),
 * the fraction of diffed pages that are home pages (FFT/LU ~100 %,
 * Water-SpFL > 99 %, Water-Nsq ~25 %, Radix ~12 %), page faults,
 * remote fetches, and message/byte totals.
 */

#include <set>

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# Per-application statistics under the extended "
                "protocol (8 nodes x 1 thread)\n");
    std::printf("%-11s %10s %10s %10s %12s %10s %10s %12s %12s %12s "
                "%s\n",
                "app", "releases", "barriers", "ckpts", "avgCkptB",
                "faults", "fetches", "pagesDiffed", "homeDiff%",
                "misHomedB", "ok");

    int failures = 0;
    for (const std::string &app : benchApps()) {
        RunResult r =
            runApp(app, ProtocolKind::FaultTolerant, 8, 1, scale);
        const Counters &c = r.counters;
        double home_pct =
            c.pagesDiffed
                ? 100.0 * static_cast<double>(c.homePagesDiffed) /
                      static_cast<double>(c.pagesDiffed)
                : 0.0;
        double avg_ckpt =
            c.checkpointsTaken
                ? static_cast<double>(c.checkpointBytes) /
                      static_cast<double>(c.checkpointsTaken)
                : 0.0;
        std::printf("%-11s %10llu %10llu %10llu %12.0f %10llu %10llu "
                    "%12llu %11.1f%% %12llu %s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(c.releases),
                    static_cast<unsigned long long>(c.barriers),
                    static_cast<unsigned long long>(c.checkpointsTaken),
                    avg_ckpt,
                    static_cast<unsigned long long>(c.pageFaults),
                    static_cast<unsigned long long>(
                        c.remotePageFetches),
                    static_cast<unsigned long long>(c.pagesDiffed),
                    home_pct,
                    static_cast<unsigned long long>(
                        c.misHomedDiffBytes),
                    r.verified ? "ok" : "VERIFY-FAILED");
        if (!r.verified)
            failures++;
    }
    std::printf("\n# Expected shapes (§5.3): FFT/LU/Water-SpFL are "
                "dominated by home-page diffs;\n# Water-Nsq has by far "
                "the most releases (hence checkpoints); Radix diffs "
                "the\n# smallest home-page fraction.\n");

    // Adaptive home placement (svm/homing): the same suite with the
    // online page-migration subsystem enabled, against the apps'
    // native (already tuned) home assignment. misHomedB shrinking
    // relative to the static table above means the profiler found
    // residual mis-homed traffic worth chasing; 0 migrations on the
    // well-homed apps means the hysteresis is doing its job.
    std::printf("\n# Adaptive placement (dynamicHoming=1, same "
                "geometry)\n");
    std::printf("%-11s %10s %12s %12s %10s %-30s %s\n", "app",
                "homeMigr", "migratedB", "misHomedB", "fwdFetch",
                "migr/epoch", "ok");
    for (const std::string &app : benchApps()) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 8;
        cfg.threadsPerNode = 1;
        cfg.sharedBytes = 256u << 20;
        cfg.dynamicHoming = true;
        RunResult r = runApp(app, cfg, scale);
        const Counters &c = r.counters;
        std::printf("%-11s %10llu %12llu %12llu %10llu %-30s %s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(c.homeMigrations),
                    static_cast<unsigned long long>(c.migratedBytes),
                    static_cast<unsigned long long>(
                        c.misHomedDiffBytes),
                    static_cast<unsigned long long>(c.fetchForwards),
                    c.epochMigrationsHist.toString().c_str(),
                    r.verified ? "ok" : "VERIFY-FAILED");
        if (!r.verified)
            failures++;
    }

    // Reliable transport on a lossy wire (net/netfault + net/vmmc):
    // the same suite with 1% drop/dup/reorder per message plus jitter.
    // Every app must still verify; retx shows the recovery work the
    // transport did, piggy% the fraction of acks that rode for free on
    // reverse traffic, and falseSusp must stay 0 — background loss is
    // not allowed to look like a node failure to the lease detector.
    std::printf("\n# Lossy wire (drop=dup=reorder=1%%, jitter<=20us, "
                "extended protocol)\n");
    std::printf("%-11s %10s %10s %10s %8s %10s %10s %-26s %s\n", "app",
                "retx", "dupDrops", "acks", "piggy%", "heartbeats",
                "falseSusp", "reorderDepth", "ok");
    for (const std::string &app : benchApps()) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 8;
        cfg.threadsPerNode = 1;
        cfg.sharedBytes = 256u << 20;
        cfg.netDropProb = 0.01;
        cfg.netDupProb = 0.01;
        cfg.netReorderProb = 0.01;
        cfg.netJitterMax = 20 * kMicrosecond;
        RunResult r = runApp(app, cfg, scale);
        const Counters &c = r.counters;
        std::uint64_t acks = c.acksSent + c.acksPiggybacked;
        double piggy_pct =
            acks ? 100.0 * static_cast<double>(c.acksPiggybacked) /
                       static_cast<double>(acks)
                 : 0.0;
        std::printf("%-11s %10llu %10llu %10llu %7.1f%% %10llu %10llu "
                    "%-26s %s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(c.retransmits),
                    static_cast<unsigned long long>(c.dupDrops),
                    static_cast<unsigned long long>(acks), piggy_pct,
                    static_cast<unsigned long long>(c.heartbeatsSent),
                    static_cast<unsigned long long>(
                        c.falseSuspicionsFenced),
                    c.reorderDepthHist.toString().c_str(),
                    r.verified ? "ok" : "VERIFY-FAILED");
        if (!r.verified || c.falseSuspicionsFenced)
            failures++;
    }

    // Elastic membership (runtime/membership): every app runs a full
    // kill -> recover -> rejoin cycle — node 2 dies at 2 ms, its
    // rejoin is requested at 6 ms, queues behind the recovery pass,
    // and commits after it. The run must still verify bit-exact, the
    // bulk transfer must have moved real bytes, and pagesPerDegree
    // shows how many replicas each page holds once the cluster is
    // whole again (target degree restored by the joiner's re-grow).
    std::printf("\n# Elastic membership (kill node 2 @2ms, rejoin "
                "request @6ms, extended protocol)\n");
    std::printf("%-11s %6s %8s %8s %12s %-26s %-22s %s\n", "app",
                "joins", "rejoins", "reGrown", "bulkXferB",
                "joinTimeNs", "pagesPerDegree", "ok");
    for (const std::string &app : benchApps()) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 8;
        cfg.threadsPerNode = 1;
        cfg.sharedBytes = 256u << 20;
        RunResult r = runApp(app, cfg, scale, [](Cluster &cl) {
            cl.injector().killAt(2, 2 * kMillisecond);
            cl.joinManager()->scheduleJoin(6 * kMillisecond, 2);
        });
        const Counters &c = r.counters;
        std::printf("%-11s %6llu %8llu %8llu %12llu %-26s %-22s %s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(c.joins),
                    static_cast<unsigned long long>(c.rejoins),
                    static_cast<unsigned long long>(c.pagesReGrown),
                    static_cast<unsigned long long>(
                        c.bulkTransferBytes),
                    c.joinTimeNsHist.toString().c_str(),
                    c.pagesPerDegreeHist.toString().c_str(),
                    r.verified ? "ok" : "VERIFY-FAILED");
        if (!r.verified)
            failures++;
    }

    // Persistence tier (base/persist + runtime/persist_manager): the
    // same suite with the async durability tier on, against a tier-off
    // run of the same seed. The contract is that the tier is invisible
    // to the application — wallDelta must be exactly 0 ns for every
    // app (the drainer never charges simulated time to a release) —
    // while epochs/records/durableB show the durability work done off
    // the critical path and drainNs the simulated disk latency per
    // record. Restart correctness is exercised by the fault campaign's
    // --kill-all matrix, not here.
    std::printf("\n# Persistence tier (persistEnabled=1, "
                "epoch=500us, same geometry)\n");
    std::printf("%-11s %12s %8s %10s %12s %10s %-26s %s\n", "app",
                "wallDeltaNs", "epochs", "records", "durableB",
                "dropped", "drainNs", "ok");
    for (const std::string &app : benchApps()) {
        Config cfg;
        cfg.protocol = ProtocolKind::FaultTolerant;
        cfg.numNodes = 8;
        cfg.threadsPerNode = 1;
        cfg.sharedBytes = 256u << 20;
        RunResult off = runApp(app, cfg, scale);
        cfg.persistEnabled = true;
        cfg.persistEpoch = 500 * kMicrosecond;
        RunResult on = runApp(app, cfg, scale);
        const Counters &c = on.counters;
        long long delta = static_cast<long long>(on.wall) -
                          static_cast<long long>(off.wall);
        bool ok = on.verified && off.verified && delta == 0 &&
                  c.persistRecordsDropped == 0 &&
                  c.persistEpochsClosed > 0;
        std::printf("%-11s %12lld %8llu %10llu %12llu %10llu %-26s "
                    "%s\n",
                    app.c_str(), delta,
                    static_cast<unsigned long long>(
                        c.persistEpochsClosed),
                    static_cast<unsigned long long>(
                        c.persistRecordsDurable),
                    static_cast<unsigned long long>(
                        c.persistBytesDurable),
                    static_cast<unsigned long long>(
                        c.persistRecordsDropped),
                    c.persistDrainNsHist.toString().c_str(),
                    ok ? "ok" : "NOT-TRANSPARENT");
        if (!ok)
            failures++;
    }
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * NIC post-queue sensitivity (§5.3.2): "the size of the post queue for
 * asynchronous messages ... [has] a critical impact on system
 * performance". The extended protocol clusters diff messages at
 * releases; a small post queue blocks the releasing processor until
 * the NIC drains.
 *
 * Sweep the post-queue size for FFT and LU (the diff-heavy kernels)
 * under the extended protocol and report execution time and the
 * number of post-queue stalls.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    double scale = benchScale();
    std::printf("# NIC post-queue sweep, extended protocol, 8 nodes "
                "x 2 threads\n");
    std::printf("%-8s %10s %12s %14s %12s %12s %12s %12s\n", "app",
                "queue", "wall(ms)", "postStalls", "diffMsgs",
                "ph1(ms)", "ph2(ms)", "ok");

    const std::uint32_t sizes[] = {4, 8, 16, 32, 64, 128};
    int failures = 0;
    for (const char *app : {"fft", "lu"}) {
        for (std::uint32_t q : sizes) {
            Config cfg;
            cfg.protocol = ProtocolKind::FaultTolerant;
            cfg.numNodes = 8;
            cfg.threadsPerNode = 2;
            cfg.nicPostQueue = q;
            cfg.sharedBytes = 256u << 20;
            Cluster cluster(cfg);
            apps::AppParams p =
                scaledParams(app, scale, cfg.totalThreads());
            apps::AppInstance inst = apps::makeApp(app, p);
            inst.setup(cluster);
            cluster.spawn(inst.threadFn);
            cluster.run();
            bool ok = inst.verify(cluster).ok;
            Counters c = cluster.totalCounters();
            std::printf("%-8s %10u %12.2f %14llu %12llu %12.2f %12.2f "
                        "%12s\n",
                        app, q, ms(cluster.wallTime()),
                        static_cast<unsigned long long>(
                            c.postQueueStalls),
                        static_cast<unsigned long long>(
                            c.diffMsgsSent),
                        ms(c.phase1WallNs), ms(c.phase2WallNs),
                        ok ? "ok" : "VERIFY-FAILED");
            if (!ok)
                failures++;
        }
    }
    std::printf("\n# Expectation: small queues stall the releasing "
                "processors (diffs cluster at\n# releases) and inflate "
                "execution time; beyond the knee the effect "
                "saturates.\n");
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * Recovery-time characterization (§1/§4.5): the paper's design goal is
 * continuous operation with recovery reduced to reconfiguration —
 * home remapping, re-replication of surviving copies, lock cleanup,
 * and thread restoration — with no stable-storage replay.
 *
 * This bench kills one node mid-run while sweeping the amount of live
 * shared data and reports the simulated recovery time and its
 * constituents, plus the end-to-end slowdown versus a failure-free
 * run of the same workload.
 */

#include "bench_common.hh"

namespace {

int
run()
{
    using namespace rsvm;
    using namespace rsvm::bench;
    std::printf("# Recovery time vs live shared data (extended "
                "protocol, 8 nodes; kill node 2 mid-run)\n");
    std::printf("%10s %14s %14s %12s %12s %12s %12s %14s %14s\n",
                "pages", "recovery(ms)", "reReplicated", "rolledFwd",
                "rolledBack", "restored", "locksClean", "reReplKB",
                "slowdown");

    for (std::uint32_t pages : {16u, 64u, 256u, 1024u, 4096u}) {
        SimTime clean_wall = 0;
        auto run_once = [&](bool inject) {
            Config cfg;
            cfg.protocol = ProtocolKind::FaultTolerant;
            cfg.numNodes = 8;
            cfg.sharedBytes = 64u << 20;
            Cluster cluster(cfg);
            Addr data =
                cluster.mem().allocPageAligned(4096ull * pages);
            Addr counter = cluster.mem().alloc(8);
            if (inject) {
                // Mid-run, once the working set is touched.
                cluster.injector().killAt(
                    2, clean_wall ? clean_wall / 2
                                  : 3 * kMillisecond);
            }
            std::uint32_t npages = pages;
            cluster.spawn([data, counter, npages](AppThread &t) {
                std::uint32_t per = npages / t.clusterThreads();
                std::uint32_t lo = t.id() * per;
                for (int iter = 0; iter < 6; ++iter) {
                    for (std::uint32_t p = lo; p < lo + per; ++p) {
                        t.put<std::uint64_t>(data + 4096ull * p +
                                                 8 * (iter % 4),
                                             iter * 1000 + p);
                    }
                    t.lock(1);
                    std::uint64_t v = t.get<std::uint64_t>(counter);
                    t.put<std::uint64_t>(counter, v + 1);
                    t.unlock(1);
                    t.compute(200 * kMicrosecond);
                }
                t.barrier();
            });
            cluster.run();
            struct Out
            {
                SimTime wall;
                SimTime recovery;
                Counters c;
            } out{cluster.wallTime(),
                  cluster.recovery()
                      ? cluster.recovery()->lastRecoveryTime()
                      : 0,
                  cluster.totalCounters()};
            return out;
        };
        auto clean = run_once(false);
        clean_wall = clean.wall;
        auto failed = run_once(true);
        std::printf("%10u %14.3f %14llu %12llu %12llu %12llu %12llu "
                    "%14llu %13.2fx\n",
                    pages, ms(failed.recovery),
                    static_cast<unsigned long long>(
                        failed.c.pagesReReplicated),
                    static_cast<unsigned long long>(
                        failed.c.pagesRolledForward),
                    static_cast<unsigned long long>(
                        failed.c.pagesRolledBack),
                    static_cast<unsigned long long>(
                        failed.c.threadsRestored),
                    static_cast<unsigned long long>(
                        failed.c.locksCleaned),
                    static_cast<unsigned long long>(
                        failed.c.reReplicationBytes / 1024),
                    static_cast<double>(failed.wall) /
                        static_cast<double>(clean.wall));
        if (pages == 4096u) {
            std::printf("# per-step simulated time: %s\n",
                        failed.c.recoveryStepNsHist.toString().c_str());
            std::printf("# per-cycle simulated time: %s\n",
                        failed.c.recoveryTimeNsHist.toString().c_str());
            std::printf("# recovery restarts (passes aborted by a "
                        "second failure): %llu\n",
                        static_cast<unsigned long long>(
                            failed.c.recoveryRestarts));
        }
    }
    std::printf("\n# Expectation: recovery time grows with the number "
                "of pages to re-replicate\n# (reconfiguration, not "
                "log replay); the computation continues afterwards.\n");
    return 0;
}

} // namespace

int
main()
{
    return run();
}

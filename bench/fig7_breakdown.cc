/**
 * @file
 * Figure 7 (and Figure 9 via --smp): execution-time breakdown of the
 * six-application suite on 8 nodes, base (0) vs extended (1) protocol,
 * in the paper's four-component format: compute, data wait, lock,
 * barrier.
 *
 * Reproduction target (§5.3.1): the extended protocol's overall
 * overhead lies in a 20–67 % band with one thread per node (24–100 %
 * with two); FFT and LU pay mostly in the lock/barrier bars via diff
 * processing; Water-Nsquared's lock bar grows the most.
 */

#include "bench_common.hh"

namespace rsvm {
namespace bench {
namespace {

int
runFigure(std::uint32_t tpn)
{
    double scale = benchScale();
    std::printf("# Figure %s: execution time breakdown, 8 nodes x %u "
                "thread(s)/node (ms of simulated time, per-thread "
                "average)\n",
                tpn == 1 ? "7" : "9", tpn);
    std::printf("%-11s %-8s %9s %9s %9s %9s %10s %9s %s\n", "app",
                "proto", "compute", "data", "lock", "barrier", "total",
                "overhead", "ok");

    int failures = 0;
    for (const std::string &app : benchApps()) {
        double base_total = 0;
        for (ProtocolKind kind :
             {ProtocolKind::Base, ProtocolKind::FaultTolerant}) {
            RunResult r = runApp(app, kind, 8, tpn, scale);
            auto four = r.avg.fourComp();
            double total = ms(four.compute + four.data + four.lock +
                              four.barrier);
            std::string overhead = "-";
            if (kind == ProtocolKind::Base) {
                base_total = total;
            } else if (base_total > 0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.0f%%",
                              (total / base_total - 1.0) * 100.0);
                overhead = buf;
            }
            std::printf("%-11s %-8s %9.2f %9.2f %9.2f %9.2f %10.2f "
                        "%9s %s\n",
                        app.c_str(), protoName(kind),
                        ms(four.compute), ms(four.data), ms(four.lock),
                        ms(four.barrier), total, overhead.c_str(),
                        r.verified ? "ok" : "VERIFY-FAILED");
            if (!r.verified)
                failures++;
        }
    }
    return failures;
}

} // namespace
} // namespace bench
} // namespace rsvm

int
main(int argc, char **argv)
{
    std::uint32_t tpn = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smp")
            tpn = 2;
    }
    return rsvm::bench::runFigure(tpn) ? 1 : 0;
}

/**
 * @file
 * Lock-algorithm ablation (§4.3): the distributed queuing lock vs the
 * centralized polling lock (base protocol), and the fault-tolerant
 * polling lock with replicated lock homes. The paper's claims:
 *
 *  - the centralized algorithm performs at least as well as the
 *    queuing lock;
 *  - polling increases network traffic/contention but backoff avoids
 *    livelock;
 *  - replication (FT) adds a constant per-acquire cost (both homes are
 *    updated on every acquire and release).
 *
 * Synthetic workload: a lock-protected counter under a configurable
 * contention level, plus a low-contention many-locks scenario.
 */

#include "bench_common.hh"

namespace {

using namespace rsvm;

struct LockRun
{
    SimTime wall = 0;
    double avgLockWaitUs = 0;
    std::uint64_t pollRounds = 0;
    std::uint64_t messages = 0;
};

LockRun
runLockStress(ProtocolKind proto, LockAlgo algo, std::uint32_t nodes,
              int iters, int num_locks, SimTime think)
{
    Config cfg;
    cfg.protocol = proto;
    cfg.lockAlgo = algo;
    cfg.numNodes = nodes;
    Cluster cluster(cfg);
    Addr counters = cluster.mem().allocPageAligned(8 * num_locks);
    cluster.spawn([&, counters, iters, num_locks, think](AppThread &t) {
        for (int i = 0; i < iters; ++i) {
            LockId l = 300 + (t.id() + i) % num_locks;
            t.lock(l);
            std::uint64_t v = t.get<std::uint64_t>(
                counters + 8ull * ((t.id() + i) % num_locks));
            t.put<std::uint64_t>(
                counters + 8ull * ((t.id() + i) % num_locks), v + 1);
            t.unlock(l);
            t.compute(think);
        }
        t.barrier();
    });
    cluster.run();

    LockRun r;
    r.wall = cluster.wallTime();
    Counters c = cluster.totalCounters();
    TimeBreakdown total = cluster.totalBreakdown();
    r.avgLockWaitUs = c.lockAcquires
                          ? static_cast<double>(
                                total.get(Comp::LockWait)) /
                                (1e3 * static_cast<double>(
                                           c.lockAcquires))
                          : 0;
    r.pollRounds = c.lockPollRounds;
    r.messages = c.messagesSent;
    return r;
}

int
run()
{
    std::printf("# Lock-algorithm ablation (8 nodes, lock-protected "
                "counters)\n");
    std::printf("%-22s %-10s %12s %14s %12s %12s\n", "scenario",
                "algo", "wall(ms)", "lockWait(us)", "pollRounds",
                "messages");

    struct Case
    {
        const char *name;
        ProtocolKind proto;
        LockAlgo algo;
        int locks;
        SimTime think;
    };
    const Case cases[] = {
        {"contended(base)", ProtocolKind::Base, LockAlgo::Queuing, 1,
         20 * kMicrosecond},
        {"contended(base)", ProtocolKind::Base,
         LockAlgo::CentralizedPolling, 1, 20 * kMicrosecond},
        {"contended(ft)", ProtocolKind::FaultTolerant,
         LockAlgo::CentralizedPolling, 1, 20 * kMicrosecond},
        {"contended(ft)", ProtocolKind::FaultTolerant,
         LockAlgo::Queuing, 1, 20 * kMicrosecond},
        {"spread(base)", ProtocolKind::Base, LockAlgo::Queuing, 64,
         20 * kMicrosecond},
        {"spread(base)", ProtocolKind::Base,
         LockAlgo::CentralizedPolling, 64, 20 * kMicrosecond},
        {"spread(ft)", ProtocolKind::FaultTolerant,
         LockAlgo::CentralizedPolling, 64, 20 * kMicrosecond},
        {"spread(ft)", ProtocolKind::FaultTolerant,
         LockAlgo::Queuing, 64, 20 * kMicrosecond},
    };
    for (const Case &c : cases) {
        LockRun r = runLockStress(c.proto, c.algo, 8, 40, c.locks,
                                  c.think);
        std::printf("%-22s %-10s %12.2f %14.1f %12llu %12llu\n",
                    c.name,
                    c.algo == LockAlgo::Queuing ? "queuing" : "polling",
                    rsvm::bench::ms(r.wall), r.avgLockWaitUs,
                    static_cast<unsigned long long>(r.pollRounds),
                    static_cast<unsigned long long>(r.messages));
    }
    std::printf("\n# Expectation (§4.3): polling >= queuing in "
                "throughput; FT polling adds the\n# replicated-home "
                "cost per acquire/release but recovery stays "
                "stateless;\n# the replicated QUEUING lock (the "
                "variant the paper abandoned) shows why:\n# "
                "comparable failure-free cost, but stateful homes "
                "that recovery cannot untangle.\n");
    return 0;
}

} // namespace

int
main()
{
    return run();
}

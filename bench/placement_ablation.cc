/**
 * @file
 * Static vs dynamic home placement ablation.
 *
 * Both arms run the application suite with every shared page's primary
 * home scrambled round-robin AFTER the app's own (tuned) assignment —
 * the adversarial placement a real application gets when its sharing
 * pattern is unknown at allocation time. The static arm lives with it;
 * the dynamic arm turns on the homing subsystem (svm/homing) and lets
 * the profiler/policy/migration pipeline re-home hot pages online.
 *
 * The reproduction target: on the write-mostly applications the
 * dynamic arm migrates the mis-homed hot pages back and slashes
 * misHomedDiffBytes (and usually wall time); on apps whose sharing is
 * genuinely all-to-all the two arms converge.
 *
 * Results go to stdout as a table and to BENCH_placement.json
 * (machine-readable, one record per app x arm; override the path with
 * RSVM_BENCH_OUT) so runs can be tracked in-repo.
 */

#include <string>
#include <vector>

#include "bench_common.hh"

namespace {

using namespace rsvm;
using namespace rsvm::bench;

struct ArmResult
{
    RunResult run;
    bool dynamic = false;
};

/** Round-robin every allocated page's primary home (post-setup). */
void
scrambleHomes(Cluster &cluster)
{
    AddressSpace &as = cluster.mem();
    PageId last = as.pageOf(as.used() == 0 ? 0 : as.used() - 1);
    for (PageId p = 0; p <= last; ++p)
        as.setPrimaryHome(p, p % cluster.config().numNodes);
}

ArmResult
runArm(const std::string &app, bool dynamic, double scale)
{
    Config cfg;
    cfg.protocol = ProtocolKind::FaultTolerant;
    cfg.numNodes = 8;
    cfg.threadsPerNode = 1;
    cfg.sharedBytes = 256u << 20;
    cfg.dynamicHoming = dynamic;
    if (dynamic) {
        // Migration pays off within a short run only if epochs are
        // dense relative to the apps' phase lengths.
        cfg.homingEpoch = 200 * kMicrosecond;
        cfg.homingMinBytes = 1024;
        cfg.homingBudget = 256;
    }
    ArmResult a;
    a.dynamic = dynamic;
    a.run = runApp(app, cfg, scale, scrambleHomes);
    return a;
}

void
appendJson(std::string &json, const ArmResult &a)
{
    const Counters &c = a.run.counters;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"app\": \"%s\", \"arm\": \"%s\", \"wallNs\": %llu, "
        "\"misHomedDiffBytes\": %llu, \"diffBytesSent\": %llu, "
        "\"homeMigrations\": %llu, \"migratedBytes\": %llu, "
        "\"fetchForwards\": %llu, \"verified\": %s}",
        a.run.app.c_str(), a.dynamic ? "dynamic" : "static",
        static_cast<unsigned long long>(a.run.wall),
        static_cast<unsigned long long>(c.misHomedDiffBytes),
        static_cast<unsigned long long>(c.diffBytesSent),
        static_cast<unsigned long long>(c.homeMigrations),
        static_cast<unsigned long long>(c.migratedBytes),
        static_cast<unsigned long long>(c.fetchForwards),
        a.run.verified ? "true" : "false");
    if (!json.empty())
        json += ",\n";
    json += buf;
}

int
run()
{
    double scale = benchScale();
    std::printf("# Placement ablation: round-robin scrambled homes, "
                "static vs dynamic (8 nodes x 1 thread)\n");
    std::printf("%-11s %12s %12s %8s %10s %12s %10s %10s %s\n", "app",
                "misHomed(s)", "misHomed(d)", "reduc%", "homeMigr",
                "migratedB", "wall(s)ms", "wall(d)ms", "ok");

    int failures = 0;
    std::string json;
    for (const std::string &app : benchApps()) {
        ArmResult stat = runArm(app, false, scale);
        ArmResult dyn = runArm(app, true, scale);
        appendJson(json, stat);
        appendJson(json, dyn);

        std::uint64_t ms_bytes = stat.run.counters.misHomedDiffBytes;
        std::uint64_t md_bytes = dyn.run.counters.misHomedDiffBytes;
        double reduc =
            ms_bytes ? 100.0 *
                           (static_cast<double>(ms_bytes) -
                            static_cast<double>(md_bytes)) /
                           static_cast<double>(ms_bytes)
                     : 0.0;
        bool ok = stat.run.verified && dyn.run.verified;
        std::printf("%-11s %12llu %12llu %7.1f%% %10llu %12llu %10.2f "
                    "%10.2f %s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(ms_bytes),
                    static_cast<unsigned long long>(md_bytes), reduc,
                    static_cast<unsigned long long>(
                        dyn.run.counters.homeMigrations),
                    static_cast<unsigned long long>(
                        dyn.run.counters.migratedBytes),
                    ms(stat.run.wall), ms(dyn.run.wall),
                    ok ? "ok" : "VERIFY-FAILED");
        if (!ok)
            failures++;
    }

    const char *out = std::getenv("RSVM_BENCH_OUT");
    if (!out)
        out = "BENCH_placement.json";
    if (std::FILE *f = std::fopen(out, "w")) {
        std::fprintf(f, "[\n%s\n]\n", json.c_str());
        std::fclose(f);
        std::printf("\n# wrote %s\n", out);
    } else {
        std::printf("\n# FAILED to write %s\n", out);
        failures++;
    }
    return failures;
}

} // namespace

int
main()
{
    return run() ? 1 : 0;
}

/**
 * @file
 * Micro-benchmarks (google-benchmark) of the primitive costs
 * underlying the protocol: diff compute/apply, vector clocks, page
 * fetch round trips, lock acquisition, and checkpoint capture.
 *
 * These are the building blocks whose modelled simulated-time costs
 * drive the figure harnesses; the micro-benchmarks here measure the
 * *implementation's* real cost, which is what bounds simulation speed.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "mem/diff.hh"
#include "runtime/cluster.hh"
#include "svm/timestamp.hh"

namespace {

using namespace rsvm;

void
BM_DiffComputeSparse(benchmark::State &state)
{
    std::vector<std::byte> twin(4096, std::byte{0});
    std::vector<std::byte> cur = twin;
    // Every 64th word modified.
    for (std::size_t i = 0; i < 4096; i += 256)
        cur[i] = std::byte{1};
    for (auto _ : state) {
        Diff d = diff::compute(0, 0, 1, cur, twin);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DiffComputeSparse);

void
BM_DiffComputeDense(benchmark::State &state)
{
    std::vector<std::byte> twin(4096, std::byte{0});
    std::vector<std::byte> cur(4096, std::byte{1});
    for (auto _ : state) {
        Diff d = diff::compute(0, 0, 1, cur, twin);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_DiffComputeDense);

void
BM_DiffApply(benchmark::State &state)
{
    std::vector<std::byte> twin(4096, std::byte{0});
    std::vector<std::byte> cur = twin;
    for (std::size_t i = 0; i < 4096; i += 64)
        cur[i] = std::byte{1};
    Diff d = diff::compute(0, 0, 1, cur, twin);
    std::vector<std::byte> target(4096, std::byte{0});
    for (auto _ : state) {
        diff::apply(d, target.data(), target.size());
        benchmark::DoNotOptimize(target);
    }
}
BENCHMARK(BM_DiffApply);

void
BM_VectorClockDominates(benchmark::State &state)
{
    VectorClock a(8), b(8);
    for (NodeId i = 0; i < 8; ++i) {
        a[i] = 1000 + i;
        b[i] = 900 + i;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(a.dominates(b));
}
BENCHMARK(BM_VectorClockDominates);

/** Whole-simulation throughput: remote page fetch round trips. */
void
BM_SimPageFetchRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        Config cfg;
        cfg.numNodes = 2;
        cfg.protocol = ProtocolKind::FaultTolerant;
        Cluster cluster(cfg);
        Addr page = cluster.mem().allocPageAligned(4096);
        cluster.mem().setPrimaryHome(cluster.mem().pageOf(page), 0);
        cluster.spawn([page](AppThread &t) {
            if (t.id() == 0)
                t.put<std::uint64_t>(page, 42);
            t.barrier();
            if (t.id() == 1)
                benchmark::DoNotOptimize(t.get<std::uint64_t>(page));
            t.barrier();
        });
        cluster.run();
    }
}
BENCHMARK(BM_SimPageFetchRoundTrip);

/** Whole-simulation throughput: one lock handoff between nodes. */
void
BM_SimLockHandoff(benchmark::State &state)
{
    for (auto _ : state) {
        Config cfg;
        cfg.numNodes = 2;
        cfg.protocol = ProtocolKind::FaultTolerant;
        Cluster cluster(cfg);
        Addr counter = cluster.mem().alloc(8);
        cluster.spawn([counter](AppThread &t) {
            for (int i = 0; i < 4; ++i) {
                t.lock(1);
                std::uint64_t v = t.get<std::uint64_t>(counter);
                t.put<std::uint64_t>(counter, v + 1);
                t.unlock(1);
            }
            t.barrier();
        });
        cluster.run();
    }
}
BENCHMARK(BM_SimLockHandoff);

} // namespace

BENCHMARK_MAIN();

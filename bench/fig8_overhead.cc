/**
 * @file
 * Figure 8 (and Figure 10 via --smp): execution-time breakdown in the
 * paper's six-component format — compute, data wait, synchronization,
 * diffs, protocol processing, checkpointing — for the base (0) and
 * extended (1) protocols on 8 nodes.
 *
 * Reproduction targets (§5.3): diffs dominate the extended overhead
 * for FFT/LU/Water-SpatialFL (home pages are diffed and everything is
 * propagated twice); checkpointing stays under ~10 %/15 % of base time
 * except for Water-Nsquared (its release count is an order of
 * magnitude higher); protocol processing stays < 5 %.
 */

#include "bench_common.hh"

namespace rsvm {
namespace bench {
namespace {

int
runFigure(std::uint32_t tpn)
{
    double scale = benchScale();
    std::printf("# Figure %s: overhead breakdown, 8 nodes x %u "
                "thread(s)/node (ms of simulated time, per-thread "
                "average)\n",
                tpn == 1 ? "8" : "10", tpn);
    std::printf("%-11s %-8s %9s %9s %9s %9s %9s %9s %10s %s\n", "app",
                "proto", "compute", "data", "sync", "diffs", "proto",
                "ckpt", "total", "ok");

    int failures = 0;
    for (const std::string &app : benchApps()) {
        for (ProtocolKind kind :
             {ProtocolKind::Base, ProtocolKind::FaultTolerant}) {
            RunResult r = runApp(app, kind, 8, tpn, scale);
            auto six = r.avg.sixComp();
            double total = ms(six.compute + six.data + six.sync +
                              six.diffs + six.protocol + six.ckpt);
            std::printf("%-11s %-8s %9.2f %9.2f %9.2f %9.2f %9.2f "
                        "%9.2f %10.2f %s\n",
                        app.c_str(), protoName(kind), ms(six.compute),
                        ms(six.data), ms(six.sync), ms(six.diffs),
                        ms(six.protocol), ms(six.ckpt), total,
                        r.verified ? "ok" : "VERIFY-FAILED");
            if (!r.verified)
                failures++;
        }
    }
    return failures;
}

} // namespace
} // namespace bench
} // namespace rsvm

int
main(int argc, char **argv)
{
    std::uint32_t tpn = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smp")
            tpn = 2;
    }
    return rsvm::bench::runFigure(tpn) ? 1 : 0;
}

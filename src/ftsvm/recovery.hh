/**
 * @file
 * The recovery manager (§4.5), restructured as a restartable,
 * epoch-guarded state machine so that recovery itself is a failure
 * domain: a second fail-stop may land at any recovery step.
 *
 * A recovery *cycle* begins when a death is detected and ends when the
 * cluster resumes with no dead logical node. A cycle consists of one
 * or more *passes*; each pass recovers the full current failed set
 * (every logical node whose host is dead) through the steps below, and
 * fires a `recovery:*` failpoint after each step. A failure observed
 * at a failpoint aborts the pass; the cycle restarts with the
 * enlarged failed set. Per-origin version guards (applyDiffChain's
 * duplicate check, version-equality skips on page installs, full-copy
 * lock-home installs) make replayed steps idempotent.
 *
 * Pass steps, at one simulated instant on a quiesced cluster:
 *
 *  0. salvage — copy every failed node's checkpoint store from its
 *     backup (and every materialized lock home) into the manager.
 *     This models the coordinator fetching remote recovery state
 *     first, and is what survives the *backup-chain* case: if the
 *     backup dies later in the cycle, the salvaged copy still
 *     restores the protected node. An unusable store (none, or older
 *     than committed state some survivor has observed) is the
 *     genuinely unrecoverable case: ClusterLostError via
 *     ClusterOps::clusterLost, never an assert;
 *  1. page restore — for pages with both homes alive, roll the failed
 *     node's partially propagated last release forward (tentative ->
 *     committed) if its saved timestamp covers it, else back;
 *  2. home remap — re-assign primary/secondary homes away from failed
 *     nodes (metadata only);
 *  3. re-replicate — scan every referenced page, pick the dominant
 *     surviving copy (committed or normalized tentative, wherever it
 *     lives), and install it at the current homes; a referenced page
 *     with no surviving copy is unrecoverable. Completes the failed
 *     node's own self-secondary release from the diffs saved with its
 *     timestamp;
 *  4. lock cleanup — remap lock homes, installing a surviving or
 *     salvaged copy (failed nodes' slots preserved, §4.3);
 *  5. discard — cap every survivor's version state for each failed
 *     node at its saved timestamp (cancels unsaved intervals);
 *  6. resume — re-host each failed node (backup's host, else the
 *     least-loaded live host), reset its volatile state to the saved
 *     timestamp and restore its threads from the salvaged checkpoints;
 *  7. re-protect — every live node gets an eligible backup and a
 *     fresh, consistent checkpoint wherever one is missing (covers
 *     aborted-pass leftovers, resumed nodes and orphaned protectees).
 *
 * The modelled elapsed time of all passes is charged before the
 * cluster is released; a failure inside that window extends the same
 * cycle (salvaged state is retained until the cycle completes).
 */

#ifndef RSVM_FTSVM_RECOVERY_HH
#define RSVM_FTSVM_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "ftsvm/checkpoint.hh"
#include "svm/locks.hh"
#include "svm/protocol.hh"

namespace rsvm {

class FtProtocolNode;

/** Orchestrates failure recovery for the extended protocol. */
class RecoveryManager
{
  public:
    explicit RecoveryManager(SvmContext &context);

    /** Hook for restarting a thread from the beginning (tag 0). */
    void setRestartHook(std::function<void(ThreadId)> hook)
    { restartHook = std::move(hook); }

    /** Entry point: install as the Vmmc peer-death hook. */
    void onPhysFailure(PhysNodeId phys);

    /** Counters accumulated across recoveries. */
    const Counters &counters() const { return stats; }

    /** Simulated duration of the last recovery cycle. */
    SimTime lastRecoveryTime() const { return lastDuration; }

    /** True once the cluster was declared unrecoverable. */
    bool clusterLost() const { return lostDeclared; }

    /**
     * Forget a declared loss and any in-flight cycle state after a
     * cold restart rebuilt the cluster from the persistence tier: the
     * salvage caches describe pre-loss state and must not leak into
     * the restarted world.
     */
    void resetAfterColdRestart();

  private:
    enum class PassResult { Done, Aborted, Lost };

    /** A failed node's checkpoint store, copied out of its backup. */
    struct Salvaged
    {
        bool haveStore = false;
        CkptStore store;
    };

    /** A lock home's state, copied out of a (then) live home. */
    struct SalvagedLock
    {
        PollLockHome home;
        SimTime when; ///< snapshot instant (staleness detection)
    };

    void pollQuiesce();
    bool quiesced() const;

    /** Run passes until one completes, aborts into a retry, or the
     *  cluster is lost; schedules finishCycle() on success. */
    void runPasses();
    PassResult runPass(const std::vector<NodeId> &failed);
    void finishCycle();

    // ---- Pass steps ------------------------------------------------------
    void salvageStores(const std::vector<NodeId> &failed);
    void salvageLocks();
    bool checkStoresUsable(const std::vector<NodeId> &failed);
    void stepPageRestore(const std::vector<NodeId> &failed);
    void stepRemapHomes(const std::vector<NodeId> &failed);
    void stepReReplicate(const std::vector<NodeId> &failed);
    void stepLocks(const std::vector<NodeId> &failed);
    void stepDiscard(const std::vector<NodeId> &failed);
    void stepResume(const std::vector<NodeId> &failed);
    void stepReProtect(const std::vector<NodeId> &failed);

    /** Engine-side forced commit + propagation + fresh checkpoints. */
    void recoveryCheckpoint(NodeId node);

    /**
     * Fire @p name on every live physical node, then fold any node it
     * killed into the bookkeeping. Returns true if the pass must
     * abort (the failed set grew).
     */
    bool firePoint(const char *name, std::vector<bool> &live_before);

    /** Unrecoverable: surface through the runtime, never assert. */
    void declareLost(LossReason code, const std::string &detail);

    // ---- Queries ---------------------------------------------------------
    std::vector<NodeId> failedNodes() const;
    bool hostAlive(NodeId n) const;
    /** Saved-timestamp cap for a failed node (0 without a store). */
    IntervalNum limitOf(NodeId f) const;
    /**
     * Highest interval of @p f some survivor (or salvaged store of
     * another failed node) has observed as committed. A usable store
     * must cover it.
     */
    IntervalNum evidentCommitted(NodeId f,
                                 const std::vector<NodeId> &failed) const;

    FtProtocolNode *ft(NodeId n) const;

    SvmContext &ctx;
    std::function<void(ThreadId)> restartHook;
    bool running = false;
    bool lostDeclared = false;
    SimTime accumCost = 0;
    SimTime lastDuration = 0;
    Counters stats;

    /** Per-cycle salvage, cleared when the cycle completes. */
    std::unordered_map<NodeId, Salvaged> salvage;
    std::unordered_map<LockId, SalvagedLock> lockSalvage;
};

} // namespace rsvm

#endif // RSVM_FTSVM_RECOVERY_HH

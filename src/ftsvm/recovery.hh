/**
 * @file
 * The recovery manager (§4.5).
 *
 * When any communication operation detects a dead physical node, the
 * Vmmc peer-death hook lands here. Recovery then:
 *
 *  1. waits for the cluster to quiesce — every live node has either no
 *     release in flight or its releaser parked waiting for recovery
 *     (the paper's precondition that no updates are being propagated
 *     by any node other than the failed one, §4.5.2);
 *  2. restores page consistency: for every page carrying the failed
 *     node's partially propagated last release, rolls forward
 *     (tentative -> committed) if the failed node's remotely saved
 *     timestamp covers that release, otherwise rolls back
 *     (committed -> tentative);
 *  3. re-assigns primary/secondary homes for all pages and locks the
 *     failed node homed, re-replicating from the surviving copy so
 *     both replicas again live on distinct physical nodes (§4.5.1);
 *  4. discards write notices and version entries of the failed node's
 *     cancelled intervals everywhere;
 *  5. re-hosts the failed logical node on its backup's physical node,
 *     resets its volatile state to the saved timestamp, and resumes
 *     its threads from the checkpoints tagged with the saved interval
 *     (§4.5.3);
 *  6. re-protects: nodes whose checkpoint storage died with the failed
 *     node get a new backup and a fresh, engine-side consistent
 *     checkpoint (a forced commit point, so no un-replayable execution
 *     precedes the new images).
 *
 * All state surgery happens atomically at one simulated instant (the
 * cluster is quiesced); the modelled elapsed recovery time is charged
 * before the cluster is released.
 */

#ifndef RSVM_FTSVM_RECOVERY_HH
#define RSVM_FTSVM_RECOVERY_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "base/stats.hh"
#include "svm/protocol.hh"

namespace rsvm {

class FtProtocolNode;

/** Orchestrates failure recovery for the extended protocol. */
class RecoveryManager
{
  public:
    explicit RecoveryManager(SvmContext &context);

    /** Hook for restarting a thread from the beginning (tag 0). */
    void setRestartHook(std::function<void(ThreadId)> hook)
    { restartHook = std::move(hook); }

    /** Entry point: install as the Vmmc peer-death hook. */
    void onPhysFailure(PhysNodeId phys);

    /** Counters accumulated across recoveries. */
    const Counters &counters() const { return stats; }

    /** Simulated duration of the last recovery. */
    SimTime lastRecoveryTime() const { return lastDuration; }

  private:
    void pollQuiesce();
    bool quiesced() const;
    void performRecovery();
    void recoverNode(NodeId failed);
    /** Engine-side forced commit + propagation + fresh checkpoints. */
    void recoveryCheckpoint(NodeId node);

    FtProtocolNode *ft(NodeId n) const;

    SvmContext &ctx;
    std::function<void(ThreadId)> restartHook;
    std::deque<PhysNodeId> pending;
    bool running = false;
    SimTime accumCost = 0;
    SimTime lastDuration = 0;
    Counters stats;
};

} // namespace rsvm

#endif // RSVM_FTSVM_RECOVERY_HH

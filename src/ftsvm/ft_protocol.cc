#include "ftsvm/ft_protocol.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"
#include "svm/homing/profiler.hh"

namespace rsvm {

FtProtocolNode::FtProtocolNode(SvmContext &context, NodeId node_id)
    : SvmNode(context, node_id)
{
}

CkptStore *
FtProtocolNode::findStoreFor(NodeId protected_node)
{
    auto it = backupStores.find(protected_node);
    return it == backupStores.end() ? nullptr : &it->second;
}

std::byte *
FtProtocolNode::committedData(PageId page)
{
    HomeInfo &hi = homeInfo(page);
    if (!hi.committed) {
        hi.committed.reset(new std::byte[ctx.cfg.pageSize]);
        std::memset(hi.committed.get(), 0, ctx.cfg.pageSize);
    }
    return hi.committed.get();
}

std::byte *
FtProtocolNode::tentativeData(PageId page)
{
    HomeInfo &hi = homeInfo(page);
    if (!hi.tentative) {
        hi.tentative.reset(new std::byte[ctx.cfg.pageSize]);
        std::memset(hi.tentative.get(), 0, ctx.cfg.pageSize);
    }
    return hi.tentative.get();
}



// ------------------------------------------------------------- page fetch

bool
FtProtocolNode::stallOnLockedPage(SimThread &self, PageEntry &)
{
    // §4.2: fault handling / new writes on a locked page stall until
    // the outstanding release completes (unlockPages wakes us).
    pageLockWaiters.push_back({&self, self.generation()});
    (void)self.parkFor(ctx.cfg.heartbeatTimeout, Comp::DataWait);
    return true; // caller re-evaluates the page state
}

void
FtProtocolNode::fetchPage(SimThread &self, PageId page)
{
    for (;;) {
        NodeId prim = ctx.as.primaryHome(page);
        PageEntry &e = pt.entry(page);
        VectorClock req(ctx.cfg.numNodes);
        for (NodeId n = 0; n < ctx.cfg.numNodes; ++n)
            req[n] = e.reqVer[n];

        if (prim == nodeId) {
            // Local fetch at the primary home: copy the committed copy
            // into the working copy, once it satisfies the required
            // version (§4.2: "they now have to fetch the version
            // needed from the local, committed copy").
            HomeInfo &hi = homeInfo(page);
            if (!hi.committedVer.dominates(req)) {
                hi.localWaiters.push_back({&self, self.generation()});
                WakeStatus ws = self.parkFor(ctx.cfg.heartbeatTimeout,
                                             Comp::DataWait);
                if (ws == WakeStatus::Timeout) {
                    PhysNodeId dead;
                    if (ctx.vmmc.sweepForFailures(self, &dead))
                        parkUntilRecovered(self, Comp::DataWait);
                }
                continue; // re-evaluate (home may have changed)
            }
            PageEntry &e2 = pt.entry(page);
            if (e2.state != PageState::Invalid) {
                // Faulted in by another local thread meanwhile.
                stats.localPageFetches++;
                return;
            }
            if (ctx.homing)
                ctx.homing->recordFetch(page, nodeId);
            std::byte *commit = committedData(page);
            std::byte *work = pt.ensureData(e2);
            std::memcpy(work, commit, ctx.cfg.pageSize);
            applyPendingLocal(page, work);
            self.charge(Comp::DataWait,
                        static_cast<SimTime>(ctx.cfg.pageSize *
                                             ctx.cfg.memCopyNsPerByte));
            e2.state = PageState::ReadOnly;
            stats.localPageFetches++;
            return;
        }

        auto out = std::make_shared<std::vector<std::byte>>();
        SvmNode *home_node = ctx.nodes[prim];
        CommStatus st = ctx.vmmc.fetch(
            self, nodeId, prim, 64 + 4 * ctx.cfg.numNodes,
            [home_node, page, req, out](std::shared_ptr<Replier> rep) {
                home_node->handleFetch(page, req, std::move(rep), out);
            },
            Comp::DataWait);
        if (st == CommStatus::Ok) {
            if (ctx.homing)
                ctx.homing->recordFetch(page, nodeId);
            PageEntry &e2 = pt.entry(page);
            if (e2.state != PageState::Invalid) {
                // Another local thread faulted the page in while we
                // waited; our copy may predate its writes. Discard.
                stats.remotePageFetches++;
                return;
            }
            // The required version may have advanced while the reply
            // was in flight (a concurrent acquire applied new write
            // notices): this copy is stale — refetch.
            bool stale = false;
            for (NodeId n = 0; n < ctx.cfg.numNodes; ++n) {
                if (e2.reqVer[n] > req[n]) {
                    stale = true;
                    break;
                }
            }
            if (stale)
                continue;
            std::byte *data = pt.ensureData(e2);
            rsvm_assert(out->size() == ctx.cfg.pageSize);
            std::memcpy(data, out->data(), ctx.cfg.pageSize);
            applyPendingLocal(page, data);
            e2.state = PageState::ReadOnly;
            stats.remotePageFetches++;
            return;
        }
        if (st == CommStatus::Error)
            parkUntilRecovered(self, Comp::DataWait);
        // Restarted / recovered: retry with the fresh home mapping.
    }
}

void
FtProtocolNode::replyWithCommitted(PageId page,
                                   std::shared_ptr<Replier> rep,
                                   std::shared_ptr<
                                       std::vector<std::byte>> out)
{
    std::byte *data = committedData(page);
    std::vector<std::byte> copy(data, data + ctx.cfg.pageSize);
    rep->reply(ctx.cfg.pageSize,
               [out, copy = std::move(copy)]() mutable {
                   *out = std::move(copy);
               });
}

void
FtProtocolNode::handleFetch(PageId page, const VectorClock &req_ver,
                            std::shared_ptr<Replier> rep,
                            std::shared_ptr<std::vector<std::byte>> out)
{
    if (ctx.cfg.dynamicHoming) {
        NodeId prim = ctx.as.primaryHome(page);
        if (prim != nodeId) {
            // The page's home moved while this fetch was in flight
            // (the requester's closure captured the old primary):
            // forward it to the current one. Each hop re-reads the
            // directory, so a chain of migrations still converges.
            stats.fetchForwards++;
            SvmNode *home_node = ctx.nodes[prim];
            VectorClock req = req_ver;
            ctx.vmmc.depositFromEvent(
                nodeId, prim, 64 + 4 * ctx.cfg.numNodes,
                [home_node, page, req = std::move(req),
                 rep = std::move(rep), out = std::move(out)]() mutable {
                    home_node->handleFetch(page, req, std::move(rep),
                                           std::move(out));
                });
            return;
        }
    }
    HomeInfo &hi = homeInfo(page);
    if (hi.committedVer.dominates(req_ver)) {
        replyWithCommitted(page, std::move(rep), std::move(out));
        return;
    }
    RSVM_LOG(LogComp::Mem, "node %u defers fetch page=%u req=%s committed=%s",
             nodeId, page, req_ver.toString().c_str(),
             hi.committedVer.toString().c_str());
    hi.waiters.push_back(
        DeferredFetch{req_ver, std::move(rep), std::move(out)});
}

void
FtProtocolNode::serviceFetchWaiters(PageId page)
{
    HomeInfo *hi = findHomeInfo(page);
    if (!hi)
        return;
    if (!hi->waiters.empty()) {
        std::vector<DeferredFetch> still;
        for (auto &w : hi->waiters) {
            if (hi->committedVer.dominates(w.reqVer))
                replyWithCommitted(page, std::move(w.rep),
                                   std::move(w.out));
            else
                still.push_back(std::move(w));
        }
        hi->waiters.swap(still);
    }
    // Local waiters re-check their own condition after the wake.
    wakeWaiters(hi->localWaiters);
}

void
FtProtocolNode::serviceAllWaiters()
{
    std::vector<PageId> pages;
    pages.reserve(homePages.size());
    for (auto &[page, hi] : homePages)
        pages.push_back(page);
    for (PageId p : pages)
        serviceFetchWaiters(p);
}

void
FtProtocolNode::applyIncomingDiff(const Diff &d, int phase)
{
    if (Logger::instance().enabled(LogComp::Mem)) {
        std::uint64_t w0 = 0;
        if (!d.runs.empty() && d.runs[0].bytes.size() >= 8)
            std::memcpy(&w0, d.runs[0].bytes.data(), 8);
        RSVM_LOG(LogComp::Mem,
                 "node %u applies diff page=%u origin=%u interval=%u "
                 "phase=%d bytes=%u runs=%zu off=%u w0=%llu",
                 nodeId, d.page, d.origin, d.interval, phase,
                 d.modifiedBytes(), d.runs.size(),
                 d.runs.empty() ? 0 : d.runs[0].offset,
                 static_cast<unsigned long long>(w0));
    }
    if (phase == 1) {
        HomeInfo &hi = homeInfo(d.page);
        applyDiffChain(
            hi, hi.tentativeVer, 1, d, [this, &hi](const Diff &dd) {
                std::byte *tent = tentativeData(dd.page);
                // Record the undo (pre-application bytes of the same
                // runs): if the page's primary home dies before this
                // interval's timestamp save, the promotion of this
                // tentative copy must cancel these updates (§4.5.2
                // roll-back with a dead primary home).
                Diff undo;
                undo.page = dd.page;
                undo.origin = dd.origin;
                undo.interval = dd.interval;
                // The page's version for this origin BEFORE the
                // cancelled apply. Rolling back must restore exactly
                // this value — per-page chains are sparse, so the
                // origin's last saved interval is NOT in general a
                // version this page ever had, and inventing it breaks
                // the prevInterval chain for every later diff.
                undo.prevInterval = dd.prevInterval;
                for (const DiffRun &run : dd.runs) {
                    DiffRun old;
                    old.offset = run.offset;
                    old.bytes.assign(tent + run.offset,
                                     tent + run.offset +
                                         run.bytes.size());
                    undo.runs.push_back(std::move(old));
                }
                hi.tentUndo[dd.origin] = std::move(undo);
                diff::apply(dd, tent, ctx.cfg.pageSize);
            });
        return;
    }
    rsvm_assert(phase == 2);
    HomeInfo &hi = homeInfo(d.page);
    applyDiffChain(
        hi, hi.committedVer, 0, d, [this, &hi](const Diff &dd) {
            std::byte *commit = committedData(dd.page);
            diff::apply(dd, commit, ctx.cfg.pageSize);
            // The interval is committed: its roll-back undo is
            // obsolete.
            auto undo_it = hi.tentUndo.find(dd.origin);
            if (undo_it != hi.tentUndo.end() &&
                undo_it->second.interval <= dd.interval)
                hi.tentUndo.erase(undo_it);
        });
    serviceFetchWaiters(d.page);
}

const std::byte *
FtProtocolNode::homeBytes(PageId page)
{
    HomeInfo *hi = findHomeInfo(page);
    return hi ? hi->committed.get() : nullptr;
}

void
FtProtocolNode::capOriginVersions(NodeId origin, IntervalNum limit)
{
    for (auto &[page, hi] : homePages) {
        if (hi.committedVer.size() &&
            hi.committedVer[origin] > limit)
            hi.committedVer[origin] = limit;
        if (hi.tentativeVer.size() &&
            hi.tentativeVer[origin] > limit)
            hi.tentativeVer[origin] = limit;
        for (auto &w : hi.waiters) {
            if (w.reqVer[origin] > limit)
                w.reqVer[origin] = limit;
        }
        // Deferred diffs of cancelled intervals will never link up.
        for (auto &bucket : hi.deferredDiffs) {
            auto it = bucket.find(origin);
            if (it == bucket.end())
                continue;
            auto &vec = it->second;
            vec.erase(std::remove_if(vec.begin(), vec.end(),
                                     [limit](const Diff &d) {
                                         return d.interval > limit;
                                     }),
                      vec.end());
        }
    }
    for (auto &[page, e] : pt) {
        if (e.reqVer.size() > origin && e.reqVer[origin] > limit)
            e.reqVer[origin] = limit;
    }
    if (ts[origin] > limit)
        ts[origin] = limit;
}

// ------------------------------------------------------------------ release

void
FtProtocolNode::lockPages(const std::vector<PageId> &pages)
{
    for (PageId p : pages)
        pt.entry(p).locked = true;
}

void
FtProtocolNode::unlockPages(const std::vector<PageId> &pages)
{
    for (PageId p : pages) {
        if (PageEntry *e = pt.find(p))
            e->locked = false;
    }
    wakePageLockWaiters();
}

void
FtProtocolNode::releaserWaitRecovery(SimThread &self)
{
    releasersWaitingRecovery++;
    parkUntilRecovered(self, Comp::Diff);
    releasersWaitingRecovery--;
}

CommStatus
FtProtocolNode::propagateDiffs(SimThread &self,
                               const std::vector<Diff> &diffs, int phase)
{
    // Two-phase pipeline instantiation: phase 1 targets the tentative
    // copies at every secondary home (none for a degree-1 page), phase
    // 2 the committed copy at the primary home. Both wait for every
    // destination (the release cannot advance past an unconfirmed
    // phase), and the mid-phase failpoint fires between the first and
    // second posted message.
    AddressSpace &as = ctx.as;
    return propagation.runPhase(
        self, diffs, phase,
        PropagationPipeline::TargetsFn(
            [&as, phase](const Diff &d, std::vector<NodeId> &out) {
                if (phase == 1)
                    as.secondaryHomesInto(d.page, out);
                else
                    out.push_back(as.primaryHome(d.page));
            }),
        /*wait=*/true,
        [this, &self, phase] {
            failpoint(self, phase == 1 ? failpoints::kMidPhase1
                                       : failpoints::kMidPhase2);
        });
}

CommStatus
FtProtocolNode::sendCkpt(SimThread &self, ThreadId thread,
                         ThreadCkpt ckpt, CompletionBatch *batch)
{
    NodeId backup = ctx.ops->backupOf(nodeId);
    auto *bnode = static_cast<FtProtocolNode *>(ctx.nodes[backup]);
    std::uint32_t bytes = static_cast<std::uint32_t>(
        ckpt.valid ? ckpt.image.bytes() : 64);
    stats.checkpointsTaken++;
    stats.checkpointBytes += bytes;
    NodeId me = nodeId;
    return ctx.vmmc.depositAsync(
        self, nodeId, backup, bytes,
        [bnode, me, thread, ckpt = std::move(ckpt)]() mutable {
            bnode->storeFor(me).save(thread, std::move(ckpt));
        },
        batch, Comp::Ckpt);
}

CommStatus
FtProtocolNode::checkpointOthers(SimThread &self, IntervalNum tag)
{
    CompletionBatch batch(self);
    for (SimThread *t : ctx.ops->computeThreads(nodeId)) {
        if (t == &self || t->state() == ThreadState::Dead)
            continue;
        self.charge(Comp::Ckpt, ctx.cfg.ckptCaptureCost);
        ThreadCkpt ckpt;
        ckpt.tag = tag;
        ckpt.image = t->captureForCkpt();
        if (ckpt.image.finished)
            ckpt.finished = true;
        else
            ckpt.valid = true;
        CommStatus st = sendCkpt(self, t->id(), std::move(ckpt),
                                 &batch);
        if (st == CommStatus::Restarted)
            return st;
    }
    return batch.wait(Comp::Ckpt);
}

CommStatus
FtProtocolNode::saveTimestamp(SimThread &self, IntervalNum interval,
                              const std::vector<PageId> &pages)
{
    NodeId backup = ctx.ops->backupOf(nodeId);
    auto *bnode = static_cast<FtProtocolNode *>(ctx.nodes[backup]);
    VectorClock my_ts = ts;
    std::uint64_t epoch = barrierEpoch;
    NodeId me = nodeId;
    std::vector<PageId> pages_copy = pages;
    std::uint32_t bytes = 64 + 4 * ctx.cfg.numNodes +
                          4 * static_cast<std::uint32_t>(pages.size());
    // Pages with no OFF-NODE tentative replica — every secondary home
    // is this node itself, or the page's replication degree is 1 and
    // it has no secondary at all — would leave no surviving copy of
    // this release's updates: replicate their diffs with the timestamp
    // so a roll-forward after our death can still complete the
    // release.
    std::vector<Diff> self_secondary;
    std::vector<NodeId> secs;
    if (activeRelease) {
        for (const Diff &d : activeRelease->diffs) {
            secs.clear();
            ctx.as.secondaryHomesInto(d.page, secs);
            bool off_node = false;
            for (NodeId s : secs) {
                if (s != nodeId) {
                    off_node = true;
                    break;
                }
            }
            if (!off_node) {
                self_secondary.push_back(d);
                bytes += d.wireBytes();
            }
        }
    }
    SvmContext *cx = &ctx;
    return ctx.vmmc.deposit(
        self, nodeId, backup, bytes,
        [cx, bnode, me, my_ts, interval, epoch,
         pages_copy = std::move(pages_copy),
         self_secondary = std::move(self_secondary)]() mutable {
            bnode->storeFor(me).saveMeta(my_ts, interval, epoch,
                                         std::move(pages_copy),
                                         std::move(self_secondary));
            if (cx->traceProbe)
                cx->traceProbe("ts-save", me, interval);
        },
        Comp::Ckpt);
}

FtProtocolNode::PointB
FtProtocolNode::checkpointSelf(SimThread &self, IntervalNum tag)
{
    self.charge(Comp::Ckpt, ctx.cfg.ckptCaptureCost);
    // The snapshot lands in node-owned scratch storage: this frame may
    // only hold PODs and raw pointers at the capture point, because it
    // is part of the point-B image and will be resurrected on restore.
    Fiber::Snapshot *scratch = &ckptScratch;
    if (!self.captureSelf(*scratch)) {
        // Restored path: recovery rolled the node forward/backward and
        // resumed us here. The pending Restarted wake belongs to this
        // resume; clear it so later parks behave.
        self.clearPendingWake();
        RSVM_LOG(LogComp::Ckpt, "node %u thread %u resumed at point B",
                 nodeId, self.id());
        return PointB::Restored;
    }
    ThreadCkpt ckpt;
    ckpt.tag = tag;
    ckpt.image.snap = std::move(ckptScratch);
    ckpt.valid = true;
    // Point-B images resume inside the thread's current restartable
    // operation: record its closure so the restore can rebuild the
    // thread's op bookkeeping (SimThread::restoreFromImage).
    if (self.inRestartableOp()) {
        ckpt.image.op = self.currentOp();
        ckpt.image.opCtx = self.opBoundaryContext();
        ckpt.image.hasOpCtx = true;
    }
    CompletionBatch batch(self);
    CommStatus st = sendCkpt(self, self.id(), ckpt, &batch);
    if (st == CommStatus::Ok)
        st = batch.wait(Comp::Ckpt);
    if (st == CommStatus::Ok) {
        RSVM_LOG(LogComp::Ckpt, "node %u point-B ckpt stored", nodeId);
        return PointB::Stored;
    }
    // A failed store must NOT be retried here in isolation: if the
    // backup (or a secondary home) died, recovery rebuilds its state
    // from the surviving replicas, and the whole unit up to this
    // point — point-A images, phase-1 tentative updates, the point-B
    // image — has to be re-established there. The caller retries the
    // unit; re-applied diffs are dropped as duplicates where they
    // already landed.
    RSVM_LOG(LogComp::Ckpt, "node %u point-B ckpt error, waiting",
             nodeId);
    return PointB::Error;
}

void
FtProtocolNode::doRelease(SimThread &self, LockId lock, bool is_barrier)
{
    failpoint(self, failpoints::kBeforeRelease);

    // Serialize releases within the node (§4.4: checkpoints performed
    // by different threads must not overlap).
    while (releaseMutexBusy) {
        releaseMutexWaiters.push_back({&self, self.generation()});
        (void)self.park(Comp::Protocol);
        // Restarted or woken: re-evaluate (recovery clears the flag).
    }
    releaseMutexBusy = true;
    releasesActive++;
    RSVM_LOG(LogComp::Ft, "node %u release begins (barrier=%d)",
             nodeId, is_barrier ? 1 : 0);

    // The release state is node-owned: the point-B stack image must
    // not own heap allocations (see SimThread::CkptImage).
    activeRelease = std::make_unique<CommitResult>(commitInterval(&self));
    CommitResult *cr = activeRelease.get();
    // Coalesce once, before any phase: phase 1, the timestamp save's
    // self-secondary replicas and phase 2 all ship the same
    // normalized diff set.
    propagation.stage(&self, cr->diffs);
    failpoint(self, failpoints::kAfterCommit);

    if (!cr->any) {
        if (!is_barrier) {
            // Nothing to propagate: a lock release degenerates to the
            // handoff (timestamp unchanged, no checkpoints needed —
            // no local update can leak because none exists).
            for (;;) {
                CommStatus st = globalRelease(self, lock);
                if (st == CommStatus::Ok)
                    break;
                releaserWaitRecovery(self);
            }
            releasesActive--;
            releaseMutexBusy = false;
            activeRelease.reset();
            wakeWaiters(releaseMutexWaiters);
            return;
        }
        // A barrier release must checkpoint even when empty: the
        // rendezvous licenses PEERS to overwrite pages this node has
        // already read, and homes only keep the newest committed
        // copy. If the durable image stayed behind the previous
        // barrier, a later failure would replay those reads against
        // post-barrier data. Re-use the current interval as the
        // image tag: the two-slot store overwrites the older image
        // at the same tag, which is exactly what an exact-tag find
        // should return afterwards.
        cr->interval = intervalCtr;
    }

    // §4.2: lock the committed pages; faults and new local writes on
    // them stall until this release completes.
    if (cr->any)
        lockPages(cr->pages);

    // Phases up to and including the timestamp save retry as a UNIT
    // across failures of peer nodes: a dead secondary home or backup
    // comes back re-hosted with rebuilt page copies and an empty
    // checkpoint store, so every piece of replicated state this
    // release pushed there (point-A images, phase-1 tentative
    // updates, the point-B image) must be re-established, not just
    // the step that happened to observe the failure. Re-application
    // is safe: diffs are dropped as duplicates where they already
    // landed and version merges are monotonic.
    //
    // Point B is captured BEFORE saving the timestamp. The order
    // matters: the saved timestamp declares the release complete
    // (roll-forward), so the point-B image it rolls forward to must
    // already exist. A death during the checkpoint itself rolls back
    // to the previous release (§4.5.3), whose images are intact in
    // the other slot of the two-slot alternation.
    //
    // On the restored path recovery has already rolled the pages
    // forward (tentative -> committed), so the timestamp save, phase 2
    // and the page unlock are skipped; the lock handoff is re-executed
    // (idempotent: slot clear + monotonic ts merge).
    bool normal_path = true;
    bool phase1_logged = false;
    for (;;) {
        // Point A: capture all other local threads at the moment the
        // interval ends (§4.4).
        CommStatus st = checkpointOthers(self, cr->interval);
        if (st != CommStatus::Ok) {
            releaserWaitRecovery(self);
            continue;
        }
        failpoint(self, failpoints::kAfterPointA);

        // Phase 1: diffs to the tentative copies at secondary homes.
        if (cr->any) {
            st = propagateDiffs(self, cr->diffs, 1);
            if (st != CommStatus::Ok) {
                releaserWaitRecovery(self);
                continue;
            }
        }
        failpoint(self, failpoints::kAfterPhase1);
        if (!phase1_logged) {
            RSVM_LOG(LogComp::Ft, "node %u phase1 done (interval %u)",
                     nodeId, cr->interval);
            phase1_logged = true;
        }

        PointB pb = checkpointSelf(self, cr->interval);
        if (pb == PointB::Restored) {
            normal_path = false;
            break;
        }
        if (pb == PointB::Error) {
            releaserWaitRecovery(self);
            continue;
        }
        failpoint(self, failpoints::kAfterPointB);

        st = saveTimestamp(self, cr->interval, cr->pages);
        if (st != CommStatus::Ok) {
            releaserWaitRecovery(self);
            continue;
        }
        failpoint(self, failpoints::kAfterTsSave);
        break;
    }

    if (!is_barrier) {
        for (;;) {
            CommStatus st = globalRelease(self, lock);
            if (st == CommStatus::Ok)
                break;
            RSVM_LOG(LogComp::Ft, "node %u handoff error, waiting",
                     nodeId);
            releaserWaitRecovery(self);
        }
    }
    RSVM_LOG(LogComp::Ft, "node %u handoff done", nodeId);

    if (normal_path) {
        // Phase 2: the same diffs to the committed copies at primary
        // homes (fetches of these pages unblock here).
        if (cr->any) {
            for (;;) {
                CommStatus st = propagateDiffs(self, cr->diffs, 2);
                if (st == CommStatus::Ok)
                    break;
                releaserWaitRecovery(self);
            }
            unlockPages(cr->pages);
        }
        releasesActive--;
        releaseMutexBusy = false;
        activeRelease.reset();
        wakeWaiters(releaseMutexWaiters);
    }
    // Restored path: recovery already reset the release bookkeeping
    // (and there are no locked pages after the page-table reset).
    failpoint(self, failpoints::kAfterRelease);
}

// --------------------------------------------------------------------- locks

CommStatus
FtProtocolNode::writeLockSlots(SimThread &self, LockId lock,
                               std::uint8_t value)
{
    // Secondary first, then primary — same serialization rule as page
    // updates: the copy that fetches read is updated last.
    NodeId homes[2] = {ctx.locks.secondaryHome(lock),
                       ctx.locks.primaryHome(lock)};
    NodeId me = nodeId;
    for (NodeId h : homes) {
        SvmNode *hnode = ctx.nodes[h];
        CommStatus st = ctx.vmmc.deposit(
            self, nodeId, h, 16,
            [hnode, lock, me, value] {
                hnode->pollHome(lock).slots[me] = value;
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
    }
    return CommStatus::Ok;
}

void
FtProtocolNode::mirrorQueueHome(LockId lock)
{
    // Runs at the PRIMARY lock home (engine context): ship the full
    // home state to the secondary. Mutations are serialized by the
    // primary's event order and the FIFO channel preserves it.
    QueueLockHome snapshot = queueHome(lock);
    NodeId sec = ctx.locks.secondaryHome(lock);
    SvmNode *snode = ctx.nodes[sec];
    ctx.vmmc.depositFromEvent(
        nodeId, sec, 16 + 4 * ctx.cfg.numNodes,
        [snode, lock, snapshot = std::move(snapshot)] {
            snode->queueHome(lock) = snapshot;
        });
}

CommStatus
FtProtocolNode::ftQueueAcquire(SimThread &self, LockId lock,
                               VectorClock &out_ts)
{
    NodeId home = ctx.locks.primaryHome(lock);
    auto *home_node = static_cast<FtProtocolNode *>(ctx.nodes[home]);
    NodeId me = nodeId;
    grantWaits[lock] = GrantWait{};

    auto granted = std::make_shared<bool>(false);
    auto gts = std::make_shared<VectorClock>();
    CommStatus st = ctx.vmmc.fetch(
        self, nodeId, home, 32,
        [this, home_node, lock, me, granted, gts]
        (std::shared_ptr<Replier> rep) {
            QueueLockHome &q = home_node->queueHome(lock);
            std::uint32_t n = ctx.cfg.numNodes;
            if (!q.held) {
                q.held = true;
                q.tail = me;
                home_node->mirrorQueueHome(lock);
                VectorClock t = q.ts;
                rep->reply(16 + 4 * n,
                           [granted, gts, t = std::move(t)]() mutable {
                               *granted = true;
                               *gts = std::move(t);
                           });
            } else {
                NodeId old_tail = q.tail;
                q.tail = me;
                home_node->mirrorQueueHome(lock);
                rep->reply(16, [granted] { *granted = false; });
                SvmNode *old_node = ctx.nodes[old_tail];
                ctx.vmmc.depositFromEvent(
                    home_node->id(), old_tail, 16,
                    [old_node, lock, me] {
                        old_node->setPendingNext(lock, me);
                    });
            }
        },
        Comp::LockWait);
    if (st != CommStatus::Ok)
        return st;
    if (*granted) {
        out_ts = *gts;
        return CommStatus::Ok;
    }
    for (;;) {
        GrantWait &gw = grantWaits[lock];
        if (gw.granted) {
            out_ts = gw.ts;
            grantWaits.erase(lock);
            return CommStatus::Ok;
        }
        gw.waiter = &self;
        gw.gen = self.generation();
        WakeStatus ws =
            self.parkFor(ctx.cfg.heartbeatTimeout, Comp::LockWait);
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        if (ws == WakeStatus::Timeout) {
            PhysNodeId dead;
            if (ctx.vmmc.sweepForFailures(self, &dead))
                return CommStatus::Error;
        }
    }
}

CommStatus
FtProtocolNode::ftQueueRelease(SimThread &self, LockId lock)
{
    NodeId me = nodeId;
    for (;;) {
        NodeLockState &ls = nodeLocks[lock];
        if (ls.pendingNext != kInvalidNode) {
            NodeId next = ls.pendingNext;
            ls.pendingNext = kInvalidNode;
            SvmNode *next_node = ctx.nodes[next];
            VectorClock my_ts = ts;
            return ctx.vmmc.deposit(
                self, nodeId, next, 16 + 4 * ctx.cfg.numNodes,
                [next_node, lock, my_ts] {
                    next_node->receiveGrant(lock, my_ts);
                },
                Comp::LockWait);
        }
        NodeId home = ctx.locks.primaryHome(lock);
        auto *home_node =
            static_cast<FtProtocolNode *>(ctx.nodes[home]);
        auto freed = std::make_shared<bool>(false);
        VectorClock my_ts = ts;
        CommStatus st = ctx.vmmc.fetch(
            self, nodeId, home, 16 + 4 * ctx.cfg.numNodes,
            [home_node, lock, me, my_ts, freed]
            (std::shared_ptr<Replier> rep) {
                QueueLockHome &q = home_node->queueHome(lock);
                if (q.tail == me) {
                    q.held = false;
                    q.tail = kInvalidNode;
                    q.ts.maxWith(my_ts);
                    home_node->mirrorQueueHome(lock);
                    rep->reply(16, [freed] { *freed = true; });
                } else {
                    rep->reply(16, [freed] { *freed = false; });
                }
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
        if (*freed)
            return CommStatus::Ok;
        for (;;) {
            NodeLockState &ls2 = nodeLocks[lock];
            if (ls2.pendingNext != kInvalidNode)
                break;
            releaseWaits[lock] = {&self, self.generation()};
            WakeStatus ws = self.parkFor(ctx.cfg.heartbeatTimeout,
                                         Comp::LockWait);
            if (ws == WakeStatus::Restarted)
                return CommStatus::Restarted;
            if (ws == WakeStatus::Timeout) {
                PhysNodeId dead;
                if (ctx.vmmc.sweepForFailures(self, &dead))
                    return CommStatus::Error;
            }
        }
    }
}

CommStatus
FtProtocolNode::globalAcquire(SimThread &self, LockId lock,
                              VectorClock &out_ts)
{
    if (ctx.cfg.lockAlgo == LockAlgo::Queuing)
        return ftQueueAcquire(self, lock, out_ts);
    SimTime backoff = ctx.cfg.lockBackoffMin;
    for (;;) {
        failpoint(self, failpoints::kInAcquire);
        CommStatus st = writeLockSlots(self, lock, 1);
        if (st != CommStatus::Ok) {
            RSVM_LOG(LogComp::Lock, "acquire by=%u set-slots st=%d",
                     nodeId, static_cast<int>(st));
            return st;
        }

        NodeId prim = ctx.locks.primaryHome(lock);
        SvmNode *pnode = ctx.nodes[prim];
        NodeId me = nodeId;
        std::uint32_t n = ctx.cfg.numNodes;
        auto sole = std::make_shared<bool>(false);
        auto got = std::make_shared<VectorClock>();
        st = ctx.vmmc.fetch(
            self, nodeId, prim, 16,
            [pnode, lock, me, sole, got, n]
            (std::shared_ptr<Replier> rep) {
                PollLockHome &pl = pnode->pollHome(lock);
                if (Logger::instance().enabled(LogComp::Lock)) {
                    std::string s;
                    for (NodeId i = 0; i < n; ++i)
                        s += pl.slots[i] ? '1' : '0';
                    RSVM_LOG(LogComp::Lock,
                             "poll lock=%u at home=%u by=%u slots=%s",
                             lock, pnode->id(), me, s.c_str());
                }
                // Own slot must be present: a lock-home remap may have
                // lost our in-flight slot write (we then just retry).
                bool s = pl.slots[me] != 0;
                for (NodeId i = 0; s && i < n; ++i) {
                    if (i != me && pl.slots[i])
                        s = false;
                }
                VectorClock t = pl.ts;
                rep->reply(n + 4 * n,
                           [sole, got, s, t = std::move(t)]() mutable {
                               *sole = s;
                               *got = std::move(t);
                           });
            },
            Comp::LockWait);
        if (st != CommStatus::Ok) {
            RSVM_LOG(LogComp::Lock, "acquire by=%u poll-fetch st=%d",
                     nodeId, static_cast<int>(st));
            return st;
        }
        stats.lockPollRounds++;
        if (*sole) {
            RSVM_LOG(LogComp::Lock, "acquire by=%u wins lock=%u",
                     nodeId, lock);
            out_ts = *got;
            return CommStatus::Ok;
        }
        st = writeLockSlots(self, lock, 0);
        if (st != CommStatus::Ok) {
            RSVM_LOG(LogComp::Lock, "acquire by=%u clear-slots st=%d",
                     nodeId, static_cast<int>(st));
            return st;
        }
        // §4.1: heart-beat while contending — the blocking slot may
        // belong to a dead node whose failure nobody else will detect.
        PhysNodeId dead;
        if (ctx.vmmc.sweepForFailures(self, &dead))
            return CommStatus::Error;
        SimTime jitter =
            backoff / 2 + ctx.eng.rng().below(backoff / 2 + 1);
        WakeStatus ws = self.delay(jitter, Comp::LockWait);
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        backoff = std::min<SimTime>(backoff * 2,
                                    ctx.cfg.lockBackoffMax);
    }
}

CommStatus
FtProtocolNode::globalRelease(SimThread &self, LockId lock)
{
    if (ctx.cfg.lockAlgo == LockAlgo::Queuing)
        return ftQueueRelease(self, lock);
    // Write the release timestamp and clear our slot at both homes,
    // secondary first. The max-merge keeps timestamps monotonic even
    // when a restored thread re-executes the handoff (§4.5).
    NodeId homes[2] = {ctx.locks.secondaryHome(lock),
                       ctx.locks.primaryHome(lock)};
    NodeId me = nodeId;
    VectorClock my_ts = ts;
    for (NodeId h : homes) {
        SvmNode *hnode = ctx.nodes[h];
        RSVM_LOG(LogComp::Lock,
                 "node %u releasing lock %u at home %u ts=%s", me,
                 lock, h, my_ts.toString().c_str());
        CommStatus st = ctx.vmmc.deposit(
            self, nodeId, h, 16 + 4 * ctx.cfg.numNodes,
            [hnode, lock, me, my_ts] {
                PollLockHome &pl = hnode->pollHome(lock);
                pl.ts.maxWith(my_ts);
                pl.slots[me] = 0;
            },
            Comp::LockWait);
        RSVM_LOG(LogComp::Lock, "node %u release at home %u st=%d", me,
                 h, static_cast<int>(st));
        if (st != CommStatus::Ok)
            return st;
    }
    return CommStatus::Ok;
}

// ------------------------------------------------------------------ recovery

void
FtProtocolNode::resetForRehost(
    const VectorClock &saved_ts, IntervalNum saved_interval,
    std::uint64_t saved_barrier_epoch,
    const std::unordered_map<IntervalNum, std::vector<PageId>> &pages)
{
    pt.reset();
    ts = saved_ts.size() ? saved_ts : VectorClock(ctx.cfg.numNodes);
    intervalCtr = saved_interval;
    intervalTable.clear();
    for (IntervalNum i = 1; i <= saved_interval; ++i) {
        auto it = pages.find(i);
        if (it != pages.end())
            intervalTable.push_back(IntervalRecord{i, it->second});
    }
    curUpdateList.clear();
    pendingDiffs.clear();
    // Rebuild each page's own-chain knowledge (Diff::prevInterval of
    // our future releases must link to the last interval that diffed
    // the page before the failure, or homes would defer them forever).
    for (const IntervalRecord &rec : intervalTable) {
        for (PageId p : rec.pages) {
            PageEntry &e = pt.entry(p);
            if (e.reqVer[nodeId] < rec.interval)
                e.reqVer[nodeId] = rec.interval;
        }
    }
    homePages.clear();
    pollLocks.clear();
    queueLocks.clear();
    resetNodeLockState();
    barrierEpoch = saved_barrier_epoch;
    barrierGoEpoch = saved_barrier_epoch;
    barrierGoTs = VectorClock(ctx.cfg.numNodes);
    barrierHome = BarrierHome{};
    releaseMutexBusy = false;
    releaseMutexWaiters.clear();
    releasersWaitingRecovery = 0;
    // Backup stores this node held for others died with its memory.
    backupStores.clear();
}

} // namespace rsvm

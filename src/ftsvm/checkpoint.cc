// CkptStore is header-only; this translation unit anchors the module.
#include "ftsvm/checkpoint.hh"

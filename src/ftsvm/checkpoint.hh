/**
 * @file
 * Checkpoint storage (§4.4).
 *
 * Each logical node has a designated *backup* node holding, in its
 * volatile memory:
 *
 *  - two alternating checkpoint slots per protected thread (so a crash
 *    while a checkpoint transfer is in progress always leaves the
 *    previous one intact) — the slot for tag t is t mod 2;
 *  - the protected node's last saved vector timestamp, interval
 *    counter and barrier epoch (deposited at the end of phase 1 of
 *    each release, Fig. 2);
 *  - the page list of every saved interval, so the failed node's
 *    interval table (write notices) can be rebuilt during recovery.
 *
 * Tags are the protected node's interval numbers: the point-A
 * checkpoints of other threads and the point-B checkpoint of the
 * releasing thread during the release of interval i all carry tag i.
 * Recovery restores every thread from its checkpoint tagged with the
 * node's saved interval (roll-forward uses the current release's
 * checkpoints, roll-back the previous release's — §4.5.3).
 */

#ifndef RSVM_FTSVM_CHECKPOINT_HH
#define RSVM_FTSVM_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "mem/diff.hh"
#include "sim/thread.hh"
#include "svm/timestamp.hh"

namespace rsvm {

/** One stored thread checkpoint. */
struct ThreadCkpt
{
    /** Interval tag; 0 means "restart from the beginning". */
    IntervalNum tag = 0;
    /** The thread had already finished at capture time. */
    bool finished = false;
    /** Valid image present (tag > 0 and not finished). */
    bool valid = false;
    SimThread::CkptImage image;
};

/** Everything a backup node holds for one protected node. */
class CkptStore
{
  public:
    /** Store a checkpoint into the slot for its tag (tag mod 2). */
    void
    save(ThreadId thread, ThreadCkpt ckpt)
    {
        slots[thread][ckpt.tag % 2] = std::move(ckpt);
    }

    /** Find the checkpoint with exactly tag @p tag, if present. */
    const ThreadCkpt *
    find(ThreadId thread, IntervalNum tag) const
    {
        auto it = slots.find(thread);
        if (it == slots.end())
            return nullptr;
        const ThreadCkpt &c = it->second[tag % 2];
        if ((c.valid || c.finished) && c.tag == tag)
            return &c;
        return nullptr;
    }

    /** Record the protected node's release-complete metadata. */
    void
    saveMeta(const VectorClock &ts, IntervalNum interval,
             std::uint64_t barrier_epoch,
             std::vector<PageId> interval_pages,
             std::vector<Diff> self_secondary_diffs = {})
    {
        hasSaved = true;
        savedTs = ts;
        savedInterval = interval;
        savedBarrierEpoch = barrier_epoch;
        // An empty barrier release re-saves under the current (already
        // recorded) interval; keep that interval's real page list.
        if (!interval_pages.empty() || !intervalPages.count(interval))
            intervalPages[interval] = std::move(interval_pages);
        // Diffs of pages whose secondary home is the protected node
        // itself: their only off-committed replica (the tentative
        // copy) lives in the protected node's own memory, so a
        // roll-forward after its death must recover them from here.
        // Only the last release matters (earlier phase 2s completed
        // before the next release began).
        savedDiffs = std::move(self_secondary_diffs);
        savedDiffsInterval = interval;
    }

    /**
     * Modelled byte size of everything the store holds (drives the
     * persistence tier's simulated disk-write time).
     */
    std::uint64_t
    modelBytes() const
    {
        std::uint64_t b = 64 + savedTs.size() * 8;
        for (const auto &[interval, pages] : intervalPages) {
            (void)interval;
            b += 16 + pages.size() * 8;
        }
        for (const Diff &d : savedDiffs)
            b += d.wireBytes();
        for (const auto &[thread, arr] : slots) {
            (void)thread;
            for (const ThreadCkpt &c : arr) {
                if (c.valid || c.finished)
                    b += 32 + (c.valid ? c.image.bytes() : 0);
            }
        }
        return b;
    }

    std::vector<Diff> savedDiffs;
    IntervalNum savedDiffsInterval = 0;

    bool hasSaved = false;
    VectorClock savedTs;
    IntervalNum savedInterval = 0;
    std::uint64_t savedBarrierEpoch = 0;
    /** Page lists of saved intervals (rebuilds the interval table). */
    std::unordered_map<IntervalNum, std::vector<PageId>> intervalPages;

  private:
    std::unordered_map<ThreadId, std::array<ThreadCkpt, 2>> slots;
};

} // namespace rsvm

#endif // RSVM_FTSVM_CHECKPOINT_HH

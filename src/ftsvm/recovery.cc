#include "ftsvm/recovery.hh"

#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "sim/engine.hh"

namespace rsvm {

RecoveryManager::RecoveryManager(SvmContext &context)
    : ctx(context)
{
}

FtProtocolNode *
RecoveryManager::ft(NodeId n) const
{
    return static_cast<FtProtocolNode *>(ctx.nodes[n]);
}

void
RecoveryManager::onPhysFailure(PhysNodeId phys)
{
    RSVM_LOG(LogComp::Recovery, "failure of phys node %u detected",
             phys);
    stats.failuresDetected++;
    pending.push_back(phys);
    ctx.pendingRecovery = true;
    if (!running) {
        running = true;
        // Defer to engine context: the detection hook may fire from
        // inside a fiber mid-operation, and recovery performs state
        // surgery (including thread captures) that requires no fiber
        // to be running.
        ctx.eng.schedule(0, [this] { pollQuiesce(); });
    }
}

bool
RecoveryManager::quiesced() const
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!ctx.ops->physAlive(ctx.ops->hostOf(n)))
            continue; // dead nodes don't participate
        SvmNode *node = ctx.nodes[n];
        if (node->releaseInProgress() &&
            node->releasesActive != node->releasersWaitingRecovery)
            return false;
    }
    return true;
}

void
RecoveryManager::pollQuiesce()
{
    if (!quiesced()) {
        if (Logger::instance().enabled(LogComp::Recovery)) {
            for (NodeId n = 0; n < ctx.numNodes(); ++n) {
                SvmNode *node = ctx.nodes[n];
                if (node->releaseInProgress()) {
                    RSVM_LOG(LogComp::Recovery,
                             "quiesce wait: node %u active=%d "
                             "waiting=%d",
                             n, node->releasesActive,
                             node->releasersWaitingRecovery);
                }
            }
        }
        ctx.eng.schedule(50 * kMicrosecond, [this] { pollQuiesce(); });
        return;
    }
    performRecovery();
}

void
RecoveryManager::performRecovery()
{
    rsvm_assert(!pending.empty());
    PhysNodeId phys = pending.front();
    pending.pop_front();

    SimTime start = ctx.eng.now();
    accumCost = ctx.cfg.recoveryFixedCost;

    // Snapshot the hosted list first: rehosting changes it.
    std::vector<NodeId> failed = ctx.ops->logicalNodesOn(phys);
    for (NodeId f : failed)
        recoverNode(f);

    lastDuration = accumCost;
    stats.recoveries++;

    // Model the elapsed reconfiguration time, then release the cluster.
    ctx.eng.schedule(accumCost, [this, start] {
        (void)start;
        if (pending.empty()) {
            ctx.pendingRecovery = false;
            ctx.recoveryEpoch++;
            running = false;
            wakeWaiters(ctx.recoveryWaiters);
            RSVM_LOG(LogComp::Recovery, "recovery complete at %llu",
                     static_cast<unsigned long long>(ctx.eng.now()));
        } else {
            // Another failure queued meanwhile: recover it too.
            wakeWaiters(ctx.recoveryWaiters);
            pollQuiesce();
        }
    });
}

void
RecoveryManager::recoverNode(NodeId failed)
{
    rsvm_assert_msg(
        ctx.cfg.lockAlgo == LockAlgo::CentralizedPolling,
        "recovery with the queuing lock is unsupported: the paper "
        "abandoned it for its recovery complexity (§4.3); use the "
        "centralized polling lock for fault tolerance");
    RSVM_LOG(LogComp::Recovery, "recovering logical node %u", failed);
    const std::uint32_t num_nodes = ctx.cfg.numNodes;
    NodeId backup = ctx.ops->backupOf(failed);
    rsvm_assert_msg(ctx.ops->physAlive(ctx.ops->hostOf(backup)),
                    "backup died with the protected node "
                    "(simultaneous failures are not tolerated)");
    FtProtocolNode *bnode = ft(backup);
    CkptStore *cs = bnode->findStoreFor(failed);

    VectorClock saved_ts(num_nodes);
    IntervalNum saved_interval = 0;
    std::uint64_t saved_epoch = 0;
    if (cs && cs->hasSaved) {
        saved_ts = cs->savedTs;
        saved_interval = cs->savedInterval;
        saved_epoch = cs->savedBarrierEpoch;
    }
    IntervalNum limit = saved_ts[failed];

    // ---- Step 1: restore page consistency (§4.5.2) -------------------
    // For pages homed away from the failed node, reconcile the two
    // replicas using the saved timestamp: roll the failed node's last
    // release forward or backward.
    PageId num_pages = ctx.as.numPages();
    std::vector<NodeId> old_prim(num_pages), old_sec(num_pages);
    for (PageId p = 0; p < num_pages; ++p) {
        old_prim[p] = ctx.as.primaryHome(p);
        old_sec[p] = ctx.as.secondaryHome(p);
    }

    for (PageId p = 0; p < num_pages; ++p) {
        if (old_prim[p] == failed || old_sec[p] == failed)
            continue;
        FtProtocolNode *pn = ft(old_prim[p]);
        FtProtocolNode *sn = ft(old_sec[p]);
        HomeInfo *phi = pn->findHomeInfo(p);
        HomeInfo *shi = sn->findHomeInfo(p);
        IntervalNum tv = shi ? shi->tentativeVer[failed] : 0;
        IntervalNum cv = phi ? phi->committedVer[failed] : 0;
        if (tv <= cv)
            continue;
        accumCost += ctx.cfg.recoveryPerPageCost;
        if (tv <= limit) {
            // Roll forward: the release completed its first phase and
            // saved its timestamp; the tentative copy is the truth.
            std::memcpy(pn->committedData(p), sn->tentativeData(p),
                        ctx.cfg.pageSize);
            phi = pn->findHomeInfo(p);
            shi = sn->findHomeInfo(p);
            phi->committedVer.maxWith(shi->tentativeVer);
            stats.pagesRolledForward++;
        } else {
            // Roll back: cancel the partially propagated updates.
            std::memcpy(sn->tentativeData(p), pn->committedData(p),
                        ctx.cfg.pageSize);
            phi = pn->findHomeInfo(p);
            shi = sn->findHomeInfo(p);
            shi->tentativeVer = phi->committedVer;
            stats.pagesRolledBack++;
        }
    }

    // ---- Step 2: remap and re-replicate page homes (§4.5.1) --------------
    auto eligible = [this](NodeId cand, NodeId other) {
        return ctx.ops->physAlive(ctx.ops->hostOf(cand)) &&
               ctx.ops->hostOf(cand) != ctx.ops->hostOf(other);
    };
    std::vector<PageId> moved;
    ctx.as.remapHomes(failed, eligible,
                      [&moved](PageId p, NodeId) { moved.push_back(p); });
    for (PageId p : moved) {
        // Untouched pages (no home state anywhere) need no data
        // movement: fresh zero-filled copies materialize lazily.
        {
            NodeId survivor_home =
                (old_prim[p] == failed) ? old_sec[p] : old_prim[p];
            if (!ft(survivor_home)->findHomeInfo(p))
                continue;
        }
        accumCost += ctx.cfg.recoveryPerPageCost +
                     ctx.cfg.wireTime(ctx.cfg.pageSize);
        NodeId new_prim = ctx.as.primaryHome(p);
        NodeId new_sec = ctx.as.secondaryHome(p);
        FtProtocolNode *np = ft(new_prim);
        FtProtocolNode *ns = ft(new_sec);

        // Locate the surviving authoritative copy.
        std::byte *bytes = nullptr;
        VectorClock ver(num_nodes);
        if (old_prim[p] == failed) {
            // Promote the old secondary's tentative copy. If the
            // failed node's last release was cancelled (its phase-1
            // updates reached this tentative copy but the timestamp
            // was never saved), apply the recorded phase-1 undo so the
            // cancelled writes do not leak into the promoted copy
            // (guarantee 3 of §4; a replayed read-modify-write would
            // otherwise double-apply).
            FtProtocolNode *survivor = ft(old_sec[p]);
            bytes = survivor->tentativeData(p);
            HomeInfo &shi = survivor->homeInfo(p);
            ver = shi.tentativeVer;
            if (ver[failed] > limit) {
                auto undo_it = shi.tentUndo.find(failed);
                if (undo_it != shi.tentUndo.end() &&
                    undo_it->second.interval == ver[failed]) {
                    diff::apply(undo_it->second, bytes,
                                ctx.cfg.pageSize);
                    shi.tentUndo.erase(undo_it);
                }
                stats.pagesRolledBack++;
            }
        } else {
            FtProtocolNode *survivor = ft(old_prim[p]);
            bytes = survivor->committedData(p);
            ver = survivor->homeInfo(p).committedVer;
        }
        if (ver[failed] > limit)
            ver[failed] = limit;

        std::memcpy(np->committedData(p), bytes, ctx.cfg.pageSize);
        np->homeInfo(p).committedVer = ver;
        std::memcpy(ns->tentativeData(p), bytes, ctx.cfg.pageSize);
        ns->homeInfo(p).tentativeVer = ver;
        stats.pagesReReplicated++;
    }

    // The failed node was its own SECONDARY home for some pages: the
    // tentative copies of its last release died with it. If that
    // release rolled forward (timestamp saved), complete it from the
    // diffs replicated alongside the timestamp at the backup.
    if (cs && cs->hasSaved && cs->savedDiffsInterval == saved_interval) {
        for (const Diff &d : cs->savedDiffs) {
            rsvm_assert(d.origin == failed);
            if (d.interval > limit)
                continue; // cancelled release: roll back instead
            ft(ctx.as.primaryHome(d.page))->applyIncomingDiff(d, 2);
            ft(ctx.as.secondaryHome(d.page))->applyIncomingDiff(d, 1);
            accumCost += ctx.cfg.recoveryPerPageCost;
            stats.pagesRolledForward++;
        }
    }

    // ---- Step 3: remap and re-replicate lock homes (§4.5.1) -----------
    std::uint32_t num_locks = ctx.locks.numLocks();
    std::vector<NodeId> old_lprim(num_locks), old_lsec(num_locks);
    for (LockId l = 0; l < num_locks; ++l) {
        old_lprim[l] = ctx.locks.primaryHome(l);
        old_lsec[l] = ctx.locks.secondaryHome(l);
    }
    std::vector<LockId> moved_locks;
    ctx.locks.remapHomes(failed, eligible,
                         [&moved_locks](LockId l, NodeId) {
                             moved_locks.push_back(l);
                         });
    for (LockId l : moved_locks) {
        accumCost += 2 * ctx.cfg.wireLatency;
        NodeId survivor_node =
            (old_lprim[l] == failed) ? old_lsec[l] : old_lprim[l];
        PollLockHome copy = ft(survivor_node)->pollHome(l);
        // The failed node's slot is preserved (§4.3: the stateless
        // algorithm makes this safe — its replayed thread either still
        // logically holds the lock or re-contends normally).
        ft(ctx.locks.primaryHome(l))->pollHome(l) = copy;
        ft(ctx.locks.secondaryHome(l))->pollHome(l) = copy;
    }

    // ---- Step 4: discard cancelled write notices/versions (§4.5.2) ---
    for (NodeId n = 0; n < num_nodes; ++n) {
        if (n == failed)
            continue;
        FtProtocolNode *node = ft(n);
        node->capOriginVersions(failed, limit);
        for (auto &[lock, pl] : node->pollLocks) {
            if (pl.ts.size() && pl.ts[failed] > limit)
                pl.ts[failed] = limit;
        }
    }

    // ---- Step 5: re-host and reset the failed node (§4.5.3) ------------
    PhysNodeId new_host = ctx.ops->hostOf(backup);
    ctx.ops->rehost(failed, new_host);
    static const std::unordered_map<IntervalNum, std::vector<PageId>>
        kNoPages;
    ft(failed)->resetForRehost(saved_ts, saved_interval, saved_epoch,
                               cs ? cs->intervalPages : kNoPages);

    // Restore the threads from the checkpoints tagged with the saved
    // interval (roll-forward uses the current release's checkpoints,
    // roll-back the previous release's).
    for (SimThread *t : ctx.ops->computeThreads(failed)) {
        const ThreadCkpt *ck =
            (cs && saved_interval > 0) ? cs->find(t->id(), saved_interval)
                                       : nullptr;
        accumCost += ctx.cfg.ckptCaptureCost;
        if (!ck) {
            // No checkpoint yet: restart the thread from the top.
            rsvm_assert_msg(static_cast<bool>(restartHook),
                            "no restart hook installed");
            restartHook(t->id());
            stats.threadsRestored++;
        } else if (ck->finished) {
            // The thread had already finished at the restore point.
        } else {
            t->restoreFromImage(ck->image);
            stats.threadsRestored++;
        }
    }

    // ---- Step 6: re-protect (fresh backups and checkpoints) -----------
    // The restored node's new host is its old backup's host, so its
    // checkpoints must move to a different physical node.
    for (std::uint32_t step = 1; step <= num_nodes; ++step) {
        NodeId cand = (failed + step) % num_nodes;
        if (cand != failed && eligible(cand, failed)) {
            ctx.ops->setBackupOf(failed, cand);
            break;
        }
    }
    bnode->dropStoreFor(failed);
    recoveryCheckpoint(failed);

    // Nodes whose checkpoint storage lived on the failed node need a
    // new backup and a fresh consistent checkpoint.
    for (NodeId g = 0; g < num_nodes; ++g) {
        if (g == failed || ctx.ops->backupOf(g) != failed)
            continue;
        for (std::uint32_t step = 1; step <= num_nodes; ++step) {
            NodeId cand = (g + step) % num_nodes;
            if (cand != g && eligible(cand, g)) {
                ctx.ops->setBackupOf(g, cand);
                break;
            }
        }
        recoveryCheckpoint(g);
    }

    // Deferred fetches can now be satisfiable (or were capped): nudge
    // every home.
    for (NodeId n = 0; n < num_nodes; ++n)
        ft(n)->serviceAllWaiters();
}

void
RecoveryManager::recoveryCheckpoint(NodeId g)
{
    FtProtocolNode *gn = ft(g);
    if (gn->releasesActive > 0) {
        // A parked releaser will redo its phases (including the
        // checkpoints) against the new backup once recovery finishes.
        return;
    }
    // Force a commit point so the captured images replay everything
    // that follows them (no un-propagated execution precedes them).
    CommitResult cr = gn->commitInterval(nullptr);
    if (cr.any) {
        for (const Diff &d : cr.diffs) {
            ft(ctx.as.secondaryHome(d.page))->applyIncomingDiff(d, 1);
            ft(ctx.as.primaryHome(d.page))->applyIncomingDiff(d, 2);
        }
        accumCost += ctx.cfg.recoveryPerPageCost * cr.pages.size();
    }
    NodeId b = ctx.ops->backupOf(g);
    CkptStore &store = ft(b)->storeFor(g);
    store.hasSaved = true;
    store.savedTs = gn->ts;
    store.savedInterval = gn->intervalCtr;
    store.savedBarrierEpoch = gn->barrierEpoch;
    store.intervalPages.clear();
    for (const auto &rec : gn->intervalTable)
        store.intervalPages[rec.interval] = rec.pages;
    for (SimThread *t : ctx.ops->computeThreads(g)) {
        if (t->state() == ThreadState::Dead)
            continue;
        ThreadCkpt ck;
        ck.tag = gn->intervalCtr;
        ck.image = t->captureForCkpt();
        ck.finished = ck.image.finished;
        ck.valid = !ck.finished;
        accumCost += ctx.cfg.ckptCaptureCost;
        store.save(t->id(), std::move(ck));
    }
}

} // namespace rsvm

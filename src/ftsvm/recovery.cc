#include "ftsvm/recovery.hh"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "sim/engine.hh"

namespace rsvm {

RecoveryManager::RecoveryManager(SvmContext &context)
    : ctx(context)
{
}

FtProtocolNode *
RecoveryManager::ft(NodeId n) const
{
    return static_cast<FtProtocolNode *>(ctx.nodes[n]);
}

bool
RecoveryManager::hostAlive(NodeId n) const
{
    return ctx.ops->physAlive(ctx.ops->hostOf(n));
}

std::vector<NodeId>
RecoveryManager::failedNodes() const
{
    std::vector<NodeId> out;
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!hostAlive(n))
            out.push_back(n);
    }
    return out;
}

IntervalNum
RecoveryManager::limitOf(NodeId f) const
{
    auto it = salvage.find(f);
    if (it == salvage.end() || !it->second.haveStore ||
        !it->second.store.hasSaved)
        return 0;
    return it->second.store.savedTs[f];
}

void
RecoveryManager::onPhysFailure(PhysNodeId phys)
{
    if (lostDeclared)
        return;
    RSVM_LOG(LogComp::Recovery, "failure of phys node %u detected",
             phys);
    stats.failuresDetected++;
    ctx.pendingRecovery = true;
    // Advance the cluster epoch before any recovery surgery: every
    // in-flight delivery stamped with the old epoch — in particular
    // everything the failed node ever sent — is rejected on arrival.
    // Survivors' rejected messages heal by retransmission under the
    // new epoch; the dead (fenced) node's never do.
    ctx.vmmc.bumpEpoch();
    if (!running) {
        running = true;
        // Defer to engine context: the detection hook may fire from
        // inside a fiber mid-operation, and recovery performs state
        // surgery (including thread captures) that requires no fiber
        // to be running.
        ctx.eng.schedule(0, [this] { pollQuiesce(); });
    }
}

bool
RecoveryManager::quiesced() const
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!hostAlive(n))
            continue; // dead nodes don't participate
        SvmNode *node = ctx.nodes[n];
        if (node->releaseInProgress() &&
            node->releasesActive != node->releasersWaitingRecovery)
            return false;
    }
    return true;
}

void
RecoveryManager::pollQuiesce()
{
    if (lostDeclared)
        return;
    if (!quiesced()) {
        if (Logger::instance().enabled(LogComp::Recovery)) {
            for (NodeId n = 0; n < ctx.numNodes(); ++n) {
                SvmNode *node = ctx.nodes[n];
                if (node->releaseInProgress()) {
                    RSVM_LOG(LogComp::Recovery,
                             "quiesce wait: node %u active=%d "
                             "waiting=%d",
                             n, node->releasesActive,
                             node->releasersWaitingRecovery);
                }
            }
        }
        ctx.eng.schedule(50 * kMicrosecond, [this] { pollQuiesce(); });
        return;
    }
    runPasses();
}

void
RecoveryManager::declareLost(LossReason code, const std::string &detail)
{
    if (lostDeclared)
        return;
    lostDeclared = true;
    running = false;
    ctx.pendingRecovery = false;
    RSVM_LOG(LogComp::Recovery, "unrecoverable [%s]: %s",
             lossReasonName(code), detail.c_str());
    ctx.ops->clusterLost(code, detail);
}

void
RecoveryManager::resetAfterColdRestart()
{
    lostDeclared = false;
    running = false;
    accumCost = 0;
    salvage.clear();
    lockSalvage.clear();
}

void
RecoveryManager::runPasses()
{
    rsvm_assert_msg(
        ctx.cfg.lockAlgo == LockAlgo::CentralizedPolling,
        "recovery with the queuing lock is unsupported: the paper "
        "abandoned it for its recovery complexity (§4.3); use the "
        "centralized polling lock for fault tolerance");

    accumCost = ctx.cfg.recoveryFixedCost;
    while (true) {
        std::vector<NodeId> failed = failedNodes();
        if (failed.empty())
            break; // everything already recovered (spurious wakeup)

        // Live logical nodes must span at least two physical nodes or
        // no eligible home/backup placement exists.
        std::unordered_set<PhysNodeId> live_hosts;
        for (NodeId n = 0; n < ctx.numNodes(); ++n) {
            if (hostAlive(n))
                live_hosts.insert(ctx.ops->hostOf(n));
        }
        if (live_hosts.size() < 2) {
            declareLost(LossReason::TooFewHosts,
                        "fewer than two physical nodes host live "
                        "state; replication is impossible");
            return;
        }

        PassResult r = runPass(failed);
        if (r == PassResult::Lost)
            return;
        if (r == PassResult::Aborted) {
            stats.recoveryRestarts++;
            accumCost += ctx.cfg.recoveryFixedCost;
            RSVM_LOG(LogComp::Recovery,
                     "recovery pass aborted by a new failure; "
                     "restarting over the enlarged failed set");
            continue;
        }
        break;
    }

    stats.recoveries++;
    lastDuration = accumCost;
    stats.recoveryTimeNsHist.sample(accumCost);

    // Model the elapsed reconfiguration time, then release the cluster.
    ctx.eng.schedule(accumCost, [this] { finishCycle(); });
}

void
RecoveryManager::finishCycle()
{
    if (lostDeclared)
        return;
    if (!failedNodes().empty()) {
        // Another failure landed inside the charged window: the cycle
        // continues (salvaged state is retained).
        wakeWaiters(ctx.recoveryWaiters);
        accumCost = ctx.cfg.recoveryFixedCost;
        pollQuiesce();
        return;
    }
    ctx.pendingRecovery = false;
    ctx.recoveryEpoch++;
    running = false;
    salvage.clear();
    lockSalvage.clear();
    // The remap is committed: nodes recovered-around stay fenced until
    // an explicit rejoin, so their per-(src,dst) channel and
    // retransmit state is dead weight — reclaim it now and verify no
    // retransmit timer stayed armed toward a carcass.
    ctx.vmmc.reclaimDeadChannels();
    wakeWaiters(ctx.recoveryWaiters);
    RSVM_LOG(LogComp::Recovery, "recovery complete at %llu",
             static_cast<unsigned long long>(ctx.eng.now()));
}

bool
RecoveryManager::firePoint(const char *name,
                           std::vector<bool> &live_before)
{
    if (ctx.injector) {
        for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
            if (ctx.ops->physAlive(p))
                ctx.injector->failpoint(p, name);
        }
    }
    bool any = false;
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
        if (live_before[p] && !ctx.ops->physAlive(p)) {
            live_before[p] = false;
            any = true;
            stats.failuresDetected++;
            // Handled within this cycle: a later sweep must not
            // re-announce the carcass through the peer-death hook.
            ctx.vmmc.markDeathObserved(p);
            RSVM_LOG(LogComp::Recovery,
                     "phys node %u died at recovery point '%s'", p,
                     name);
        }
    }
    return any;
}

RecoveryManager::PassResult
RecoveryManager::runPass(const std::vector<NodeId> &failed)
{
    RSVM_LOG(LogComp::Recovery, "recovery pass over %zu failed nodes",
             failed.size());
    std::vector<bool> live_before(ctx.cfg.numNodes);
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p)
        live_before[p] = ctx.ops->physAlive(p);

    SimTime t0 = accumCost;
    salvageStores(failed);
    salvageLocks();
    if (!checkStoresUsable(failed))
        return PassResult::Lost;
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (firePoint(failpoints::kRecQuiesce, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepPageRestore(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (firePoint(failpoints::kRecPageRestore, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepRemapHomes(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (lostDeclared)
        return PassResult::Lost;
    if (firePoint(failpoints::kRecHomeRemap, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepReReplicate(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (lostDeclared)
        return PassResult::Lost;
    if (firePoint(failpoints::kRecReReplicate, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepLocks(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (lostDeclared)
        return PassResult::Lost;
    if (firePoint(failpoints::kRecLockCleanup, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepDiscard(failed);
    stepResume(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (firePoint(failpoints::kRecResume, live_before))
        return PassResult::Aborted;

    t0 = accumCost;
    stepReProtect(failed);
    stats.recoveryStepNsHist.sample(accumCost - t0);
    if (lostDeclared)
        return PassResult::Lost;
    if (firePoint(failpoints::kRecReProtect, live_before))
        return PassResult::Aborted;

    // Deferred fetches can now be satisfiable (or were capped): nudge
    // every home.
    for (NodeId n = 0; n < ctx.numNodes(); ++n)
        ft(n)->serviceAllWaiters();
    return PassResult::Done;
}

// --------------------------------------------------------------- salvage

void
RecoveryManager::salvageStores(const std::vector<NodeId> &failed)
{
    for (NodeId f : failed) {
        NodeId b = ctx.ops->backupOf(f);
        if (hostAlive(b)) {
            CkptStore *cs = ft(b)->findStoreFor(f);
            if (cs) {
                accumCost += ctx.cfg.wireTime(ctx.cfg.pageSize);
                salvage[f] = Salvaged{true, *cs};
                continue;
            }
        }
        // Backup dead (the backup-chain case) or store-less: keep any
        // copy salvaged earlier in this cycle.
        salvage.try_emplace(f);
    }
}

void
RecoveryManager::salvageLocks()
{
    const std::uint32_t num_locks = ctx.locks.numLocks();
    for (LockId l = 0; l < num_locks; ++l) {
        const PollLockHome *prim = nullptr, *sec = nullptr;
        NodeId hp = ctx.locks.primaryHome(l);
        NodeId hs = ctx.locks.secondaryHome(l);
        if (hostAlive(hp)) {
            auto it = ft(hp)->pollLocks.find(l);
            if (it != ft(hp)->pollLocks.end())
                prim = &it->second;
        }
        if (hostAlive(hs)) {
            auto it = ft(hs)->pollLocks.find(l);
            if (it != ft(hs)->pollLocks.end())
                sec = &it->second;
        }
        if (!prim && !sec)
            continue;
        // Merge: slot writes go secondary-first and both sides retry,
        // so the element-wise max is the conservative contending view;
        // the timestamp is monotonic.
        PollLockHome merged = prim ? *prim : *sec;
        if (prim && sec) {
            for (std::uint32_t i = 0; i < merged.slots.size(); ++i)
                merged.slots[i] =
                    std::max(merged.slots[i], sec->slots[i]);
            merged.ts.maxWith(sec->ts);
        }
        lockSalvage.insert_or_assign(
            l, SalvagedLock{std::move(merged), ctx.eng.now()});
    }
}

IntervalNum
RecoveryManager::evidentCommitted(
    NodeId f, const std::vector<NodeId> &failed) const
{
    IntervalNum ev = 0;
    auto bump = [&ev](IntervalNum v) {
        if (v > ev)
            ev = v;
    };
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (n == f)
            continue;
        if (std::find(failed.begin(), failed.end(), n) != failed.end()) {
            // A dead peer's salvaged restore point may itself have
            // observed f's intervals; the restored node will require
            // them again.
            auto it = salvage.find(n);
            if (it != salvage.end() && it->second.haveStore &&
                it->second.store.hasSaved)
                bump(it->second.store.savedTs[f]);
            continue;
        }
        FtProtocolNode *node = ft(n);
        bump(node->ts[f]);
        for (const auto &[page, hi] : node->homePages) {
            (void)page;
            if (hi.committedVer.size())
                bump(hi.committedVer[f]);
        }
        for (const auto &[lock, pl] : node->pollLocks) {
            (void)lock;
            if (pl.ts.size())
                bump(pl.ts[f]);
        }
        for (const auto &[page, entry] : node->pt) {
            (void)page;
            if (f < entry.reqVer.size())
                bump(entry.reqVer[f]);
        }
    }
    return ev;
}

bool
RecoveryManager::checkStoresUsable(const std::vector<NodeId> &failed)
{
    for (NodeId f : failed) {
        IntervalNum limit = limitOf(f);
        IntervalNum ev = evidentCommitted(f, failed);
        if (ev > limit) {
            // Survivors observed committed intervals the (missing or
            // stale) store cannot reproduce: rolling the node back
            // would strand them, rolling them back is impossible.
            declareLost(LossReason::StaleCheckpointStore,
                        "checkpoint store for node " +
                        std::to_string(f) +
                        " is missing or stale (covers interval " +
                        std::to_string(limit) + ", survivors saw " +
                        std::to_string(ev) + ")");
            return false;
        }
    }
    return true;
}

// ------------------------------------------------------------ pass steps

void
RecoveryManager::stepPageRestore(const std::vector<NodeId> &failed)
{
    // For pages whose homes survive, reconcile each tentative replica
    // against each failed node's saved timestamp: roll its last
    // release forward or backward (§4.5.2). Idempotent: a reconciled
    // pair satisfies tentativeVer <= committedVer for the origin.
    // Degree-1 pages have no tentative replica to reconcile (their
    // diffs travel with the timestamp save; re-replication replays
    // them).
    const PageId num_pages = ctx.as.numPages();
    for (NodeId f : failed) {
        IntervalNum limit = limitOf(f);
        for (PageId p = 0; p < num_pages; ++p) {
            NodeId prim = ctx.as.primaryHome(p);
            if (!hostAlive(prim))
                continue; // re-replication handles these
            for (NodeId sec : ctx.as.secondaryHomes(p)) {
            if (!hostAlive(sec))
                continue; // re-replication handles these
            FtProtocolNode *pn = ft(prim);
            FtProtocolNode *sn = ft(sec);
            HomeInfo *phi = pn->findHomeInfo(p);
            HomeInfo *shi = sn->findHomeInfo(p);
            IntervalNum tv = shi ? shi->tentativeVer[f] : 0;
            IntervalNum cv = phi ? phi->committedVer[f] : 0;
            if (tv <= cv)
                continue;
            accumCost += ctx.cfg.recoveryPerPageCost;
            // The tentative copy may simultaneously hold OTHER live
            // origins' pending phase-1 updates (their releases are
            // merely parked, not cancelled), so both directions must
            // be surgical: touch only the failed origin's bytes, via
            // the undo recorded at its phase-1 apply. Wholesale
            // page/vector copies are only a last resort when no undo
            // survived — they clobber innocent origins' pending state,
            // which is unrecoverable later (a restored node's pending
            // phase-2 diff list is runtime state, not checkpointed, so
            // this reconciliation is the only path that ever commits a
            // ts-saved interval).
            auto undo_it = shi->tentUndo.find(f);
            bool haveUndo = undo_it != shi->tentUndo.end() &&
                            undo_it->second.interval == tv;
            if (tv <= limit) {
                // Roll forward: the release completed its first phase
                // and saved its timestamp; the tentative copy is the
                // truth for this origin's runs.
                if (haveUndo) {
                    const std::byte *src = sn->tentativeData(p);
                    std::byte *dst = pn->committedData(p);
                    for (const DiffRun &run : undo_it->second.runs)
                        std::memcpy(dst + run.offset, src + run.offset,
                                    run.bytes.size());
                    phi = pn->findHomeInfo(p);
                    phi->committedVer[f] = tv;
                    shi->tentUndo.erase(undo_it);
                } else {
                    std::memcpy(pn->committedData(p), sn->tentativeData(p),
                                ctx.cfg.pageSize);
                    phi = pn->findHomeInfo(p);
                    phi->committedVer.maxWith(shi->tentativeVer);
                }
                stats.pagesRolledForward++;
            } else {
                // Roll back: cancel the partially propagated updates,
                // restoring this origin's pre-apply bytes and per-page
                // chain position (the cancelled diff's prevInterval,
                // NOT the saved limit — per-page chains are sparse).
                if (haveUndo) {
                    diff::apply(undo_it->second, sn->tentativeData(p),
                                ctx.cfg.pageSize);
                    shi->tentativeVer[f] = undo_it->second.prevInterval;
                    shi->tentUndo.erase(undo_it);
                } else {
                    std::memcpy(sn->tentativeData(p), pn->committedData(p),
                                ctx.cfg.pageSize);
                    shi->tentativeVer = phi->committedVer;
                }
                stats.pagesRolledBack++;
            }
            }
        }
    }
}

void
RecoveryManager::stepRemapHomes(const std::vector<NodeId> &failed)
{
    auto eligible = [this](NodeId cand,
                           const std::vector<NodeId> &chosen) {
        if (!hostAlive(cand))
            return false;
        for (NodeId o : chosen)
            if (ctx.ops->hostOf(cand) == ctx.ops->hostOf(o))
                return false;
        return true;
    };
    for (NodeId f : failed)
        ctx.as.remapHomes(f, eligible, [](PageId, NodeId) {});
}

void
RecoveryManager::stepReReplicate(const std::vector<NodeId> &failed)
{
    const PageId num_pages = ctx.as.numPages();
    const std::uint32_t num_nodes = ctx.numNodes();

    // Pages whose content provably matters: named by a surviving write
    // notice, a survivor's own interval record, or a salvaged restore
    // point's interval pages. Anything else may lazily re-materialize
    // zero-filled.
    std::unordered_set<PageId> referenced;
    for (NodeId n = 0; n < num_nodes; ++n) {
        if (!hostAlive(n))
            continue;
        FtProtocolNode *node = ft(n);
        for (const auto &[page, entry] : node->pt) {
            for (IntervalNum v : entry.reqVer) {
                if (v > 0) {
                    referenced.insert(page);
                    break;
                }
            }
        }
        for (const auto &rec : node->intervalTable)
            referenced.insert(rec.pages.begin(), rec.pages.end());
    }
    for (NodeId f : failed) {
        auto it = salvage.find(f);
        if (it == salvage.end() || !it->second.haveStore)
            continue;
        for (const auto &[interval, pages] : it->second.store.intervalPages) {
            (void)interval;
            referenced.insert(pages.begin(), pages.end());
        }
    }

    for (PageId p = 0; p < num_pages; ++p) {
        // Normalize surviving tentative copies: cancel any failed
        // origin's unsaved phase-1 updates (apply the recorded undo,
        // cap the version) so tentative copies become valid sources.
        for (NodeId n = 0; n < num_nodes; ++n) {
            if (!hostAlive(n))
                continue;
            HomeInfo *hi = ft(n)->findHomeInfo(p);
            if (!hi || !hi->tentative)
                continue;
            for (NodeId f : failed) {
                IntervalNum limit = limitOf(f);
                if (hi->tentativeVer[f] <= limit)
                    continue;
                auto undo_it = hi->tentUndo.find(f);
                if (undo_it != hi->tentUndo.end() &&
                    undo_it->second.interval == hi->tentativeVer[f]) {
                    // The undo restores the exact pre-apply state:
                    // bytes AND per-page chain position. Per-page
                    // version chains are sparse, so the rolled-back
                    // version is the cancelled diff's prevInterval —
                    // capping to the origin's saved limit would invent
                    // a version this page never had and permanently
                    // defer the re-executed interval's diffs.
                    diff::apply(undo_it->second, hi->tentative.get(),
                                ctx.cfg.pageSize);
                    hi->tentativeVer[f] = undo_it->second.prevInterval;
                    hi->tentUndo.erase(undo_it);
                } else {
                    // No matching undo (copy predates the cancelled
                    // apply, or the undo travelled elsewhere): the
                    // bytes are already pre-apply, so only clamp the
                    // version into the saved range.
                    hi->tentativeVer[f] = limit;
                }
                stats.pagesRolledBack++;
                accumCost += ctx.cfg.recoveryPerPageCost;
            }
        }

        // Gather every surviving copy, by role. Committed and
        // tentative copies are NOT interchangeable: a live node's
        // parked release legitimately leaves its phase-1 bits in
        // tentative copies only, and they must not be committed early.
        struct Cand
        {
            const std::byte *bytes;
            VectorClock ver;
            HomeInfo *src; ///< for tentative sources: undo transfer
        };
        std::vector<Cand> ccands, tcands;
        for (NodeId n = 0; n < num_nodes; ++n) {
            if (!hostAlive(n))
                continue;
            HomeInfo *hi = ft(n)->findHomeInfo(p);
            if (!hi)
                continue;
            if (hi->committed) {
                VectorClock v = hi->committedVer;
                for (NodeId f : failed) {
                    if (v[f] > limitOf(f))
                        v[f] = limitOf(f);
                }
                ccands.push_back(Cand{hi->committed.get(), v, nullptr});
            }
            if (hi->tentative)
                tcands.push_back(
                    Cand{hi->tentative.get(), hi->tentativeVer, hi});
        }
        if (ccands.empty() && tcands.empty()) {
            if (referenced.count(p)) {
                declareLost(LossReason::ReplicasExhausted,
                            "page " + std::to_string(p) +
                            ": both replicas and the owning store are "
                            "gone");
                return;
            }
            continue; // untouched page, zero-fill on demand
        }

        auto dominant = [num_nodes](std::vector<Cand> &cands)
            -> const Cand * {
            if (cands.empty())
                return nullptr;
            VectorClock want(num_nodes);
            for (const Cand &c : cands)
                want.maxWith(c.ver);
            for (const Cand &c : cands) {
                if (c.ver == want)
                    return &c;
            }
            // Incomparable survivors should be impossible on a
            // quiesced, reconciled cluster; degrade deterministically
            // rather than crash.
            RSVM_LOG(LogComp::Ft,
                     "recovery: incomparable surviving copies");
            const Cand *best = &cands.front();
            for (const Cand &c : cands) {
                if (!best->ver.dominates(c.ver))
                    best = &c;
            }
            return best;
        };

        // Committed copy at the primary home. If no committed copy
        // survived anywhere, promote the dominant tentative one (its
        // failed-origin bits were normalized above; a live origin's
        // in-flight bits replay idempotently when its parked release
        // retries).
        const Cand *best_c = dominant(ccands);
        const Cand *best_t = dominant(tcands);
        const Cand *for_committed = best_c ? best_c : best_t;
        NodeId prim = ctx.as.primaryHome(p);
        HomeInfo *phi = ft(prim)->findHomeInfo(p);
        if (!phi || !phi->committed ||
            !(phi->committedVer == for_committed->ver)) {
            std::byte *dst = ft(prim)->committedData(p);
            if (dst != for_committed->bytes)
                std::memcpy(dst, for_committed->bytes,
                            ctx.cfg.pageSize);
            ft(prim)->homeInfo(p).committedVer = for_committed->ver;
            accumCost += ctx.cfg.recoveryPerPageCost +
                         ctx.cfg.wireTime(ctx.cfg.pageSize);
            stats.pagesReReplicated++;
            stats.reReplicationBytes += ctx.cfg.pageSize;
        }

        // Tentative copies at every secondary home: the freshest copy
        // of either role (in-flight phase-1 bits belong here).
        // Matching phase-1 undos travel with it so a later roll-back
        // of the writing origin stays possible. Degree-1 pages keep no
        // tentative replica at all.
        const Cand *for_tent = for_committed;
        if (best_t && best_c && best_t->ver.dominates(best_c->ver))
            for_tent = best_t;
        for (NodeId sec : ctx.as.secondaryHomes(p)) {
            HomeInfo *shi = ft(sec)->findHomeInfo(p);
            if (shi && shi->tentative &&
                shi->tentativeVer == for_tent->ver)
                continue;
            std::byte *dst = ft(sec)->tentativeData(p);
            if (dst != for_tent->bytes)
                std::memcpy(dst, for_tent->bytes, ctx.cfg.pageSize);
            HomeInfo &dhi = ft(sec)->homeInfo(p);
            dhi.tentativeVer = for_tent->ver;
            if (&dhi != for_tent->src) {
                dhi.tentUndo.clear();
                if (for_tent->src) {
                    for (const auto &[o, d] : for_tent->src->tentUndo) {
                        if (d.interval == for_tent->ver[o])
                            dhi.tentUndo[o] = d;
                    }
                }
            }
            accumCost += ctx.cfg.recoveryPerPageCost +
                         ctx.cfg.wireTime(ctx.cfg.pageSize);
            stats.pagesReReplicated++;
            stats.reReplicationBytes += ctx.cfg.pageSize;
        }
    }

    // A failed node was its own SECONDARY home for some pages: the
    // tentative copies of its last release died with it. If that
    // release rolled forward (timestamp saved), complete it from the
    // diffs replicated alongside the timestamp (salvaged with the
    // store, so this survives the backup-chain case too). The
    // per-origin chain guard makes replay across passes idempotent.
    for (NodeId f : failed) {
        auto it = salvage.find(f);
        if (it == salvage.end() || !it->second.haveStore)
            continue;
        const CkptStore &cs = it->second.store;
        if (!cs.hasSaved || cs.savedDiffsInterval != cs.savedInterval)
            continue;
        IntervalNum limit = limitOf(f);
        for (const Diff &d : cs.savedDiffs) {
            rsvm_assert(d.origin == f);
            if (d.interval > limit)
                continue; // cancelled release: roll back instead
            ft(ctx.as.primaryHome(d.page))->applyIncomingDiff(d, 2);
            for (NodeId sec : ctx.as.secondaryHomes(d.page))
                ft(sec)->applyIncomingDiff(d, 1);
            accumCost += ctx.cfg.recoveryPerPageCost;
            stats.pagesRolledForward++;
        }
    }
}

void
RecoveryManager::stepLocks(const std::vector<NodeId> &failed)
{
    const std::uint32_t num_locks = ctx.locks.numLocks();
    const std::uint32_t num_nodes = ctx.numNodes();
    auto in_failed = [&failed](NodeId n) {
        return std::find(failed.begin(), failed.end(), n) !=
               failed.end();
    };
    auto eligible = [this](NodeId cand, NodeId other) {
        return hostAlive(cand) &&
               ctx.ops->hostOf(cand) != ctx.ops->hostOf(other);
    };

    // Snapshot the pre-remap homes: surviving copies live at the OLD
    // homes, and must be read from there after the directory moves.
    std::vector<NodeId> old_prim(num_locks), old_sec(num_locks);
    for (LockId l = 0; l < num_locks; ++l) {
        old_prim[l] = ctx.locks.primaryHome(l);
        old_sec[l] = ctx.locks.secondaryHome(l);
    }
    std::unordered_set<LockId> relocated;
    for (NodeId f : failed) {
        ctx.locks.remapHomes(f, eligible,
                             [&relocated](LockId l, NodeId) {
                                 relocated.insert(l);
                             });
    }

    for (LockId l : relocated) {
        // The home slice moves wholesale: the wire cost is paid per
        // relocated lock whether or not it ever materialized state.
        accumCost += 2 * ctx.cfg.wireLatency;
        NodeId prim = ctx.locks.primaryHome(l);
        NodeId sec = ctx.locks.secondaryHome(l);
        const PollLockHome *src = nullptr;
        auto live_copy = [this, l](NodeId n) -> const PollLockHome * {
            if (!hostAlive(n))
                return nullptr;
            auto it = ft(n)->pollLocks.find(l);
            return it == ft(n)->pollLocks.end() ? nullptr
                                                : &it->second;
        };
        src = live_copy(old_prim[l]);
        if (!src)
            src = live_copy(old_sec[l]);
        if (src) {
            PollLockHome copy = *src;
            // The failed nodes' slots are preserved (§4.3: the
            // stateless algorithm makes this safe — a replayed holder
            // still logically owns the lock, a replayed contender
            // re-contends and rewrites its slot).
            ft(prim)->pollHome(l) = copy;
            ft(sec)->pollHome(l) = copy;
            stats.locksCleaned++;
            continue;
        }

        // No current home survived. Usable salvage?
        auto sv = lockSalvage.find(l);
        if (sv != lockSalvage.end() &&
            sv->second.when == ctx.eng.now()) {
            // Snapshot from this same quiesced instant: exact.
            ft(prim)->pollHome(l) = sv->second.home;
            ft(sec)->pollHome(l) = sv->second.home;
            stats.locksCleaned++;
            continue;
        }

        // Stale or missing salvage: ownership may have changed since
        // the snapshot (or was never captured). If anyone might hold
        // or contend the lock we cannot reconstruct who — declare the
        // loss rather than risk mutual-exclusion violation or a stuck
        // slot.
        bool in_use = false;
        for (NodeId n = 0; n < num_nodes && !in_use; ++n) {
            auto it = ft(n)->nodeLocks.find(l);
            if (it == ft(n)->nodeLocks.end())
                continue;
            if (in_failed(n) ||
                it->second.status != NodeLockState::Status::Free)
                in_use = true;
        }
        if (sv != lockSalvage.end()) {
            for (std::uint8_t s : sv->second.home.slots)
                in_use = in_use || s != 0;
        }
        if (in_use) {
            declareLost(LossReason::LockStateLost,
                        "lock " + std::to_string(l) +
                        ": both homes and the salvaged ownership "
                        "state are gone");
            return;
        }
        // Provably idle: rebuild a fresh home with a conservative
        // (over-approximated, monotonic) timestamp so no invalidation
        // is ever missed.
        bool ever_used = sv != lockSalvage.end();
        for (NodeId n = 0; n < num_nodes && !ever_used; ++n)
            ever_used = ft(n)->nodeLocks.count(l) != 0;
        if (!ever_used)
            continue; // never materialized; created free on demand
        PollLockHome fresh(num_nodes);
        if (sv != lockSalvage.end())
            fresh.ts.maxWith(sv->second.home.ts);
        for (NodeId n = 0; n < num_nodes; ++n) {
            if (hostAlive(n))
                fresh.ts.maxWith(ft(n)->ts);
        }
        for (NodeId f : failed) {
            if (fresh.ts[f] > limitOf(f))
                fresh.ts[f] = limitOf(f);
        }
        ft(prim)->pollHome(l) = fresh;
        ft(sec)->pollHome(l) = fresh;
        stats.locksCleaned++;
    }
}

void
RecoveryManager::stepDiscard(const std::vector<NodeId> &failed)
{
    // Discard write notices and version entries of cancelled intervals
    // everywhere (§4.5.2). Failed nodes are reset wholesale in resume.
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!hostAlive(n))
            continue;
        FtProtocolNode *node = ft(n);
        for (NodeId f : failed) {
            IntervalNum limit = limitOf(f);
            node->capOriginVersions(f, limit);
            for (auto &[lock, pl] : node->pollLocks) {
                (void)lock;
                if (pl.ts.size() && pl.ts[f] > limit)
                    pl.ts[f] = limit;
            }
        }
    }
}

void
RecoveryManager::stepResume(const std::vector<NodeId> &failed)
{
    static const std::unordered_map<IntervalNum, std::vector<PageId>>
        kNoPages;
    for (NodeId f : failed) {
        Salvaged &sv = salvage[f];
        CkptStore *cs = sv.haveStore ? &sv.store : nullptr;
        VectorClock saved_ts(ctx.cfg.numNodes);
        IntervalNum saved_interval = 0;
        std::uint64_t saved_epoch = 0;
        if (cs && cs->hasSaved) {
            saved_ts = cs->savedTs;
            saved_interval = cs->savedInterval;
            saved_epoch = cs->savedBarrierEpoch;
        }

        // Re-host: the backup's host per §4.5.3; if the backup died
        // too (backup-chain case), the least-loaded live host.
        NodeId b = ctx.ops->backupOf(f);
        PhysNodeId new_host = kInvalidNode;
        if (hostAlive(b)) {
            new_host = ctx.ops->hostOf(b);
        } else {
            std::size_t best_load = 0;
            for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
                if (!ctx.ops->physAlive(p))
                    continue;
                std::size_t load = ctx.ops->logicalNodesOn(p).size();
                if (new_host == kInvalidNode || load < best_load) {
                    new_host = p;
                    best_load = load;
                }
            }
        }
        rsvm_assert(new_host != kInvalidNode);
        ctx.ops->rehost(f, new_host);
        ft(f)->resetForRehost(saved_ts, saved_interval, saved_epoch,
                              cs ? cs->intervalPages : kNoPages);

        // Restore the threads from the checkpoints tagged with the
        // saved interval (roll-forward uses the current release's
        // checkpoints, roll-back the previous release's).
        for (SimThread *t : ctx.ops->computeThreads(f)) {
            const ThreadCkpt *ck =
                (cs && saved_interval > 0)
                    ? cs->find(t->id(), saved_interval)
                    : nullptr;
            accumCost += ctx.cfg.ckptCaptureCost;
            if (!ck) {
                if (t->state() == ThreadState::Finished)
                    continue; // ran to completion before any save
                rsvm_assert_msg(static_cast<bool>(restartHook),
                                "no restart hook installed");
                restartHook(t->id());
                stats.threadsRestored++;
            } else if (ck->finished) {
                // The thread had already finished at the restore point.
            } else {
                t->restoreFromImage(ck->image);
                stats.threadsRestored++;
            }
        }
    }
}

void
RecoveryManager::stepReProtect(const std::vector<NodeId> &failed)
{
    auto eligible = [this](NodeId cand, NodeId other) {
        return hostAlive(cand) &&
               ctx.ops->hostOf(cand) != ctx.ops->hostOf(other);
    };
    auto in_failed = [&failed](NodeId n) {
        return std::find(failed.begin(), failed.end(), n) !=
               failed.end();
    };
    // Comprehensive by design: an aborted pass may have resumed a node
    // without re-protecting it, and that node is no longer in the
    // failed set on replay. Scan every live node instead.
    for (NodeId g = 0; g < ctx.numNodes(); ++g) {
        if (!hostAlive(g))
            continue;
        NodeId b = ctx.ops->backupOf(g);
        bool need_new = b == g || !eligible(b, g);
        if (need_new) {
            NodeId cand = kInvalidNode;
            for (std::uint32_t step = 1; step <= ctx.numNodes();
                 ++step) {
                NodeId c = (g + step) % ctx.numNodes();
                if (c != g && eligible(c, g)) {
                    cand = c;
                    break;
                }
            }
            if (cand == kInvalidNode) {
                declareLost(LossReason::NoEligibleBackup,
                            "no eligible backup for node " +
                            std::to_string(g));
                return;
            }
            if (hostAlive(b) && b != g)
                ft(b)->dropStoreFor(g);
            ctx.ops->setBackupOf(g, cand);
            recoveryCheckpoint(g);
        } else if (!ft(b)->findStoreFor(g) || in_failed(g)) {
            // Backup fine but its store is missing (the backup was
            // itself reset by recovery) or the node was just resumed:
            // take a fresh consistent checkpoint.
            recoveryCheckpoint(g);
        }
    }
}

void
RecoveryManager::recoveryCheckpoint(NodeId g)
{
    FtProtocolNode *gn = ft(g);
    if (gn->releasesActive > 0) {
        // A parked releaser will redo its phases (including the
        // checkpoints) against the new backup once recovery finishes.
        return;
    }
    // Force a commit point so the captured images replay everything
    // that follows them (no un-propagated execution precedes them).
    CommitResult cr = gn->commitInterval(nullptr);
    if (cr.any) {
        for (const Diff &d : cr.diffs) {
            for (NodeId sec : ctx.as.secondaryHomes(d.page))
                ft(sec)->applyIncomingDiff(d, 1);
            ft(ctx.as.primaryHome(d.page))->applyIncomingDiff(d, 2);
        }
        accumCost += ctx.cfg.recoveryPerPageCost * cr.pages.size();
    }
    NodeId b = ctx.ops->backupOf(g);
    CkptStore &store = ft(b)->storeFor(g);
    store.hasSaved = true;
    store.savedTs = gn->ts;
    store.savedInterval = gn->intervalCtr;
    store.savedBarrierEpoch = gn->barrierEpoch;
    store.intervalPages.clear();
    for (const auto &rec : gn->intervalTable)
        store.intervalPages[rec.interval] = rec.pages;
    for (SimThread *t : ctx.ops->computeThreads(g)) {
        if (t->state() == ThreadState::Dead)
            continue;
        ThreadCkpt ck;
        ck.tag = gn->intervalCtr;
        ck.image = t->captureForCkpt();
        ck.finished = ck.image.finished;
        ck.valid = !ck.finished;
        accumCost += ctx.cfg.ckptCaptureCost;
        store.save(t->id(), std::move(ck));
    }
}

} // namespace rsvm

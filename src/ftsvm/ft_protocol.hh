/**
 * @file
 * The extended, fault-tolerant SVM protocol (§4) — the paper's core
 * contribution.
 *
 * Differences from the base protocol, all implemented here:
 *
 *  - every shared page has a primary and a secondary home; the primary
 *    keeps a *committed* copy (what fetches return), the secondary a
 *    *tentative* copy (§4.2);
 *  - releases propagate diffs in two phases: tentative copies first,
 *    then — after the releaser's timestamp has been saved at its
 *    backup — committed copies (Fig. 2), making each release atomic
 *    with respect to a releaser crash;
 *  - homes create twins and diff their own pages; local updates go to
 *    the working copy only, so a home node never mixes its uncommitted
 *    writes into the replicated copies (the Fig. 3 hazard);
 *  - pages committed by an in-flight release are locked: page faults
 *    and new local writes on them stall until the release completes
 *    (the Fig. 4 hazard); releases on one node are serialized;
 *  - thread checkpoints: at each release the releaser captures the
 *    other local threads when it commits the interval (point A) and
 *    itself once phase 1 and the timestamp save are done (point B),
 *    shipping context+stack to the backup node (§4.4);
 *  - locks use the centralized polling algorithm with both lock homes
 *    updated on every acquire/release, secondary first (§4.3).
 *
 * Release ordering note: the lock is handed to the next requester
 * after point B (when the release is "conceptually complete", §4.4),
 * not immediately after the commit as in the base protocol — a
 * roll-back can then never strand a peer that observed the handoff.
 */

#ifndef RSVM_FTSVM_FT_PROTOCOL_HH
#define RSVM_FTSVM_FT_PROTOCOL_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "ftsvm/checkpoint.hh"
#include "svm/protocol.hh"

namespace rsvm {

/** One logical node running the extended protocol. */
class FtProtocolNode : public SvmNode
{
  public:
    FtProtocolNode(SvmContext &context, NodeId node_id);

    void handleFetch(PageId page, const VectorClock &req_ver,
                     std::shared_ptr<Replier> rep,
                     std::shared_ptr<std::vector<std::byte>> out)
        override;
    void applyIncomingDiff(const Diff &d, int phase) override;
    const std::byte *homeBytes(PageId page) override;

    /** Backup storage this node keeps for @p protected_node. */
    CkptStore &storeFor(NodeId protected_node)
    { return backupStores[protected_node]; }
    CkptStore *findStoreFor(NodeId protected_node);

    // ---- Recovery-manager interface -------------------------------------

    /**
     * Reset all volatile protocol state after this (failed) node is
     * re-hosted, rolling it back to its last saved release.
     */
    void resetForRehost(const VectorClock &saved_ts,
                        IntervalNum saved_interval,
                        std::uint64_t saved_barrier_epoch,
                        const std::unordered_map<
                            IntervalNum, std::vector<PageId>> &pages);

    /** Drop the backup store kept for @p protected_node. */
    void dropStoreFor(NodeId protected_node)
    { backupStores.erase(protected_node); }

    /** Re-check deferred/local waiters of every homed page. */
    void serviceAllWaiters();

    /** Cap every known version entry for @p origin at @p limit
     *  (discards write notices of cancelled intervals, §4.5). */
    void capOriginVersions(NodeId origin, IntervalNum limit);

    /** Committed page bytes (created zero-filled on demand). */
    std::byte *committedData(PageId page);
    /** Tentative page bytes (created zero-filled on demand). */
    std::byte *tentativeData(PageId page);

  protected:
    void fetchPage(SimThread &self, PageId page) override;
    bool writeNeedsTwin(PageId) const override { return true; }
    bool skipInvalidate(PageId) const override { return false; }
    bool stallOnLockedPage(SimThread &self, PageEntry &entry) override;
    void doRelease(SimThread &self, LockId lock, bool is_barrier)
        override;
    CommStatus globalAcquire(SimThread &self, LockId lock,
                             VectorClock &out_ts) override;
    CommStatus globalRelease(SimThread &self, LockId lock) override;

  private:
    /** Serve deferred remote fetches and local waiters of one page. */
    void serviceFetchWaiters(PageId page);
    void replyWithCommitted(PageId page, std::shared_ptr<Replier> rep,
                            std::shared_ptr<std::vector<std::byte>> out);

    /** Phase-1/2 diff propagation; waits for all completions. */
    CommStatus propagateDiffs(SimThread &self,
                              const std::vector<Diff> &diffs, int phase);
    /** Point-A checkpoints of the other local threads. */
    CommStatus checkpointOthers(SimThread &self, IntervalNum tag);
    /** Timestamp + interval-pages save at the backup (end of phase 1). */
    CommStatus saveTimestamp(SimThread &self, IntervalNum interval,
                             const std::vector<PageId> &pages);
    /** Outcome of one point-B checkpoint attempt. */
    enum class PointB { Stored, Restored, Error };
    /** Point-B self checkpoint (single attempt, no internal retry). */
    PointB checkpointSelf(SimThread &self, IntervalNum tag);
    /** Ship one checkpoint slot to the backup node. */
    CommStatus sendCkpt(SimThread &self, ThreadId thread,
                        ThreadCkpt ckpt, CompletionBatch *batch);

    /** Park until the current recovery finishes, as a releaser. */
    void releaserWaitRecovery(SimThread &self);

    void lockPages(const std::vector<PageId> &pages);
    void unlockPages(const std::vector<PageId> &pages);

    /** Replicated slot write at both lock homes (secondary first). */
    CommStatus writeLockSlots(SimThread &self, LockId lock,
                              std::uint8_t value);

    // ---- Replicated queuing lock (§4.3) ---------------------------------
    // The variant the paper designed, implemented, evaluated — and
    // abandoned: home state (held flag, queue tail, timestamp) is
    // mirrored to the secondary lock home on every mutation. Provided
    // for the failure-free performance comparison of §4.3; recovery
    // with queuing locks is unsupported (the paper's conclusion).
    CommStatus ftQueueAcquire(SimThread &self, LockId lock,
                              VectorClock &out_ts);
    CommStatus ftQueueRelease(SimThread &self, LockId lock);
    /** Mirror a queue-lock home's state to the secondary home. */
    void mirrorQueueHome(LockId lock);

    // ---- Release serialization (§4.4) ------------------------------------
    bool releaseMutexBusy = false;
    std::vector<std::pair<SimThread *, std::uint64_t>>
        releaseMutexWaiters;

    /**
     * State of the in-flight release. Heap-stable (the point-B stack
     * image may only reference it through a raw pointer, never own
     * it): this is the paper's "diffs saved locally for the second
     * phase" (§5.2).
     */
    std::unique_ptr<CommitResult> activeRelease;
    /** Scratch for point-B self snapshots (same stability argument). */
    Fiber::Snapshot ckptScratch;

    /** Checkpoints and saved state of nodes this node backs up. */
    std::unordered_map<NodeId, CkptStore> backupStores;

    friend class RecoveryManager;
    friend class HomingManager;
    friend class JoinManager;
    friend class PersistManager;
};

} // namespace rsvm

#endif // RSVM_FTSVM_FT_PROTOCOL_HH

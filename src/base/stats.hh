/**
 * @file
 * Execution-time breakdown and event counters.
 *
 * The paper reports two breakdown formats for every run (§5.3):
 * a four-component one (compute, data wait, lock, barrier — Figs. 7/9)
 * and a six-component one (compute, data wait, synchronization, diffs,
 * protocol processing, checkpointing — Figs. 8/10). We charge simulated
 * time once into raw (component, in-barrier?) buckets and derive both
 * presentation formats from them, so the two views always total the
 * same execution time.
 */

#ifndef RSVM_BASE_STATS_HH
#define RSVM_BASE_STATS_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace rsvm {

/** Raw time-charging components. */
enum class Comp : unsigned {
    /** Application work (including modelled memory stalls). */
    Compute,
    /** Page-fault handling: fetch latency, version waits, local fetch. */
    DataWait,
    /** Waiting to acquire an application lock. */
    LockWait,
    /** Waiting at barrier rendezvous (inter- and intra-node). */
    BarrierWait,
    /** Twin creation, diff computation, propagation and apply waits. */
    Diff,
    /** Thread-state capture and transfer to the backup node. */
    Ckpt,
    /** Everything else: invalidations, commits, message posting. */
    Protocol,
    NumComps,
};

constexpr unsigned kNumComps = static_cast<unsigned>(Comp::NumComps);

/** Name of a raw component. */
const char *compName(Comp c);

/** Per-thread (and aggregatable) time breakdown. */
class TimeBreakdown
{
  public:
    /** Charge @p ns to @p c; @p in_barrier tags barrier-phase charges. */
    void
    charge(Comp c, SimTime ns, bool in_barrier)
    {
        buckets[static_cast<unsigned>(c)][in_barrier ? 1 : 0] += ns;
    }

    /** Total charged time across all buckets. */
    SimTime total() const;

    /** Raw bucket value summed over the barrier tag. */
    SimTime get(Comp c) const;
    /** Raw bucket value for one barrier tag. */
    SimTime get(Comp c, bool in_barrier) const;

    /** Four-component view (Figs. 7/9): compute, data, lock, barrier. */
    struct FourComp { SimTime compute, data, lock, barrier; };
    FourComp fourComp() const;

    /**
     * Six-component view (Figs. 8/10): compute, data, synchronization,
     * diffs, protocol processing, checkpointing.
     */
    struct SixComp
    { SimTime compute, data, sync, diffs, protocol, ckpt; };
    SixComp sixComp() const;

    /** Element-wise accumulate (for cluster-wide aggregation). */
    TimeBreakdown &operator+=(const TimeBreakdown &other);

    /** Reset all buckets to zero. */
    void clear();

  private:
    std::array<std::array<SimTime, 2>, kNumComps> buckets{};
};

/**
 * Power-of-two bucketed histogram for value distributions (batch
 * sizes, message bytes, phase latencies). Bucket i counts samples in
 * [2^(i-1), 2^i); bucket 0 counts zeros and ones. Cheap enough to
 * live on the hot path: one clz per sample.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void
    sample(std::uint64_t v)
    {
        buckets_[bucketOf(v)]++;
        count_++;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

    /**
     * Approximate p-th percentile (0-100): upper bound of the first
     * bucket whose cumulative count reaches the rank.
     */
    std::uint64_t percentile(double p) const;

    Histogram &operator+=(const Histogram &other);

    /** "n=12 mean=843 min=64 max=4096 p50=512 p99=4096" (or "n=0"). */
    std::string toString() const;

  private:
    static unsigned
    bucketOf(std::uint64_t v)
    {
        return v <= 1 ? 0 : 64 - static_cast<unsigned>(
                                 __builtin_clzll(v - 1));
    }

    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Cluster-wide protocol event counters. */
struct Counters
{
    std::uint64_t pageFaults = 0;
    std::uint64_t remotePageFetches = 0;
    std::uint64_t localPageFetches = 0;
    std::uint64_t twinsCreated = 0;
    std::uint64_t pagesDiffed = 0;
    std::uint64_t homePagesDiffed = 0;
    std::uint64_t diffBytesSent = 0;
    std::uint64_t diffMsgsSent = 0;
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockRemoteAcquires = 0;
    std::uint64_t lockPollRounds = 0;
    std::uint64_t barriers = 0;
    std::uint64_t releases = 0;
    std::uint64_t intervalsCommitted = 0;
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t checkpointBytes = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t postQueueStalls = 0;
    std::uint64_t heartbeatsSent = 0;
    std::uint64_t failuresDetected = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t recoveryRestarts = 0;
    std::uint64_t pagesReReplicated = 0;
    std::uint64_t pagesRolledForward = 0;
    std::uint64_t pagesRolledBack = 0;
    std::uint64_t threadsRestored = 0;
    std::uint64_t locksCleaned = 0;
    std::uint64_t reReplicationBytes = 0;

    // Adaptive home placement (svm/homing). misHomedDiffBytes counts
    // the wire bytes of every committed-copy diff whose destination
    // home is not the writer itself (re-sent diffs after a failure
    // count again, like diffBytesSent); it is maintained regardless of
    // Config::dynamicHoming so static runs provide the baseline.
    std::uint64_t homeMigrations = 0;
    std::uint64_t migratedBytes = 0;
    std::uint64_t misHomedDiffBytes = 0;
    std::uint64_t migrationsRolledBack = 0;
    /** Fetches that arrived at a former home and were forwarded. */
    std::uint64_t fetchForwards = 0;

    // Propagation-pipeline instrumentation (one phase = one
    // propagation pass over an interval's diffs to its homes).
    std::uint64_t propPhases = 0;
    std::uint64_t propDestBatches = 0;
    std::uint64_t propPagesPacked = 0;
    std::uint64_t propRunsMerged = 0;
    std::uint64_t propPagesMerged = 0;
    std::uint64_t phase1WallNs = 0;
    std::uint64_t phase2WallNs = 0;

    // Reliable transport (net/vmmc) and wire faults (net/netfault):
    // every protocol message rides per-channel sequence numbers with
    // cumulative acks and retransmission, so handlers stay effectively
    // exactly-once on a lossy wire.
    std::uint64_t retransmits = 0;
    std::uint64_t retransmittedBytes = 0;
    /** Deliveries suppressed as duplicates (wire dup or retransmit). */
    std::uint64_t dupDrops = 0;
    /** Deliveries rejected because stamped with a pre-recovery epoch. */
    std::uint64_t staleEpochRejected = 0;
    /** Deliveries rejected because the sender is fenced. */
    std::uint64_t fencedDrops = 0;
    std::uint64_t acksSent = 0;
    /** Cumulative acks that rode piggybacked on reverse traffic. */
    std::uint64_t acksPiggybacked = 0;

    // Failure detector (runtime/failure_detector).
    std::uint64_t heartbeatsMissed = 0;
    /** Live nodes fenced on a false suspicion (slow, not dead). */
    std::uint64_t falseSuspicionsFenced = 0;

    // Injected wire faults (ground truth, for campaign verification).
    std::uint64_t netDropsInjected = 0;
    std::uint64_t netDupsInjected = 0;
    std::uint64_t netReordersInjected = 0;
    std::uint64_t netDelaysInjected = 0;

    // Elastic membership (runtime/membership). A join is any admitted
    // attempt; a rejoin is a completed join of a previously-fenced
    // member, so joins == rejoins + joinsRolledBack once quiescent.
    std::uint64_t joins = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t joinsRolledBack = 0;
    /** Modeled bytes of the bulk state transfer onto each joiner. */
    std::uint64_t bulkTransferBytes = 0;
    /** Pages re-grown back to their target replication degree. */
    std::uint64_t pagesReGrown = 0;
    /** Join requests rejected (already live) or queued behind recovery. */
    std::uint64_t joinsRejected = 0;
    std::uint64_t joinsQueued = 0;

    // Channel reclamation for permanently-dead peers (net/vmmc).
    std::uint64_t channelsReclaimed = 0;
    /** Tx/held entries freed by channel reclamation. */
    std::uint64_t reclaimedTxEntries = 0;

    // Persistence tier (base/persist, runtime/persist_manager). The
    // drainer runs entirely off the critical path: these counters
    // change with persistEnabled, but wall time and release-latency
    // histograms must not.
    std::uint64_t persistRecordsAppended = 0;
    std::uint64_t persistRecordsDurable = 0;
    std::uint64_t persistBytesAppended = 0;
    std::uint64_t persistBytesDurable = 0;
    /** Capture epochs closed (each a consistent cluster-wide cut). */
    std::uint64_t persistEpochsClosed = 0;
    /** Capture ticks skipped because the cluster was not quiescent. */
    std::uint64_t persistCapturesSkipped = 0;
    /** Pending/in-flight records lost when their writer node died. */
    std::uint64_t persistRecordsDropped = 0;
    /** Durable records past the watermark discarded at restart scan. */
    std::uint64_t persistPartialsDiscarded = 0;
    /** Completed cold restarts from the persisted watermark. */
    std::uint64_t coldRestarts = 0;
    /** Cold-restart attempts (retries after mid-restart kills). */
    std::uint64_t coldRestartAttempts = 0;

    /** Wire bytes per posted batch message. */
    Histogram batchBytesHist;
    /** Page diffs packed into each posted batch message. */
    Histogram batchPagesHist;
    /** Wall-clock ns per propagation phase. */
    Histogram phaseWallHist;
    /** Simulated ns charged by each recovery step (all passes). */
    Histogram recoveryStepNsHist;
    /** Simulated ns per completed recovery cycle. */
    Histogram recoveryTimeNsHist;
    /** Pages migrated per evaluated placement epoch. */
    Histogram epochMigrationsHist;
    /** Mis-homed diff bytes observed per placement epoch. */
    Histogram epochMisHomedBytesHist;
    /** Out-of-order arrival depth (seq - expected) per held message. */
    Histogram reorderDepthHist;
    /** Simulated ns per completed join (admit -> activate). */
    Histogram joinTimeNsHist;
    /** Effective replication degree per page (sampled at reporting). */
    Histogram pagesPerDegreeHist;
    /** Simulated ns per drained (durable) persist record. */
    Histogram persistDrainNsHist;
    /** Modelled bytes per persisted record. */
    Histogram persistRecordBytesHist;

    Counters &operator+=(const Counters &other);
    std::string toString() const;
};

} // namespace rsvm

#endif // RSVM_BASE_STATS_HH

#include "base/lossreason.hh"

namespace rsvm {

const char *
lossReasonName(LossReason r)
{
    switch (r) {
    case LossReason::None:
        return "none";
    case LossReason::TooFewHosts:
        return "too-few-hosts";
    case LossReason::StaleCheckpointStore:
        return "stale-checkpoint-store";
    case LossReason::ReplicasExhausted:
        return "replicas-exhausted";
    case LossReason::LockStateLost:
        return "lock-state-lost";
    case LossReason::NoEligibleBackup:
        return "no-eligible-backup";
    case LossReason::AllNodesFailed:
        return "all-nodes-failed";
    }
    return "unknown";
}

} // namespace rsvm

/**
 * @file
 * Central configuration for the simulated cluster, network timing
 * model, SVM protocol options, and fault-tolerance knobs.
 *
 * Defaults are calibrated to the paper's testbed (section 3/5): an
 * 8-node cluster of 2-way 400 MHz Pentium-II SMPs on Myrinet with the
 * VMMC communication library (8 us one-way latency, ~100 MB/s).
 * Benches sweep individual knobs; tests construct bespoke configs.
 */

#ifndef RSVM_BASE_CONFIG_HH
#define RSVM_BASE_CONFIG_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace rsvm {

/** Which SVM protocol variant a cluster runs. */
enum class ProtocolKind {
    /** Base GeNIMA home-based LRC protocol (no fault tolerance). */
    Base,
    /** Extended protocol with dynamic data replication (the paper). */
    FaultTolerant,
};

/** Lock synchronization algorithm (section 4.3). */
enum class LockAlgo {
    /** Distributed queuing lock (original GeNIMA scheme). */
    Queuing,
    /** Centralized polling lock (the paper's stateless scheme). */
    CentralizedPolling,
};

/** All simulator knobs. Plain aggregate; copy freely. */
struct Config
{
    // ---- Cluster shape ---------------------------------------------------
    /** Number of physical nodes (the paper evaluates 8). */
    std::uint32_t numNodes = 8;
    /** Compute threads per node (paper: 1 and 2). */
    std::uint32_t threadsPerNode = 1;
    /** Shared page size in bytes. */
    std::uint32_t pageSize = 4096;
    /** Shared address space capacity in bytes. */
    std::uint64_t sharedBytes = 256ull << 20;
    /** Number of application lock identifiers available. */
    std::uint32_t maxLocks = 8192;

    // ---- Protocol selection ---------------------------------------------
    ProtocolKind protocol = ProtocolKind::FaultTolerant;
    LockAlgo lockAlgo = LockAlgo::CentralizedPolling;

    // ---- Network timing (VMMC over Myrinet) ------------------------------
    /** NIC-side processing charged to each send. */
    SimTime sendOverhead = 2 * kMicrosecond;
    /** NIC-side processing charged to each receive/deposit. */
    SimTime recvOverhead = 2 * kMicrosecond;
    /** Wire/switch propagation latency. */
    SimTime wireLatency = 4 * kMicrosecond;
    /** Network bandwidth in bytes per second. */
    double bandwidthBytesPerSec = 100e6;
    /** Host-side cost to post one asynchronous send. */
    SimTime postCost = 300;
    /** NIC post-queue capacity; full queue blocks the poster (§5.2). */
    std::uint32_t nicPostQueue = 64;
    /** Message protocol header bytes added to every payload on the wire. */
    std::uint32_t msgHeaderBytes = 32;
    /** Delivery delay for loopback ops (both endpoints on one host). */
    SimTime localLoopback = 500;

    // ---- Host timing ------------------------------------------------------
    /** Local memory copy cost per byte (twin creation, page copies);
     *  calibrated to a 400 MHz Pentium II (~300 MB/s copy). */
    double memCopyNsPerByte = 3.0;
    /** Diff scan cost per byte (word-compare of page vs twin). */
    double diffScanNsPerByte = 2.0;
    /** Diff apply cost per modified byte at the home. */
    double diffApplyNsPerByte = 1.5;
    /** Fixed cost of entering the page-fault handler (NT trap +
     *  handler dispatch on the paper's testbed). */
    SimTime pageFaultCost = 15 * kMicrosecond;
    /** Cost of one page invalidation (mprotect-class). */
    SimTime invalidateCost = 2 * kMicrosecond;
    /** Fixed cost of twin creation beyond the copy itself. */
    SimTime twinSetupCost = 2 * kMicrosecond;
    /** Protocol bookkeeping cost per committed page at a release. */
    SimTime commitPerPageCost = 150;
    /** Fixed protocol cost per acquire/release/barrier operation. */
    SimTime syncOpCost = 1 * kMicrosecond;

    // ---- Protocol extensions (§6 future work) ---------------------------
    /**
     * Coalesce a release's diffs per destination into one message
     * (the paper's "sending fewer and larger messages" optimization):
     * fewer post-queue slots and per-message overheads at the cost of
     * larger individual transfers.
     */
    bool batchDiffs = false;
    /**
     * Wire-byte budget per batched diff message: the pipeline packs a
     * destination's diffs into scatter-gather chunks no larger than
     * this (a single oversized page diff still goes alone). Bounds NIC
     * buffer pressure and keeps one huge interval from monopolizing a
     * channel.
     */
    std::uint32_t maxDiffMsgBytes = 32 * 1024;

    // ---- Lock algorithm tuning -------------------------------------------
    /** Initial backoff before re-polling a contended lock. */
    SimTime lockBackoffMin = 20 * kMicrosecond;
    /** Backoff cap (exponential with jitter in between). */
    SimTime lockBackoffMax = 200 * kMicrosecond;

    // ---- Fault tolerance ---------------------------------------------------
    /** Heart-beat timeout while waiting on a remote response (§4.1). */
    SimTime heartbeatTimeout = 1 * kMillisecond;
    /** Round-trip allowance for one heart-beat probe. */
    SimTime heartbeatProbeCost = 20 * kMicrosecond;
    /** Thread stack bytes captured per checkpoint (paper: 2–2.8 KB). */
    std::uint32_t ckptStackReserve = 64 * 1024;
    /** Fixed cost of capturing one thread context. */
    SimTime ckptCaptureCost = 2 * kMicrosecond;
    /** Per-page cost during recovery reconfiguration. */
    SimTime recoveryPerPageCost = 2 * kMicrosecond;
    /** Fixed per-node cost of the recovery barrier/reconfiguration. */
    SimTime recoveryFixedCost = 500 * kMicrosecond;

    // ---- Replication / membership (runtime/membership) ---------------------
    /**
     * Default per-page replication degree k of the fault-tolerant
     * protocol: one committed copy at the primary home plus k-1
     * tentative copies at secondary homes. k=2 is the paper's scheme;
     * k=1 keeps no replica (a scratch page dies with its home); k>=3
     * survives simultaneous double failures. Applications may override
     * per region via AddressSpace::setReplicationDegreeRange.
     */
    std::uint32_t replicationDegree = 2;
    /** Fixed per-node cost of a join/rejoin reconfiguration. */
    SimTime joinFixedCost = 500 * kMicrosecond;

    // ---- Wire fault injection (net/netfault) -------------------------------
    /** Probability a wire message is silently dropped (0 disables). */
    double netDropProb = 0.0;
    /** Probability a wire message is delivered twice. */
    double netDupProb = 0.0;
    /** Probability a wire message is held back past its successors. */
    double netReorderProb = 0.0;
    /** Maximum uniform extra delivery jitter per message (0 disables). */
    SimTime netJitterMax = 0;

    // ---- Reliable transport (net/vmmc) -------------------------------------
    /**
     * Initial per-channel retransmission timeout. Deliberately well
     * above a full post-queue drain so a send backlog at a release is
     * not mistaken for loss (spurious retransmits are only suppressed
     * duplicates, but they waste wire time).
     */
    SimTime netRtoMin = 500 * kMicrosecond;
    /** Retransmission backoff cap. */
    SimTime netRtoMax = 8 * kMillisecond;
    /** Ack coalescing delay (0 = ack immediately at delivery). */
    SimTime netAckDelay = 0;

    // ---- Failure detector (runtime/failure_detector) -----------------------
    /** Heartbeat/lease renewal period of the failure detector. */
    SimTime heartbeatPeriod = 250 * kMicrosecond;
    /** Missed lease periods before a silent peer is declared failed. */
    std::uint32_t missedLeases = 4;

    // ---- Adaptive home placement (svm/homing) -----------------------------
    /**
     * Enable the online page-migration subsystem: profile per-page
     * sharing, elect better homes every epoch and live-migrate
     * mis-homed hot pages. Requires the fault-tolerant protocol (the
     * handoff transfers both replicas atomically at a quiescent
     * instant).
     */
    bool dynamicHoming = false;
    /** Placement epoch length: profile aggregation + policy period. */
    SimTime homingEpoch = 1 * kMillisecond;
    /** Maximum pages migrated per epoch (migration budget). */
    std::uint32_t homingBudget = 64;
    /**
     * Hysteresis factor: a candidate home must see at least this
     * multiple of the current home's epoch traffic before the page
     * moves (keeps ping-ponging pages put).
     */
    double homingHysteresis = 1.5;
    /** Minimum epoch traffic (bytes) before a page is considered. */
    std::uint64_t homingMinBytes = 8192;
    /** Epochs a migrated page stays put before it may move again. */
    std::uint32_t homingCooldownEpochs = 2;

    // ---- Persistence tier (base/persist, runtime/persist_manager) ----------
    /**
     * Opt-in async persistence: stream checkpoint stores, committed
     * page images and lock metadata to a simulated log-structured
     * disk off the critical path (a release never blocks on the
     * store), enabling bit-exact cold restart after whole-cluster
     * loss. Requires the fault-tolerant protocol.
     */
    bool persistEnabled = false;
    /** Capture period: dirty state is snapshotted every this often
     *  (at a release-quiescent engine instant). */
    SimTime persistEpoch = 2 * kMillisecond;
    /** Fixed per-record latency of the simulated log disk. */
    SimTime persistDiskLatency = 50 * kMicrosecond;
    /** Sequential-write bandwidth of the simulated log disk. */
    double persistDiskBandwidthBytesPerSec = 200e6;
    /** Max seeded uniform extra jitter per disk write (0 disables). */
    SimTime persistDiskJitterMax = 0;

    // ---- SMP contention model ---------------------------------------------
    /**
     * Fractional compute-time inflation per additional concurrently
     * active local thread sharing the node memory bus (§5.2 observes
     * compute time rising with threads/node and DMA traffic).
     */
    double smpComputeInflation = 0.06;

    // ---- Misc ---------------------------------------------------------------
    /** Master RNG seed (backoff jitter, app data). */
    std::uint64_t seed = 1;
    /** Run invariant self-checks inside the protocols (slower). */
    bool paranoidChecks = false;

    /** Total number of compute threads in the cluster. */
    std::uint32_t totalThreads() const { return numNodes * threadsPerNode; }
    /** Number of shared pages in the address space. */
    PageId numPages() const
    { return static_cast<PageId>(sharedBytes / pageSize); }

    /** Transfer time of @p bytes at the configured bandwidth. */
    SimTime
    wireTime(std::uint64_t bytes) const
    {
        return static_cast<SimTime>(static_cast<double>(bytes) * 1e9 /
                                    bandwidthBytesPerSec);
    }

    /** Parse "key=value" overrides; returns false on unknown key. */
    bool applyOverride(const std::string &kv);
    /** Human-readable dump of every knob. */
    std::string toString() const;
};

} // namespace rsvm

#endif // RSVM_BASE_CONFIG_HH

#include "base/config.hh"

#include <cstdlib>
#include <sstream>

namespace rsvm {

bool
Config::applyOverride(const std::string &kv)
{
    std::size_t eq = kv.find('=');
    if (eq == std::string::npos)
        return false;
    std::string key = kv.substr(0, eq);
    std::string val = kv.substr(eq + 1);
    auto as_u64 = [&] { return std::strtoull(val.c_str(), nullptr, 0); };
    auto as_f = [&] { return std::strtod(val.c_str(), nullptr); };

    if (key == "numNodes") numNodes = as_u64();
    else if (key == "threadsPerNode") threadsPerNode = as_u64();
    else if (key == "pageSize") pageSize = as_u64();
    else if (key == "sharedBytes") sharedBytes = as_u64();
    else if (key == "maxLocks") maxLocks = as_u64();
    else if (key == "protocol")
        protocol = (val == "base") ? ProtocolKind::Base
                                   : ProtocolKind::FaultTolerant;
    else if (key == "lockAlgo")
        lockAlgo = (val == "queuing") ? LockAlgo::Queuing
                                      : LockAlgo::CentralizedPolling;
    else if (key == "sendOverhead") sendOverhead = as_u64();
    else if (key == "recvOverhead") recvOverhead = as_u64();
    else if (key == "wireLatency") wireLatency = as_u64();
    else if (key == "bandwidthBytesPerSec") bandwidthBytesPerSec = as_f();
    else if (key == "postCost") postCost = as_u64();
    else if (key == "nicPostQueue") nicPostQueue = as_u64();
    else if (key == "msgHeaderBytes") msgHeaderBytes = as_u64();
    else if (key == "localLoopback") localLoopback = as_u64();
    else if (key == "memCopyNsPerByte") memCopyNsPerByte = as_f();
    else if (key == "diffScanNsPerByte") diffScanNsPerByte = as_f();
    else if (key == "diffApplyNsPerByte") diffApplyNsPerByte = as_f();
    else if (key == "pageFaultCost") pageFaultCost = as_u64();
    else if (key == "invalidateCost") invalidateCost = as_u64();
    else if (key == "twinSetupCost") twinSetupCost = as_u64();
    else if (key == "commitPerPageCost") commitPerPageCost = as_u64();
    else if (key == "syncOpCost") syncOpCost = as_u64();
    else if (key == "batchDiffs") batchDiffs = (val == "1" ||
                                                val == "true");
    else if (key == "maxDiffMsgBytes") maxDiffMsgBytes = as_u64();
    else if (key == "lockBackoffMin") lockBackoffMin = as_u64();
    else if (key == "lockBackoffMax") lockBackoffMax = as_u64();
    else if (key == "heartbeatTimeout") heartbeatTimeout = as_u64();
    else if (key == "heartbeatProbeCost") heartbeatProbeCost = as_u64();
    else if (key == "netDropProb") netDropProb = as_f();
    else if (key == "netDupProb") netDupProb = as_f();
    else if (key == "netReorderProb") netReorderProb = as_f();
    else if (key == "netJitterMax") netJitterMax = as_u64();
    else if (key == "netRtoMin") netRtoMin = as_u64();
    else if (key == "netRtoMax") netRtoMax = as_u64();
    else if (key == "netAckDelay") netAckDelay = as_u64();
    else if (key == "heartbeatPeriod") heartbeatPeriod = as_u64();
    else if (key == "missedLeases") missedLeases = as_u64();
    else if (key == "ckptStackReserve") ckptStackReserve = as_u64();
    else if (key == "ckptCaptureCost") ckptCaptureCost = as_u64();
    else if (key == "recoveryPerPageCost") recoveryPerPageCost = as_u64();
    else if (key == "recoveryFixedCost") recoveryFixedCost = as_u64();
    else if (key == "replicationDegree") replicationDegree = as_u64();
    else if (key == "joinFixedCost") joinFixedCost = as_u64();
    else if (key == "dynamicHoming") dynamicHoming = (val == "1" ||
                                                      val == "true");
    else if (key == "homingEpoch") homingEpoch = as_u64();
    else if (key == "homingBudget") homingBudget = as_u64();
    else if (key == "homingHysteresis") homingHysteresis = as_f();
    else if (key == "homingMinBytes") homingMinBytes = as_u64();
    else if (key == "homingCooldownEpochs") homingCooldownEpochs = as_u64();
    else if (key == "persistEnabled") persistEnabled = (val == "1" ||
                                                        val == "true");
    else if (key == "persistEpoch") persistEpoch = as_u64();
    else if (key == "persistDiskLatency") persistDiskLatency = as_u64();
    else if (key == "persistDiskBandwidthBytesPerSec")
        persistDiskBandwidthBytesPerSec = as_f();
    else if (key == "persistDiskJitterMax") persistDiskJitterMax = as_u64();
    else if (key == "smpComputeInflation") smpComputeInflation = as_f();
    else if (key == "seed") seed = as_u64();
    else if (key == "paranoidChecks") paranoidChecks = (val == "1" ||
                                                        val == "true");
    else
        return false;
    return true;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    os << "numNodes=" << numNodes
       << " threadsPerNode=" << threadsPerNode
       << " pageSize=" << pageSize
       << " protocol="
       << (protocol == ProtocolKind::Base ? "base" : "ft")
       << " lockAlgo="
       << (lockAlgo == LockAlgo::Queuing ? "queuing" : "polling")
       << " sendOverhead=" << sendOverhead
       << " recvOverhead=" << recvOverhead
       << " wireLatency=" << wireLatency
       << " bandwidth=" << bandwidthBytesPerSec
       << " nicPostQueue=" << nicPostQueue
       << " batchDiffs=" << batchDiffs
       << " maxDiffMsgBytes=" << maxDiffMsgBytes
       << " dynamicHoming=" << dynamicHoming
       << " homingEpoch=" << homingEpoch
       << " homingBudget=" << homingBudget
       << " homingHysteresis=" << homingHysteresis
       << " homingMinBytes=" << homingMinBytes
       << " homingCooldownEpochs=" << homingCooldownEpochs
       << " netDropProb=" << netDropProb
       << " netDupProb=" << netDupProb
       << " netReorderProb=" << netReorderProb
       << " netJitterMax=" << netJitterMax
       << " netRtoMin=" << netRtoMin
       << " netRtoMax=" << netRtoMax
       << " heartbeatPeriod=" << heartbeatPeriod
       << " missedLeases=" << missedLeases
       << " replicationDegree=" << replicationDegree
       << " persistEnabled=" << persistEnabled
       << " persistEpoch=" << persistEpoch
       << " persistDiskLatency=" << persistDiskLatency
       << " persistDiskBandwidth=" << persistDiskBandwidthBytesPerSec
       << " persistDiskJitterMax=" << persistDiskJitterMax
       << " seed=" << seed;
    return os.str();
}

} // namespace rsvm

/**
 * @file
 * Lightweight component-tagged trace logging.
 *
 * Tracing is off by default; tests and debugging sessions enable
 * individual components via Logger::enable() or the RSVM_TRACE
 * environment variable (comma-separated component names, or "all").
 * Every record is prefixed with the current simulated time, which the
 * simulation engine publishes through Logger::setTimeSource().
 */

#ifndef RSVM_BASE_LOG_HH
#define RSVM_BASE_LOG_HH

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"

namespace rsvm {

/** Trace components, one per subsystem. */
enum class LogComp : unsigned {
    Sim,
    Net,
    Mem,
    Svm,
    Lock,
    Barrier,
    Ft,
    Ckpt,
    Recovery,
    App,
    NumComps,
};

/** Singleton trace sink. */
class Logger
{
  public:
    static Logger &instance();

    /** Enable/disable one component at runtime. */
    void enable(LogComp comp, bool on = true);
    /** True if records for @p comp are emitted. */
    bool enabled(LogComp comp) const { return mask & bit(comp); }
    /** Enable components from a comma-separated name list ("all" ok). */
    void enableFromSpec(const std::string &spec);

    /** Engine installs a callback returning the current simulated time. */
    void setTimeSource(std::function<SimTime()> src) { timeSrc = std::move(src); }

    /** printf-style trace record. */
    void log(LogComp comp, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

  private:
    Logger();

    static constexpr std::uint32_t bit(LogComp c)
    { return 1u << static_cast<unsigned>(c); }

    std::uint32_t mask = 0;
    std::function<SimTime()> timeSrc;
};

/** Name of a trace component, for record prefixes and specs. */
const char *logCompName(LogComp comp);

} // namespace rsvm

#define RSVM_LOG(comp, ...)                                                 \
    do {                                                                    \
        auto &logger_ = ::rsvm::Logger::instance();                         \
        if (logger_.enabled(comp))                                          \
            logger_.log(comp, __VA_ARGS__);                                 \
    } while (0)

#endif // RSVM_BASE_LOG_HH

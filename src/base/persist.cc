#include "base/persist.hh"

#include "base/panic.hh"

namespace rsvm {

void
PersistLog::closeEpoch(std::uint64_t epoch, std::uint64_t records)
{
    rsvm_assert_msg(epoch > watermark_,
                    "persist epoch closed at or below the watermark");
    auto [it, inserted] =
        epochs_.try_emplace(epoch, std::make_pair(records, 0));
    rsvm_assert_msg(inserted, "persist epoch closed twice");
    (void)it;
    advanceWatermark();
}

void
PersistLog::appendDurable(PersistRecord rec)
{
    auto it = epochs_.find(rec.epoch);
    rsvm_assert_msg(it != epochs_.end(),
                    "durable record for an unclosed persist epoch");
    it->second.second++;
    rsvm_assert_msg(it->second.second <= it->second.first,
                    "more durable records than the epoch declared");
    log_.push_back(std::move(rec));
    advanceWatermark();
}

void
PersistLog::advanceWatermark()
{
    // The watermark is the contiguous complete prefix: walk epochs in
    // order from just past the current watermark and stop at the
    // first gap or incomplete epoch.
    for (auto it = epochs_.upper_bound(watermark_);
         it != epochs_.end(); ++it) {
        if (it->first != watermark_ + 1)
            break; // a missing epoch can never complete
        if (it->second.second < it->second.first)
            break;
        watermark_ = it->first;
    }
}

PersistScan
PersistLog::scan() const
{
    PersistScan out;
    out.watermark = watermark_;
    for (const PersistRecord &r : log_) {
        if (r.epoch > watermark_) {
            out.partialsDiscarded++;
            continue;
        }
        // Log order is completion order, but epochs give the true
        // version order: keep the record with the highest epoch per
        // key (ties cannot happen — one record per key per epoch).
        auto key = std::make_pair(r.kind, r.key);
        auto it = out.latest.find(key);
        if (it == out.latest.end() || r.epoch > it->second->epoch)
            out.latest[key] = &r;
    }
    return out;
}

void
PersistLog::truncateToWatermark()
{
    std::vector<PersistRecord> kept;
    kept.reserve(log_.size());
    for (PersistRecord &r : log_) {
        if (r.epoch <= watermark_)
            kept.push_back(std::move(r));
    }
    log_ = std::move(kept);
    epochs_.erase(epochs_.upper_bound(watermark_), epochs_.end());
}

} // namespace rsvm

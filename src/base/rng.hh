/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator (backoff jitter, chaos workloads,
 * synthetic data) flows through Rng instances seeded explicitly, so
 * every run is reproducible. The core generator is SplitMix64, which is
 * small, fast, and has no shared global state.
 */

#ifndef RSVM_BASE_RNG_HH
#define RSVM_BASE_RNG_HH

#include <cstdint>

#include "base/panic.hh"

namespace rsvm {

/** SplitMix64 generator with convenience draws. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        rsvm_assert(bound > 0);
        return next() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        rsvm_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state;
};

} // namespace rsvm

#endif // RSVM_BASE_RNG_HH

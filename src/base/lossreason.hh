/**
 * @file
 * Standardized cluster-loss reasons.
 *
 * Every path that declares the cluster unrecoverable names one of
 * these codes instead of an ad-hoc string, so tests and campaign
 * tooling can assert the *exact* loss path that fired. The free-form
 * detail string (page number, node id, interval evidence) still rides
 * along for humans; the code is the machine-checkable part.
 */

#ifndef RSVM_BASE_LOSSREASON_HH
#define RSVM_BASE_LOSSREASON_HH

namespace rsvm {

/** Why a cluster was declared unrecoverable. */
enum class LossReason {
    /** Not lost (sentinel). */
    None,
    /** Fewer than two physical nodes host live state (§4.5). */
    TooFewHosts,
    /** A failed node's checkpoint store is missing or older than
     *  committed state some survivor observed. */
    StaleCheckpointStore,
    /** A referenced page lost every replica and its owning store. */
    ReplicasExhausted,
    /** An in-use lock lost both homes and the salvaged copy. */
    LockStateLost,
    /** No eligible backup placement exists for some live node. */
    NoEligibleBackup,
    /** Every physical node died (total/correlated failure). */
    AllNodesFailed,
};

/** Stable short name of a loss reason ("replicas-exhausted"). */
const char *lossReasonName(LossReason r);

} // namespace rsvm

#endif // RSVM_BASE_LOSSREASON_HH

/**
 * @file
 * Error-termination helpers, following the gem5 panic()/fatal() split:
 * panic() flags an internal simulator bug (aborts, may dump core);
 * fatal() flags a user/configuration error (clean exit with an error
 * message). rsvm_assert() is an always-on invariant check that panics.
 */

#ifndef RSVM_BASE_PANIC_HH
#define RSVM_BASE_PANIC_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rsvm {

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace rsvm

#define rsvm_panic(msg) ::rsvm::panicImpl(__FILE__, __LINE__, (msg))
#define rsvm_fatal(msg) ::rsvm::fatalImpl(__FILE__, __LINE__, (msg))

/** Always-on invariant check; failure is a simulator bug. */
#define rsvm_assert(cond)                                                   \
    do {                                                                    \
        if (!(cond))                                                        \
            ::rsvm::panicImpl(__FILE__, __LINE__,                           \
                              "assertion failed: " #cond);                  \
    } while (0)

#define rsvm_assert_msg(cond, msg)                                          \
    do {                                                                    \
        if (!(cond))                                                        \
            ::rsvm::panicImpl(__FILE__, __LINE__,                           \
                              std::string("assertion failed: " #cond        \
                                          " — ") + (msg));                  \
    } while (0)

#endif // RSVM_BASE_PANIC_HH

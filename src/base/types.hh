/**
 * @file
 * Fundamental identifier and time types shared by every rsvm module.
 *
 * All simulated time is expressed in nanoseconds as a 64-bit unsigned
 * integer. Identifiers are small integers; kInvalid sentinels mark the
 * "no such entity" value throughout the code base.
 */

#ifndef RSVM_BASE_TYPES_HH
#define RSVM_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rsvm {

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

/** Logical node identifier (a protocol instance). */
using NodeId = std::uint32_t;

/** Physical node identifier (a machine: memory + NIC + CPUs). */
using PhysNodeId = std::uint32_t;

/** Global compute-thread identifier (dense across the cluster). */
using ThreadId = std::uint32_t;

/** Shared page number within the global shared address space. */
using PageId = std::uint32_t;

/** Byte address within the global shared address space. */
using Addr = std::uint64_t;

/** Application-level lock identifier. */
using LockId = std::uint32_t;

/** Per-node release interval number (starts at 0, bumps per release). */
using IntervalNum = std::uint32_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr ThreadId kInvalidThread = std::numeric_limits<ThreadId>::max();
constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/** Convenience literals for simulated durations. */
constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000ull * 1000 * 1000;

} // namespace rsvm

#endif // RSVM_BASE_TYPES_HH

/**
 * @file
 * Narrow persistence-store API: an append-only, epoch-versioned
 * record log modelling a log-structured disk shared by the cluster.
 *
 * The store is deliberately generic — records carry a kind, an epoch
 * number, a key, the physical node responsible for draining them, a
 * modelled byte size, and an opaque payload. The runtime-side
 * PersistManager (runtime/persist_manager) decides what to capture
 * and when; this layer only tracks durability:
 *
 *  - records are *appended* (pending) when captured and *durable*
 *    once the simulated disk write completes, in completion order;
 *  - each capture closes an epoch by declaring how many records it
 *    produced; an epoch is *complete* when all of them are durable;
 *  - the cluster-wide watermark is the highest epoch E such that
 *    every epoch <= E is complete (a contiguous durable prefix). A
 *    record that never drains (its writer died with it queued)
 *    stalls the watermark below its epoch forever — exactly the
 *    semantics cold restart needs;
 *  - restartImage() folds the durable log into latest-record-per-key
 *    state at the watermark; durable records *past* the watermark are
 *    counted and discarded, never replayed (a partial epoch is not a
 *    consistent cut).
 */

#ifndef RSVM_BASE_PERSIST_HH
#define RSVM_BASE_PERSIST_HH

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace rsvm {

/** What a persisted record describes. */
enum class PersistRecordKind : std::uint8_t {
    /** A node's backup checkpoint store (threads + saved metadata). */
    NodeState,
    /** A page's committed bytes, version and home set. */
    PageImage,
    /** A lock's home-side slot state and directory homes. */
    LockImage,
};

/** One append-only log record. */
struct PersistRecord
{
    PersistRecordKind kind = PersistRecordKind::NodeState;
    /** Capture epoch this record belongs to. */
    std::uint64_t epoch = 0;
    /** Node / page / lock id, per kind. */
    std::uint64_t key = 0;
    /** Physical node whose background drainer must write it. */
    PhysNodeId writer = 0;
    /** Modelled on-disk size (drives the simulated write time). */
    std::uint64_t bytes = 0;
    /** Typed payload owned by the producer (runtime layer). */
    std::shared_ptr<const void> payload;
};

/** Restart-time view of the durable log. */
struct PersistScan
{
    /** Highest fully-persisted epoch (0 = nothing usable). */
    std::uint64_t watermark = 0;
    /** Latest durable record per (kind, key) with epoch <= watermark. */
    std::map<std::pair<PersistRecordKind, std::uint64_t>,
             const PersistRecord *>
        latest;
    /** Durable records past the watermark, detected and discarded. */
    std::uint64_t partialsDiscarded = 0;
};

/** The simulated log-structured store (one per cluster). */
class PersistLog
{
  public:
    /** Declare epoch @p epoch closed with @p records records. */
    void closeEpoch(std::uint64_t epoch, std::uint64_t records);

    /** A record's simulated disk write completed: it is durable. */
    void appendDurable(PersistRecord rec);

    /** Highest epoch E with every epoch <= E fully durable. */
    std::uint64_t watermark() const { return watermark_; }

    /** Durable records so far (append order). */
    const std::vector<PersistRecord> &records() const { return log_; }

    /**
     * Fold the durable log for cold restart: latest record per key at
     * the watermark; everything past it is counted as discarded.
     * Pointers are valid until the next appendDurable/reset call.
     */
    PersistScan scan() const;

    /**
     * Cold restart committed: drop durable records past the watermark
     * (the discarded partials) and every epoch account above it, so a
     * post-restart capture restarts epoch numbering cleanly.
     */
    void truncateToWatermark();

  private:
    void advanceWatermark();

    std::vector<PersistRecord> log_;
    /** epoch -> (expected, durable) record counts. */
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        epochs_;
    std::uint64_t watermark_ = 0;
};

} // namespace rsvm

#endif // RSVM_BASE_PERSIST_HH

#include "base/log.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rsvm {

namespace {

const char *const kCompNames[] = {
    "sim", "net", "mem", "svm", "lock", "barrier", "ft", "ckpt",
    "recovery", "app",
};

static_assert(sizeof(kCompNames) / sizeof(kCompNames[0]) ==
              static_cast<unsigned>(LogComp::NumComps));

} // namespace

const char *
logCompName(LogComp comp)
{
    return kCompNames[static_cast<unsigned>(comp)];
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

Logger::Logger()
{
    if (const char *spec = std::getenv("RSVM_TRACE"))
        enableFromSpec(spec);
}

void
Logger::enable(LogComp comp, bool on)
{
    if (on)
        mask |= bit(comp);
    else
        mask &= ~bit(comp);
}

void
Logger::enableFromSpec(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        if (name == "all") {
            mask = ~0u;
        } else {
            for (unsigned i = 0;
                 i < static_cast<unsigned>(LogComp::NumComps); ++i) {
                if (name == kCompNames[i])
                    mask |= 1u << i;
            }
        }
        pos = comma + 1;
    }
}

void
Logger::log(LogComp comp, const char *fmt, ...)
{
    SimTime now = timeSrc ? timeSrc() : 0;
    std::fprintf(stderr, "%12llu [%-8s] ",
                 static_cast<unsigned long long>(now), logCompName(comp));
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace rsvm

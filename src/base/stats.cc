#include "base/stats.hh"

#include <sstream>

namespace rsvm {

namespace {
const char *const kCompNames[kNumComps] = {
    "compute", "data", "lock", "barrier", "diff", "ckpt", "protocol",
};
} // namespace

const char *
compName(Comp c)
{
    return kCompNames[static_cast<unsigned>(c)];
}

SimTime
TimeBreakdown::total() const
{
    SimTime t = 0;
    for (const auto &b : buckets)
        t += b[0] + b[1];
    return t;
}

SimTime
TimeBreakdown::get(Comp c) const
{
    const auto &b = buckets[static_cast<unsigned>(c)];
    return b[0] + b[1];
}

SimTime
TimeBreakdown::get(Comp c, bool in_barrier) const
{
    return buckets[static_cast<unsigned>(c)][in_barrier ? 1 : 0];
}

TimeBreakdown::FourComp
TimeBreakdown::fourComp() const
{
    FourComp v{};
    v.compute = get(Comp::Compute);
    v.data = get(Comp::DataWait);
    // Release-path overheads (diffs, checkpoints, protocol work) show up
    // in the lock bar when incurred at a lock release and in the barrier
    // bar when incurred during a barrier, matching the paper's format.
    v.lock = get(Comp::LockWait) + get(Comp::Diff, false) +
             get(Comp::Ckpt, false) + get(Comp::Protocol, false);
    v.barrier = get(Comp::BarrierWait) + get(Comp::Diff, true) +
                get(Comp::Ckpt, true) + get(Comp::Protocol, true);
    return v;
}

TimeBreakdown::SixComp
TimeBreakdown::sixComp() const
{
    SixComp v{};
    v.compute = get(Comp::Compute);
    v.data = get(Comp::DataWait);
    v.sync = get(Comp::LockWait) + get(Comp::BarrierWait);
    v.diffs = get(Comp::Diff);
    v.protocol = get(Comp::Protocol);
    v.ckpt = get(Comp::Ckpt);
    return v;
}

TimeBreakdown &
TimeBreakdown::operator+=(const TimeBreakdown &other)
{
    for (unsigned c = 0; c < kNumComps; ++c) {
        buckets[c][0] += other.buckets[c][0];
        buckets[c][1] += other.buckets[c][1];
    }
    return *this;
}

void
TimeBreakdown::clear()
{
    for (auto &b : buckets)
        b = {0, 0};
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (!count_)
        return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_));
    if (rank < 1)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            std::uint64_t hi = i == 0 ? 1 : (std::uint64_t{1} << i);
            return hi < max_ ? hi : max_;
        }
    }
    return max_;
}

Histogram &
Histogram::operator+=(const Histogram &other)
{
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_) {
        if (!count_ || other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return *this;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    os << "n=" << count_;
    if (count_) {
        os << " mean=" << static_cast<std::uint64_t>(mean())
           << " min=" << min_ << " max=" << max_
           << " p50=" << percentile(50) << " p99=" << percentile(99);
    }
    return os.str();
}

Counters &
Counters::operator+=(const Counters &other)
{
    pageFaults += other.pageFaults;
    remotePageFetches += other.remotePageFetches;
    localPageFetches += other.localPageFetches;
    twinsCreated += other.twinsCreated;
    pagesDiffed += other.pagesDiffed;
    homePagesDiffed += other.homePagesDiffed;
    diffBytesSent += other.diffBytesSent;
    diffMsgsSent += other.diffMsgsSent;
    lockAcquires += other.lockAcquires;
    lockRemoteAcquires += other.lockRemoteAcquires;
    lockPollRounds += other.lockPollRounds;
    barriers += other.barriers;
    releases += other.releases;
    intervalsCommitted += other.intervalsCommitted;
    checkpointsTaken += other.checkpointsTaken;
    checkpointBytes += other.checkpointBytes;
    invalidations += other.invalidations;
    messagesSent += other.messagesSent;
    bytesSent += other.bytesSent;
    postQueueStalls += other.postQueueStalls;
    heartbeatsSent += other.heartbeatsSent;
    failuresDetected += other.failuresDetected;
    recoveries += other.recoveries;
    recoveryRestarts += other.recoveryRestarts;
    pagesReReplicated += other.pagesReReplicated;
    pagesRolledForward += other.pagesRolledForward;
    pagesRolledBack += other.pagesRolledBack;
    threadsRestored += other.threadsRestored;
    locksCleaned += other.locksCleaned;
    reReplicationBytes += other.reReplicationBytes;
    homeMigrations += other.homeMigrations;
    migratedBytes += other.migratedBytes;
    misHomedDiffBytes += other.misHomedDiffBytes;
    migrationsRolledBack += other.migrationsRolledBack;
    fetchForwards += other.fetchForwards;
    propPhases += other.propPhases;
    propDestBatches += other.propDestBatches;
    propPagesPacked += other.propPagesPacked;
    propRunsMerged += other.propRunsMerged;
    propPagesMerged += other.propPagesMerged;
    phase1WallNs += other.phase1WallNs;
    phase2WallNs += other.phase2WallNs;
    retransmits += other.retransmits;
    retransmittedBytes += other.retransmittedBytes;
    dupDrops += other.dupDrops;
    staleEpochRejected += other.staleEpochRejected;
    fencedDrops += other.fencedDrops;
    acksSent += other.acksSent;
    acksPiggybacked += other.acksPiggybacked;
    heartbeatsMissed += other.heartbeatsMissed;
    falseSuspicionsFenced += other.falseSuspicionsFenced;
    netDropsInjected += other.netDropsInjected;
    netDupsInjected += other.netDupsInjected;
    netReordersInjected += other.netReordersInjected;
    netDelaysInjected += other.netDelaysInjected;
    joins += other.joins;
    rejoins += other.rejoins;
    joinsRolledBack += other.joinsRolledBack;
    bulkTransferBytes += other.bulkTransferBytes;
    pagesReGrown += other.pagesReGrown;
    joinsRejected += other.joinsRejected;
    joinsQueued += other.joinsQueued;
    channelsReclaimed += other.channelsReclaimed;
    reclaimedTxEntries += other.reclaimedTxEntries;
    persistRecordsAppended += other.persistRecordsAppended;
    persistRecordsDurable += other.persistRecordsDurable;
    persistBytesAppended += other.persistBytesAppended;
    persistBytesDurable += other.persistBytesDurable;
    persistEpochsClosed += other.persistEpochsClosed;
    persistCapturesSkipped += other.persistCapturesSkipped;
    persistRecordsDropped += other.persistRecordsDropped;
    persistPartialsDiscarded += other.persistPartialsDiscarded;
    coldRestarts += other.coldRestarts;
    coldRestartAttempts += other.coldRestartAttempts;
    batchBytesHist += other.batchBytesHist;
    batchPagesHist += other.batchPagesHist;
    phaseWallHist += other.phaseWallHist;
    recoveryStepNsHist += other.recoveryStepNsHist;
    recoveryTimeNsHist += other.recoveryTimeNsHist;
    epochMigrationsHist += other.epochMigrationsHist;
    epochMisHomedBytesHist += other.epochMisHomedBytesHist;
    reorderDepthHist += other.reorderDepthHist;
    joinTimeNsHist += other.joinTimeNsHist;
    pagesPerDegreeHist += other.pagesPerDegreeHist;
    persistDrainNsHist += other.persistDrainNsHist;
    persistRecordBytesHist += other.persistRecordBytesHist;
    return *this;
}

std::string
Counters::toString() const
{
    std::ostringstream os;
    os << "faults=" << pageFaults
       << " remoteFetch=" << remotePageFetches
       << " localFetch=" << localPageFetches
       << " twins=" << twinsCreated
       << " pagesDiffed=" << pagesDiffed
       << " homePagesDiffed=" << homePagesDiffed
       << " diffBytes=" << diffBytesSent
       << " diffMsgs=" << diffMsgsSent
       << " lockAcq=" << lockAcquires
       << " lockRemoteAcq=" << lockRemoteAcquires
       << " pollRounds=" << lockPollRounds
       << " barriers=" << barriers
       << " releases=" << releases
       << " ckpts=" << checkpointsTaken
       << " ckptBytes=" << checkpointBytes
       << " invalidations=" << invalidations
       << " msgs=" << messagesSent
       << " bytes=" << bytesSent
       << " postStalls=" << postQueueStalls
       << " heartbeats=" << heartbeatsSent
       << " failures=" << failuresDetected
       << " recoveries=" << recoveries
       << " recoveryRestarts=" << recoveryRestarts
       << " reReplicated=" << pagesReReplicated
       << " rolledFwd=" << pagesRolledForward
       << " rolledBack=" << pagesRolledBack
       << " restored=" << threadsRestored
       << " locksCleaned=" << locksCleaned
       << " reReplBytes=" << reReplicationBytes
       << " homeMigrations=" << homeMigrations
       << " migratedBytes=" << migratedBytes
       << " misHomedDiffBytes=" << misHomedDiffBytes
       << " migrationsRolledBack=" << migrationsRolledBack
       << " fetchForwards=" << fetchForwards
       << " propPhases=" << propPhases
       << " propBatches=" << propDestBatches
       << " propPagesPacked=" << propPagesPacked
       << " propRunsMerged=" << propRunsMerged
       << " propPagesMerged=" << propPagesMerged
       << " phase1WallNs=" << phase1WallNs
       << " phase2WallNs=" << phase2WallNs
       << " retransmits=" << retransmits
       << " retransmittedBytes=" << retransmittedBytes
       << " dupDrops=" << dupDrops
       << " staleEpochRejected=" << staleEpochRejected
       << " fencedDrops=" << fencedDrops
       << " acksSent=" << acksSent
       << " acksPiggybacked=" << acksPiggybacked
       << " heartbeatsMissed=" << heartbeatsMissed
       << " falseSuspicions=" << falseSuspicionsFenced
       << " netDrops=" << netDropsInjected
       << " netDups=" << netDupsInjected
       << " netReorders=" << netReordersInjected
       << " netDelays=" << netDelaysInjected
       << " joins=" << joins
       << " rejoins=" << rejoins
       << " joinsRolledBack=" << joinsRolledBack
       << " bulkTransferBytes=" << bulkTransferBytes
       << " pagesReGrown=" << pagesReGrown
       << " joinsRejected=" << joinsRejected
       << " joinsQueued=" << joinsQueued
       << " channelsReclaimed=" << channelsReclaimed
       << " reclaimedTxEntries=" << reclaimedTxEntries
       << " persistAppended=" << persistRecordsAppended
       << " persistDurable=" << persistRecordsDurable
       << " persistBytesAppended=" << persistBytesAppended
       << " persistBytesDurable=" << persistBytesDurable
       << " persistEpochs=" << persistEpochsClosed
       << " persistSkipped=" << persistCapturesSkipped
       << " persistDropped=" << persistRecordsDropped
       << " persistPartials=" << persistPartialsDiscarded
       << " coldRestarts=" << coldRestarts
       << " coldRestartAttempts=" << coldRestartAttempts
       << " batchBytes{" << batchBytesHist.toString() << "}"
       << " batchPages{" << batchPagesHist.toString() << "}"
       << " phaseWall{" << phaseWallHist.toString() << "}"
       << " recoveryStepNs{" << recoveryStepNsHist.toString() << "}"
       << " recoveryTimeNs{" << recoveryTimeNsHist.toString() << "}"
       << " epochMigrations{" << epochMigrationsHist.toString() << "}"
       << " epochMisHomedBytes{" << epochMisHomedBytesHist.toString()
       << "}"
       << " reorderDepth{" << reorderDepthHist.toString() << "}"
       << " joinTimeNs{" << joinTimeNsHist.toString() << "}"
       << " pagesPerDegree{" << pagesPerDegreeHist.toString() << "}"
       << " persistDrainNs{" << persistDrainNsHist.toString() << "}"
       << " persistRecordBytes{" << persistRecordBytesHist.toString()
       << "}";
    return os.str();
}

} // namespace rsvm

#include "mem/diff.hh"

#include <cstring>

#include "base/panic.hh"

namespace rsvm {

std::uint32_t
Diff::modifiedBytes() const
{
    std::uint32_t n = 0;
    for (const auto &r : runs)
        n += static_cast<std::uint32_t>(r.bytes.size());
    return n;
}

std::uint32_t
Diff::wireBytes() const
{
    // 8 bytes of (offset, length) header per run plus a 16-byte diff
    // header (page id, origin, interval, run count).
    return modifiedBytes() +
           static_cast<std::uint32_t>(runs.size()) * 8 + 16;
}

namespace diff {

Diff
compute(PageId page, NodeId origin, IntervalNum interval,
        std::span<const std::byte> current,
        std::span<const std::byte> twin)
{
    rsvm_assert(current.size() == twin.size());
    rsvm_assert(current.size() % kWord == 0);

    Diff d;
    d.page = page;
    d.origin = origin;
    d.interval = interval;

    const std::size_t words = current.size() / kWord;
    std::size_t w = 0;
    while (w < words) {
        if (std::memcmp(current.data() + w * kWord,
                        twin.data() + w * kWord, kWord) == 0) {
            ++w;
            continue;
        }
        std::size_t start = w;
        while (w < words &&
               std::memcmp(current.data() + w * kWord,
                           twin.data() + w * kWord, kWord) != 0) {
            ++w;
        }
        DiffRun run;
        run.offset = static_cast<std::uint32_t>(start * kWord);
        run.bytes.assign(current.begin() + start * kWord,
                         current.begin() + w * kWord);
        d.runs.push_back(std::move(run));
    }
    return d;
}

void
apply(const Diff &d, std::byte *target, std::size_t page_size)
{
    for (const auto &r : d.runs) {
        rsvm_assert(r.offset + r.bytes.size() <= page_size);
        std::memcpy(target + r.offset, r.bytes.data(), r.bytes.size());
    }
}

} // namespace diff
} // namespace rsvm

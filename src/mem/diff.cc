#include "mem/diff.hh"

#include <cstring>

#include "base/panic.hh"

namespace rsvm {

std::uint32_t
Diff::modifiedBytes() const
{
    std::uint32_t n = 0;
    for (const auto &r : runs)
        n += static_cast<std::uint32_t>(r.bytes.size());
    return n;
}

std::uint32_t
Diff::wireBytes() const
{
    // 8 bytes of (offset, length) header per run plus a 16-byte diff
    // header (page id, origin, interval, run count).
    return modifiedBytes() +
           static_cast<std::uint32_t>(runs.size()) * 8 + 16;
}

namespace diff {

Diff
compute(PageId page, NodeId origin, IntervalNum interval,
        std::span<const std::byte> current,
        std::span<const std::byte> twin)
{
    rsvm_assert(current.size() == twin.size());
    rsvm_assert(current.size() % kWord == 0);

    Diff d;
    d.page = page;
    d.origin = origin;
    d.interval = interval;

    const std::size_t words = current.size() / kWord;
    std::size_t w = 0;
    while (w < words) {
        if (std::memcmp(current.data() + w * kWord,
                        twin.data() + w * kWord, kWord) == 0) {
            ++w;
            continue;
        }
        std::size_t start = w;
        while (w < words &&
               std::memcmp(current.data() + w * kWord,
                           twin.data() + w * kWord, kWord) != 0) {
            ++w;
        }
        DiffRun run;
        run.offset = static_cast<std::uint32_t>(start * kWord);
        run.bytes.assign(current.begin() + start * kWord,
                         current.begin() + w * kWord);
        d.runs.push_back(std::move(run));
    }
    return d;
}

void
apply(const Diff &d, std::byte *target, std::size_t page_size)
{
    for (const auto &r : d.runs) {
        rsvm_assert(r.offset + r.bytes.size() <= page_size);
        std::memcpy(target + r.offset, r.bytes.data(), r.bytes.size());
    }
}

CoalesceStats
coalesceRuns(Diff &d)
{
    CoalesceStats cs;
    if (d.runs.size() <= 1)
        return cs;

    // Fast path: already sorted, disjoint and non-adjacent.
    bool clean = true;
    for (std::size_t i = 1; i < d.runs.size(); ++i) {
        if (d.runs[i].offset <= d.runs[i - 1].offset +
                                    d.runs[i - 1].bytes.size()) {
            clean = false;
            break;
        }
    }
    if (clean)
        return cs;

    // Overlay the runs, in order, onto a scratch extent covering them
    // all; later runs overwrite earlier ones, matching apply().
    std::uint32_t lo = ~0u, hi = 0;
    for (const DiffRun &r : d.runs) {
        lo = std::min(lo, r.offset);
        hi = std::max(hi, r.offset +
                              static_cast<std::uint32_t>(r.bytes.size()));
    }
    std::vector<std::byte> data(hi - lo);
    std::vector<bool> mod(hi - lo, false);
    for (const DiffRun &r : d.runs) {
        std::memcpy(data.data() + (r.offset - lo), r.bytes.data(),
                    r.bytes.size());
        for (std::size_t i = 0; i < r.bytes.size(); ++i)
            mod[r.offset - lo + i] = true;
        cs.bytesRebuilt += r.bytes.size();
    }

    std::size_t before = d.runs.size();
    d.runs.clear();
    std::size_t i = 0, n = mod.size();
    while (i < n) {
        if (!mod[i]) {
            ++i;
            continue;
        }
        std::size_t start = i;
        while (i < n && mod[i])
            ++i;
        DiffRun run;
        run.offset = lo + static_cast<std::uint32_t>(start);
        run.bytes.assign(data.begin() + start, data.begin() + i);
        d.runs.push_back(std::move(run));
    }
    cs.runsMerged += before - d.runs.size();
    return cs;
}

CoalesceStats
coalesce(std::vector<Diff> &diffs)
{
    CoalesceStats cs;
    std::vector<Diff> out;
    out.reserve(diffs.size());
    for (Diff &d : diffs) {
        Diff *prior = nullptr;
        for (Diff &o : out) {
            if (o.page == d.page && o.origin == d.origin &&
                o.interval == d.interval) {
                prior = &o;
                break;
            }
        }
        if (prior) {
            for (DiffRun &r : d.runs)
                prior->runs.push_back(std::move(r));
            cs.pagesMerged++;
        } else {
            out.push_back(std::move(d));
        }
    }
    diffs.swap(out);
    for (Diff &d : diffs)
        cs += coalesceRuns(d);
    return cs;
}

std::vector<std::vector<Diff>>
pack(std::vector<Diff> diffs, std::uint32_t max_bytes)
{
    std::vector<std::vector<Diff>> chunks;
    std::uint32_t used = 0;
    for (Diff &d : diffs) {
        std::uint32_t w = d.wireBytes();
        if (chunks.empty() || (used + w > max_bytes &&
                               !chunks.back().empty())) {
            chunks.emplace_back();
            used = 0;
        }
        used += w;
        chunks.back().push_back(std::move(d));
    }
    return chunks;
}

} // namespace diff
} // namespace rsvm

/**
 * @file
 * Per-logical-node software page table.
 *
 * The real system uses the OS virtual-memory protection hardware
 * (invalid / read-only / read-write mappings, twins created on write
 * faults). We reproduce the same states in software; the runtime's
 * shared-access API consults the table on every access and raises the
 * corresponding protocol fault.
 */

#ifndef RSVM_MEM_PAGETABLE_HH
#define RSVM_MEM_PAGETABLE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"

namespace rsvm {

/** Access state of a shared page at one node. */
enum class PageState : std::uint8_t {
    /** No valid local copy; any access faults. */
    Invalid,
    /** Valid for reading; a write faults (twin creation). */
    ReadOnly,
    /** Valid for reading and writing (twin exists, page is dirty). */
    ReadWrite,
};

/** One node's view of one shared page. */
struct PageEntry
{
    PageState state = PageState::Invalid;
    /** Working copy; allocated on first use. */
    std::unique_ptr<std::byte[]> data;
    /** Twin (pre-first-write copy); present while dirty. */
    std::unique_ptr<std::byte[]> twin;
    /**
     * Page lock (§4.2, extended protocol): set while the page belongs
     * to an interval whose release is still propagating; faults and
     * new writes on the page stall until cleared.
     */
    bool locked = false;
    /**
     * Migration lock (svm/homing): set while the page's homes are
     * being handed off. Same stall semantics as `locked`, but owned by
     * the homing manager so a release's unlockPages and a handoff's
     * unlock event can never clear each other's lock.
     */
    bool migLocked = false;
    /** Page is recorded in the current interval's update list. */
    bool inUpdateList = false;
    /**
     * Required version: for each origin node, the highest interval of
     * that origin for which a write notice naming this page has been
     * seen. A fetched copy must include all such updates.
     */
    std::vector<IntervalNum> reqVer;
};

/** Software page table for one logical node. */
class PageTable
{
  public:
    PageTable(const Config &config, std::uint32_t num_nodes);

    /** Look up, creating an Invalid entry on first touch. */
    PageEntry &entry(PageId page);

    /** Look up without creating; nullptr if never touched. */
    PageEntry *find(PageId page);
    const PageEntry *find(PageId page) const;

    /** Allocate (or reuse) the working-copy buffer of @p e. */
    std::byte *ensureData(PageEntry &e);

    /** Create the twin from the current working copy. */
    void makeTwin(PageEntry &e);

    /** Drop the twin (after diffs were computed and propagated). */
    void dropTwin(PageEntry &e);

    /**
     * Forget every page (node re-hosted after a failure: its memory
     * content is lost; required versions are rebuilt by recovery).
     */
    void reset();

    /** Number of touched pages. */
    std::size_t size() const { return entries.size(); }

    std::uint32_t pageSize() const { return pageBytes; }

    /** Iteration over touched pages. */
    auto begin() { return entries.begin(); }
    auto end() { return entries.end(); }
    auto begin() const { return entries.begin(); }
    auto end() const { return entries.end(); }

  private:
    std::uint32_t pageBytes;
    std::uint32_t nodes;
    std::unordered_map<PageId, PageEntry> entries;
};

} // namespace rsvm

#endif // RSVM_MEM_PAGETABLE_HH

/**
 * @file
 * The global shared address space: allocation and home assignment.
 *
 * Every shared page has a *primary* home; under the fault-tolerant
 * protocol it additionally has k-1 *secondary* homes (§4.2), where k
 * is the page's replication degree. The default degree comes from
 * Config::replicationDegree (the paper's scheme is k=2: one committed
 * copy plus one tentative copy); applications may override it per
 * region — k=3 for hot/critical data survives simultaneous double
 * failures, k=1 marks scratch data that may die with its home. The
 * initial secondaries follow the primary in node order. Applications
 * set primary homes explicitly (the paper assigns homes "in a way
 * that maximizes parallelism"); pages without explicit assignment
 * default to a round-robin distribution.
 *
 * After a failure, the recovery manager rewrites homes so every
 * replica of a page stays on a distinct *physical* node. When too few
 * distinct hosts survive, the home set shrinks below the target
 * degree (the *effective* degree); a later node join re-grows it.
 */

#ifndef RSVM_MEM_ADDRSPACE_HH
#define RSVM_MEM_ADDRSPACE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"

namespace rsvm {

/** Shared address space metadata (one per cluster). */
class AddressSpace
{
  public:
    AddressSpace(const Config &config, std::uint32_t num_nodes);

    // ---- Geometry --------------------------------------------------------
    std::uint32_t pageSize() const { return pageBytes; }
    PageId numPages() const { return pages; }
    PageId pageOf(Addr a) const
    { return static_cast<PageId>(a / pageBytes); }
    std::uint32_t pageOffset(Addr a) const
    { return static_cast<std::uint32_t>(a % pageBytes); }
    Addr pageBase(PageId p) const
    { return static_cast<Addr>(p) * pageBytes; }

    // ---- Allocation --------------------------------------------------------
    /** Bump-allocate @p bytes with @p align alignment. */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);
    /** Bump-allocate starting at a fresh page boundary. */
    Addr allocPageAligned(std::uint64_t bytes);
    /** Bytes allocated so far. */
    std::uint64_t used() const { return bumpPtr; }

    // ---- Home assignment ------------------------------------------------
    void setPrimaryHome(PageId page, NodeId home);
    /** Assign every page overlapping [addr, addr+len) to @p home. */
    void setPrimaryHomeRange(Addr addr, std::uint64_t len, NodeId home);
    NodeId primaryHome(PageId page) const;
    /**
     * First secondary home. Only meaningful while the page's effective
     * degree is >= 2 (legacy two-replica callers; fan-out paths use
     * secondaryHomes).
     */
    NodeId secondaryHome(PageId page) const;

    /** All current secondary homes of @p page (empty at degree 1). */
    std::vector<NodeId> secondaryHomes(PageId page) const;
    /** Append @p page's secondary homes to @p out (no clear). */
    void secondaryHomesInto(PageId page, std::vector<NodeId> &out) const;
    /** Primary followed by every secondary. */
    std::vector<NodeId> homeSet(PageId page) const;
    /** Is @p node a (primary or secondary) home of @p page? */
    bool isHome(PageId page, NodeId node) const;

    // ---- Replication degree ----------------------------------------------
    /** Target replication degree of @p page. */
    std::uint32_t replicationDegree(PageId page) const;
    /** Current home-set size (may lag the target after failures). */
    std::uint32_t effectiveDegree(PageId page) const;
    /**
     * Set the target degree of one page (clamped to [1, numNodes]).
     * Intended for application setup: the home set is re-sized
     * immediately assuming all nodes are placeable. At runtime,
     * degree growth flows through recovery/join so replica data is
     * installed alongside the directory change.
     */
    void setReplicationDegree(PageId page, std::uint32_t k);
    /** Degree override for every page overlapping [addr, addr+len). */
    void setReplicationDegreeRange(Addr addr, std::uint64_t len,
                                   std::uint32_t k);
    /**
     * Append @p extra as a tail secondary of an under-replicated page
     * (the join path's re-grow). Returns false if the page is already
     * at its target degree or @p extra is already a home.
     */
    bool growHomeSet(PageId page, NodeId extra);

    /**
     * Atomically commit a migrated page's new home pair (the homing
     * subsystem's directory flip). Only valid for degree-2 pages;
     * the caller chooses both homes; they must be distinct on
     * multi-node spaces.
     */
    void setHomes(PageId page, NodeId prim, NodeId sec);

    /**
     * Generation counter of the home directory: bumped on every
     * placement change (explicit assignment, migration commit,
     * recovery remap, join re-grow). Cached home lookups are only
     * valid while the generation they were taken under is current.
     */
    std::uint64_t placementVersion() const { return placementGen; }

    /**
     * An eligibility predicate for home placement: may @p candidate
     * join a home set already containing @p chosen? (Its physical
     * host must be alive and distinct from every chosen member's.)
     */
    using Eligible =
        std::function<bool(NodeId candidate,
                           const std::vector<NodeId> &chosen)>;

    /**
     * Recompute the home set of every page after logical node
     * @p failed lost its memory. Surviving members keep their order
     * (the first survivor holds the valid data and becomes the
     * primary); vacated slots are refilled round-robin with eligible
     * nodes, shrinking the effective degree when none remain. Calls
     * @p moved for every page whose home set changed, with the
     * surviving source home.
     */
    void remapHomes(
        NodeId failed, const Eligible &eligible,
        const std::function<void(PageId page, NodeId survivor)> &moved);

    /**
     * Install a persisted home set verbatim (cold restart). Bypasses
     * eligibility checks: the persistence tier recorded a set that was
     * valid at the watermark cut, and every node is being revived.
     */
    void
    restoreHomeSet(PageId page, const std::vector<NodeId> &homes)
    {
        rebuildHomeSet(page, homes);
    }

  private:
    void rebuildHomeSet(PageId page, const std::vector<NodeId> &homes);
    NodeId nextEligible(NodeId after, const std::vector<NodeId> &chosen,
                        const Eligible &eligible) const;

    std::uint32_t pageBytes;
    PageId pages;
    std::uint32_t nodes;
    std::uint64_t bumpPtr = 0;
    std::uint64_t capacity;
    std::vector<NodeId> primary;
    std::vector<NodeId> secondary;
    /** Target replication degree per page. */
    std::vector<std::uint8_t> degree_;
    /** Current home-set size per page (1..degree_). */
    std::vector<std::uint8_t> eff_;
    /** Tail secondaries (beyond the first) of degree>2 pages. */
    std::unordered_map<PageId, std::vector<NodeId>> extra_;
    std::uint64_t placementGen = 0;
};

} // namespace rsvm

#endif // RSVM_MEM_ADDRSPACE_HH

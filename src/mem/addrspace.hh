/**
 * @file
 * The global shared address space: allocation and home assignment.
 *
 * Every shared page has a *primary* home; under the fault-tolerant
 * protocol it additionally has a *secondary* home (§4.2). The initial
 * secondary is the node immediately following the primary in node
 * order. Applications set primary homes explicitly (the paper assigns
 * homes "in a way that maximizes parallelism"); pages without explicit
 * assignment default to a round-robin distribution.
 *
 * After a failure, the recovery manager rewrites homes so both
 * replicas of every page stay on distinct *physical* nodes.
 */

#ifndef RSVM_MEM_ADDRSPACE_HH
#define RSVM_MEM_ADDRSPACE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"

namespace rsvm {

/** Shared address space metadata (one per cluster). */
class AddressSpace
{
  public:
    AddressSpace(const Config &config, std::uint32_t num_nodes);

    // ---- Geometry --------------------------------------------------------
    std::uint32_t pageSize() const { return pageBytes; }
    PageId numPages() const { return pages; }
    PageId pageOf(Addr a) const
    { return static_cast<PageId>(a / pageBytes); }
    std::uint32_t pageOffset(Addr a) const
    { return static_cast<std::uint32_t>(a % pageBytes); }
    Addr pageBase(PageId p) const
    { return static_cast<Addr>(p) * pageBytes; }

    // ---- Allocation --------------------------------------------------------
    /** Bump-allocate @p bytes with @p align alignment. */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);
    /** Bump-allocate starting at a fresh page boundary. */
    Addr allocPageAligned(std::uint64_t bytes);
    /** Bytes allocated so far. */
    std::uint64_t used() const { return bumpPtr; }

    // ---- Home assignment ------------------------------------------------
    void setPrimaryHome(PageId page, NodeId home);
    /** Assign every page overlapping [addr, addr+len) to @p home. */
    void setPrimaryHomeRange(Addr addr, std::uint64_t len, NodeId home);
    NodeId primaryHome(PageId page) const;
    NodeId secondaryHome(PageId page) const;

    /**
     * Atomically commit a migrated page's new home pair (the homing
     * subsystem's directory flip). Unlike setPrimaryHome, the caller
     * chooses both homes; they must be distinct on multi-node spaces.
     */
    void setHomes(PageId page, NodeId prim, NodeId sec);

    /**
     * Generation counter of the home directory: bumped on every
     * placement change (explicit assignment, migration commit,
     * recovery remap). Cached home lookups are only valid while the
     * generation they were taken under is current.
     */
    std::uint64_t placementVersion() const { return placementGen; }

    /**
     * Recompute both homes for every page after logical node
     * @p failed lost its memory. @p eligible says whether a logical
     * node may serve as a home (its physical host is alive and it is
     * not co-hosted with the other replica). Calls @p moved for every
     * page whose home set changed, with the surviving source home.
     */
    void remapHomes(
        NodeId failed,
        const std::function<bool(NodeId candidate, NodeId other)> &eligible,
        const std::function<void(PageId page, NodeId survivor)> &moved);

  private:
    NodeId nextEligible(NodeId after, NodeId other,
                        const std::function<bool(NodeId, NodeId)> &
                            eligible) const;

    std::uint32_t pageBytes;
    PageId pages;
    std::uint32_t nodes;
    std::uint64_t bumpPtr = 0;
    std::uint64_t capacity;
    std::vector<NodeId> primary;
    std::vector<NodeId> secondary;
    std::uint64_t placementGen = 0;
};

} // namespace rsvm

#endif // RSVM_MEM_ADDRSPACE_HH

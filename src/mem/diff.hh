/**
 * @file
 * Page diffs: the unit of update propagation in HLRC (§3.2).
 *
 * A diff is computed by comparing a page's working copy against its
 * twin (the copy made on the first write of an interval) at word
 * granularity, coalescing adjacent modified words into runs. Diffs are
 * what make the protocol multi-writer: two nodes can modify disjoint
 * parts of the same page (false sharing) and their diffs merge at the
 * home without interfering.
 */

#ifndef RSVM_MEM_DIFF_HH
#define RSVM_MEM_DIFF_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hh"

namespace rsvm {

/** One contiguous modified byte range within a page. */
struct DiffRun
{
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;
};

/** All modifications one node made to one page during one interval. */
struct Diff
{
    PageId page = kInvalidPage;
    NodeId origin = kInvalidNode;
    IntervalNum interval = 0;
    /**
     * The origin's previous interval that diffed this page (0 if
     * none): homes apply a page's per-origin diffs as a chain in this
     * order, because parallel releases on an SMP node can legitimately
     * emit them out of order and a later interval's diff does NOT
     * subsume an earlier one's words.
     */
    IntervalNum prevInterval = 0;
    std::vector<DiffRun> runs;

    bool empty() const { return runs.empty(); }
    /** Total modified payload bytes. */
    std::uint32_t modifiedBytes() const;
    /** Bytes this diff occupies on the wire (payload + run headers). */
    std::uint32_t wireBytes() const;
};

/** Diff computation and application. */
namespace diff {

/**
 * Word size used for comparison: 32 bits, matching the paper's x86
 * testbed. Anything finer-grained than this that two nodes write
 * concurrently is a data race (a neighbor's stale bytes within the
 * same word would clobber the other writer's value at the home).
 */
constexpr std::size_t kWord = sizeof(std::uint32_t);

/**
 * Compare @p current against @p twin (same size, word multiple) and
 * return the coalesced modified runs.
 */
Diff compute(PageId page, NodeId origin, IntervalNum interval,
             std::span<const std::byte> current,
             std::span<const std::byte> twin);

/** Apply @p d onto @p target (a full page buffer). */
void apply(const Diff &d, std::byte *target, std::size_t page_size);

/** What a coalescing pass merged away. */
struct CoalesceStats
{
    /** Whole-page diffs folded into an earlier diff of the same page. */
    std::size_t pagesMerged = 0;
    /** Runs eliminated by merging adjacent/overlapping ranges. */
    std::size_t runsMerged = 0;
    /** Payload bytes touched while rebuilding run lists. */
    std::size_t bytesRebuilt = 0;

    CoalesceStats &
    operator+=(const CoalesceStats &o)
    {
        pagesMerged += o.pagesMerged;
        runsMerged += o.runsMerged;
        bytesRebuilt += o.bytesRebuilt;
        return *this;
    }
};

/**
 * Normalize @p d's run list in place: merge adjacent and overlapping
 * runs into the minimal sorted, disjoint set. Runs are overlaid in
 * list order, so on overlap the later run's bytes win — exactly the
 * semantics of apply(), which makes the rewrite behavior-preserving.
 * (Unordered run lists arise when an early-flushed diff and the
 * commit-time diff of the same page merge at a release.)
 */
CoalesceStats coalesceRuns(Diff &d);

/**
 * Coalesce a batch of diffs in place: diffs with identical (page,
 * origin, interval) merge into the first occurrence (later runs win),
 * then every surviving diff's runs are normalized via coalesceRuns().
 * Relative order of surviving diffs is preserved.
 */
CoalesceStats coalesce(std::vector<Diff> &diffs);

/**
 * Split @p diffs into wire chunks whose cumulative wireBytes() stay
 * within @p max_bytes, preserving order (greedy first-fit). A single
 * diff larger than the budget gets a chunk of its own.
 */
std::vector<std::vector<Diff>> pack(std::vector<Diff> diffs,
                                    std::uint32_t max_bytes);

} // namespace diff

} // namespace rsvm

#endif // RSVM_MEM_DIFF_HH

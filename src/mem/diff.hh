/**
 * @file
 * Page diffs: the unit of update propagation in HLRC (§3.2).
 *
 * A diff is computed by comparing a page's working copy against its
 * twin (the copy made on the first write of an interval) at word
 * granularity, coalescing adjacent modified words into runs. Diffs are
 * what make the protocol multi-writer: two nodes can modify disjoint
 * parts of the same page (false sharing) and their diffs merge at the
 * home without interfering.
 */

#ifndef RSVM_MEM_DIFF_HH
#define RSVM_MEM_DIFF_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "base/types.hh"

namespace rsvm {

/** One contiguous modified byte range within a page. */
struct DiffRun
{
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;
};

/** All modifications one node made to one page during one interval. */
struct Diff
{
    PageId page = kInvalidPage;
    NodeId origin = kInvalidNode;
    IntervalNum interval = 0;
    /**
     * The origin's previous interval that diffed this page (0 if
     * none): homes apply a page's per-origin diffs as a chain in this
     * order, because parallel releases on an SMP node can legitimately
     * emit them out of order and a later interval's diff does NOT
     * subsume an earlier one's words.
     */
    IntervalNum prevInterval = 0;
    std::vector<DiffRun> runs;

    bool empty() const { return runs.empty(); }
    /** Total modified payload bytes. */
    std::uint32_t modifiedBytes() const;
    /** Bytes this diff occupies on the wire (payload + run headers). */
    std::uint32_t wireBytes() const;
};

/** Diff computation and application. */
namespace diff {

/**
 * Word size used for comparison: 32 bits, matching the paper's x86
 * testbed. Anything finer-grained than this that two nodes write
 * concurrently is a data race (a neighbor's stale bytes within the
 * same word would clobber the other writer's value at the home).
 */
constexpr std::size_t kWord = sizeof(std::uint32_t);

/**
 * Compare @p current against @p twin (same size, word multiple) and
 * return the coalesced modified runs.
 */
Diff compute(PageId page, NodeId origin, IntervalNum interval,
             std::span<const std::byte> current,
             std::span<const std::byte> twin);

/** Apply @p d onto @p target (a full page buffer). */
void apply(const Diff &d, std::byte *target, std::size_t page_size);

} // namespace diff

} // namespace rsvm

#endif // RSVM_MEM_DIFF_HH

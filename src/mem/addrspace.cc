#include "mem/addrspace.hh"

#include <algorithm>

#include "base/panic.hh"

namespace rsvm {

AddressSpace::AddressSpace(const Config &config, std::uint32_t num_nodes)
    : pageBytes(config.pageSize), pages(config.numPages()),
      nodes(num_nodes), capacity(config.sharedBytes)
{
    rsvm_assert(nodes >= 1);
    std::uint32_t k = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(config.replicationDegree, nodes));
    primary.resize(pages);
    secondary.resize(pages);
    degree_.assign(pages, static_cast<std::uint8_t>(k));
    eff_.assign(pages, static_cast<std::uint8_t>(k));
    for (PageId p = 0; p < pages; ++p) {
        primary[p] = p % nodes;
        secondary[p] = (primary[p] + 1) % nodes;
        if (k > 2) {
            auto &tail = extra_[p];
            for (std::uint32_t i = 2; i < k; ++i)
                tail.push_back((primary[p] + i) % nodes);
        }
    }
}

Addr
AddressSpace::alloc(std::uint64_t bytes, std::uint64_t align)
{
    rsvm_assert(align > 0 && (align & (align - 1)) == 0);
    bumpPtr = (bumpPtr + align - 1) & ~(align - 1);
    Addr a = bumpPtr;
    bumpPtr += bytes;
    rsvm_assert_msg(bumpPtr <= capacity,
                    "shared address space exhausted");
    return a;
}

Addr
AddressSpace::allocPageAligned(std::uint64_t bytes)
{
    return alloc(bytes, pageBytes);
}

void
AddressSpace::rebuildHomeSet(PageId page,
                             const std::vector<NodeId> &homes)
{
    rsvm_assert(!homes.empty());
    primary[page] = homes[0];
    secondary[page] = homes.size() >= 2 ? homes[1]
                                        : (homes[0] + 1) % nodes;
    if (homes.size() > 2)
        extra_[page] = std::vector<NodeId>(homes.begin() + 2,
                                           homes.end());
    else
        extra_.erase(page);
    eff_[page] = static_cast<std::uint8_t>(homes.size());
    placementGen++;
}

void
AddressSpace::setPrimaryHome(PageId page, NodeId home)
{
    rsvm_assert(page < pages && home < nodes);
    std::vector<NodeId> homes = homeSet(page);
    homes[0] = home;
    // Repair collisions: replace any secondary now equal to the new
    // primary (or to an earlier member) with the next free node.
    for (std::size_t i = 1; i < homes.size(); ++i) {
        bool dup =
            std::find(homes.begin(), homes.begin() + i, homes[i]) !=
            homes.begin() + i;
        if (!dup)
            continue;
        for (std::uint32_t step = 1; step <= nodes; ++step) {
            NodeId cand = (homes[i] + step) % nodes;
            if (std::find(homes.begin(), homes.end(), cand) ==
                homes.end()) {
                homes[i] = cand;
                break;
            }
        }
    }
    rebuildHomeSet(page, homes);
}

void
AddressSpace::setHomes(PageId page, NodeId prim, NodeId sec)
{
    rsvm_assert(page < pages && prim < nodes && sec < nodes);
    rsvm_assert_msg(nodes == 1 || prim != sec,
                    "replica homes must be distinct logical nodes");
    rsvm_assert_msg(effectiveDegree(page) <= 2,
                    "setHomes is a two-replica flip; degree>2 pages "
                    "are placed by recovery/join");
    rebuildHomeSet(page, {prim, sec});
}

void
AddressSpace::setPrimaryHomeRange(Addr addr, std::uint64_t len,
                                  NodeId home)
{
    if (len == 0)
        return;
    PageId first = pageOf(addr);
    PageId last = pageOf(addr + len - 1);
    for (PageId p = first; p <= last; ++p)
        setPrimaryHome(p, home);
}

NodeId
AddressSpace::primaryHome(PageId page) const
{
    rsvm_assert(page < pages);
    return primary[page];
}

NodeId
AddressSpace::secondaryHome(PageId page) const
{
    rsvm_assert(page < pages);
    return secondary[page];
}

std::vector<NodeId>
AddressSpace::secondaryHomes(PageId page) const
{
    std::vector<NodeId> out;
    secondaryHomesInto(page, out);
    return out;
}

void
AddressSpace::secondaryHomesInto(PageId page,
                                 std::vector<NodeId> &out) const
{
    rsvm_assert(page < pages);
    if (eff_[page] < 2)
        return;
    out.push_back(secondary[page]);
    if (eff_[page] > 2) {
        auto it = extra_.find(page);
        rsvm_assert(it != extra_.end());
        out.insert(out.end(), it->second.begin(), it->second.end());
    }
}

std::vector<NodeId>
AddressSpace::homeSet(PageId page) const
{
    std::vector<NodeId> out;
    out.push_back(primary[page]);
    secondaryHomesInto(page, out);
    return out;
}

bool
AddressSpace::isHome(PageId page, NodeId node) const
{
    rsvm_assert(page < pages);
    if (primary[page] == node)
        return true;
    if (eff_[page] < 2)
        return false;
    if (secondary[page] == node)
        return true;
    if (eff_[page] > 2) {
        auto it = extra_.find(page);
        return it != extra_.end() &&
               std::find(it->second.begin(), it->second.end(), node) !=
                   it->second.end();
    }
    return false;
}

std::uint32_t
AddressSpace::replicationDegree(PageId page) const
{
    rsvm_assert(page < pages);
    return degree_[page];
}

std::uint32_t
AddressSpace::effectiveDegree(PageId page) const
{
    rsvm_assert(page < pages);
    return eff_[page];
}

void
AddressSpace::setReplicationDegree(PageId page, std::uint32_t k)
{
    rsvm_assert(page < pages);
    k = std::max<std::uint32_t>(1, std::min<std::uint32_t>(k, nodes));
    degree_[page] = static_cast<std::uint8_t>(k);
    std::vector<NodeId> homes = homeSet(page);
    if (homes.size() > k)
        homes.resize(k);
    // Setup-time growth assumes every node placeable (distinct
    // logical nodes; the physical-distinctness invariant holds while
    // logical node n is hosted on phys n).
    for (std::uint32_t step = 1;
         homes.size() < k && step <= nodes; ++step) {
        NodeId cand = (homes[0] + step) % nodes;
        if (std::find(homes.begin(), homes.end(), cand) == homes.end())
            homes.push_back(cand);
    }
    rebuildHomeSet(page, homes);
}

void
AddressSpace::setReplicationDegreeRange(Addr addr, std::uint64_t len,
                                        std::uint32_t k)
{
    if (len == 0)
        return;
    PageId first = pageOf(addr);
    PageId last = pageOf(addr + len - 1);
    for (PageId p = first; p <= last; ++p)
        setReplicationDegree(p, k);
}

bool
AddressSpace::growHomeSet(PageId page, NodeId extra)
{
    rsvm_assert(page < pages && extra < nodes);
    if (eff_[page] >= degree_[page] || isHome(page, extra))
        return false;
    std::vector<NodeId> homes = homeSet(page);
    homes.push_back(extra);
    rebuildHomeSet(page, homes);
    return true;
}

NodeId
AddressSpace::nextEligible(NodeId after,
                           const std::vector<NodeId> &chosen,
                           const Eligible &eligible) const
{
    for (std::uint32_t step = 1; step <= nodes; ++step) {
        NodeId cand = (after + step) % nodes;
        if (std::find(chosen.begin(), chosen.end(), cand) !=
            chosen.end())
            continue;
        if (eligible(cand, chosen))
            return cand;
    }
    return kInvalidNode;
}

void
AddressSpace::remapHomes(
    NodeId failed, const Eligible &eligible,
    const std::function<void(PageId, NodeId)> &moved)
{
    for (PageId p = 0; p < pages; ++p) {
        std::vector<NodeId> homes = homeSet(p);
        std::vector<NodeId> chosen;
        bool changed = false;
        for (NodeId h : homes) {
            if (h == failed || !eligible(h, chosen)) {
                changed = true;
                continue;
            }
            chosen.push_back(h);
        }
        if (!changed)
            continue;
        if (chosen.empty()) {
            // Every replica is gone (multi-failure): promote the first
            // non-failed member even though its host is dead — the
            // NEXT remapHomes call for that node repairs it, exactly
            // as the sequential two-replica scheme did. If all homes
            // were this very node, fall back to any eligible node
            // (data, if referenced, is declared lost later).
            for (NodeId h : homes) {
                if (h != failed) {
                    chosen.push_back(h);
                    break;
                }
            }
            if (chosen.empty()) {
                NodeId cand = nextEligible(failed, chosen, eligible);
                rsvm_assert_msg(cand != kInvalidNode,
                                "no eligible home candidate left "
                                "(too many failures)");
                chosen.push_back(cand);
            }
        }
        // Refill vacated slots up to the target degree; shrink when
        // no eligible candidate remains (a later join re-grows).
        while (chosen.size() < degree_[p]) {
            NodeId cand = nextEligible(chosen.back(), chosen, eligible);
            if (cand == kInvalidNode)
                break;
            chosen.push_back(cand);
        }
        NodeId survivor = chosen[0];
        rebuildHomeSet(p, chosen);
        moved(p, survivor);
    }
}

} // namespace rsvm

#include "mem/addrspace.hh"

#include "base/panic.hh"

namespace rsvm {

AddressSpace::AddressSpace(const Config &config, std::uint32_t num_nodes)
    : pageBytes(config.pageSize), pages(config.numPages()),
      nodes(num_nodes), capacity(config.sharedBytes)
{
    rsvm_assert(nodes >= 1);
    primary.resize(pages);
    secondary.resize(pages);
    for (PageId p = 0; p < pages; ++p) {
        primary[p] = p % nodes;
        secondary[p] = (primary[p] + 1) % nodes;
    }
}

Addr
AddressSpace::alloc(std::uint64_t bytes, std::uint64_t align)
{
    rsvm_assert(align > 0 && (align & (align - 1)) == 0);
    bumpPtr = (bumpPtr + align - 1) & ~(align - 1);
    Addr a = bumpPtr;
    bumpPtr += bytes;
    rsvm_assert_msg(bumpPtr <= capacity,
                    "shared address space exhausted");
    return a;
}

Addr
AddressSpace::allocPageAligned(std::uint64_t bytes)
{
    return alloc(bytes, pageBytes);
}

void
AddressSpace::setPrimaryHome(PageId page, NodeId home)
{
    rsvm_assert(page < pages && home < nodes);
    primary[page] = home;
    if (nodes > 1 && secondary[page] == home)
        secondary[page] = (home + 1) % nodes;
    placementGen++;
}

void
AddressSpace::setHomes(PageId page, NodeId prim, NodeId sec)
{
    rsvm_assert(page < pages && prim < nodes && sec < nodes);
    rsvm_assert_msg(nodes == 1 || prim != sec,
                    "replica homes must be distinct logical nodes");
    primary[page] = prim;
    secondary[page] = sec;
    placementGen++;
}

void
AddressSpace::setPrimaryHomeRange(Addr addr, std::uint64_t len,
                                  NodeId home)
{
    if (len == 0)
        return;
    PageId first = pageOf(addr);
    PageId last = pageOf(addr + len - 1);
    for (PageId p = first; p <= last; ++p)
        setPrimaryHome(p, home);
}

NodeId
AddressSpace::primaryHome(PageId page) const
{
    rsvm_assert(page < pages);
    return primary[page];
}

NodeId
AddressSpace::secondaryHome(PageId page) const
{
    rsvm_assert(page < pages);
    return secondary[page];
}

NodeId
AddressSpace::nextEligible(
    NodeId after, NodeId other,
    const std::function<bool(NodeId, NodeId)> &eligible) const
{
    for (std::uint32_t step = 1; step <= nodes; ++step) {
        NodeId cand = (after + step) % nodes;
        if (cand != other && eligible(cand, other))
            return cand;
    }
    rsvm_panic("no eligible home candidate left (too many failures)");
}

void
AddressSpace::remapHomes(
    NodeId failed,
    const std::function<bool(NodeId, NodeId)> &eligible,
    const std::function<void(PageId, NodeId)> &moved)
{
    for (PageId p = 0; p < pages; ++p) {
        bool changed = false;
        if (primary[p] == failed) {
            // The secondary holds the only surviving replica: promote
            // it (its tentative copy becomes the committed one) and
            // pick a fresh secondary.
            primary[p] = secondary[p];
            secondary[p] = nextEligible(primary[p], primary[p],
                                        eligible);
            changed = true;
        } else if (secondary[p] == failed) {
            secondary[p] = nextEligible(primary[p], primary[p],
                                        eligible);
            changed = true;
        } else if (!eligible(secondary[p], primary[p])) {
            // Replicas ended up co-hosted (e.g. one was re-hosted onto
            // the other's physical node by an earlier recovery).
            secondary[p] = nextEligible(secondary[p], primary[p],
                                        eligible);
            changed = true;
        }
        if (changed) {
            placementGen++;
            moved(p, primary[p]);
        }
    }
}

} // namespace rsvm

#include "mem/pagetable.hh"

#include <cstring>

#include "base/panic.hh"

namespace rsvm {

PageTable::PageTable(const Config &config, std::uint32_t num_nodes)
    : pageBytes(config.pageSize), nodes(num_nodes)
{
}

PageEntry &
PageTable::entry(PageId page)
{
    auto [it, inserted] = entries.try_emplace(page);
    if (inserted)
        it->second.reqVer.assign(nodes, 0);
    return it->second;
}

PageEntry *
PageTable::find(PageId page)
{
    auto it = entries.find(page);
    return it == entries.end() ? nullptr : &it->second;
}

const PageEntry *
PageTable::find(PageId page) const
{
    auto it = entries.find(page);
    return it == entries.end() ? nullptr : &it->second;
}

std::byte *
PageTable::ensureData(PageEntry &e)
{
    if (!e.data) {
        e.data.reset(new std::byte[pageBytes]);
        std::memset(e.data.get(), 0, pageBytes);
    }
    return e.data.get();
}

void
PageTable::makeTwin(PageEntry &e)
{
    rsvm_assert(e.data);
    if (!e.twin)
        e.twin.reset(new std::byte[pageBytes]);
    std::memcpy(e.twin.get(), e.data.get(), pageBytes);
}

void
PageTable::dropTwin(PageEntry &e)
{
    e.twin.reset();
}

void
PageTable::reset()
{
    entries.clear();
}

} // namespace rsvm

/**
 * @file
 * Mini SPLASH-2 LU-contiguous (§5.1: 1024x1024 on the paper's
 * testbed).
 *
 * Blocked right-looking LU factorization without pivoting (the matrix
 * is made diagonally dominant so pivoting is unnecessary, as in
 * SPLASH-2). The n x n matrix is stored block-contiguous: each BxB
 * block occupies consecutive bytes and is homed at its owner
 * (2D-scatter block-cyclic ownership), so owners update their own home
 * pages — together with FFT this is the pattern where the extended
 * protocol's home-page diffing shows up most (§5.3.1).
 *
 * Verification: the identical serial block algorithm gives
 * bit-identical doubles.
 */

#include "apps/app_common.hh"

#include <cstring>
#include <memory>
#include <vector>

#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

constexpr std::uint32_t kBlock = 32;

/** Deterministic init for element (r, c): diagonally dominant. */
inline double
initElem(std::uint32_t r, std::uint32_t c, std::uint32_t n)
{
    std::uint64_t z = (static_cast<std::uint64_t>(r) * n + c + 1) *
                      0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    double v = static_cast<double>((z >> 16) & 0xffff) / 65536.0;
    return (r == c) ? v + 2.0 * n : v;
}

// Serial block kernels operating on BxB column-major-in-block tiles.

void
factorDiag(double *d)
{
    for (std::uint32_t k = 0; k < kBlock; ++k) {
        double pivot = d[k * kBlock + k];
        for (std::uint32_t i = k + 1; i < kBlock; ++i) {
            d[i * kBlock + k] /= pivot;
            for (std::uint32_t j = k + 1; j < kBlock; ++j)
                d[i * kBlock + j] -=
                    d[i * kBlock + k] * d[k * kBlock + j];
        }
    }
}

/** Row-perimeter block: solve L * X = A (L from the diagonal block). */
void
solveRowBlock(const double *diag, double *a)
{
    for (std::uint32_t k = 0; k < kBlock; ++k) {
        for (std::uint32_t i = k + 1; i < kBlock; ++i) {
            double l = diag[i * kBlock + k];
            for (std::uint32_t j = 0; j < kBlock; ++j)
                a[i * kBlock + j] -= l * a[k * kBlock + j];
        }
    }
}

/** Column-perimeter block: solve X * U = A. */
void
solveColBlock(const double *diag, double *a)
{
    for (std::uint32_t k = 0; k < kBlock; ++k) {
        double pivot = diag[k * kBlock + k];
        for (std::uint32_t i = 0; i < kBlock; ++i) {
            a[i * kBlock + k] /= pivot;
            for (std::uint32_t j = k + 1; j < kBlock; ++j)
                a[i * kBlock + j] -=
                    a[i * kBlock + k] * diag[k * kBlock + j];
        }
    }
}

/** Interior update: A -= L * U. */
void
updateInterior(const double *l, const double *u, double *a)
{
    for (std::uint32_t i = 0; i < kBlock; ++i) {
        for (std::uint32_t k = 0; k < kBlock; ++k) {
            double lv = l[i * kBlock + k];
            for (std::uint32_t j = 0; j < kBlock; ++j)
                a[i * kBlock + j] -= lv * u[k * kBlock + j];
        }
    }
}

/** Serial reference: the same block algorithm on host memory. */
void
serialBlockLu(std::vector<double> &blocks, std::uint32_t nb)
{
    auto blk = [&](std::uint32_t bi, std::uint32_t bj) {
        return &blocks[(static_cast<std::size_t>(bi) * nb + bj) *
                       kBlock * kBlock];
    };
    for (std::uint32_t k = 0; k < nb; ++k) {
        factorDiag(blk(k, k));
        for (std::uint32_t j = k + 1; j < nb; ++j)
            solveRowBlock(blk(k, k), blk(k, j));
        for (std::uint32_t i = k + 1; i < nb; ++i)
            solveColBlock(blk(k, k), blk(i, k));
        for (std::uint32_t i = k + 1; i < nb; ++i) {
            for (std::uint32_t j = k + 1; j < nb; ++j)
                updateInterior(blk(i, k), blk(k, j), blk(i, j));
        }
    }
}

struct LuState
{
    std::uint32_t n = 0;
    std::uint32_t nb = 0; // blocks per dimension
    SimTime cpi = 0;
    Addr mat = 0; // block-contiguous matrix
};

constexpr std::uint64_t kBlockBytes =
    static_cast<std::uint64_t>(kBlock) * kBlock * 8;

} // namespace

AppInstance
makeLu(const AppParams &params)
{
    auto st = std::make_shared<LuState>();
    st->n = static_cast<std::uint32_t>(params.size);
    rsvm_assert_msg(st->n % kBlock == 0,
                    "lu size must be a multiple of the block size");
    st->nb = st->n / kBlock;
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "lu";

    // Owner of block (bi, bj): 2D scatter over threads.
    auto owner_of = [st](std::uint32_t bi, std::uint32_t bj,
                         std::uint32_t nthreads) -> std::uint32_t {
        return (bi * st->nb + bj) % nthreads;
    };

    app.setup = [st, owner_of](Cluster &cluster) {
        std::uint64_t bytes =
            static_cast<std::uint64_t>(st->nb) * st->nb * kBlockBytes;
        st->mat = cluster.mem().allocPageAligned(bytes);
        const Config &cfg = cluster.config();
        std::uint32_t nthreads = cfg.totalThreads();
        for (std::uint32_t bi = 0; bi < st->nb; ++bi) {
            for (std::uint32_t bj = 0; bj < st->nb; ++bj) {
                std::uint32_t owner = owner_of(bi, bj, nthreads);
                Addr base = st->mat +
                            (static_cast<std::uint64_t>(bi) * st->nb +
                             bj) * kBlockBytes;
                cluster.mem().setPrimaryHomeRange(
                    base, kBlockBytes, owner / cfg.threadsPerNode);
            }
        }
    };

    app.threadFn = [st, owner_of](AppThread &t) {
        const std::uint32_t nb = st->nb;
        std::uint32_t nthreads = t.clusterThreads();
        auto baddr = [&](std::uint32_t bi, std::uint32_t bj) -> Addr {
            return st->mat +
                   (static_cast<std::uint64_t>(bi) * nb + bj) *
                       kBlockBytes;
        };
        // Block tiles on the stack (PODs: checkpoint discipline).
        double tile[kBlock * kBlock];
        double diag[kBlock * kBlock];
        double other[kBlock * kBlock];
        const SimTime flop3 = st->cpi * kBlock * kBlock * kBlock / 8;

        // Init own blocks.
        for (std::uint32_t bi = 0; bi < nb; ++bi) {
            for (std::uint32_t bj = 0; bj < nb; ++bj) {
                if (owner_of(bi, bj, nthreads) != t.id())
                    continue;
                for (std::uint32_t i = 0; i < kBlock; ++i)
                    for (std::uint32_t j = 0; j < kBlock; ++j)
                        tile[i * kBlock + j] = initElem(
                            bi * kBlock + i, bj * kBlock + j, st->n);
                t.write(baddr(bi, bj), tile, kBlockBytes);
                t.compute(st->cpi * kBlock * kBlock / 4);
            }
        }
        t.barrier();

        for (std::uint32_t k = 0; k < nb; ++k) {
            // Diagonal factorization by its owner.
            if (owner_of(k, k, nthreads) == t.id()) {
                t.read(baddr(k, k), tile, kBlockBytes);
                factorDiag(tile);
                t.compute(flop3);
                t.write(baddr(k, k), tile, kBlockBytes);
            }
            t.barrier();

            // Perimeter solves by the owners of the perimeter blocks.
            bool did_perimeter = false;
            for (std::uint32_t j = k + 1; j < nb; ++j) {
                if (owner_of(k, j, nthreads) == t.id()) {
                    if (!did_perimeter) {
                        t.read(baddr(k, k), diag, kBlockBytes);
                        did_perimeter = true;
                    }
                    t.read(baddr(k, j), tile, kBlockBytes);
                    solveRowBlock(diag, tile);
                    t.compute(flop3);
                    t.write(baddr(k, j), tile, kBlockBytes);
                }
            }
            for (std::uint32_t i = k + 1; i < nb; ++i) {
                if (owner_of(i, k, nthreads) == t.id()) {
                    if (!did_perimeter) {
                        t.read(baddr(k, k), diag, kBlockBytes);
                        did_perimeter = true;
                    }
                    t.read(baddr(i, k), tile, kBlockBytes);
                    solveColBlock(diag, tile);
                    t.compute(flop3);
                    t.write(baddr(i, k), tile, kBlockBytes);
                }
            }
            t.barrier();

            // Interior updates by the interior blocks' owners.
            for (std::uint32_t i = k + 1; i < nb; ++i) {
                for (std::uint32_t j = k + 1; j < nb; ++j) {
                    if (owner_of(i, j, nthreads) != t.id())
                        continue;
                    t.read(baddr(i, k), diag, kBlockBytes);
                    t.read(baddr(k, j), other, kBlockBytes);
                    t.read(baddr(i, j), tile, kBlockBytes);
                    updateInterior(diag, other, tile);
                    t.compute(flop3);
                    t.write(baddr(i, j), tile, kBlockBytes);
                }
            }
            t.barrier();
        }
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        std::uint32_t nb = st->nb;
        std::vector<double> ref(static_cast<std::size_t>(nb) * nb *
                                kBlock * kBlock);
        for (std::uint32_t bi = 0; bi < nb; ++bi)
            for (std::uint32_t bj = 0; bj < nb; ++bj)
                for (std::uint32_t i = 0; i < kBlock; ++i)
                    for (std::uint32_t j = 0; j < kBlock; ++j)
                        ref[((static_cast<std::size_t>(bi) * nb + bj) *
                                 kBlock +
                             i) * kBlock +
                            j] = initElem(bi * kBlock + i,
                                          bj * kBlock + j, st->n);
        serialBlockLu(ref, nb);

        AppResult res;
        res.ok = true;
        std::uint64_t mismatches = 0;
        std::vector<double> got(ref.size());
        cluster.debugRead(st->mat, got.data(), got.size() * 8);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (got[i] != ref[i])
                mismatches++;
        }
        if (mismatches) {
            res.ok = false;
            res.detail = "lu: " + std::to_string(mismatches) +
                         " mismatching elements";
        } else {
            res.detail = "lu: " + std::to_string(ref.size()) +
                         " elements exact";
        }
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

/**
 * @file
 * Mini SPLASH-2 FFT (§5.1: 1M points on the paper's testbed).
 *
 * Six-step 1D complex FFT of n = m*m points viewed as an m x m matrix:
 * transpose, m-point row FFTs, twiddle scaling, transpose, row FFTs,
 * transpose. Rows are block-distributed across threads and their pages
 * homed at the owning node, giving the paper's characteristic pattern:
 * every node updates (almost) exclusively its own home pages, so the
 * extended protocol's home-page diffing dominates its overhead
 * (§5.3.1). Transposes are the all-to-all communication steps.
 *
 * Verification: the identical algorithm executed serially on the host
 * produces bit-identical doubles (per-element operation order is the
 * same), so the check is exact.
 */

#include "apps/app_common.hh"

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

/** Deterministic complex init value for global element index i. */
inline void
initValue(std::uint64_t i, double &re, double &im)
{
    std::uint64_t z = (i + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    re = static_cast<double>(z & 0xffff) / 65536.0 - 0.5;
    im = static_cast<double>((z >> 16) & 0xffff) / 65536.0 - 0.5;
}

/** In-place iterative radix-2 FFT of m complex points. */
void
fftRow(double *re, double *im, std::uint32_t m)
{
    // Bit reversal.
    for (std::uint32_t i = 1, j = 0; i < m; ++i) {
        std::uint32_t bit = m >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (std::uint32_t len = 2; len <= m; len <<= 1) {
        double ang = -2.0 * M_PI / static_cast<double>(len);
        double wr = std::cos(ang), wi = std::sin(ang);
        for (std::uint32_t i = 0; i < m; i += len) {
            double cr = 1.0, ci = 0.0;
            for (std::uint32_t k = 0; k < len / 2; ++k) {
                std::uint32_t a = i + k, b = i + k + len / 2;
                double tr = re[b] * cr - im[b] * ci;
                double ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                double ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
    }
}

/** Twiddle scaling for element (r, c) of the intermediate matrix. */
inline void
twiddle(std::uint32_t r, std::uint32_t c, std::uint32_t n, double &re,
        double &im)
{
    double ang = -2.0 * M_PI * static_cast<double>(r) *
                 static_cast<double>(c) / static_cast<double>(n);
    double wr = std::cos(ang), wi = std::sin(ang);
    double nr = re * wr - im * wi;
    im = re * wi + im * wr;
    re = nr;
}

/** Serial reference: the same six-step algorithm on host memory. */
void
serialSixStep(std::vector<double> &are, std::vector<double> &aim,
              std::uint32_t m)
{
    std::uint32_t n = m * m;
    std::vector<double> bre(n), bim(n);
    auto transpose = [m](const std::vector<double> &sre,
                         const std::vector<double> &sim,
                         std::vector<double> &dre,
                         std::vector<double> &dim) {
        for (std::uint32_t r = 0; r < m; ++r) {
            for (std::uint32_t c = 0; c < m; ++c) {
                dre[r * m + c] = sre[c * m + r];
                dim[r * m + c] = sim[c * m + r];
            }
        }
    };
    transpose(are, aim, bre, bim);
    for (std::uint32_t r = 0; r < m; ++r) {
        fftRow(&bre[r * m], &bim[r * m], m);
        for (std::uint32_t c = 0; c < m; ++c)
            twiddle(r, c, n, bre[r * m + c], bim[r * m + c]);
    }
    transpose(bre, bim, are, aim);
    for (std::uint32_t r = 0; r < m; ++r)
        fftRow(&are[r * m], &aim[r * m], m);
    transpose(are, aim, bre, bim);
    are = bre;
    aim = bim;
}

struct FftState
{
    std::uint32_t n = 0;
    std::uint32_t m = 0;
    SimTime cpi = 0;
    Addr a = 0; // matrix A: n complex (re, im interleaved)
    Addr b = 0; // matrix B
};

constexpr std::uint64_t kComplexBytes = 16;

} // namespace

AppInstance
makeFft(const AppParams &params)
{
    auto st = std::make_shared<FftState>();
    st->n = static_cast<std::uint32_t>(params.size);
    st->m = 1;
    while (st->m * st->m < st->n)
        st->m <<= 1;
    rsvm_assert_msg(st->m * st->m == st->n,
                    "fft size must be a power of 4");
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "fft";

    app.setup = [st](Cluster &cluster) {
        std::uint64_t bytes = st->n * kComplexBytes;
        st->a = cluster.mem().allocPageAligned(bytes);
        st->b = cluster.mem().allocPageAligned(bytes);
        // Rows block-distributed: row r belongs to thread r/(m/P);
        // home its pages at the owner's node.
        const Config &cfg = cluster.config();
        std::uint32_t nthreads = cfg.totalThreads();
        std::uint32_t rows_per = st->m / nthreads;
        rsvm_assert_msg(rows_per >= 1, "more threads than fft rows");
        for (std::uint32_t r = 0; r < st->m; ++r) {
            NodeId owner = std::min<std::uint32_t>(
                (r / rows_per) / cfg.threadsPerNode, cfg.numNodes - 1);
            std::uint64_t row_bytes = st->m * kComplexBytes;
            cluster.mem().setPrimaryHomeRange(st->a + r * row_bytes,
                                              row_bytes, owner);
            cluster.mem().setPrimaryHomeRange(st->b + r * row_bytes,
                                              row_bytes, owner);
        }
    };

    app.threadFn = [st](AppThread &t) {
        const std::uint32_t m = st->m;
        const std::uint32_t n = st->n;
        std::uint32_t nthreads = t.clusterThreads();
        std::uint32_t rows_per = m / nthreads;
        std::uint32_t row0 = t.id() * rows_per;
        std::uint32_t row1 = (t.id() + 1 == nthreads)
                                 ? m
                                 : row0 + rows_per;
        auto elem = [&](Addr base, std::uint32_t r,
                        std::uint32_t c) -> Addr {
            return base +
                   (static_cast<std::uint64_t>(r) * m + c) *
                       kComplexBytes;
        };

        // Init own rows of A.
        for (std::uint32_t r = row0; r < row1; ++r) {
            for (std::uint32_t c = 0; c < m; ++c) {
                double re, im;
                initValue(static_cast<std::uint64_t>(r) * m + c, re,
                          im);
                t.put<double>(elem(st->a, r, c), re);
                t.put<double>(elem(st->a, r, c) + 8, im);
            }
            t.compute(st->cpi * m / 4);
        }
        t.barrier();

        auto transpose = [&](Addr src, Addr dst) {
            for (std::uint32_t r = row0; r < row1; ++r) {
                for (std::uint32_t c = 0; c < m; ++c) {
                    double re = t.get<double>(elem(src, c, r));
                    double im = t.get<double>(elem(src, c, r) + 8);
                    t.put<double>(elem(dst, r, c), re);
                    t.put<double>(elem(dst, r, c) + 8, im);
                }
                t.compute(st->cpi * m / 2);
            }
        };

        auto fft_rows = [&](Addr base, bool do_twiddle) {
            // Row buffers live on the stack (PODs only: checkpoint
            // discipline). Cap: 1024-point rows = 16 KB.
            double re[1024], im[1024];
            rsvm_assert(m <= 1024);
            for (std::uint32_t r = row0; r < row1; ++r) {
                for (std::uint32_t c = 0; c < m; ++c) {
                    re[c] = t.get<double>(elem(base, r, c));
                    im[c] = t.get<double>(elem(base, r, c) + 8);
                }
                fftRow(re, im, m);
                if (do_twiddle) {
                    for (std::uint32_t c = 0; c < m; ++c)
                        twiddle(r, c, n, re[c], im[c]);
                }
                // log2(m) butterflies per point plus the twiddle.
                std::uint32_t lg = 0;
                while ((1u << lg) < m)
                    ++lg;
                t.compute(st->cpi * m * lg);
                for (std::uint32_t c = 0; c < m; ++c) {
                    t.put<double>(elem(base, r, c), re[c]);
                    t.put<double>(elem(base, r, c) + 8, im[c]);
                }
            }
        };

        transpose(st->a, st->b); // step 1
        t.barrier();
        fft_rows(st->b, true); // steps 2+3
        t.barrier();
        transpose(st->b, st->a); // step 4
        t.barrier();
        fft_rows(st->a, false); // step 5
        t.barrier();
        transpose(st->a, st->b); // step 6
        t.barrier();
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        std::vector<double> are(st->n), aim(st->n);
        for (std::uint32_t i = 0; i < st->n; ++i)
            initValue(i, are[i], aim[i]);
        serialSixStep(are, aim, st->m);

        AppResult res;
        res.ok = true;
        std::uint64_t mismatches = 0;
        for (std::uint32_t i = 0; i < st->n; ++i) {
            double re = 0, im = 0;
            cluster.debugRead(st->b + i * kComplexBytes, &re, 8);
            cluster.debugRead(st->b + i * kComplexBytes + 8, &im, 8);
            if (re != are[i] || im != aim[i])
                mismatches++;
        }
        if (mismatches) {
            res.ok = false;
            res.detail = "fft: " + std::to_string(mismatches) +
                         " mismatching elements";
        } else {
            res.detail = "fft: " + std::to_string(st->n) +
                         " elements exact";
        }
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

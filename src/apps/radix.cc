/**
 * @file
 * Mini SPLASH-2 RadixLocal (§5.1: 4M keys on the paper's testbed).
 *
 * LSD radix sort of n 32-bit keys, radix 256 (4 passes). Each thread
 * owns a contiguous chunk of the key array (homed at its node). Per
 * pass: local histogram (compute), publication of the local histogram
 * under a per-digit-group lock (the paper reports 66 locks for radix:
 * digit-group accumulation locks plus a few globals), a barrier, a
 * global prefix computed redundantly by every thread from the
 * published histograms, and the permutation into the destination
 * array — the scattered remote writes that make radix's diff traffic
 * distinct from FFT/LU (§5.3.1: the fraction of home pages diffed is
 * smallest here).
 *
 * Verification: exact comparison against std::stable_sort semantics
 * (the permutation is rank-stable by construction).
 */

#include "apps/app_common.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

constexpr std::uint32_t kRadix = 256;
constexpr std::uint32_t kPasses = 4;
/** Digit-group accumulation locks (plus globals: ~the paper's 66). */
constexpr std::uint32_t kGroupLocks = 64;
constexpr LockId kLockBase = 100;

inline std::uint32_t
initKey(std::uint64_t i)
{
    std::uint64_t z = (i + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    return static_cast<std::uint32_t>(z);
}

struct RadixState
{
    std::uint32_t n = 0;
    SimTime cpi = 0;
    Addr keysA = 0;
    Addr keysB = 0;
    /** Per-thread published histograms: nthreads x kRadix uint32. */
    Addr hist = 0;
    /** Per-group pass-completion accumulators (exercise the locks). */
    Addr passDone = 0;
    std::uint32_t nthreads = 0;
};

} // namespace

AppInstance
makeRadix(const AppParams &params)
{
    auto st = std::make_shared<RadixState>();
    st->n = static_cast<std::uint32_t>(params.size);
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "radix";

    app.setup = [st](Cluster &cluster) {
        const Config &cfg = cluster.config();
        st->nthreads = cfg.totalThreads();
        rsvm_assert(st->n % st->nthreads == 0);
        st->keysA = cluster.mem().allocPageAligned(st->n * 4ull);
        st->keysB = cluster.mem().allocPageAligned(st->n * 4ull);
        st->hist = cluster.mem().allocPageAligned(
            static_cast<std::uint64_t>(st->nthreads) * kRadix * 4);
        st->passDone = cluster.mem().allocPageAligned(4 * kGroupLocks);
        std::uint32_t chunk = st->n / st->nthreads;
        for (std::uint32_t tid = 0; tid < st->nthreads; ++tid) {
            NodeId owner = tid / cfg.threadsPerNode;
            cluster.mem().setPrimaryHomeRange(
                st->keysA + static_cast<std::uint64_t>(tid) * chunk * 4,
                chunk * 4ull, owner);
            cluster.mem().setPrimaryHomeRange(
                st->keysB + static_cast<std::uint64_t>(tid) * chunk * 4,
                chunk * 4ull, owner);
            cluster.mem().setPrimaryHomeRange(
                st->hist + static_cast<std::uint64_t>(tid) * kRadix * 4,
                kRadix * 4ull, owner);
        }
    };

    app.threadFn = [st](AppThread &t) {
        const std::uint32_t n = st->n;
        const std::uint32_t nthreads = t.clusterThreads();
        const std::uint32_t chunk = n / nthreads;
        const std::uint32_t lo = t.id() * chunk;

        // Init own chunk of A.
        for (std::uint32_t i = lo; i < lo + chunk; ++i)
            t.put<std::uint32_t>(st->keysA + 4ull * i, initKey(i));
        t.compute(st->cpi * chunk);
        t.barrier();

        Addr src = st->keysA;
        Addr dst = st->keysB;
        for (std::uint32_t pass = 0; pass < kPasses; ++pass) {
            std::uint32_t shift = pass * 8;

            // Local histogram (stack POD array: ckpt discipline).
            std::uint32_t local[kRadix];
            for (std::uint32_t d = 0; d < kRadix; ++d)
                local[d] = 0;
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                std::uint32_t key =
                    t.get<std::uint32_t>(src + 4ull * i);
                local[(key >> shift) & 0xff]++;
            }
            t.compute(st->cpi * chunk);

            // Publish the (thread-private) histogram row; the barrier
            // publishes it, so no locks are needed on the row itself.
            for (std::uint32_t d = 0; d < kRadix; ++d) {
                t.put<std::uint32_t>(
                    st->hist +
                        (static_cast<std::uint64_t>(t.id()) * kRadix +
                         d) * 4,
                    local[d]);
            }
            // SPLASH radix's prefix tree uses a modest number of lock
            // operations per pass; one locked accumulation per thread
            // on its digit-group lock mirrors that traffic.
            {
                std::uint32_t g = t.id() % kGroupLocks;
                Addr slot = st->passDone + 4ull * g;
                t.lock(kLockBase + g);
                std::uint32_t done = t.get<std::uint32_t>(slot);
                t.put<std::uint32_t>(slot, done + 1);
                t.unlock(kLockBase + g);
            }
            t.barrier();

            // Global ranks: key digit d of thread tid starts at
            // sum(all digits < d) + sum(hist[peer<tid][d]).
            std::uint32_t rank[kRadix];
            {
                std::uint32_t below = 0;
                for (std::uint32_t d = 0; d < kRadix; ++d) {
                    std::uint32_t mine = 0, here = 0;
                    for (std::uint32_t p = 0; p < nthreads; ++p) {
                        std::uint32_t h = t.get<std::uint32_t>(
                            st->hist +
                            (static_cast<std::uint64_t>(p) * kRadix +
                             d) * 4);
                        if (p < t.id())
                            mine += h;
                        here += h;
                    }
                    rank[d] = below + mine;
                    below += here;
                }
            }
            t.compute(st->cpi * kRadix);

            // Permute own keys into the destination array.
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                std::uint32_t key =
                    t.get<std::uint32_t>(src + 4ull * i);
                std::uint32_t d = (key >> shift) & 0xff;
                t.put<std::uint32_t>(dst + 4ull * rank[d], key);
                rank[d]++;
            }
            t.compute(st->cpi * chunk);
            t.barrier();

            std::swap(src, dst);
        }
        t.barrier();
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        std::vector<std::uint32_t> ref(st->n);
        for (std::uint32_t i = 0; i < st->n; ++i)
            ref[i] = initKey(i);
        std::stable_sort(ref.begin(), ref.end());

        // Even number of passes: the result is back in keysA.
        std::vector<std::uint32_t> got(st->n);
        cluster.debugRead(st->keysA, got.data(), st->n * 4ull);

        AppResult res;
        res.ok = (got == ref);
        if (res.ok) {
            res.detail =
                "radix: " + std::to_string(st->n) + " keys sorted";
        } else {
            std::uint64_t mismatches = 0;
            std::uint32_t first = st->n;
            for (std::uint32_t i = 0; i < st->n; ++i) {
                if (got[i] != ref[i]) {
                    mismatches++;
                    if (first == st->n)
                        first = i;
                }
            }
            bool sorted = std::is_sorted(got.begin(), got.end());
            auto perm = got;
            std::sort(perm.begin(), perm.end());
            bool permutation = (perm == ref);
            res.detail = "radix: " + std::to_string(mismatches) +
                         " mismatches, first at " +
                         std::to_string(first) +
                         (sorted ? ", sorted" : ", UNSORTED") +
                         (permutation ? ", permutation"
                                      : ", NOT a permutation");
        }
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

#include "apps/app_common.hh"

#include "base/panic.hh"

namespace rsvm {
namespace apps {

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "fft", "lu", "water-nsq", "water-sp", "radix", "volrend",
    };
    return names;
}

AppParams
defaultParams(const std::string &name)
{
    AppParams p;
    if (name == "fft") {
        p.size = 16384; // complex points (paper: 1M)
        p.computePerItem = 80;
    } else if (name == "lu") {
        p.size = 128; // matrix dim (paper: 1024)
        p.computePerItem = 120;
    } else if (name == "water-nsq") {
        p.size = 192; // molecules (paper: 4096)
        p.steps = 2;
        p.computePerItem = 700;
    } else if (name == "water-sp") {
        p.size = 216; // molecules (paper: 4096)
        p.steps = 2;
        p.computePerItem = 900;
    } else if (name == "radix") {
        p.size = 65536; // keys (paper: 4M)
        p.computePerItem = 25;
    } else if (name == "volrend") {
        p.size = 48; // volume edge (paper: "head" 256ish)
        p.computePerItem = 100;
    } else {
        rsvm_fatal("unknown application: " + name);
    }
    return p;
}

AppParams
paperParams(const std::string &name)
{
    AppParams p = defaultParams(name);
    if (name == "fft")
        p.size = 1u << 20;
    else if (name == "lu")
        p.size = 1024;
    else if (name == "water-nsq" || name == "water-sp")
        p.size = 4096;
    else if (name == "radix")
        p.size = 4u << 20;
    else if (name == "volrend")
        p.size = 128;
    return p;
}

AppInstance
makeApp(const std::string &name, const AppParams &params)
{
    if (name == "fft")
        return makeFft(params);
    if (name == "lu")
        return makeLu(params);
    if (name == "water-nsq")
        return makeWaterNsq(params);
    if (name == "water-sp")
        return makeWaterSp(params);
    if (name == "radix")
        return makeRadix(params);
    if (name == "volrend")
        return makeVolrend(params);
    rsvm_fatal("unknown application: " + name);
}

AppResult
runAndVerify(const Config &cfg, const std::string &name,
             const AppParams &params)
{
    Cluster cluster(cfg);
    AppInstance app = makeApp(name, params);
    app.setup(cluster);
    cluster.spawn(app.threadFn);
    cluster.run();
    return app.verify(cluster);
}

} // namespace apps
} // namespace rsvm

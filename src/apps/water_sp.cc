/**
 * @file
 * Mini SPLASH-2 Water-SpatialFL (§5.1: 4096 molecules on the paper's
 * testbed).
 *
 * Spatial variant of the water kernel: molecules live in a 3D grid of
 * cells and only interact with molecules in the same or neighboring
 * cells, guarded by one lock per cell (the paper reports 518 locks:
 * 512 cells + globals). Releases are far less frequent than in
 * Water-Nsquared, and nearly all pages a node diffs are its own home
 * pages (§5.3.1 reports > 99%), because the molecule arrays are
 * owner-partitioned and cell interactions are mostly local.
 *
 * Fixed-point int64 state makes the parallel result bit-identical to
 * the serial reference (associative accumulation).
 */

#include "apps/app_common.hh"

#include <memory>
#include <vector>

#include "base/log.hh"
#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

constexpr std::uint32_t kGrid = 4; // 4x4x4 = 64 cells
constexpr std::uint32_t kCells = kGrid * kGrid * kGrid;
constexpr LockId kCellLockBase = 32;
constexpr LockId kGlobalLock = 9;
constexpr std::int64_t kBox = 1 << 16;

inline std::int64_t
initCoord(std::uint64_t i, unsigned axis, std::uint32_t n)
{
    std::uint64_t z = (i * 3 + axis + 11) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    if (axis == 0) {
        // Index-ordered along x: contiguous index chunks (= ownership
        // chunks) occupy contiguous space, the spatial decomposition
        // the paper's Water-SpatialFL relies on — interactions and
        // force updates then stay overwhelmingly within the owner's
        // own (home) pages (§5.3.1: > 99 %).
        std::int64_t base = static_cast<std::int64_t>(
            i * static_cast<std::uint64_t>(kBox) / n);
        return base + static_cast<std::int64_t>(z % (kBox / n + 1));
    }
    return static_cast<std::int64_t>(z % kBox);
}

inline std::uint32_t
cellOf(std::int64_t x, std::int64_t y, std::int64_t z)
{
    auto clamp = [](std::int64_t v) -> std::uint32_t {
        std::int64_t c = v * kGrid / kBox;
        if (c < 0)
            c = 0;
        if (c >= kGrid)
            c = kGrid - 1;
        return static_cast<std::uint32_t>(c);
    };
    return (clamp(x) * kGrid + clamp(y)) * kGrid + clamp(z);
}

inline std::int64_t
pairForce(std::int64_t a, std::int64_t b)
{
    std::int64_t d = a - b;
    return (d >> 3) - ((d * (d > 0 ? d : -d)) >> 18);
}

struct WaterSpState
{
    std::uint32_t n = 0;
    std::uint32_t steps = 0;
    SimTime cpi = 0;
    Addr pos = 0;      // per-owner page-padded chunks of n x 3 int64
    Addr force = 0;    // same layout (cell-lock protected)
    Addr contrib = 0;  // nthreads x page-padded n x 3 int64 (private)
    Addr cellOfMol = 0; // per-owner page-padded chunks of u32
    Addr potential = 0;
    /** Page-padded strides so each owner's chunk occupies whole
     *  pages (full home-page ownership, as at the paper's sizes). */
    std::uint64_t chunkStride24 = 0; // for pos/force chunks
    std::uint64_t chunkStride4 = 0;  // for cellOfMol chunks
    std::uint64_t contribStride = 0; // per-thread contrib region
    std::uint32_t chunk = 0;
};

inline Addr
molAddr(const WaterSpState &st, Addr base, std::uint32_t i,
        unsigned axis)
{
    std::uint32_t owner = i / st.chunk;
    std::uint32_t off = i % st.chunk;
    return base + owner * st.chunkStride24 +
           (static_cast<std::uint64_t>(off) * 3 + axis) * 8;
}

inline Addr
cellAddr(const WaterSpState &st, std::uint32_t i)
{
    std::uint32_t owner = i / st.chunk;
    std::uint32_t off = i % st.chunk;
    return st.cellOfMol + owner * st.chunkStride4 + 4ull * off;
}

} // namespace

AppInstance
makeWaterSp(const AppParams &params)
{
    auto st = std::make_shared<WaterSpState>();
    st->n = static_cast<std::uint32_t>(params.size);
    st->steps = static_cast<std::uint32_t>(params.steps ? params.steps
                                                        : 1);
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "water-sp";

    app.setup = [st](Cluster &cluster) {
        const Config &cfg = cluster.config();
        std::uint32_t nthreads = cfg.totalThreads();
        rsvm_assert(st->n % nthreads == 0);
        st->chunk = st->n / nthreads;
        auto page_align = [&](std::uint64_t b) {
            return (b + cfg.pageSize - 1) / cfg.pageSize *
                   cfg.pageSize;
        };
        st->chunkStride24 = page_align(st->chunk * 24ull);
        st->chunkStride4 = page_align(st->chunk * 4ull);
        st->contribStride = page_align(st->n * 24ull);
        st->pos = cluster.mem().allocPageAligned(nthreads *
                                                 st->chunkStride24);
        st->force = cluster.mem().allocPageAligned(nthreads *
                                                   st->chunkStride24);
        st->contrib = cluster.mem().allocPageAligned(
            nthreads * st->contribStride);
        st->cellOfMol = cluster.mem().allocPageAligned(
            nthreads * st->chunkStride4);
        st->potential = cluster.mem().allocPageAligned(8);
        for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
            NodeId owner = tid / cfg.threadsPerNode;
            cluster.mem().setPrimaryHomeRange(
                st->pos + tid * st->chunkStride24, st->chunkStride24,
                owner);
            cluster.mem().setPrimaryHomeRange(
                st->force + tid * st->chunkStride24,
                st->chunkStride24, owner);
            cluster.mem().setPrimaryHomeRange(
                st->cellOfMol + tid * st->chunkStride4,
                st->chunkStride4, owner);
            cluster.mem().setPrimaryHomeRange(
                st->contrib + tid * st->contribStride,
                st->contribStride, owner);
        }
    };

    app.threadFn = [st](AppThread &t) {
        const std::uint32_t n = st->n;
        const std::uint32_t nthreads = t.clusterThreads();
        const std::uint32_t chunk = n / nthreads;
        const std::uint32_t lo = t.id() * chunk;
        auto pos3 = [&](std::uint32_t i, unsigned a) {
            return molAddr(*st, st->pos, i, a);
        };
        auto frc3 = [&](std::uint32_t i, unsigned a) {
            return molAddr(*st, st->force, i, a);
        };
        Addr my_contrib =
            st->contrib +
            static_cast<std::uint64_t>(t.id()) * st->contribStride;
        auto ctr3 = [&](std::uint32_t i, unsigned a) {
            return my_contrib +
                   (static_cast<std::uint64_t>(i) * 3 + a) * 8;
        };

        for (std::uint32_t i = lo; i < lo + chunk; ++i) {
            for (unsigned a = 0; a < 3; ++a) {
                t.put<std::int64_t>(pos3(i, a), initCoord(i, a, n));
                t.put<std::int64_t>(frc3(i, a), 0);
            }
        }
        t.barrier();

        for (std::uint32_t step = 0; step < st->steps; ++step) {
            // Cell assignment of own molecules.
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                std::uint32_t c =
                    cellOf(t.get<std::int64_t>(pos3(i, 0)),
                           t.get<std::int64_t>(pos3(i, 1)),
                           t.get<std::int64_t>(pos3(i, 2)));
                t.put<std::uint32_t>(cellAddr(*st, i), c);
            }
            t.compute(st->cpi * chunk);
            t.barrier();

            // Interactions, SPLASH-2 style: contributions go to a
            // thread-private buffer first; the shared force arrays
            // are updated once per molecule under the lock of its
            // cell afterwards (the paper's 512 + globals locks).
            for (std::uint32_t i = 0; i < n; ++i)
                for (unsigned a = 0; a < 3; ++a)
                    t.put<std::int64_t>(ctr3(i, a), 0);
            std::int64_t my_potential = 0;
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                std::uint32_t ci =
                    t.get<std::uint32_t>(cellAddr(*st, i));
                std::int64_t pi0 = t.get<std::int64_t>(pos3(i, 0));
                std::int64_t pi1 = t.get<std::int64_t>(pos3(i, 1));
                std::int64_t pi2 = t.get<std::int64_t>(pos3(i, 2));
                std::uint32_t interactions = 0;
                for (std::uint32_t j = i + 1; j < n; ++j) {
                    std::uint32_t cj = t.get<std::uint32_t>(cellAddr(*st, j));
                    // Neighboring cells: each grid coordinate differs
                    // by at most 1.
                    std::uint32_t xi = ci / (kGrid * kGrid),
                                  yi = (ci / kGrid) % kGrid,
                                  zi = ci % kGrid;
                    std::uint32_t xj = cj / (kGrid * kGrid),
                                  yj = (cj / kGrid) % kGrid,
                                  zj = cj % kGrid;
                    auto near = [](std::uint32_t a, std::uint32_t b) {
                        return a == b || a + 1 == b || b + 1 == a;
                    };
                    if (!near(xi, xj) || !near(yi, yj) ||
                        !near(zi, zj))
                        continue;
                    interactions++;
                    std::int64_t f0 = pairForce(
                        pi0, t.get<std::int64_t>(pos3(j, 0)));
                    std::int64_t f1 = pairForce(
                        pi1, t.get<std::int64_t>(pos3(j, 1)));
                    std::int64_t f2 = pairForce(
                        pi2, t.get<std::int64_t>(pos3(j, 2)));
                    my_potential += (f0 + f1 + f2) >> 5;
                    t.put<std::int64_t>(
                        ctr3(i, 0),
                        t.get<std::int64_t>(ctr3(i, 0)) + f0);
                    t.put<std::int64_t>(
                        ctr3(i, 1),
                        t.get<std::int64_t>(ctr3(i, 1)) + f1);
                    t.put<std::int64_t>(
                        ctr3(i, 2),
                        t.get<std::int64_t>(ctr3(i, 2)) + f2);
                    t.put<std::int64_t>(
                        ctr3(j, 0),
                        t.get<std::int64_t>(ctr3(j, 0)) - f0);
                    t.put<std::int64_t>(
                        ctr3(j, 1),
                        t.get<std::int64_t>(ctr3(j, 1)) - f1);
                    t.put<std::int64_t>(
                        ctr3(j, 2),
                        t.get<std::int64_t>(ctr3(j, 2)) - f2);
                }
                t.compute(st->cpi * (interactions + 1));
            }
            // Per-cell-lock accumulation into the shared force
            // array: lock each touched cell once and flush every
            // contribution to its molecules (SPLASH-2 structure).
            for (std::uint32_t cell = 0; cell < kCells; ++cell) {
                bool locked_cell = false;
                for (std::uint32_t m = 0; m < n; ++m) {
                    std::uint32_t cm = t.get<std::uint32_t>(cellAddr(*st, m));
                    if (cm != cell)
                        continue;
                    std::int64_t c0 = t.get<std::int64_t>(ctr3(m, 0));
                    std::int64_t c1 = t.get<std::int64_t>(ctr3(m, 1));
                    std::int64_t c2 = t.get<std::int64_t>(ctr3(m, 2));
                    if (c0 == 0 && c1 == 0 && c2 == 0)
                        continue;
                    if (!locked_cell) {
                        t.lock(kCellLockBase + cell);
                        locked_cell = true;
                    }
                    t.put<std::int64_t>(
                        frc3(m, 0),
                        t.get<std::int64_t>(frc3(m, 0)) + c0);
                    t.put<std::int64_t>(
                        frc3(m, 1),
                        t.get<std::int64_t>(frc3(m, 1)) + c1);
                    t.put<std::int64_t>(
                        frc3(m, 2),
                        t.get<std::int64_t>(frc3(m, 2)) + c2);
                }
                if (locked_cell)
                    t.unlock(kCellLockBase + cell);
            }
            t.lock(kGlobalLock);
            t.put<std::int64_t>(st->potential,
                                t.get<std::int64_t>(st->potential) +
                                    my_potential);
            t.unlock(kGlobalLock);
            t.barrier();

            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                for (unsigned a = 0; a < 3; ++a) {
                    std::int64_t p = t.get<std::int64_t>(pos3(i, a));
                    std::int64_t f = t.get<std::int64_t>(frc3(i, a));
                    t.put<std::int64_t>(pos3(i, a), p + (f >> 7));
                    t.put<std::int64_t>(frc3(i, a), 0);
                }
            }
            t.compute(st->cpi * chunk);
            t.barrier();
        }
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        const std::uint32_t n = st->n;
        std::vector<std::int64_t> pos(n * 3), force(n * 3, 0);
        std::vector<std::uint32_t> cell(n);
        std::int64_t potential = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            for (unsigned a = 0; a < 3; ++a)
                pos[i * 3 + a] = initCoord(i, a, n);
        auto near = [](std::uint32_t a, std::uint32_t b) {
            return a == b || a + 1 == b || b + 1 == a;
        };
        for (std::uint32_t step = 0; step < st->steps; ++step) {
            for (std::uint32_t i = 0; i < n; ++i)
                cell[i] = cellOf(pos[i * 3], pos[i * 3 + 1],
                                 pos[i * 3 + 2]);
            for (std::uint32_t i = 0; i < n; ++i) {
                std::uint32_t ci = cell[i];
                std::uint32_t xi = ci / (kGrid * kGrid),
                              yi = (ci / kGrid) % kGrid, zi = ci % kGrid;
                for (std::uint32_t j = i + 1; j < n; ++j) {
                    std::uint32_t cj = cell[j];
                    std::uint32_t xj = cj / (kGrid * kGrid),
                                  yj = (cj / kGrid) % kGrid,
                                  zj = cj % kGrid;
                    if (!near(xi, xj) || !near(yi, yj) ||
                        !near(zi, zj))
                        continue;
                    std::int64_t f0 =
                        pairForce(pos[i * 3], pos[j * 3]);
                    std::int64_t f1 =
                        pairForce(pos[i * 3 + 1], pos[j * 3 + 1]);
                    std::int64_t f2 =
                        pairForce(pos[i * 3 + 2], pos[j * 3 + 2]);
                    potential += (f0 + f1 + f2) >> 5;
                    force[i * 3] += f0;
                    force[i * 3 + 1] += f1;
                    force[i * 3 + 2] += f2;
                    force[j * 3] -= f0;
                    force[j * 3 + 1] -= f1;
                    force[j * 3 + 2] -= f2;
                }
            }
            for (std::uint32_t i = 0; i < n * 3; ++i) {
                pos[i] += force[i] >> 7;
                force[i] = 0;
            }
        }

        std::vector<std::int64_t> got(n * 3);
        for (std::uint32_t i = 0; i < n; ++i)
            for (unsigned a = 0; a < 3; ++a)
                cluster.debugRead(molAddr(*st, st->pos, i, a),
                                  &got[i * 3 + a], 8);
        std::int64_t got_potential = 0;
        cluster.debugRead(st->potential, &got_potential, 8);

        AppResult res;
        res.ok = (got == pos) && (got_potential == potential);
        if (res.ok) {
            res.detail = "water-sp: positions and potential exact";
        } else {
            std::uint32_t bad = 0, first = n * 3;
            for (std::uint32_t i = 0; i < n * 3; ++i) {
                if (got[i] != pos[i]) {
                    bad++;
                    if (first == n * 3)
                        first = i;
                }
            }
            res.detail = "water-sp: " + std::to_string(bad) +
                         " coord mismatches (first " +
                         std::to_string(first) + "), potential " +
                         std::to_string(got_potential) + " vs " +
                         std::to_string(potential);
        }
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

/**
 * @file
 * Mini SPLASH-2 Water-Nsquared (§5.1: 4096 molecules on the paper's
 * testbed).
 *
 * O(n^2) pairwise molecular-dynamics kernel with the suite's signature
 * synchronization structure: one lock per molecule guarding force
 * accumulation plus a handful of global locks (the paper reports 4105
 * locks = 4096 + 9), and a very high release frequency — which is
 * exactly why Water-Nsquared shows the largest lock-wait and
 * checkpointing overheads under the extended protocol (§5.3).
 *
 * All state is int64 fixed-point so force accumulation is associative:
 * the parallel result matches the serial reference bit-for-bit
 * regardless of accumulation order.
 */

#include "apps/app_common.hh"

#include <memory>
#include <vector>

#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

constexpr LockId kMolLockBase = 16;
/** Global locks (the paper's "+9"). */
constexpr LockId kGlobalLock = 8;

inline std::int64_t
initCoord(std::uint64_t i, unsigned axis)
{
    std::uint64_t z = (i * 3 + axis + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    return static_cast<std::int64_t>(z & 0xffff) - 0x8000;
}

/** Deterministic pairwise "force" on one axis (fixed point). */
inline std::int64_t
pairForce(std::int64_t a, std::int64_t b)
{
    std::int64_t d = a - b;
    // Bounded, antisymmetric, nonlinear.
    return (d >> 2) - ((d * d * (d > 0 ? 1 : -1)) >> 20);
}

struct WaterState
{
    std::uint32_t n = 0;
    std::uint32_t steps = 0;
    SimTime cpi = 0;
    Addr pos = 0;   // n x 3 int64
    Addr force = 0; // n x 3 int64
    Addr contrib = 0; // nthreads x n x 3 int64 (thread-private)
    Addr potential = 0; // global accumulator (int64)
};

} // namespace

AppInstance
makeWaterNsq(const AppParams &params)
{
    auto st = std::make_shared<WaterState>();
    st->n = static_cast<std::uint32_t>(params.size);
    st->steps = static_cast<std::uint32_t>(params.steps ? params.steps
                                                        : 1);
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "water-nsq";

    app.setup = [st](Cluster &cluster) {
        const Config &cfg = cluster.config();
        std::uint32_t nthreads = cfg.totalThreads();
        rsvm_assert(st->n % nthreads == 0);
        st->pos = cluster.mem().allocPageAligned(st->n * 24ull);
        st->force = cluster.mem().allocPageAligned(st->n * 24ull);
        st->contrib = cluster.mem().allocPageAligned(
            static_cast<std::uint64_t>(nthreads) * st->n * 24ull);
        st->potential = cluster.mem().allocPageAligned(8);
        std::uint32_t chunk = st->n / nthreads;
        for (std::uint32_t tid = 0; tid < nthreads; ++tid) {
            NodeId owner = tid / cfg.threadsPerNode;
            cluster.mem().setPrimaryHomeRange(
                st->pos + static_cast<std::uint64_t>(tid) * chunk * 24,
                chunk * 24ull, owner);
            cluster.mem().setPrimaryHomeRange(
                st->force +
                    static_cast<std::uint64_t>(tid) * chunk * 24,
                chunk * 24ull, owner);
            // Thread-private accumulation buffers live on the owner.
            cluster.mem().setPrimaryHomeRange(
                st->contrib +
                    static_cast<std::uint64_t>(tid) * st->n * 24,
                st->n * 24ull, owner);
        }
    };

    app.threadFn = [st](AppThread &t) {
        const std::uint32_t n = st->n;
        const std::uint32_t nthreads = t.clusterThreads();
        const std::uint32_t chunk = n / nthreads;
        const std::uint32_t lo = t.id() * chunk;
        auto pos3 = [&](std::uint32_t i, unsigned a) {
            return st->pos + (static_cast<std::uint64_t>(i) * 3 + a) * 8;
        };
        auto frc3 = [&](std::uint32_t i, unsigned a) {
            return st->force +
                   (static_cast<std::uint64_t>(i) * 3 + a) * 8;
        };

        // Init own molecules.
        for (std::uint32_t i = lo; i < lo + chunk; ++i) {
            for (unsigned a = 0; a < 3; ++a) {
                t.put<std::int64_t>(pos3(i, a), initCoord(i, a));
                t.put<std::int64_t>(frc3(i, a), 0);
            }
        }
        t.barrier();

        Addr my_contrib =
            st->contrib + static_cast<std::uint64_t>(t.id()) * n * 24;
        auto ctr3 = [&](std::uint32_t i, unsigned a) {
            return my_contrib +
                   (static_cast<std::uint64_t>(i) * 3 + a) * 8;
        };
        for (std::uint32_t step = 0; step < st->steps; ++step) {
            // Pairwise interactions, SPLASH-2 style: contributions
            // accumulate into a thread-private buffer; the global
            // force arrays are updated once per molecule under its
            // per-molecule lock afterwards.
            for (std::uint32_t i = 0; i < n; ++i)
                for (unsigned a = 0; a < 3; ++a)
                    t.put<std::int64_t>(ctr3(i, a), 0);
            std::int64_t my_potential = 0;
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                std::int64_t pi0 = t.get<std::int64_t>(pos3(i, 0));
                std::int64_t pi1 = t.get<std::int64_t>(pos3(i, 1));
                std::int64_t pi2 = t.get<std::int64_t>(pos3(i, 2));
                for (std::uint32_t j = i + 1; j < n; ++j) {
                    std::int64_t f0 = pairForce(
                        pi0, t.get<std::int64_t>(pos3(j, 0)));
                    std::int64_t f1 = pairForce(
                        pi1, t.get<std::int64_t>(pos3(j, 1)));
                    std::int64_t f2 = pairForce(
                        pi2, t.get<std::int64_t>(pos3(j, 2)));
                    my_potential += (f0 + f1 + f2) >> 4;
                    t.put<std::int64_t>(
                        ctr3(i, 0),
                        t.get<std::int64_t>(ctr3(i, 0)) + f0);
                    t.put<std::int64_t>(
                        ctr3(i, 1),
                        t.get<std::int64_t>(ctr3(i, 1)) + f1);
                    t.put<std::int64_t>(
                        ctr3(i, 2),
                        t.get<std::int64_t>(ctr3(i, 2)) + f2);
                    t.put<std::int64_t>(
                        ctr3(j, 0),
                        t.get<std::int64_t>(ctr3(j, 0)) - f0);
                    t.put<std::int64_t>(
                        ctr3(j, 1),
                        t.get<std::int64_t>(ctr3(j, 1)) - f1);
                    t.put<std::int64_t>(
                        ctr3(j, 2),
                        t.get<std::int64_t>(ctr3(j, 2)) - f2);
                }
                t.compute(st->cpi * (n - i - 1));
            }
            // Global accumulation under the per-molecule locks (the
            // paper's 4096 + 9 locks and its very high release count).
            for (std::uint32_t m = 0; m < n; ++m) {
                std::int64_t c0 = t.get<std::int64_t>(ctr3(m, 0));
                std::int64_t c1 = t.get<std::int64_t>(ctr3(m, 1));
                std::int64_t c2 = t.get<std::int64_t>(ctr3(m, 2));
                if (c0 == 0 && c1 == 0 && c2 == 0)
                    continue;
                t.lock(kMolLockBase + m);
                t.put<std::int64_t>(
                    frc3(m, 0),
                    t.get<std::int64_t>(frc3(m, 0)) + c0);
                t.put<std::int64_t>(
                    frc3(m, 1),
                    t.get<std::int64_t>(frc3(m, 1)) + c1);
                t.put<std::int64_t>(
                    frc3(m, 2),
                    t.get<std::int64_t>(frc3(m, 2)) + c2);
                t.unlock(kMolLockBase + m);
            }
            // Global potential accumulation (one of the "+9" locks).
            t.lock(kGlobalLock);
            t.put<std::int64_t>(st->potential,
                                t.get<std::int64_t>(st->potential) +
                                    my_potential);
            t.unlock(kGlobalLock);
            t.barrier();

            // Position update by owners; forces reset.
            for (std::uint32_t i = lo; i < lo + chunk; ++i) {
                for (unsigned a = 0; a < 3; ++a) {
                    std::int64_t p = t.get<std::int64_t>(pos3(i, a));
                    std::int64_t f = t.get<std::int64_t>(frc3(i, a));
                    t.put<std::int64_t>(pos3(i, a), p + (f >> 6));
                    t.put<std::int64_t>(frc3(i, a), 0);
                }
            }
            t.compute(st->cpi * chunk);
            t.barrier();
        }
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        const std::uint32_t n = st->n;
        std::vector<std::int64_t> pos(n * 3), force(n * 3, 0);
        std::int64_t potential = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            for (unsigned a = 0; a < 3; ++a)
                pos[i * 3 + a] = initCoord(i, a);
        for (std::uint32_t step = 0; step < st->steps; ++step) {
            for (std::uint32_t i = 0; i < n; ++i) {
                for (std::uint32_t j = i + 1; j < n; ++j) {
                    for (unsigned a = 0; a < 3; ++a) {
                        std::int64_t f = pairForce(pos[i * 3 + a],
                                                   pos[j * 3 + a]);
                        force[i * 3 + a] += f;
                        force[j * 3 + a] -= f;
                    }
                    std::int64_t f0 = pairForce(pos[i * 3], pos[j * 3]);
                    std::int64_t f1 =
                        pairForce(pos[i * 3 + 1], pos[j * 3 + 1]);
                    std::int64_t f2 =
                        pairForce(pos[i * 3 + 2], pos[j * 3 + 2]);
                    potential += (f0 + f1 + f2) >> 4;
                }
            }
            for (std::uint32_t i = 0; i < n * 3; ++i) {
                pos[i] += force[i] >> 6;
                force[i] = 0;
            }
        }

        std::vector<std::int64_t> got(n * 3);
        cluster.debugRead(st->pos, got.data(), n * 24ull);
        std::int64_t got_potential = 0;
        cluster.debugRead(st->potential, &got_potential, 8);

        AppResult res;
        res.ok = (got == pos) && (got_potential == potential);
        res.detail =
            res.ok ? "water-nsq: positions and potential exact"
                   : "water-nsq: state differs from reference";
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

/**
 * @file
 * Common infrastructure for the mini-SPLASH-2 application suite
 * (§5.1: FFT, LU-contiguous, Water-Nsquared, Water-SpatialFL,
 * RadixLocal, Volrend).
 *
 * Each application provides:
 *  - setup(): shared-memory allocation and home assignment (the paper:
 *    "the assignment of primary homes to pages is performed by the
 *    application");
 *  - a thread function (the parallel program, written against the
 *    AppThread API);
 *  - verify(): an engine-side check of the final shared state against
 *    a serial reference computation.
 *
 * Problem sizes default to scaled-down versions of the paper's (so the
 * test suite stays fast); the paper sizes are reachable through
 * AppParams.
 */

#ifndef RSVM_APPS_APP_COMMON_HH
#define RSVM_APPS_APP_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.hh"

namespace rsvm {
namespace apps {

/** Application parameters (meaning is app-specific). */
struct AppParams
{
    /** Primary problem size (points, matrix dim, molecules, keys...). */
    std::uint64_t size = 0;
    /** Iterations / timesteps where applicable. */
    std::uint64_t steps = 0;
    /** Modelled ns of computation per inner-loop work item. */
    SimTime computePerItem = 0;
};

/** Verification outcome. */
struct AppResult
{
    bool ok = false;
    std::string detail;
};

/** An instantiated application, ready to run on a Cluster. */
struct AppInstance
{
    std::string name;
    /** Allocate shared data, assign homes, precompute references. */
    std::function<void(Cluster &)> setup;
    /** Per-thread parallel program. */
    Cluster::AppFn threadFn;
    /** Engine-side verification after the run. */
    std::function<AppResult(Cluster &)> verify;
};

/** Factory: instantiate one of the suite's applications by name. */
AppInstance makeApp(const std::string &name, const AppParams &params);

/** Names of all applications in the suite (paper order). */
const std::vector<std::string> &appNames();

/** Default (scaled) parameters for an application. */
AppParams defaultParams(const std::string &name);

/** The paper's full problem sizes (§5.1). */
AppParams paperParams(const std::string &name);

// Factories (one per kernel; see the per-app translation units).
AppInstance makeFft(const AppParams &params);
AppInstance makeLu(const AppParams &params);
AppInstance makeWaterNsq(const AppParams &params);
AppInstance makeWaterSp(const AppParams &params);
AppInstance makeRadix(const AppParams &params);
AppInstance makeVolrend(const AppParams &params);

/** Convenience: run an app on a fresh cluster and verify. */
AppResult runAndVerify(const Config &cfg, const std::string &name,
                       const AppParams &params);

} // namespace apps
} // namespace rsvm

#endif // RSVM_APPS_APP_COMMON_HH

/**
 * @file
 * Mini SPLASH-2 Volrend (§5.1: the "head" data set on the paper's
 * testbed).
 *
 * Parallel ray-casting volume renderer over a synthetic density
 * volume (nested shells). The image is divided into tiles handed out
 * through a shared task-queue counter under a lock — Volrend's
 * signature dynamic load balancing — so the read-mostly volume pages
 * spread across all nodes while image tiles are written by whichever
 * thread grabbed them.
 *
 * Integer ray accumulation makes the parallel result exact against the
 * serial reference.
 */

#include "apps/app_common.hh"

#include <memory>
#include <vector>

#include "base/panic.hh"

namespace rsvm {
namespace apps {
namespace {

constexpr LockId kQueueLock = 11;
constexpr std::uint32_t kTile = 8;

/** Synthetic volume density at (x, y, z) in a v^3 grid. */
inline std::uint32_t
voxel(std::uint32_t x, std::uint32_t y, std::uint32_t z,
      std::uint32_t v)
{
    std::int64_t cx = 2 * static_cast<std::int64_t>(x) - v + 1;
    std::int64_t cy = 2 * static_cast<std::int64_t>(y) - v + 1;
    std::int64_t cz = 2 * static_cast<std::int64_t>(z) - v + 1;
    std::uint64_t r2 =
        static_cast<std::uint64_t>(cx * cx + cy * cy + cz * cz);
    // Nested shells: density varies with radius bands.
    return static_cast<std::uint32_t>((r2 / (v ? v : 1)) % 97);
}

struct VolrendState
{
    std::uint32_t v = 0;     // volume edge
    std::uint32_t img = 0;   // image edge (v, square)
    SimTime cpi = 0;
    Addr volume = 0;   // v^3 u32 voxels
    Addr image = 0;    // img^2 u32 pixels
    Addr taskNext = 0; // shared tile counter
};

} // namespace

AppInstance
makeVolrend(const AppParams &params)
{
    auto st = std::make_shared<VolrendState>();
    st->v = static_cast<std::uint32_t>(params.size);
    rsvm_assert_msg(st->v % kTile == 0,
                    "volrend size must be a multiple of the tile size");
    st->img = st->v;
    st->cpi = params.computePerItem;

    AppInstance app;
    app.name = "volrend";

    app.setup = [st](Cluster &cluster) {
        const Config &cfg = cluster.config();
        std::uint64_t vol_bytes =
            static_cast<std::uint64_t>(st->v) * st->v * st->v * 4;
        st->volume = cluster.mem().allocPageAligned(vol_bytes);
        st->image = cluster.mem().allocPageAligned(
            static_cast<std::uint64_t>(st->img) * st->img * 4);
        st->taskNext = cluster.mem().allocPageAligned(8);
        // Volume slabs distributed round-robin over nodes (read-mostly
        // data everyone fetches).
        std::uint64_t slab =
            (vol_bytes + cfg.numNodes - 1) / cfg.numNodes;
        slab = (slab + cfg.pageSize - 1) / cfg.pageSize *
               cfg.pageSize;
        for (NodeId nid = 0; nid < cfg.numNodes; ++nid) {
            std::uint64_t off = nid * slab;
            if (off >= vol_bytes)
                break;
            cluster.mem().setPrimaryHomeRange(
                st->volume + off, std::min(slab, vol_bytes - off),
                nid);
        }
    };

    app.threadFn = [st](AppThread &t) {
        const std::uint32_t v = st->v;
        auto vox = [&](std::uint32_t x, std::uint32_t y,
                       std::uint32_t z) -> Addr {
            return st->volume +
                   ((static_cast<std::uint64_t>(x) * v + y) * v + z) *
                       4;
        };

        // Init: each thread fills a contiguous share of volume slices.
        std::uint32_t nthreads = t.clusterThreads();
        std::uint32_t slices = v / nthreads;
        std::uint32_t x0 = t.id() * slices;
        std::uint32_t x1 =
            (t.id() + 1 == nthreads) ? v : x0 + slices;
        for (std::uint32_t x = x0; x < x1; ++x)
            for (std::uint32_t y = 0; y < v; ++y)
                for (std::uint32_t z = 0; z < v; ++z)
                    t.put<std::uint32_t>(vox(x, y, z),
                                         voxel(x, y, z, v));
        t.compute(st->cpi * (x1 - x0) * v * v / 8);
        t.barrier();

        // Task loop: grab tiles off the shared queue.
        std::uint32_t tiles_per_row = st->img / kTile;
        std::uint32_t total_tiles = tiles_per_row * tiles_per_row;
        for (;;) {
            t.lock(kQueueLock);
            std::uint64_t tile = t.get<std::uint64_t>(st->taskNext);
            if (tile < total_tiles)
                t.put<std::uint64_t>(st->taskNext, tile + 1);
            t.unlock(kQueueLock);
            if (tile >= total_tiles)
                break;

            std::uint32_t tr = static_cast<std::uint32_t>(
                                   tile / tiles_per_row) * kTile;
            std::uint32_t tc = static_cast<std::uint32_t>(
                                   tile % tiles_per_row) * kTile;
            for (std::uint32_t r = tr; r < tr + kTile; ++r) {
                for (std::uint32_t c = tc; c < tc + kTile; ++c) {
                    // Cast a ray along z: front-to-back accumulation
                    // with early termination.
                    std::uint64_t acc = 0;
                    for (std::uint32_t z = 0; z < v; ++z) {
                        acc += t.get<std::uint32_t>(vox(r, c, z));
                        if (acc > 4096)
                            break;
                    }
                    t.put<std::uint32_t>(
                        st->image +
                            (static_cast<std::uint64_t>(r) * st->img +
                             c) * 4,
                        static_cast<std::uint32_t>(acc));
                }
            }
            t.compute(st->cpi * kTile * kTile * v / 4);
        }
        t.barrier();
    };

    app.verify = [st](Cluster &cluster) -> AppResult {
        const std::uint32_t v = st->v;
        std::vector<std::uint32_t> ref(
            static_cast<std::size_t>(st->img) * st->img);
        for (std::uint32_t r = 0; r < st->img; ++r) {
            for (std::uint32_t c = 0; c < st->img; ++c) {
                std::uint64_t acc = 0;
                for (std::uint32_t z = 0; z < v; ++z) {
                    acc += voxel(r, c, z, v);
                    if (acc > 4096)
                        break;
                }
                ref[static_cast<std::size_t>(r) * st->img + c] =
                    static_cast<std::uint32_t>(acc);
            }
        }
        std::vector<std::uint32_t> got(ref.size());
        cluster.debugRead(st->image, got.data(), got.size() * 4);

        AppResult res;
        res.ok = (got == ref);
        res.detail = res.ok ? "volrend: image exact"
                            : "volrend: image differs from reference";
        return res;
    };

    return app;
}

} // namespace apps
} // namespace rsvm

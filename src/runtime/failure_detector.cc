#include "runtime/failure_detector.hh"

#include "net/network.hh"
#include "net/vmmc.hh"
#include "sim/engine.hh"

namespace rsvm {

FailureDetector::FailureDetector(Engine &engine, Network &network,
                                 Vmmc &vmmc, const Config &config)
    : eng(engine), net(network), vm(vmmc), cfg(config)
{
    const auto n = static_cast<std::size_t>(cfg.numNodes);
    lastHeard_.assign(n * n, 0);
    declared_.assign(n, false);
}

void
FailureDetector::start()
{
    started_ = true;
    const auto n = static_cast<std::size_t>(cfg.numNodes);
    for (std::size_t i = 0; i < n * n; ++i)
        lastHeard_[i] = eng.now();
    eng.schedule(cfg.heartbeatPeriod, [this] { tick(); });
}

void
FailureDetector::heard(PhysNodeId hearer, PhysNodeId from)
{
    if (!active())
        return;
    lastHeard_[static_cast<std::size_t>(hearer) * cfg.numNodes + from] =
        eng.now();
}

void
FailureDetector::tick()
{
    // Stop rescheduling once the cluster is lost or all compute threads
    // have finished: a periodic task with no end would keep the engine
    // alive forever.
    if (stopped_ || (aliveCheck && !aliveCheck()))
        return;

    const int n = cfg.numNodes;
    const SimTime lease =
        cfg.heartbeatPeriod * static_cast<SimTime>(cfg.missedLeases);

    // Lease check: a peer nobody has heard from for missedLeases
    // periods is declared dead. Any live hearer's lease suffices —
    // per-node detectors would gossip suspicions; we model the
    // converged outcome directly.
    for (PhysNodeId p = 0; p < n; ++p) {
        if (declared_[p])
            continue;
        SimTime freshest = 0;
        bool anyHearer = false;
        for (PhysNodeId h = 0; h < n; ++h) {
            if (h == p || declared_[h] || !net.nodeAlive(h))
                continue;
            anyHearer = true;
            SimTime t =
                lastHeard_[static_cast<std::size_t>(h) * n + p];
            if (t > freshest)
                freshest = t;
        }
        if (!anyHearer)
            continue;
        if (eng.now() - freshest > lease) {
            stats.heartbeatsMissed += cfg.missedLeases;
            declare(p);
        }
    }

    // Heartbeat exchange: every live, undeclared node broadcasts.
    // Heartbeats are NIC-firmware control traffic: they bypass the
    // send/receive queues but still ride the (faulty) wire.
    for (PhysNodeId s = 0; s < n; ++s) {
        if (declared_[s] || !net.nodeAlive(s))
            continue;
        for (PhysNodeId d = 0; d < n; ++d) {
            if (d == s || declared_[d] || !net.nodeAlive(d))
                continue;
            Message hb;
            hb.src = s;
            hb.dst = d;
            hb.payloadBytes = 0;
            hb.kind = MsgKind::Heartbeat;
            hb.deliver = [this, s, d] { heard(d, s); };
            net.transmit(std::move(hb));
            stats.heartbeatsSent++;
        }
    }

    eng.schedule(cfg.heartbeatPeriod, [this] { tick(); });
}

void
FailureDetector::readmit(PhysNodeId phys)
{
    if (!declared_[phys])
        return;
    declared_[phys] = false;
    const int n = cfg.numNodes;
    // Fresh leases in both directions: the node must not be
    // re-declared before it has had a chance to heartbeat, and its own
    // view of every peer starts fresh too.
    for (PhysNodeId q = 0; q < n; ++q) {
        lastHeard_[static_cast<std::size_t>(q) * n + phys] = eng.now();
        lastHeard_[static_cast<std::size_t>(phys) * n + q] = eng.now();
    }
}

void
FailureDetector::expel(PhysNodeId phys)
{
    declared_[phys] = true;
}

void
FailureDetector::declare(PhysNodeId phys)
{
    if (declared_[phys])
        return;
    declared_[phys] = true;
    // (failuresDetected is counted by the recovery manager, which this
    // declaration reaches through the peer-death hook.)

    // Fence first: from this instant nothing the declared node sent —
    // including messages already in flight — may apply anywhere.
    bool falseSuspicion = net.nodeAlive(phys);
    vm.fence(phys);

    // A falsely-suspected node is slow, not dead. The fail-stop model
    // the recovery protocol assumes is *enforced* here: convert the
    // suspicion into a real, clean kill before announcing the death.
    if (falseSuspicion) {
        stats.falseSuspicionsFenced++;
        if (killHook)
            killHook(phys);
    }

    vm.notifyDeath(phys);
}

} // namespace rsvm

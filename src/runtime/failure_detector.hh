/**
 * @file
 * Heartbeat/lease failure detector (replaces the send-error oracle).
 *
 * Every heartbeatPeriod, each live node sends a heartbeat to every
 * other live node over the (lossy) wire; any transport delivery also
 * renews the sender's lease at the receiver. A node that has not been
 * heard from for missedLeases periods is *declared* dead:
 *
 *  1. it is fenced in the Vmmc — pending sends to it fail, and every
 *     later delivery from it is rejected;
 *  2. if it is in fact still alive (a false suspicion: slow or
 *     stalled, not dead), it is converted to a clean fail-stop kill —
 *     the paper's fail-stop model is *enforced*, not assumed;
 *  3. the death is announced to the recovery manager, which bumps the
 *     cluster epoch before remapping the victim's homes.
 *
 * Because fencing precedes the epoch bump and the victim never learns
 * the new epoch, none of its in-flight messages can commit after
 * recovery has remapped its state — a falsely-suspected releaser can
 * stall mid-release and still never corrupt committed copies.
 *
 * The detector is a global engine task (modelling per-node detectors
 * without N^2 fibers); it stops rescheduling once every compute
 * thread has finished, and is stopped explicitly when the cluster is
 * declared lost, so it never keeps the engine alive artificially.
 */

#ifndef RSVM_RUNTIME_FAILURE_DETECTOR_HH
#define RSVM_RUNTIME_FAILURE_DETECTOR_HH

#include <functional>
#include <vector>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/types.hh"

namespace rsvm {

class Engine;
class Network;
class Vmmc;

/** Cluster-wide heartbeat/lease failure detector. */
class FailureDetector
{
  public:
    FailureDetector(Engine &engine, Network &network, Vmmc &vmmc,
                    const Config &config);

    /** Engine-liveness gate: keep ticking while this returns true. */
    void setAliveCheck(std::function<bool()> check)
    { aliveCheck = std::move(check); }

    /** Fail-stop conversion for falsely-suspected (live) nodes. */
    void setKillHook(std::function<void(PhysNodeId)> hook)
    { killHook = std::move(hook); }

    /** Begin ticking (first tick one period from now). */
    void start();

    /** Stop permanently (cluster lost / teardown). */
    void stop() { stopped_ = true; }

    /**
     * Resume after a cold restart: fresh leases all around and a new
     * tick chain. Callers must readmit() each revived node first so
     * stale declarations do not instantly re-fence the restarted
     * cluster. The pre-stop tick already fired as a no-op, so this
     * cannot double-tick.
     */
    void
    restart()
    {
        stopped_ = false;
        start();
    }

    /** True while the detector is the cluster's death authority. */
    bool active() const { return started_ && !stopped_; }

    /** Lease renewal: @p hearer received something from @p from. */
    void heard(PhysNodeId hearer, PhysNodeId from);

    /** True once @p phys has been declared dead by the detector. */
    bool declared(PhysNodeId phys) const { return declared_[phys]; }

    /**
     * Re-admit a declared-dead node that has been repaired and revived
     * (rejoin, runtime/membership): the declaration is cleared and its
     * leases reset in both directions, so the next tick treats it as a
     * first-class member again. The caller must already have revived
     * the NIC and readmitted the node at the transport layer.
     */
    void readmit(PhysNodeId phys);

    /**
     * Expel a node mid-join (the joiner died before its join
     * committed): re-declare it dead without announcing a peer death —
     * the joiner held no cluster state, so there is nothing to
     * recover.
     */
    void expel(PhysNodeId phys);

    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }

  private:
    void tick();
    void declare(PhysNodeId phys);

    Engine &eng;
    Network &net;
    Vmmc &vm;
    const Config &cfg;
    std::function<bool()> aliveCheck;
    std::function<void(PhysNodeId)> killHook;
    /** lastHeard_[hearer * N + from]: when hearer last heard from. */
    std::vector<SimTime> lastHeard_;
    std::vector<bool> declared_;
    bool started_ = false;
    bool stopped_ = false;
    Counters stats;
};

} // namespace rsvm

#endif // RSVM_RUNTIME_FAILURE_DETECTOR_HH

#include "runtime/persist_manager.hh"

#include <cstring>
#include <utility>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "sim/engine.hh"

namespace rsvm {

PersistManager::PersistManager(SvmContext &context)
    : ctx(context),
      // Deterministic but decoupled from every protocol draw: the
      // tier must not consume Engine::rng() numbers, or enabling it
      // would perturb the application's event stream.
      diskRng(context.cfg.seed * 0x9e3779b9u + 0x7075u)
{
    rsvm_assert_msg(ctx.cfg.protocol == ProtocolKind::FaultTolerant,
                    "the persistence tier requires the fault-tolerant "
                    "protocol");
    nodeSigs.assign(ctx.cfg.numNodes, NodeSig{});
    pageSigs.assign(ctx.as.numPages(), PageSig{});
    lockSigs.assign(ctx.locks.numLocks(), LockSig{});
    queues.resize(ctx.cfg.numNodes);
    draining.assign(ctx.cfg.numNodes, false);
    drainGen.assign(ctx.cfg.numNodes, 0);
}

FtProtocolNode *
PersistManager::ft(NodeId n) const
{
    return static_cast<FtProtocolNode *>(ctx.nodes[n]);
}

void
PersistManager::start()
{
    ctx.eng.schedule(ctx.cfg.persistEpoch, [this] { tick(); });
}

bool
PersistManager::quiescent() const
{
    if (ctx.pendingRecovery)
        return false;
    for (SvmNode *n : ctx.nodes) {
        if (n->releaseInProgress())
            return false;
    }
    // Every logical node's host must be alive: records are attributed
    // to hosts, and a dead-but-undeclared host means a recovery is
    // about to rewrite the state being captured.
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!ctx.ops->physAlive(ctx.ops->hostOf(n)))
            return false;
    }
    if (quiesceCheck && !quiesceCheck())
        return false;
    return true;
}

void
PersistManager::tick()
{
    bool alive = aliveCheck ? aliveCheck() : true;
    if (!alive) {
        // Application done (or cluster dead): persist the end state
        // once if a consistent cut is still available, then let the
        // engine drain — no further ticks.
        if (!finalDone && !stalled_ && quiescent()) {
            finalDone = true;
            capture();
        }
        return;
    }
    if (stalled_ || !quiescent())
        stats.persistCapturesSkipped++;
    else
        capture();
    ctx.eng.schedule(ctx.cfg.persistEpoch, [this] { tick(); });
}

void
PersistManager::capture()
{
    const NodeId num_nodes = ctx.numNodes();
    const std::uint64_t epoch = nextEpoch;
    std::vector<PersistRecord> recs;

    // ---- Node states: each node's backup checkpoint store ------------
    for (NodeId n = 0; n < num_nodes; ++n) {
        NodeId b = ctx.ops->backupOf(n);
        const CkptStore *cs = ft(b)->findStoreFor(n);
        NodeSig cur;
        cur.seen = true;
        if (cs) {
            cur.hasSaved = cs->hasSaved;
            cur.interval = cs->savedInterval;
            cur.barrierEpoch = cs->savedBarrierEpoch;
            cur.ts = cs->savedTs;
        }
        NodeSig &old = nodeSigs[n];
        bool changed = !old.seen || cur.hasSaved != old.hasSaved ||
                       cur.interval != old.interval ||
                       cur.barrierEpoch != old.barrierEpoch ||
                       !(cur.ts == old.ts);
        old = cur;
        // A node with no store yet has nothing worth a record; its
        // absence at restart means "start this node from the top".
        if (!changed || !cs)
            continue;
        auto payload = std::make_shared<PersistedNodeState>();
        payload->store = *cs;
        PersistRecord rec;
        rec.kind = PersistRecordKind::NodeState;
        rec.epoch = epoch;
        rec.key = n;
        rec.writer = ctx.ops->hostOf(b);
        rec.bytes = payload->store.modelBytes();
        rec.payload = std::move(payload);
        recs.push_back(std::move(rec));
    }

    // ---- Page images: committed bytes + version + home set ------------
    for (PageId p = 0; p < ctx.as.numPages(); ++p) {
        NodeId prim = ctx.as.primaryHome(p);
        FtProtocolNode *pn = ft(prim);
        HomeInfo *hi = pn->findHomeInfo(p);
        PageSig cur;
        cur.seen = true;
        cur.hasData = hi && hi->committed != nullptr;
        if (cur.hasData)
            cur.ver = hi->committedVer;
        cur.homes = ctx.as.homeSet(p);
        PageSig &old = pageSigs[p];
        // First sight of an untouched page sets the signature without
        // a record: restart-by-omission leaves it fresh, which is what
        // an uncommitted page is. After that, any change (including a
        // home move or a data-to-tombstone transition) emits.
        bool changed = old.seen
                           ? (cur.hasData != old.hasData ||
                              !(cur.ver == old.ver) ||
                              cur.homes != old.homes)
                           : cur.hasData;
        old = cur;
        if (!changed)
            continue;
        auto payload = std::make_shared<PersistedPageImage>();
        payload->hasData = cur.hasData;
        payload->ver = cur.ver;
        payload->homes = cur.homes;
        if (cur.hasData) {
            const std::byte *src = hi->committed.get();
            payload->bytes.assign(src, src + ctx.cfg.pageSize);
        }
        PersistRecord rec;
        rec.kind = PersistRecordKind::PageImage;
        rec.epoch = epoch;
        rec.key = p;
        rec.writer = ctx.ops->hostOf(prim);
        rec.bytes = 64 + payload->homes.size() * 4 +
                    (cur.hasData
                         ? ctx.cfg.pageSize + payload->ver.size() * 8
                         : 0);
        rec.payload = std::move(payload);
        recs.push_back(std::move(rec));
    }

    // ---- Lock images: home slots + timestamp + directory homes --------
    for (LockId l = 0; l < ctx.locks.numLocks(); ++l) {
        NodeId prim = ctx.locks.primaryHome(l);
        NodeId sec = ctx.locks.secondaryHome(l);
        auto it = ft(prim)->pollLocks.find(l);
        const PollLockHome *ph =
            it != ft(prim)->pollLocks.end() ? &it->second : nullptr;
        LockSig cur;
        cur.seen = true;
        cur.materialized = ph != nullptr;
        if (ph) {
            cur.slots = ph->slots;
            cur.ts = ph->ts;
        }
        cur.primary = prim;
        cur.secondary = sec;
        LockSig &old = lockSigs[l];
        bool initial_homes = prim == l % num_nodes &&
                             sec == (l % num_nodes + 1) % num_nodes;
        bool changed = old.seen
                           ? (cur.materialized != old.materialized ||
                              cur.slots != old.slots ||
                              !(cur.ts == old.ts) ||
                              cur.primary != old.primary ||
                              cur.secondary != old.secondary)
                           : (cur.materialized || !initial_homes);
        old = cur;
        if (!changed)
            continue;
        auto payload = std::make_shared<PersistedLockImage>();
        payload->materialized = cur.materialized;
        payload->slots = cur.slots;
        payload->ts = cur.ts;
        payload->primary = prim;
        payload->secondary = sec;
        PersistRecord rec;
        rec.kind = PersistRecordKind::LockImage;
        rec.epoch = epoch;
        rec.key = l;
        rec.writer = ctx.ops->hostOf(prim);
        rec.bytes = 32 + payload->slots.size() + payload->ts.size() * 8;
        rec.payload = std::move(payload);
        recs.push_back(std::move(rec));
    }

    if (recs.empty())
        return; // nothing changed; no epoch number consumed

    store.closeEpoch(epoch, recs.size());
    nextEpoch++;
    stats.persistEpochsClosed++;
    RSVM_LOG(LogComp::Ft, "persist: epoch %llu captured %zu records",
             static_cast<unsigned long long>(epoch), recs.size());

    for (PersistRecord &rec : recs) {
        stats.persistRecordsAppended++;
        stats.persistBytesAppended += rec.bytes;
        stats.persistRecordBytesHist.sample(rec.bytes);
        PhysNodeId w = rec.writer;
        if (ctx.injector)
            ctx.injector->failpoint(w, failpoints::kPersistEnqueue);
        if (!ctx.ops->physAlive(w)) {
            // The writer died at (or just before) the enqueue point:
            // the record is lost with its volatile buffers and this
            // epoch can never complete.
            stats.persistRecordsDropped++;
            stalled_ = true;
            continue;
        }
        enqueue(std::move(rec));
    }
}

void
PersistManager::enqueue(PersistRecord rec)
{
    PhysNodeId p = rec.writer;
    queues[p].push_back(std::move(rec));
    if (!draining[p])
        pumpDrain(p);
}

void
PersistManager::pumpDrain(PhysNodeId phys)
{
    if (queues[phys].empty()) {
        draining[phys] = false;
        return;
    }
    draining[phys] = true;
    auto rec = std::make_shared<PersistRecord>(
        std::move(queues[phys].front()));
    queues[phys].pop_front();

    SimTime lat = ctx.cfg.persistDiskLatency;
    if (ctx.cfg.persistDiskBandwidthBytesPerSec > 0) {
        lat += static_cast<SimTime>(
            static_cast<double>(rec->bytes) * 1e9 /
            ctx.cfg.persistDiskBandwidthBytesPerSec);
    }
    if (ctx.cfg.persistDiskJitterMax > 0)
        lat += diskRng.below(
            static_cast<std::uint64_t>(ctx.cfg.persistDiskJitterMax) + 1);

    std::uint64_t gen = drainGen[phys];
    ctx.eng.schedule(lat, [this, phys, gen, rec, lat] {
        if (gen != drainGen[phys])
            return; // the writer died; the in-flight write is lost
        stats.persistRecordsDurable++;
        stats.persistBytesDurable += rec->bytes;
        stats.persistDrainNsHist.sample(lat);
        std::uint64_t before = store.watermark();
        store.appendDurable(std::move(*rec));
        if (ctx.injector &&
            ctx.injector->failpoint(phys, failpoints::kPersistDrain))
            return; // killed: onPhysDeath already reset our queue
        if (store.watermark() > before) {
            RSVM_LOG(LogComp::Ft, "persist: watermark -> %llu",
                     static_cast<unsigned long long>(store.watermark()));
            if (ctx.injector &&
                ctx.injector->failpoint(phys,
                                        failpoints::kPersistWatermark))
                return;
        }
        pumpDrain(phys);
    });
}

void
PersistManager::onPhysDeath(PhysNodeId phys)
{
    std::uint64_t dropped = queues[phys].size();
    if (draining[phys])
        dropped++; // the in-flight write dies with the node
    drainGen[phys]++;
    queues[phys].clear();
    draining[phys] = false;
    if (dropped == 0)
        return;
    stats.persistRecordsDropped += dropped;
    stalled_ = true;
    RSVM_LOG(LogComp::Ft,
             "persist: node %u died with %llu records pending; "
             "watermark stalls at %llu",
             phys, static_cast<unsigned long long>(dropped),
             static_cast<unsigned long long>(store.watermark()));
}

// ------------------------------------------------------------ cold restart

PersistScan
PersistManager::scanForRestart()
{
    // Count partials before truncation discards them; re-scan after so
    // the returned record pointers reference the surviving log only.
    PersistScan pre = store.scan();
    stats.persistPartialsDiscarded += pre.partialsDiscarded;
    store.truncateToWatermark();
    PersistScan out = store.scan();
    out.partialsDiscarded = pre.partialsDiscarded;
    return out;
}

void
PersistManager::rebuildFromScan(const PersistScan &scan)
{
    static const std::unordered_map<IntervalNum, std::vector<PageId>>
        kNoPages;
    const NodeId num_nodes = ctx.numNodes();

    auto find = [&scan](PersistRecordKind kind, std::uint64_t key)
        -> const PersistRecord * {
        auto it = scan.latest.find(std::make_pair(kind, key));
        return it == scan.latest.end() ? nullptr : it->second;
    };

    // 1. Reset every node to its persisted cut (fresh boot without a
    //    record: the node never completed a release before the cut).
    for (NodeId n = 0; n < num_nodes; ++n) {
        const PersistRecord *rec = find(PersistRecordKind::NodeState, n);
        const auto *ps =
            rec ? static_cast<const PersistedNodeState *>(
                      rec->payload.get())
                : nullptr;
        VectorClock ts(ctx.cfg.numNodes);
        IntervalNum interval = 0;
        std::uint64_t barrier_epoch = 0;
        if (ps && ps->store.hasSaved) {
            ts = ps->store.savedTs;
            interval = ps->store.savedInterval;
            barrier_epoch = ps->store.savedBarrierEpoch;
        }
        ft(n)->resetForRehost(ts, interval, barrier_epoch,
                              ps ? ps->store.intervalPages : kNoPages);
    }

    // 2. Reinstall backup stores under the restored (identity) backup
    //    assignment — store placement is volatile runtime state, so
    //    any consistent placement is valid.
    for (NodeId n = 0; n < num_nodes; ++n) {
        const PersistRecord *rec = find(PersistRecordKind::NodeState, n);
        if (!rec)
            continue;
        const auto *ps =
            static_cast<const PersistedNodeState *>(rec->payload.get());
        ft(ctx.ops->backupOf(n))->storeFor(n) = ps->store;
    }

    // 3. Locks: directory homes + materialized home state at both
    //    homes (full-copy installs, like recovery's lock cleanup).
    for (LockId l = 0; l < ctx.locks.numLocks(); ++l) {
        const PersistRecord *rec = find(PersistRecordKind::LockImage, l);
        if (!rec) {
            ctx.locks.restoreHomes(l, l % num_nodes,
                                   (l % num_nodes + 1) % num_nodes);
            continue;
        }
        const auto *pl =
            static_cast<const PersistedLockImage *>(rec->payload.get());
        ctx.locks.restoreHomes(l, pl->primary, pl->secondary);
        if (!pl->materialized)
            continue;
        PollLockHome home(ctx.cfg.numNodes);
        home.slots = pl->slots;
        home.ts = pl->ts;
        ft(pl->primary)->pollHome(l) = home;
        ft(pl->secondary)->pollHome(l) = home;
    }

    // 4. Pages: home directory + committed bytes at the primary and
    //    tentative mirrors at the secondaries. Pages without a record
    //    stay fresh (never committed at any persisted cut); their
    //    current home assignment only affects timing, not results.
    for (PageId p = 0; p < ctx.as.numPages(); ++p) {
        const PersistRecord *rec = find(PersistRecordKind::PageImage, p);
        if (!rec)
            continue;
        const auto *pi =
            static_cast<const PersistedPageImage *>(rec->payload.get());
        if (!pi->homes.empty())
            ctx.as.restoreHomeSet(p, pi->homes);
        if (!pi->hasData)
            continue;
        NodeId prim = ctx.as.primaryHome(p);
        FtProtocolNode *pn = ft(prim);
        std::memcpy(pn->committedData(p), pi->bytes.data(),
                    ctx.cfg.pageSize);
        pn->homeInfo(p).committedVer = pi->ver;
        for (NodeId s : ctx.as.secondaryHomes(p)) {
            FtProtocolNode *sn = ft(s);
            std::memcpy(sn->tentativeData(p), pi->bytes.data(),
                        ctx.cfg.pageSize);
            sn->homeInfo(p).tentativeVer = pi->ver;
        }
    }
}

void
PersistManager::resetAfterColdRestart()
{
    stats.coldRestarts++;
    stalled_ = false;
    finalDone = false;
    nextEpoch = store.watermark() + 1;
    for (auto &q : queues)
        q.clear();
    for (auto &g : drainGen)
        g++; // neuter anything still in flight from the old world
    std::fill(draining.begin(), draining.end(), false);
    // Clearing the signatures makes the next capture a full snapshot:
    // redundant against the restored log, but self-evidently correct.
    nodeSigs.assign(ctx.cfg.numNodes, NodeSig{});
    pageSigs.assign(ctx.as.numPages(), PageSig{});
    lockSigs.assign(ctx.locks.numLocks(), LockSig{});
    start();
}

} // namespace rsvm

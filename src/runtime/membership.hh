/**
 * @file
 * Elastic membership: operator-driven node join/rejoin with bulk
 * state transfer (runtime/membership).
 *
 * The paper's recovery protocol (§4.5) shrinks the cluster: a failed
 * node is fenced, its logical state re-hosted on survivors, and the
 * carcass never returns. This subsystem closes the loop. A repaired
 * host registers with the JoinManager, which drives a four-step,
 * crash-safe join:
 *
 *   1. admit    — revive the NIC, readmit the node at the transport
 *                 (fresh channels, current cluster epoch) and at the
 *                 failure detector (fresh leases), and bump the
 *                 cluster epoch so anything the host sent in a prior
 *                 life is rejected on arrival;
 *   2. transfer — bulk state transfer: the modeled bytes of every
 *                 logical node moving back onto the joiner (working
 *                 copies, home replicas, checkpoint stores, lock
 *                 homes) are charged as wire time;
 *   3. commit   — the atomic directory flip: moving logical nodes are
 *                 re-hosted onto the joiner, and pages left below
 *                 their target replication degree by past failures
 *                 re-grow a tentative replica on the joiner;
 *   4. activate — deferred work is re-serviced, co-hosted backups are
 *                 re-spread onto the joiner, and the node enters the
 *                 placement pool (adaptive homing sees it via the
 *                 ordinary host map).
 *
 * Crash safety mirrors homing's migration discipline: a joiner death
 * before the commit flip rolls the join back out (the joiner held no
 * cluster state, so it is simply re-fenced — no recovery pass runs);
 * a death at or after the flip is an ordinary member death handled by
 * the recovery manager. A bystander death mid-join aborts the join
 * and requeues it behind the recovery pass, as does a join requested
 * while a recovery is in flight. Each step fires a `join:*` failpoint
 * (net/failure) so campaigns can kill at every stage.
 */

#ifndef RSVM_RUNTIME_MEMBERSHIP_HH
#define RSVM_RUNTIME_MEMBERSHIP_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace rsvm {

struct SvmContext;
class FailureDetector;
class FtProtocolNode;

/** Drives node join/rejoin and the bulk state transfer. */
class JoinManager
{
  public:
    JoinManager(SvmContext &context, FailureDetector *det);

    /** Engine-liveness gate: queued joins are dropped once false. */
    void setAliveCheck(std::function<bool()> check)
    { aliveCheck = std::move(check); }

    /**
     * Register host @p phys for (re)join. Validation is
     * armFailpoint-style: an unknown physical node id is a fatal
     * operator error (rsvm_fatal, not a raw assert); a host that is
     * currently a live member is rejected cleanly (returns false,
     * reason in @p why). A valid request is queued and served in
     * order — behind any in-flight join, and behind any recovery pass
     * in progress. Returns true once queued.
     */
    bool requestJoin(PhysNodeId phys, std::string *why = nullptr);

    /** Operator script: request the join at absolute time @p when. */
    void scheduleJoin(SimTime when, PhysNodeId phys);

    /** Stop permanently (cluster lost / teardown); drops the queue. */
    void stop();

    /**
     * Accept joins again after a cold restart. The queue was dropped
     * by stop() and any in-flight join died with the cluster, so the
     * manager restarts idle and empty.
     */
    void
    restart()
    {
        stopped_ = false;
        state_ = State::Idle;
        pollArmed_ = false;
        pending_.clear();
    }

    /** True while a join is in flight. */
    bool joining() const { return state_ != State::Idle; }
    /** Joins requested but not yet started. */
    std::size_t queued() const { return pending_.size(); }

    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }

  private:
    enum class State { Idle, Admitting, Transferring, Committing,
                       Activating };

    void pump();
    void startJoin(PhysNodeId phys);
    void stepTransfer();
    void stepCommit();
    void stepActivate();

    /**
     * Fire failpoint @p name on every live physical node and classify
     * any resulting deaths. Returns true when the join cannot proceed
     * past this point (joiner rolled back, join aborted/requeued, or
     * a post-commit death handed off to recovery).
     */
    bool firePoint(const char *name, bool committed);

    /** Re-fence a pre-commit joiner (dead or aborted); no recovery. */
    void rollBack(const char *at);
    /** Abort a pre-commit join (bystander died); requeue the joiner. */
    void abortAndRequeue(const char *at);
    void finish();

    std::uint64_t computeBulkBytes(NodeId moving) const;
    FtProtocolNode *ft(NodeId n) const;
    bool quiesced() const;
    /** A recovery pass in flight, or a death not yet declared. */
    bool pendingFailure() const;

    SvmContext &ctx;
    FailureDetector *detector;
    std::function<bool()> aliveCheck;
    std::deque<PhysNodeId> pending_;
    State state_ = State::Idle;
    PhysNodeId joiner_ = 0;
    SimTime t0_ = 0;
    bool pollArmed_ = false;
    bool stopped_ = false;
    Counters stats;
};

} // namespace rsvm

#endif // RSVM_RUNTIME_MEMBERSHIP_HH

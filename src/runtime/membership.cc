#include "runtime/membership.hh"

#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "net/failure.hh"
#include "net/nic.hh"
#include "runtime/failure_detector.hh"
#include "sim/engine.hh"
#include "svm/protocol.hh"

namespace rsvm {

JoinManager::JoinManager(SvmContext &context, FailureDetector *det)
    : ctx(context), detector(det)
{
}

FtProtocolNode *
JoinManager::ft(NodeId n) const
{
    return static_cast<FtProtocolNode *>(ctx.nodes[n]);
}

bool
JoinManager::requestJoin(PhysNodeId phys, std::string *why)
{
    if (stopped_) {
        if (why)
            *why = "membership is stopped (cluster lost or torn down)";
        stats.joinsRejected++;
        return false;
    }
    // armFailpoint-style validation: naming a host the cluster has
    // never heard of is an operator-script bug, reported fatally with
    // the valid range instead of tripping a raw assert downstream.
    if (phys >= ctx.cfg.numNodes)
        rsvm_fatal("join request for unknown physical node " +
                   std::to_string(phys) + " (cluster has nodes 0.." +
                   std::to_string(ctx.cfg.numNodes - 1) + ")");
    if (ctx.ops->physAlive(phys) && !ctx.vmmc.isFenced(phys)) {
        if (why)
            *why = "physical node " + std::to_string(phys) +
                   " is already a live member";
        stats.joinsRejected++;
        return false;
    }
    pending_.push_back(phys);
    stats.joinsQueued++;
    RSVM_LOG(LogComp::Recovery, "join request for phys node %u queued",
             phys);
    pump();
    return true;
}

void
JoinManager::scheduleJoin(SimTime when, PhysNodeId phys)
{
    // Validate the id now so a bad operator script fails at arm time,
    // like FailureInjector::armFailpoint does for unknown points.
    if (phys >= ctx.cfg.numNodes)
        rsvm_fatal("join request for unknown physical node " +
                   std::to_string(phys) + " (cluster has nodes 0.." +
                   std::to_string(ctx.cfg.numNodes - 1) + ")");
    ctx.eng.at(when, [this, phys] { requestJoin(phys, nullptr); });
}

void
JoinManager::stop()
{
    stopped_ = true;
    pending_.clear();
}

void
JoinManager::pump()
{
    if (stopped_ || state_ != State::Idle || pending_.empty())
        return;
    if (aliveCheck && !aliveCheck()) {
        // The application already finished; joining now would only
        // keep the engine alive. Drop the queue.
        pending_.clear();
        return;
    }
    // Join-during-recovery queues behind the pass. A request landing
    // in the window between ANY host's physical death and the failure
    // detector's declaration waits too: the cluster is about to
    // recover, and admitting a host before the pending death is
    // fenced would revive it under survivors' armed retransmit state
    // and an unbumped epoch (or race the upcoming remap).
    if (pendingFailure()) {
        if (!pollArmed_) {
            pollArmed_ = true;
            ctx.eng.schedule(50 * kMicrosecond, [this] {
                pollArmed_ = false;
                pump();
            });
        }
        return;
    }
    PhysNodeId next = pending_.front();
    pending_.pop_front();
    if (ctx.ops->physAlive(next) && !ctx.vmmc.isFenced(next)) {
        // Already rejoined through an earlier queue entry.
        stats.joinsRejected++;
        pump();
        return;
    }
    startJoin(next);
}

void
JoinManager::startJoin(PhysNodeId phys)
{
    state_ = State::Admitting;
    joiner_ = phys;
    t0_ = ctx.eng.now();
    stats.joins++;
    RSVM_LOG(LogComp::Recovery, "join: admitting phys node %u", phys);

    // Admit: revive the hardware, reset the transport channels to the
    // fresh-boot state and teach the joiner the current epoch, renew
    // its detector leases, then bump the cluster epoch so anything it
    // (or a slow survivor) still has in flight from before is
    // rejected on arrival.
    ctx.vmmc.network().nic(phys).revive();
    ctx.vmmc.readmit(phys);
    if (detector)
        detector->readmit(phys);
    if (ctx.injector)
        ctx.injector->readmit(phys);
    ctx.vmmc.bumpEpoch();

    if (firePoint(failpoints::kJoinAdmit, false))
        return;
    state_ = State::Transferring;
    ctx.eng.schedule(ctx.cfg.joinFixedCost, [this] { stepTransfer(); });
}

void
JoinManager::stepTransfer()
{
    if (stopped_)
        return;
    if (!ctx.ops->physAlive(joiner_)) {
        rollBack("transfer");
        return;
    }
    if (pendingFailure()) {
        abortAndRequeue("transfer");
        return;
    }

    // Bulk state transfer: the logical node returning to its native
    // host carries its entire state — the directory flip at commit is
    // atomic, so the copy is accounted here as modeled bytes and wire
    // time. (Nothing is physically moved: node objects are location-
    // independent in the simulation; hosting is pure routing.)
    NodeId moving = joiner_;
    std::uint64_t bytes = 0;
    if (ctx.ops->hostOf(moving) != joiner_)
        bytes = computeBulkBytes(moving);
    stats.bulkTransferBytes += bytes;
    RSVM_LOG(LogComp::Recovery,
             "join: bulk transfer of %llu bytes to phys node %u",
             static_cast<unsigned long long>(bytes), joiner_);

    if (firePoint(failpoints::kJoinTransfer, false))
        return;
    state_ = State::Committing;
    ctx.eng.schedule(ctx.cfg.wireTime(bytes), [this] { stepCommit(); });
}

bool
JoinManager::pendingFailure() const
{
    if (ctx.pendingRecovery)
        return true;
    // A host that is physically dead but not yet fenced is a failure
    // the cluster has not processed (the detector's lease has not
    // expired): the recovery pass is coming, so joins must hold.
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
        if (!ctx.ops->physAlive(p) && !ctx.vmmc.isFenced(p))
            return true;
    }
    return false;
}

bool
JoinManager::quiesced() const
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!ctx.ops->physAlive(ctx.ops->hostOf(n)))
            continue;
        if (ctx.nodes[n]->releaseInProgress())
            return false;
    }
    return true;
}

void
JoinManager::stepCommit()
{
    if (stopped_)
        return;
    if (!ctx.ops->physAlive(joiner_)) {
        rollBack("commit");
        return;
    }
    if (pendingFailure()) {
        abortAndRequeue("commit");
        return;
    }
    if (!quiesced()) {
        // The commit flips the directory and installs re-grown
        // replicas; doing that under a release whose phase-1 fan-out
        // was already chosen would leave the new replica stale. Wait
        // for a release-quiescent instant (releases are short; the
        // engine reaches one between any two of them).
        ctx.eng.schedule(50 * kMicrosecond, [this] { stepCommit(); });
        return;
    }

    // Commit: the atomic directory flip. Logical nodes whose native
    // host is the joiner move back onto it (routing + compute
    // inflation only; in-flight deliveries keep applying to the same
    // node objects).
    NodeId moving = joiner_;
    if (ctx.ops->hostOf(moving) != joiner_)
        ctx.ops->rehost(moving, joiner_);

    // Re-grow pages that past failures left below their target
    // replication degree: the joiner's logical node becomes a new
    // tail secondary, seeded with the committed copy.
    const PageId num_pages = ctx.as.numPages();
    for (PageId p = 0; p < num_pages; ++p) {
        if (ctx.as.effectiveDegree(p) >= ctx.as.replicationDegree(p))
            continue;
        if (!ctx.as.growHomeSet(p, moving))
            continue;
        FtProtocolNode *pn = ft(ctx.as.primaryHome(p));
        HomeInfo *phi = pn->findHomeInfo(p);
        if (phi && phi->committed) {
            std::memcpy(ft(moving)->tentativeData(p),
                        phi->committed.get(), ctx.cfg.pageSize);
            HomeInfo &nhi = ft(moving)->homeInfo(p);
            nhi.tentativeVer = phi->committedVer;
            nhi.tentUndo.clear();
            stats.bulkTransferBytes += ctx.cfg.pageSize;
        }
        stats.pagesReGrown++;
    }
    stats.rejoins++;
    RSVM_LOG(LogComp::Recovery,
             "join: committed — phys node %u is a member again",
             joiner_);

    if (firePoint(failpoints::kJoinCommit, true))
        return;
    state_ = State::Activating;
    ctx.eng.schedule(ctx.cfg.joinFixedCost, [this] { stepActivate(); });
}

void
JoinManager::stepActivate()
{
    if (stopped_)
        return;
    if (!ctx.ops->physAlive(joiner_)) {
        // Post-commit death: an ordinary member death; recovery owns
        // it from here.
        finish();
        return;
    }

    // stepReProtect-style placement repair: backups crowded onto a
    // co-host by earlier failures re-spread onto the joiner, moving
    // their stores with them.
    NodeId moved = joiner_;
    for (NodeId g = 0; g < ctx.numNodes(); ++g) {
        if (g == moved || !ctx.ops->physAlive(ctx.ops->hostOf(g)))
            continue;
        NodeId b = ctx.ops->backupOf(g);
        if (ctx.ops->hostOf(b) != ctx.ops->hostOf(g))
            continue;
        if (ctx.ops->hostOf(moved) == ctx.ops->hostOf(g))
            continue;
        if (CkptStore *cs = ft(b)->findStoreFor(g)) {
            ft(moved)->storeFor(g) = *cs;
            ft(b)->dropStoreFor(g);
            stats.bulkTransferBytes += ctx.cfg.pageSize;
        }
        ctx.ops->setBackupOf(g, moved);
    }

    // Deferred fetches parked at homes may now be satisfiable.
    for (NodeId n = 0; n < ctx.numNodes(); ++n)
        ft(n)->serviceAllWaiters();

    stats.joinTimeNsHist.sample(ctx.eng.now() - t0_);
    RSVM_LOG(LogComp::Recovery, "join: phys node %u active after %llu ns",
             joiner_,
             static_cast<unsigned long long>(ctx.eng.now() - t0_));

    if (firePoint(failpoints::kJoinActivate, true))
        return;
    finish();
}

void
JoinManager::finish()
{
    state_ = State::Idle;
    pump();
}

bool
JoinManager::firePoint(const char *name, bool committed)
{
    const PhysNodeId n = ctx.cfg.numNodes;
    std::vector<bool> live(n);
    for (PhysNodeId p = 0; p < n; ++p)
        live[p] = ctx.ops->physAlive(p);
    if (ctx.injector) {
        for (PhysNodeId p = 0; p < n; ++p) {
            if (live[p])
                ctx.injector->failpoint(p, name);
        }
    }
    bool joinerDied = false, bystanderDied = false;
    for (PhysNodeId p = 0; p < n; ++p) {
        if (live[p] && !ctx.ops->physAlive(p)) {
            if (p == joiner_)
                joinerDied = true;
            else
                bystanderDied = true;
            RSVM_LOG(LogComp::Recovery,
                     "phys node %u died at join point '%s'", p, name);
        }
    }
    if (!joinerDied && !bystanderDied)
        return false;

    if (committed) {
        // The directory already names the joiner: any death here is an
        // ordinary member death. Let the failure detector declare it
        // and the recovery manager handle it; this join is over.
        finish();
        return true;
    }
    if (joinerDied) {
        // Pre-commit joiner death: the joiner holds no cluster state,
        // so no recovery pass runs — it is simply re-fenced. A
        // simultaneous bystander death takes the ordinary detection
        // path on its own.
        rollBack(name);
        return true;
    }
    // Pre-commit bystander death: the cluster is about to recover;
    // abort and retry the join behind the pass.
    abortAndRequeue(name);
    return true;
}

void
JoinManager::rollBack(const char *at)
{
    RSVM_LOG(LogComp::Recovery,
             "join: phys node %u died at '%s' before commit; "
             "rolling the join back out",
             joiner_, at);
    if (detector)
        detector->expel(joiner_);
    ctx.vmmc.fence(joiner_);
    // The rolled-back joiner is a handled carcass, not a member death:
    // no recovery sweep may announce it.
    ctx.vmmc.markDeathObserved(joiner_);
    stats.joinsRolledBack++;
    finish();
}

void
JoinManager::abortAndRequeue(const char *at)
{
    RSVM_LOG(LogComp::Recovery,
             "join: aborting at '%s' (failure elsewhere); phys node "
             "%u re-fenced and requeued behind recovery",
             at, joiner_);
    if (detector)
        detector->expel(joiner_);
    ctx.vmmc.fence(joiner_);
    ctx.vmmc.markDeathObserved(joiner_);
    ctx.vmmc.network().nic(joiner_).kill();
    pending_.push_front(joiner_);
    stats.joinsQueued++;
    finish();
}

std::uint64_t
JoinManager::computeBulkBytes(NodeId moving) const
{
    FtProtocolNode *node = ft(moving);
    std::uint64_t bytes = 0;
    // Working copies (page table entries with local data or twins).
    bytes += static_cast<std::uint64_t>(node->pt.size()) *
             ctx.cfg.pageSize;
    // Home replicas this node still holds (rare right after a
    // recovery remapped them away, common for a live consolidation).
    for (PageId p = 0; p < ctx.as.numPages(); ++p) {
        if (!ctx.as.isHome(p, moving))
            continue;
        if (const HomeInfo *hi = node->findHomeInfo(p)) {
            if (hi->committed)
                bytes += ctx.cfg.pageSize;
            if (hi->tentative)
                bytes += ctx.cfg.pageSize;
        }
    }
    // Checkpoint stores kept for protected nodes.
    for (const auto &[g, cs] : node->backupStores) {
        (void)g;
        bytes += ctx.cfg.pageSize;
        bytes += 64 * static_cast<std::uint64_t>(
                          cs.intervalPages.size());
    }
    // Lock homes (directory slots are small).
    for (LockId l = 0; l < ctx.locks.numLocks(); ++l) {
        if (ctx.locks.primaryHome(l) == moving ||
            ctx.locks.secondaryHome(l) == moving)
            bytes += 64;
    }
    return bytes;
}

} // namespace rsvm

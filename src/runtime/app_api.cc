#include "runtime/app_api.hh"

#include "runtime/cluster.hh"
#include "svm/protocol.hh"

namespace rsvm {

AppThread::AppThread(Cluster &cluster, SimThread &sim_thread,
                     NodeId node, std::uint32_t local_index,
                     ThreadId global_id)
    : cl(cluster), st(sim_thread), nid(node), local(local_index),
      gid(global_id),
      privateRng(cluster.config().seed * 7919 + global_id)
{
}

SvmNode &
AppThread::protocolNode()
{
    return cl.node(nid);
}

std::uint32_t
AppThread::clusterThreads() const
{
    return cl.numThreads();
}

void
AppThread::read(Addr addr, void *dst, std::uint64_t len)
{
    SvmNode &node = protocolNode();
    if (node.tryFastRead(addr, dst, len))
        return;
    // Slow path: the fault may block, so make the whole (idempotent)
    // read a restartable operation for checkpoint safety.
    st.runRestartableOp([&node, this, addr, dst, len] {
        node.readBytes(st, addr, dst, len);
    });
}

void
AppThread::write(Addr addr, const void *src, std::uint64_t len)
{
    SvmNode &node = protocolNode();
    if (node.tryFastWrite(addr, src, len))
        return;
    st.runRestartableOp([&node, this, addr, src, len] {
        node.writeBytes(st, addr, src, len);
    });
}

Addr
AppThread::alloc(std::uint64_t bytes, std::uint64_t align)
{
    return cl.mem().alloc(bytes, align);
}

void
AppThread::lock(LockId l)
{
    SvmNode *node = &protocolNode();
    st.runRestartableOp([node, this, l] { node->acquire(st, l); });
}

void
AppThread::unlock(LockId l)
{
    SvmNode *node = &protocolNode();
    st.runRestartableOp([node, this, l] { node->release(st, l); });
}

void
AppThread::barrier()
{
    SvmNode *node = &protocolNode();
    st.runRestartableOp([node, this] { node->barrier(st); });
}

void
AppThread::compute(SimTime ns)
{
    double factor = cl.computeInflation(nid);
    SimTime inflated = static_cast<SimTime>(
        static_cast<double>(ns) * factor);
    (void)st.delay(inflated, Comp::Compute);
}

} // namespace rsvm

#include "runtime/cluster.hh"

#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "net/nic.hh"
#include "runtime/persist_manager.hh"
#include "svm/base_protocol.hh"
#include "svm/homing/homing.hh"

namespace rsvm {

Cluster::Cluster(const Config &config)
    : cfg(config), eng(cfg), net(eng, cfg, cfg.numNodes),
      vm(eng, net, cfg), as(cfg, cfg.numNodes),
      lockDir(cfg.maxLocks, cfg.numNodes),
      ctx(eng, cfg, as, vm, lockDir), inj(eng)
{
    if (cfg.protocol == ProtocolKind::FaultTolerant &&
        cfg.numNodes < 2)
        rsvm_fatal("the fault-tolerant protocol needs >= 2 nodes");

    ctx.ops = this;
    ctx.injector = &inj;

    hostMap.resize(cfg.numNodes);
    backupMap.resize(cfg.numNodes);
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        hostMap[n] = n;
        backupMap[n] = (n + 1) % cfg.numNodes;
    }

    nodes.reserve(cfg.numNodes);
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        if (cfg.protocol == ProtocolKind::FaultTolerant)
            nodes.push_back(std::make_unique<FtProtocolNode>(ctx, n));
        else
            nodes.push_back(std::make_unique<BaseProtocolNode>(ctx, n));
        ctx.nodes.push_back(nodes.back().get());
    }

    inj.setKillAction([this](PhysNodeId p) { killPhysNode(p); });

    if (cfg.protocol == ProtocolKind::FaultTolerant) {
        recov = std::make_unique<RecoveryManager>(ctx);
        recov->setRestartHook(
            [this](ThreadId tid) { restartThreadFromTop(tid); });
        vm.setPeerDeathHook(
            [this](PhysNodeId p) { recov->onPhysFailure(p); });
        vm.setRecoveryPendingCheck([this] { return ctx.pendingRecovery; });

        // Heartbeat/lease failure detector: while it runs, it is the
        // sole death authority (the transport stops consulting the
        // NIC-liveness oracle). It stops ticking once every compute
        // thread has finished so the engine can drain.
        detector = std::make_unique<FailureDetector>(eng, net, vm, cfg);
        detector->setAliveCheck([this] {
            for (const auto &t : threads) {
                ThreadState s = t->sim().state();
                if (s != ThreadState::Finished && s != ThreadState::Dead)
                    return true;
            }
            return false;
        });
        detector->setKillHook([this](PhysNodeId p) { inj.killNow(p); });
        vm.setDetectorHooks(
            [this](PhysNodeId hearer, PhysNodeId from) {
                detector->heard(hearer, from);
            },
            [this] { return detector->active(); });
        detector->start();

        join = std::make_unique<JoinManager>(ctx, detector.get());
        join->setAliveCheck([this] {
            for (const auto &t : threads) {
                ThreadState s = t->sim().state();
                if (s != ThreadState::Finished && s != ThreadState::Dead)
                    return true;
            }
            return false;
        });
    }

    if (cfg.dynamicHoming) {
        rsvm_assert_msg(
            cfg.protocol == ProtocolKind::FaultTolerant,
            "dynamic homing requires the fault-tolerant protocol: "
            "migration relies on replicated page copies and release "
            "quiescence, which the base protocol does not provide");
        homing = std::make_unique<HomingManager>(ctx);
        homing->setDeathHook(
            [this](PhysNodeId p) { recov->onPhysFailure(p); });
        ctx.homing = &homing->profiler();
        homing->start();
    }

    if (cfg.persistEnabled) {
        rsvm_assert_msg(
            cfg.protocol == ProtocolKind::FaultTolerant,
            "the persistence tier requires the fault-tolerant protocol: "
            "it captures checkpoint stores and committed replicas, "
            "which the base protocol does not maintain");
        persist = std::make_unique<PersistManager>(ctx);
        persist->setAliveCheck([this] {
            for (const auto &t : threads) {
                ThreadState s = t->sim().state();
                if (s != ThreadState::Finished && s != ThreadState::Dead)
                    return true;
            }
            return false;
        });
        persist->setQuiesceCheck([this] {
            return (!join || !join->joining()) &&
                   (!homing || !homing->migrationInFlight());
        });
        persist->start();
    }
}

Cluster::~Cluster() = default;

std::function<void()>
Cluster::bodyFor(ThreadId tid)
{
    return [this, tid] { appFn(*threads[tid]); };
}

void
Cluster::spawn(AppFn fn)
{
    rsvm_assert_msg(threads.empty(), "spawn() may only be called once");
    rsvm_assert_msg(static_cast<bool>(fn), "empty application");
    appFn = std::move(fn);
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        for (std::uint32_t l = 0; l < cfg.threadsPerNode; ++l) {
            ThreadId tid = n * cfg.threadsPerNode + l;
            SimThread &st = eng.createThread(
                "n" + std::to_string(n) + ".t" + std::to_string(l));
            threads.push_back(
                std::make_unique<AppThread>(*this, st, n, l, tid));
        }
    }
    for (ThreadId tid = 0; tid < threads.size(); ++tid)
        threads[tid]->sim().start(bodyFor(tid));
}

void
Cluster::run()
{
    eng.run();
    // A simultaneous whole-cluster kill can leave nobody alive to run
    // recovery (and thus nobody to declare the loss): detect the
    // everything-is-dead outcome here so callers still get a clean,
    // reason-coded report instead of a silent half-finished run.
    if (!lost() && !threads.empty()) {
        bool unfinished = false;
        for (const auto &t : threads)
            unfinished |= t->sim().state() != ThreadState::Finished;
        bool any_alive = false;
        for (PhysNodeId p = 0; p < cfg.numNodes && !any_alive; ++p)
            any_alive = net.nodeAlive(p);
        // Kills landing after the last thread finished are harmless;
        // only an unfinished application with nobody left is a loss.
        if (unfinished && !any_alive)
            clusterLost(LossReason::AllNodesFailed,
                        "every physical node failed; no survivor to "
                        "run recovery");
    }
    if (lost())
        throw ClusterLostError(lostCode_, lostReason_);
}

void
Cluster::clusterLost(LossReason code, const std::string &detail)
{
    if (lost())
        return;
    lostCode_ = code;
    lostReason_ = detail;
    RSVM_LOG(LogComp::Recovery, "cluster lost [%s]: %s",
             lossReasonName(code), detail.c_str());
    if (homing)
        homing->stop();
    if (detector)
        detector->stop();
    if (join)
        join->stop();
    // Tear down every remaining compute thread so the engine drains
    // and run() can report the loss instead of hanging.
    for (auto &t : threads) {
        SimThread &st = t->sim();
        if (&st == eng.current())
            continue;
        if (st.state() != ThreadState::Finished &&
            st.state() != ThreadState::Dead)
            st.kill();
    }
}

void
Cluster::restartThreadFromTop(ThreadId tid)
{
    threads[tid]->sim().start(bodyFor(tid));
}

void
Cluster::coldRestart()
{
    rsvm_assert_msg(persist != nullptr,
                    "coldRestart() requires Config::persistEnabled");
    rsvm_assert_msg(!threads.empty(),
                    "coldRestart() before spawn() makes no sense");

    // Stragglers first: rebuild only ever starts from everything-dead.
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p) {
        if (net.nodeAlive(p))
            killPhysNode(p);
    }

    // A persist:restart-scan / persist:rebuild failpoint can kill a
    // node in the middle of the rebuild; the whole attempt is then
    // abandoned and retried from scratch (the log is untouched until
    // the attempt succeeds, so retrying is always safe).
    const int kMaxAttempts = 8;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        persist->counters().coldRestartAttempts++;

        // Revive every physical node and reset identity hosting (the
        // persisted cut is host-agnostic: record placement is volatile
        // runtime state). Mirrors the membership admit sequence; the
        // detector is readmitted/restarted last so a failpoint kill
        // during rebuild cannot cascade into live recovery.
        for (PhysNodeId p = 0; p < cfg.numNodes; ++p) {
            net.nic(p).revive();
            vm.readmit(p);
            inj.readmit(p);
        }
        vm.bumpEpoch();
        for (NodeId n = 0; n < cfg.numNodes; ++n) {
            hostMap[n] = n;
            backupMap[n] = (n + 1) % cfg.numNodes;
            vm.setHost(n, n);
        }

        auto allAlive = [this] {
            for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
                if (!net.nodeAlive(p))
                    return false;
            return true;
        };

        for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
            inj.failpoint(p, failpoints::kPersistRestartScan);
        if (!allAlive()) {
            RSVM_LOG(LogComp::Recovery,
                     "cold restart attempt %d died at restart-scan",
                     attempt);
            continue;
        }

        PersistScan scan = persist->scanForRestart();
        RSVM_LOG(LogComp::Recovery,
                 "cold restart: watermark %llu, %zu records, "
                 "%llu partials discarded",
                 static_cast<unsigned long long>(scan.watermark),
                 scan.latest.size(),
                 static_cast<unsigned long long>(scan.partialsDiscarded));
        persist->rebuildFromScan(scan);

        for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
            inj.failpoint(p, failpoints::kPersistRebuild);
        if (!allAlive()) {
            RSVM_LOG(LogComp::Recovery,
                     "cold restart attempt %d died at rebuild",
                     attempt);
            continue;
        }

        // Thread restore — same template as recovery's roll-back
        // (§4.5.3): restore from the checkpoint tagged with the node's
        // saved interval, restart from the top when none exists, and
        // leave threads the cut saw finish.
        for (ThreadId tid = 0; tid < threads.size(); ++tid) {
            AppThread &t = *threads[tid];
            NodeId n = t.node();
            auto *bk = static_cast<FtProtocolNode *>(
                nodes[backupMap[n]].get());
            const CkptStore *cs = bk->findStoreFor(n);
            IntervalNum tag =
                cs && cs->hasSaved ? cs->savedInterval : 0;
            const ThreadCkpt *ck =
                cs ? cs->find(t.sim().id(), tag) : nullptr;
            if (!ck) {
                restartThreadFromTop(tid);
            } else if (ck->finished) {
                // Finished before the cut: its side effects are in the
                // restored memory; leave it down.
            } else {
                t.sim().restoreFromImage(ck->image);
            }
        }

        // Forget the loss and every in-flight recovery remnant.
        ctx.pendingRecovery = false;
        ctx.recoveryWaiters.clear();
        recov->resetAfterColdRestart();
        lostReason_.clear();
        lostCode_ = LossReason::None;

        // Runtime services come back last, detector-first readmits so
        // stale declarations cannot instantly re-fence anyone.
        for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
            detector->readmit(p);
        detector->restart();
        join->restart();
        if (homing)
            homing->restart();
        persist->resetAfterColdRestart();
        RSVM_LOG(LogComp::Recovery,
                 "cold restart complete (attempt %d, watermark %llu)",
                 attempt,
                 static_cast<unsigned long long>(persist->watermark()));
        return;
    }
    throw ClusterLostError(
        LossReason::AllNodesFailed,
        "cold restart retry budget exhausted: a node died during "
        "every rebuild attempt");
}

void
Cluster::killPhysNode(PhysNodeId phys)
{
    RSVM_LOG(LogComp::Ft, "killing physical node %u", phys);
    net.nic(phys).kill();
    for (NodeId n : logicalNodesOn(phys)) {
        for (SimThread *t : computeThreads(n)) {
            if (eng.current() == t)
                continue; // the caller kills itself via killSelf()
            if (t->state() != ThreadState::Finished &&
                t->state() != ThreadState::Dead)
                t->kill();
        }
    }
    // Records queued or in flight on this node's drainer die with its
    // volatile buffers.
    if (persist)
        persist->onPhysDeath(phys);
}

Counters
Cluster::totalCounters() const
{
    Counters total;
    for (const auto &n : nodes)
        total += n->counters();
    for (PhysNodeId p = 0; p < cfg.numNodes; ++p)
        total += net.nic(p).counters();
    if (recov)
        total += recov->counters();
    if (homing)
        total += homing->counters();
    if (detector)
        total += detector->counters();
    if (join)
        total += join->counters();
    if (persist)
        total += persist->counters();
    total += vm.transportCounters();
    total += net.faults().counters();
    if (cfg.protocol == ProtocolKind::FaultTolerant) {
        // End-state replication-degree distribution: how many homes
        // each page actually has after any failures/joins.
        for (PageId p = 0; p < as.numPages(); ++p)
            total.pagesPerDegreeHist.sample(as.effectiveDegree(p));
    }
    return total;
}

TimeBreakdown
Cluster::totalBreakdown() const
{
    TimeBreakdown total;
    for (const auto &t : threads)
        total += t->sim().times();
    return total;
}

TimeBreakdown
Cluster::avgBreakdown() const
{
    // Average = total scaled by 1/threads; keep integer math by
    // dividing each bucket. Implemented via the raw interface.
    TimeBreakdown total = totalBreakdown();
    if (threads.empty())
        return total;
    TimeBreakdown avg;
    for (unsigned c = 0; c < kNumComps; ++c) {
        for (int b = 0; b < 2; ++b) {
            avg.charge(static_cast<Comp>(c),
                       total.get(static_cast<Comp>(c), b != 0) /
                           threads.size(),
                       b != 0);
        }
    }
    return avg;
}

void
Cluster::debugRead(Addr addr, void *dst, std::uint64_t len)
{
    auto *out = static_cast<std::byte *>(dst);
    while (len > 0) {
        PageId page = as.pageOf(addr);
        std::uint32_t off = as.pageOffset(addr);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, cfg.pageSize - off);
        SvmNode *home = nodes[as.primaryHome(page)].get();
        const std::byte *bytes = home->homeBytes(page);
        if (bytes)
            std::memcpy(out, bytes + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        addr += chunk;
        len -= chunk;
    }
}

std::uint64_t
Cluster::checkReplicaConsistency() const
{
    if (cfg.protocol != ProtocolKind::FaultTolerant)
        return 0;
    std::uint64_t bad = 0;
    for (PageId p = 0; p < as.numPages(); ++p) {
        // Degree-1 pages keep no tentative replica; nothing to cross-check.
        if (as.effectiveDegree(p) < 2)
            continue;
        auto *prim = static_cast<FtProtocolNode *>(
            nodes[as.primaryHome(p)].get());
        HomeInfo *phi = prim->findHomeInfo(p);
        bool committed = phi && phi->committed != nullptr;
        for (NodeId s : as.secondaryHomes(p)) {
            auto *sec = static_cast<FtProtocolNode *>(nodes[s].get());
            HomeInfo *shi = sec->findHomeInfo(p);
            if (!phi && !shi)
                continue; // untouched page
            bool tentative = shi && shi->tentative != nullptr;
            if (committed != tentative) {
                RSVM_LOG(LogComp::Ft,
                         "replica check: page %u presence mismatch "
                         "committed=%d tentative=%d (secondary %u)",
                         p, (int)committed, (int)tentative, s);
                bad++;
                continue;
            }
            if (!committed)
                continue;
            if (!(phi->committedVer == shi->tentativeVer) ||
                std::memcmp(phi->committed.get(), shi->tentative.get(),
                            cfg.pageSize) != 0) {
                RSVM_LOG(LogComp::Ft,
                         "replica check: page %u ver %s vs %s "
                         "(secondary %u)",
                         p, phi->committedVer.toString().c_str(),
                         shi->tentativeVer.toString().c_str(), s);
                bad++;
            }
        }
    }
    return bad;
}

double
Cluster::computeInflation(NodeId n) const
{
    PhysNodeId phys = hostMap[n];
    std::uint32_t active = 0;
    for (NodeId m = 0; m < cfg.numNodes; ++m) {
        if (hostMap[m] != phys)
            continue;
        for (SimThread *t : computeThreads(m)) {
            if (t->state() != ThreadState::Finished &&
                t->state() != ThreadState::Dead)
                active++;
        }
    }
    if (active <= 1)
        return 1.0;
    return 1.0 + cfg.smpComputeInflation * (active - 1);
}

// ------------------------------------------------------------- ClusterOps

std::vector<NodeId>
Cluster::logicalNodesOn(PhysNodeId phys) const
{
    std::vector<NodeId> out;
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        if (hostMap[n] == phys)
            out.push_back(n);
    }
    return out;
}

std::vector<SimThread *>
Cluster::computeThreads(NodeId node) const
{
    std::vector<SimThread *> out;
    for (const auto &t : threads) {
        if (t->node() == node)
            out.push_back(&t->sim());
    }
    return out;
}

void
Cluster::rehost(NodeId node, PhysNodeId phys)
{
    hostMap[node] = phys;
    vm.setHost(node, phys);
    RSVM_LOG(LogComp::Recovery, "logical node %u re-hosted on phys %u",
             node, phys);
}

PhysNodeId
Cluster::hostOf(NodeId node) const
{
    return hostMap[node];
}

bool
Cluster::physAlive(PhysNodeId phys) const
{
    return net.nodeAlive(phys);
}

NodeId
Cluster::backupOf(NodeId node) const
{
    return backupMap[node];
}

void
Cluster::setBackupOf(NodeId node, NodeId backup)
{
    backupMap[node] = backup;
}

void
Cluster::paranoidCheck()
{
    // Replicas may legitimately diverge while a release is mid-flight
    // on another node; only check when fully quiescent.
    for (const auto &n : nodes) {
        if (n->releaseInProgress())
            return;
    }
    std::uint64_t bad = checkReplicaConsistency();
    rsvm_assert_msg(bad == 0,
                    "paranoid: " + std::to_string(bad) +
                        " pages with inconsistent replicas");
}

} // namespace rsvm

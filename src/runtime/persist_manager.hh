/**
 * @file
 * The persistence manager: async epoch durability off the critical
 * path, and the rebuild half of cold restart.
 *
 * The paper's protocol keeps every replica in volatile memory: a
 * whole-cluster loss is unrecoverable by design ("no stable storage").
 * This optional tier (Config::persistEnabled) closes that gap without
 * touching the protocol's critical path:
 *
 *  - every Config::persistEpoch, at a release-quiescent engine
 *    instant (no release in flight, no recovery pending, no join or
 *    migration mid-handoff), the manager *captures* a consistent cut:
 *    each node's backup checkpoint store, each page's committed bytes
 *    + version + home set, each lock's home slots + directory homes.
 *    Capture is delta-compressed — a record is emitted only when its
 *    signature changed since the last emission;
 *  - emitted records are handed to per-physical-node FIFO drain
 *    queues feeding a simulated log-structured disk (seeded, private
 *    jitter RNG — never the engine RNG). Releases never block on the
 *    store: capture charges no thread time, posts no messages and
 *    mutates no protocol state, so with the tier enabled the app's
 *    event stream is bit-exactly the persistence-off one;
 *  - the PersistLog watermark advances only when every record of
 *    every epoch up to it is durable. A writer dying with records
 *    queued or in flight drops them (persistRecordsDropped) and
 *    stalls the watermark below that epoch forever — restart then
 *    discards everything past the watermark as partial.
 *
 * Why a release-quiescent cut is consistent (§4.5 argument): with no
 * release in flight, every committed copy contains exactly the
 * intervals each origin's backup has saved, so {checkpoint stores +
 * committed pages + lock homes} at one instant form a causally
 * consistent snapshot; re-execution from the restored checkpoints is
 * idempotent against the restored memory.
 *
 * Failpoints: persist:enqueue (record handed to its writer's queue),
 * persist:drain (simulated write completed), persist:watermark-advance
 * (this write completed an epoch prefix). The restart-stage points
 * (persist:restart-scan, persist:rebuild) are fired by
 * Cluster::coldRestart.
 */

#ifndef RSVM_RUNTIME_PERSIST_MANAGER_HH
#define RSVM_RUNTIME_PERSIST_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "base/persist.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "ftsvm/checkpoint.hh"
#include "svm/protocol.hh"
#include "svm/timestamp.hh"

namespace rsvm {

class FtProtocolNode;

/** Persisted payload: one node's backup checkpoint store at the cut. */
struct PersistedNodeState
{
    CkptStore store;
};

/** Persisted payload: one page's committed image at the cut. */
struct PersistedPageImage
{
    /** A committed copy existed (false = tombstone: homes only). */
    bool hasData = false;
    std::vector<std::byte> bytes;
    VectorClock ver;
    /** Home set at the cut, primary first. */
    std::vector<NodeId> homes;
};

/** Persisted payload: one lock's home state + directory at the cut. */
struct PersistedLockImage
{
    /** A poll-lock home was materialized at the primary. */
    bool materialized = false;
    std::vector<std::uint8_t> slots;
    VectorClock ts;
    NodeId primary = 0;
    NodeId secondary = 0;
};

/** Captures epochs, drains them to the simulated disk, rebuilds. */
class PersistManager
{
  public:
    explicit PersistManager(SvmContext &context);

    /** Engine-liveness gate (same contract as the failure detector). */
    void setAliveCheck(std::function<bool()> check)
    { aliveCheck = std::move(check); }

    /** Extra runtime quiescence (no join / migration in flight). */
    void setQuiesceCheck(std::function<bool()> check)
    { quiesceCheck = std::move(check); }

    /** Schedule the first capture tick. */
    void start();

    /** The simulated store (tests, campaign reporting). */
    const PersistLog &log() const { return store; }
    /** Cluster-wide fully-persisted epoch. */
    std::uint64_t watermark() const { return store.watermark(); }
    /**
     * True once records were lost to a writer death: the watermark can
     * never advance past their epoch, so captures stop (skips are
     * still counted) until a cold restart resets the tier.
     */
    bool stalled() const { return stalled_; }

    /**
     * A physical node died: its queued and in-flight records are lost
     * (volatile buffers), stalling the watermark below their epoch.
     * Installed by the runtime's kill path.
     */
    void onPhysDeath(PhysNodeId phys);

    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }

    // ---- Cold restart ----------------------------------------------------

    /**
     * Restart step 1: count and discard durable records past the
     * watermark (partial epochs are never replayed), then fold the
     * surviving log into latest-record-per-key state. The returned
     * record pointers stay valid until capturing resumes.
     */
    PersistScan scanForRestart();

    /**
     * Restart step 2: rebuild protocol state from a scan — reset every
     * node to its persisted cut (or a fresh boot when no record
     * exists), reinstall backup stores, lock directory + homes, and
     * committed/tentative page copies. Thread restore and runtime
     * wiring (hosts, NICs, detector) are the Cluster's job.
     */
    void rebuildFromScan(const PersistScan &scan);

    /**
     * Restart step 3: forget volatile tier state (queues, signatures,
     * the stall) and resume capturing after the restored cut.
     */
    void resetAfterColdRestart();

  private:
    struct NodeSig
    {
        bool seen = false;
        bool hasSaved = false;
        IntervalNum interval = 0;
        std::uint64_t barrierEpoch = 0;
        VectorClock ts;
    };
    struct PageSig
    {
        bool seen = false;
        bool hasData = false;
        VectorClock ver;
        std::vector<NodeId> homes;
    };
    struct LockSig
    {
        bool seen = false;
        bool materialized = false;
        std::vector<std::uint8_t> slots;
        VectorClock ts;
        NodeId primary = 0;
        NodeId secondary = 0;
    };

    void tick();
    bool quiescent() const;
    void capture();
    void enqueue(PersistRecord rec);
    /** Start (or continue) the drain chain of one physical node. */
    void pumpDrain(PhysNodeId phys);
    FtProtocolNode *ft(NodeId n) const;

    SvmContext &ctx;
    PersistLog store;
    /** Disk-latency jitter; never the engine RNG (bit-exactness). */
    Rng diskRng;
    std::function<bool()> aliveCheck;
    std::function<bool()> quiesceCheck;
    Counters stats;

    bool stalled_ = false;
    /** The post-application final capture was taken. */
    bool finalDone = false;
    std::uint64_t nextEpoch = 1;

    std::vector<NodeSig> nodeSigs;
    std::vector<PageSig> pageSigs;
    std::vector<LockSig> lockSigs;

    /** Per-physical-node FIFO drain queues. */
    std::vector<std::deque<PersistRecord>> queues;
    /** A drain event is in flight for this physical node. */
    std::vector<bool> draining;
    /** Bumped on death/restart to neuter in-flight drain events. */
    std::vector<std::uint64_t> drainGen;
};

} // namespace rsvm

#endif // RSVM_RUNTIME_PERSIST_MANAGER_HH

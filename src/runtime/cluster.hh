/**
 * @file
 * The Cluster: top-level runtime object wiring together the engine,
 * network, VMMC, shared address space, protocol nodes, compute
 * threads, failure injection and recovery.
 *
 * Typical use:
 *
 * @code
 *   Config cfg;                      // 8 nodes, FT protocol, ...
 *   Cluster cluster(cfg);
 *   Addr data = cluster.mem().allocPageAligned(bytes);
 *   cluster.spawn([&](AppThread &t) { ... parallel program ... });
 *   cluster.run();
 * @endcode
 *
 * Thread/node geometry: thread g runs on logical node g / threadsPerNode;
 * logical node n initially lives on physical node n with backup n+1.
 */

#ifndef RSVM_RUNTIME_CLUSTER_HH
#define RSVM_RUNTIME_CLUSTER_HH

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/config.hh"
#include "base/lossreason.hh"
#include "base/stats.hh"
#include "ftsvm/recovery.hh"
#include "mem/addrspace.hh"
#include "net/failure.hh"
#include "net/network.hh"
#include "net/vmmc.hh"
#include "runtime/app_api.hh"
#include "runtime/failure_detector.hh"
#include "runtime/membership.hh"
#include "sim/engine.hh"
#include "svm/locks.hh"
#include "svm/protocol.hh"

namespace rsvm {

class HomingManager;
class PersistManager;

/**
 * Thrown by Cluster::run() when recovery determined the cluster is
 * genuinely unrecoverable (§4.5): some state's checkpoint store and
 * both page replicas are gone, or fewer than two physical nodes
 * survive. This is the clean, reportable alternative to crashing.
 * The machine-checkable code() names the loss path; what() carries
 * the code name plus a human-readable detail string.
 */
class ClusterLostError : public std::runtime_error
{
  public:
    ClusterLostError(LossReason code, const std::string &detail)
        : std::runtime_error(std::string("cluster lost: [") +
                             lossReasonName(code) + "] " + detail),
          code_(code)
    {
    }

    LossReason code() const { return code_; }

  private:
    LossReason code_;
};

/** A complete simulated SVM cluster. */
class Cluster : public ClusterOps
{
  public:
    using AppFn = std::function<void(AppThread &)>;

    explicit Cluster(const Config &config);
    ~Cluster() override;

    /** Create and start every compute thread running @p fn. */
    void spawn(AppFn fn);

    /**
     * Run the simulation to completion. Throws ClusterLostError if
     * recovery declared the cluster unrecoverable.
     */
    void run();

    /** True once recovery declared the cluster unrecoverable. */
    bool lost() const { return lostCode_ != LossReason::None; }
    const std::string &lostReason() const { return lostReason_; }
    /** Machine-checkable loss path (None while the cluster lives). */
    LossReason lostCode() const { return lostCode_; }

    /**
     * Cold restart after whole-cluster loss (persistence tier). Kills
     * any straggler nodes, rebuilds directory, homes, locks, page
     * contents and thread checkpoints from the persisted watermark
     * epoch, then resumes execution from the restored cut. Requires
     * Config::persistEnabled; throws ClusterLostError if a mid-restart
     * kill exhausts the retry budget. After it returns, call run()
     * again to continue the application to completion.
     */
    void coldRestart();

    // ---- Accessors -----------------------------------------------------------
    Engine &engine() { return eng; }
    AddressSpace &mem() { return as; }
    Vmmc &vmmc() { return vm; }
    Network &network() { return net; }
    FailureInjector &injector() { return inj; }
    RecoveryManager *recovery() { return recov.get(); }
    /** Heartbeat/lease detector (null for base-protocol clusters). */
    FailureDetector *failureDetector() { return detector.get(); }
    /** Adaptive-placement manager (null unless Config::dynamicHoming). */
    HomingManager *homingManager() { return homing.get(); }
    /** Join/rejoin manager (null for base-protocol clusters). */
    JoinManager *joinManager() { return join.get(); }
    /** Async persistence tier (null unless Config::persistEnabled). */
    PersistManager *persistManager() { return persist.get(); }
    const Config &config() const { return cfg; }
    SvmNode &node(NodeId n) { return *nodes[n]; }
    AppThread &appThread(ThreadId t) { return *threads[t]; }
    std::uint32_t numThreads() const
    { return static_cast<std::uint32_t>(threads.size()); }

    /** Cluster-wide protocol counters (nodes + recovery). */
    Counters totalCounters() const;
    /** Sum of all threads' time breakdowns. */
    TimeBreakdown totalBreakdown() const;
    /** Per-thread average breakdown (the paper's bar heights). */
    TimeBreakdown avgBreakdown() const;
    /**
     * Simulated application completion time: when the last compute
     * thread finished. Background persist-drain events may extend
     * eng.now() past this point; they are deliberately excluded so
     * wall time is bit-exact with and without the persistence tier.
     */
    SimTime wallTime() const
    {
        SimTime fin = eng.lastThreadFinish();
        return fin ? fin : eng.now();
    }

    /** Compute-time inflation factor for a thread on node @p n. */
    double computeInflation(NodeId n) const;

    /**
     * Engine-side read of the authoritative (home) copy of shared
     * memory, for result verification after the run. Only meaningful
     * once the application has passed its final barrier.
     */
    void debugRead(Addr addr, void *dst, std::uint64_t len);

    /**
     * Quiescence invariant of the extended protocol (§4.5.2): with no
     * release in flight, every page's committed copy (primary home)
     * and tentative copy (secondary home) hold identical bytes and
     * versions. Returns the number of violating pages (0 when
     * consistent). Base-protocol clusters trivially return 0.
     */
    std::uint64_t checkReplicaConsistency() const;

    // ---- ClusterOps ---------------------------------------------------------
    std::vector<NodeId> logicalNodesOn(PhysNodeId phys) const override;
    std::vector<SimThread *> computeThreads(NodeId node) const override;
    void rehost(NodeId node, PhysNodeId phys) override;
    PhysNodeId hostOf(NodeId node) const override;
    bool physAlive(PhysNodeId phys) const override;
    NodeId backupOf(NodeId node) const override;
    void setBackupOf(NodeId node, NodeId backup) override;
    void paranoidCheck() override;
    void clusterLost(LossReason code, const std::string &detail) override;

  private:
    void killPhysNode(PhysNodeId phys);
    void restartThreadFromTop(ThreadId tid);
    std::function<void()> bodyFor(ThreadId tid);

    Config cfg;
    Engine eng;
    Network net;
    Vmmc vm;
    AddressSpace as;
    LockDirectory lockDir;
    SvmContext ctx;
    FailureInjector inj;
    std::unique_ptr<RecoveryManager> recov;
    std::unique_ptr<HomingManager> homing;
    std::unique_ptr<FailureDetector> detector;
    std::unique_ptr<JoinManager> join;
    std::unique_ptr<PersistManager> persist;
    std::vector<std::unique_ptr<SvmNode>> nodes;
    std::vector<std::unique_ptr<AppThread>> threads;
    std::vector<PhysNodeId> hostMap;
    std::vector<NodeId> backupMap;
    AppFn appFn;
    std::string lostReason_;
    LossReason lostCode_ = LossReason::None;
};

} // namespace rsvm

#endif // RSVM_RUNTIME_CLUSTER_HH

/**
 * @file
 * The application-facing API: what a SPLASH-2-style program sees.
 *
 * An AppThread corresponds to one compute thread of the cluster. All
 * shared-memory traffic goes through read()/write() (the software
 * equivalent of loads/stores to SVM pages); synchronization uses
 * lock()/unlock()/barrier(); modelled computation time is charged with
 * compute().
 *
 * Programming rules (the same ones the paper's testbed imposes, §4.4):
 *
 *  - all shared data lives in the shared address space (allocate with
 *    Cluster::mem().alloc() or AppThread::alloc());
 *  - stack locals that survive across a synchronization operation or a
 *    potential page fault must be PODs (scalars, Addr, raw pointers
 *    into the thread's own stack) — never owning containers. Restored
 *    checkpoints resurrect old stack frames, and owning objects on
 *    them would double-free. This mirrors the real system, where a
 *    migrated thread's private heap simply does not exist on the
 *    backup node.
 */

#ifndef RSVM_RUNTIME_APP_API_HH
#define RSVM_RUNTIME_APP_API_HH

#include <cstdint>

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/thread.hh"

namespace rsvm {

class Cluster;
class SvmNode;

/** One compute thread's handle onto the cluster. */
class AppThread
{
  public:
    AppThread(Cluster &cluster, SimThread &sim_thread, NodeId node,
              std::uint32_t local_index, ThreadId global_id);

    AppThread(const AppThread &) = delete;
    AppThread &operator=(const AppThread &) = delete;

    // ---- Identity ---------------------------------------------------------
    ThreadId id() const { return gid; }
    NodeId node() const { return nid; }
    std::uint32_t localIndex() const { return local; }
    /** Total compute threads in the cluster. */
    std::uint32_t clusterThreads() const;

    // ---- Shared memory ----------------------------------------------------
    void read(Addr addr, void *dst, std::uint64_t len);
    void write(Addr addr, const void *src, std::uint64_t len);

    template <typename T>
    T
    get(Addr addr)
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    put(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Shared allocation (forwarded to the global allocator). */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);

    // ---- Synchronization ------------------------------------------------
    void lock(LockId l);
    void unlock(LockId l);
    void barrier();

    // ---- Time -------------------------------------------------------------
    /**
     * Charge @p ns of application computation. The value is inflated
     * by the SMP memory-contention model when multiple threads share
     * the physical node (§5.2).
     */
    void compute(SimTime ns);

    SimThread &sim() { return st; }
    Cluster &cluster() { return cl; }
    Rng &rng() { return privateRng; }

  private:
    SvmNode &protocolNode();

    Cluster &cl;
    SimThread &st;
    NodeId nid;
    std::uint32_t local;
    ThreadId gid;
    Rng privateRng;
};

} // namespace rsvm

#endif // RSVM_RUNTIME_APP_API_HH

/**
 * @file
 * SimThread: one simulated compute thread running on a Fiber under the
 * discrete-event Engine, with per-component simulated-time accounting.
 *
 * Blocking discipline: every blocking protocol operation is written as
 * a retry loop around park()/parkFor(), keyed on the returned
 * WakeStatus. This is what makes checkpoint/restore safe: a thread
 * restored from a snapshot wakes with WakeStatus::Restarted and its
 * in-flight blocking operation simply re-issues (fetches and lock polls
 * are idempotent).
 */

#ifndef RSVM_SIM_THREAD_HH
#define RSVM_SIM_THREAD_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/fiber.hh"

namespace rsvm {

class Engine;

/** Why a parked thread resumed. */
enum class WakeStatus {
    /** Explicit wake by another party (reply arrived, lock granted...). */
    Normal,
    /** The parkFor() timer expired before any explicit wake. */
    Timeout,
    /** The awaited remote operation failed (peer node dead). */
    Error,
    /** The thread was restored from a checkpoint after a failure. */
    Restarted,
};

/** Lifecycle state of a simulated thread. */
enum class ThreadState {
    /** Created but never started. */
    New,
    /** Ready; a resume event is (or will be) queued. */
    Runnable,
    /** Currently executing on its fiber. */
    Running,
    /** Blocked in park()/parkFor(). */
    Parked,
    /** Body returned normally. */
    Finished,
    /** Killed by a node failure; resumable only via restore. */
    Dead,
};

/** A simulated compute thread. */
class SimThread
{
  public:
    SimThread(Engine &engine, ThreadId id, std::string name,
              std::size_t stack_size);

    SimThread(const SimThread &) = delete;
    SimThread &operator=(const SimThread &) = delete;

    /** Arm the thread body and make it runnable. */
    void start(std::function<void()> body);

    // ---- Fiber-side API (call only from this thread's fiber) ----------

    /** Advance simulated time by @p ns, charged to component @p c. */
    WakeStatus delay(SimTime ns, Comp c);

    /** Block until woken; elapsed park time is charged to @p c. */
    WakeStatus park(Comp c);

    /**
     * Block until woken or until @p timeout elapses; elapsed time is
     * charged to @p c.
     */
    WakeStatus parkFor(SimTime timeout, Comp c);

    /** Charge @p ns to @p c without advancing simulated time. */
    void charge(Comp c, SimTime ns);

    // ---- Engine/protocol-side API --------------------------------------

    /**
     * Wake a parked thread with @p status. If the thread is not parked
     * the wake is latched and consumed by its next park (no lost
     * wakeups in the single-threaded engine).
     */
    void wake(WakeStatus status);

    /** Kill the thread (node failure). Safe on parked/runnable threads. */
    void kill();

    /** Kill the running thread from inside its own fiber (failpoint). */
    [[noreturn]] void killSelf();

    // ---- Checkpoint support ---------------------------------------------

    /**
     * A restorable image of this thread. Two kinds exist:
     *
     *  - a *parked* image (atBoundary == false): the full stack at the
     *    thread's current yield point; restoring resumes the park,
     *    which returns WakeStatus::Restarted;
     *  - a *boundary* image (atBoundary == true): the stack as of the
     *    thread's entry into its current restartable operation, plus a
     *    copy of the operation closure; restoring re-executes the
     *    operation from scratch.
     *
     * Boundary images exist because a thread parked deep inside
     * protocol code has C++ objects (vectors, shared_ptrs) live on
     * those frames; by the time the image is restored, the original
     * execution has continued and freed their allocations, so resuming
     * such frames would double-free. The boundary frame, by
     * construction, holds no owning locals; restartable operations are
     * idempotent (faults re-fetch, polls re-poll, writes rewrite the
     * same values).
     */
    struct CkptImage
    {
        Fiber::Snapshot snap;
        bool atBoundary = false;
        bool finished = false;
        std::function<void()> op;
        /**
         * Boundary context of the operation a point-B image sits
         * inside (op != nullptr, atBoundary == false). Restores must
         * re-anchor the thread's boundary to this context: the thread
         * object's own anchor may describe a different incarnation at
         * a different stack depth, and a later boundary capture taken
         * through a stale anchor weds its registers to unrelated stack
         * bytes — an image that crashes when resumed.
         */
        bool hasOpCtx = false;
        ucontext_t opCtx{};
        std::size_t bytes() const { return snap.bytes() + 64; }
    };

    /**
     * Run @p op as a restartable operation: record a boundary context
     * so a checkpoint of this thread taken while the operation blocks
     * restores to this entry point and re-executes the operation.
     * Must not nest.
     */
    void runRestartableOp(std::function<void()> op);

    /** True while inside runRestartableOp(). */
    bool inRestartableOp() const { return opActive; }

    /** Copy of the current restartable operation closure. */
    std::function<void()> currentOp() const { return restartOp; }

    /**
     * Boundary context of the current restartable operation. Point-B
     * images record it (CkptImage::opCtx) so a restore can re-anchor
     * the thread's boundary to the restored stack.
     */
    const ucontext_t &opBoundaryContext() const { return restartCtx; }

    /** Capture an image of a non-running thread (point A, §4.4). */
    CkptImage captureForCkpt() const;

    /** Restore from an image captured by captureForCkpt(). */
    void restoreFromImage(const CkptImage &image);

    /** Snapshot a parked thread (raw; prefer captureForCkpt). */
    Fiber::Snapshot captureParked() const;

    /**
     * Snapshot the running thread (point-B checkpoint). Returns true on
     * the capturing path, false when re-entered via restore.
     */
    bool captureSelf(Fiber::Snapshot &snap);

    /**
     * Restore the thread from @p snap; it becomes runnable and wakes
     * with WakeStatus::Restarted (or re-enters captureSelf()).
     */
    void restoreSnapshot(const Fiber::Snapshot &snap);

    /** Clear a latched wake (used on the captureSelf() restore path). */
    void clearPendingWake() { hasPendingWake = false; }

    // ---- Introspection ---------------------------------------------------

    ThreadId id() const { return tid; }
    const std::string &name() const { return label; }
    ThreadState state() const { return st; }
    std::uint64_t generation() const { return gen; }
    Engine &engine() { return eng; }
    TimeBreakdown &times() { return breakdown; }
    const TimeBreakdown &times() const { return breakdown; }
    /** Live stack bytes at the last yield (paper reports 2–2.8 KB). */
    std::size_t liveStackBytes() const { return fib.liveStackBytes(); }

    /**
     * Presentation tag: when set, Diff/Ckpt/Protocol charges belong to
     * the barrier bar of the four-component breakdown (§5.3).
     */
    bool inBarrierPhase = false;

    /**
     * Compute-time inflation factor applied by the runtime's compute()
     * to model SMP memory-bus contention (§5.2). 1.0 = no inflation.
     */
    double computeInflation = 1.0;

  private:
    friend class Engine;

    /** Common park implementation. */
    WakeStatus parkImpl(Comp c, SimTime timeout, bool has_timeout);

    Engine &eng;
    ThreadId tid;
    std::string label;
    Fiber fib;
    ThreadState st = ThreadState::New;
    std::uint64_t gen = 0;

    /** Bumped by every park; stale timer events compare and bail. */
    std::uint64_t parkEpoch = 0;
    SimTime parkStart = 0;
    Comp parkComp = Comp::Protocol;

    bool hasPendingWake = false;
    WakeStatus pendingWake = WakeStatus::Normal;

    // ---- Restartable-operation state (heap-stable; never captured) ----
    bool opActive = false;
    bool opRestartFlag = false;
    ucontext_t restartCtx{};
    std::function<void()> restartOp;

    TimeBreakdown breakdown;
};

} // namespace rsvm

#endif // RSVM_SIM_THREAD_HH

/**
 * @file
 * The discrete-event simulation engine.
 *
 * A single min-heap of (time, sequence) ordered events drives the whole
 * cluster: NIC send/deliver events, timer wakes, and thread resumes.
 * Sequence numbers make the order of same-time events deterministic, so
 * every simulation run is exactly reproducible for a given Config.
 */

#ifndef RSVM_SIM_ENGINE_HH
#define RSVM_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "base/config.hh"
#include "base/rng.hh"
#include "base/types.hh"
#include "sim/thread.hh"

namespace rsvm {

/** Event-driven simulation kernel. */
class Engine
{
  public:
    explicit Engine(const Config &config);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current simulated time. */
    SimTime now() const { return currentTime; }

    /** Schedule @p fn to run @p delta from now. */
    void schedule(SimTime delta, std::function<void()> fn);

    /** Schedule @p fn at absolute time @p when (>= now). */
    void at(SimTime when, std::function<void()> fn);

    /** Create a thread owned by the engine (not yet started). */
    SimThread &createThread(std::string name,
                            std::size_t stack_size = 0);

    /**
     * Run until the event queue drains. Panics if parked threads
     * remain afterwards (protocol deadlock), unless
     * @p tolerate_parked is set.
     */
    void run(bool tolerate_parked = false);

    /** Run until @p deadline or queue drain; true if queue drained. */
    bool runUntil(SimTime deadline);

    /** Thread currently executing on a fiber, or nullptr. */
    SimThread *current() { return running; }

    /** The engine's shared RNG (jitter, synthetic data). */
    Rng &rng() { return engineRng; }

    const Config &config() const { return cfg; }

    /** All threads ever created (engine owns them). */
    const std::vector<std::unique_ptr<SimThread>> &threads() const
    { return threadPool; }

    /** Count of threads in the given state. */
    std::size_t countThreads(ThreadState state) const;

    /** Events still queued (0 after a clean drain; leak check). */
    std::size_t pendingEvents() const { return events.size(); }

    /**
     * Time the most recent thread entered Finished (0 if none has).
     * Stamped on the engine stack, never inside a fiber, so tracking
     * it cannot perturb checkpoint stack images.
     */
    SimTime lastThreadFinish() const { return lastFinish; }

  private:
    friend class SimThread;

    struct Event
    {
        SimTime when;
        std::uint64_t seq;
        std::function<void()> fn;
        bool operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Queue a resume event for a runnable thread. */
    void scheduleResume(SimThread &thread);

    /** Engine-side half of park(): swap back to the engine context. */
    void yieldFrom(SimThread &thread);

    void dispatch(Event &ev);

    Config cfg;
    SimTime currentTime = 0;
    SimTime lastFinish = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t dispatchCount = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    std::vector<std::unique_ptr<SimThread>> threadPool;
    SimThread *running = nullptr;
    ucontext_t engineCtx{};
    Rng engineRng;
    ThreadId nextTid = 0;
};

} // namespace rsvm

#endif // RSVM_SIM_ENGINE_HH

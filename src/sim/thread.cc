#include "sim/thread.hh"

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"

namespace rsvm {

SimThread::SimThread(Engine &engine, ThreadId id, std::string name,
                     std::size_t stack_size)
    : eng(engine), tid(id), label(std::move(name)), fib(stack_size)
{
}

void
SimThread::start(std::function<void()> body)
{
    // Dead is allowed: recovery restarts a killed thread from the
    // beginning when its only checkpoint is the initial one (tag 0).
    rsvm_assert(st == ThreadState::New || st == ThreadState::Finished ||
                st == ThreadState::Dead);
    if (st == ThreadState::Dead)
        ++gen;
    fib.prepare([this, body = std::move(body)] {
        body();
        st = ThreadState::Finished;
        RSVM_LOG(LogComp::Sim, "thread %s finished", label.c_str());
        // Never return from a fiber entry: hand control back to the
        // engine permanently.
        fib.yieldTo(eng.engineCtx);
        rsvm_panic("finished thread resumed");
    });
    st = ThreadState::Runnable;
    hasPendingWake = false;
    opActive = false;
    opRestartFlag = false;
    restartOp = nullptr;
    eng.scheduleResume(*this);
}

WakeStatus
SimThread::parkImpl(Comp c, SimTime timeout, bool has_timeout)
{
    rsvm_assert_msg(eng.current() == this,
                    "park called from outside the thread's fiber");
    if (hasPendingWake) {
        hasPendingWake = false;
        return pendingWake;
    }
    ++parkEpoch;
    parkStart = eng.now();
    parkComp = c;
    st = ThreadState::Parked;

    if (has_timeout) {
        std::uint64_t epoch = parkEpoch;
        std::uint64_t my_gen = gen;
        eng.schedule(timeout, [this, epoch, my_gen] {
            if (gen == my_gen && st == ThreadState::Parked &&
                parkEpoch == epoch) {
                wake(WakeStatus::Timeout);
            }
        });
    }

    eng.yieldFrom(*this);

    // Resumed: charge the parked interval to the caller's component.
    breakdown.charge(c, eng.now() - parkStart, inBarrierPhase);
    rsvm_assert(hasPendingWake);
    hasPendingWake = false;
    return pendingWake;
}

WakeStatus
SimThread::park(Comp c)
{
    return parkImpl(c, 0, false);
}

WakeStatus
SimThread::parkFor(SimTime timeout, Comp c)
{
    return parkImpl(c, timeout, true);
}

WakeStatus
SimThread::delay(SimTime ns, Comp c)
{
    WakeStatus ws = parkImpl(c, ns, true);
    // Timeout is the normal completion of a pure delay.
    return ws == WakeStatus::Timeout ? WakeStatus::Normal : ws;
}

void
SimThread::charge(Comp c, SimTime ns)
{
    breakdown.charge(c, ns, inBarrierPhase);
}

void
SimThread::wake(WakeStatus status)
{
    if (st == ThreadState::Dead || st == ThreadState::Finished)
        return;
    if (st == ThreadState::Parked) {
        pendingWake = status;
        hasPendingWake = true;
        st = ThreadState::Runnable;
        eng.scheduleResume(*this);
    } else {
        // Latched wake: consumed by the next park (no lost wakeups).
        pendingWake = status;
        hasPendingWake = true;
    }
}

void
SimThread::kill()
{
    rsvm_assert_msg(eng.current() != this, "use killSelf() when running");
    st = ThreadState::Dead;
    ++gen;
    hasPendingWake = false;
}

void
SimThread::killSelf()
{
    rsvm_assert(eng.current() == this);
    st = ThreadState::Dead;
    ++gen;
    hasPendingWake = false;
    fib.yieldTo(eng.engineCtx);
    rsvm_panic("dead thread resumed");
}

void
SimThread::runRestartableOp(std::function<void()> op)
{
    rsvm_assert_msg(!opActive, "restartable operations must not nest");
    restartOp = std::move(op);
    opActive = true;
    // Both the first pass and a boundary restore return through here.
    // No owning locals may live in this frame (op was moved out).
    rsvm_assert(getcontext(&restartCtx) == 0);
    if (opRestartFlag) {
        opRestartFlag = false;
        hasPendingWake = false;
    }
    restartOp();
    opActive = false;
    restartOp = nullptr;
}

SimThread::CkptImage
SimThread::captureForCkpt() const
{
    CkptImage image;
    if (st == ThreadState::Finished) {
        image.finished = true;
        return image;
    }
    rsvm_assert(st == ThreadState::Parked || st == ThreadState::Runnable);
    if (opActive) {
        image.atBoundary = true;
        image.snap = fib.captureAt(restartCtx);
        image.op = restartOp; // deep copy: survives the original's end
    } else {
        image.snap = fib.capture();
    }
    return image;
}

void
SimThread::restoreFromImage(const CkptImage &image)
{
    rsvm_assert(eng.current() != this);
    rsvm_assert(!image.finished && image.snap.valid());
    fib.restore(image.snap);
    ++gen;
    st = ThreadState::Runnable;
    if (image.atBoundary) {
        // Re-execute the restartable operation from its entry point.
        restartOp = image.op;
        opActive = true;
        opRestartFlag = true;
        hasPendingWake = false;
        // Re-anchor the boundary context to the restored stack. The
        // member still describes the context of the LAST op this fiber
        // executed before it was killed, which can sit at a different
        // stack depth than the restored image; a checkpoint captured
        // through the stale anchor before the thread runs again (the
        // recovery manager re-protects resumed nodes in the same
        // engine instant) would marry that context to mismatched
        // stack bytes and corrupt the stored image.
        restartCtx = image.snap.ctx;
    } else if (image.op) {
        // Point-B image: execution resumes *inside* the operation the
        // image recorded; restore the member bookkeeping to match so
        // a later boundary capture of this thread names the right op.
        restartOp = image.op;
        opActive = true;
        opRestartFlag = false;
        pendingWake = WakeStatus::Restarted;
        hasPendingWake = true;
        // Re-anchor the boundary to the op the restored stack is
        // actually inside (the image recorded it at capture time).
        // Without this, a boundary capture of the restored thread goes
        // through whatever op this object last entered — potentially a
        // different incarnation at a different stack depth.
        rsvm_assert_msg(image.hasOpCtx,
                        "point-B image lacks its boundary context");
        restartCtx = image.opCtx;
    } else {
        restartOp = nullptr;
        opActive = false;
        opRestartFlag = false;
        pendingWake = WakeStatus::Restarted;
        hasPendingWake = true;
    }
    eng.scheduleResume(*this);
}

Fiber::Snapshot
SimThread::captureParked() const
{
    // Parked or Runnable: in both states the fiber context was saved
    // by the last yield, so the stack image is consistent.
    rsvm_assert_msg(st == ThreadState::Parked ||
                        st == ThreadState::Runnable,
                    "point-A capture requires a non-running thread");
    return fib.capture();
}

bool
SimThread::captureSelf(Fiber::Snapshot &snap)
{
    rsvm_assert(eng.current() == this);
    return fib.captureSelf(snap);
}

void
SimThread::restoreSnapshot(const Fiber::Snapshot &snap)
{
    rsvm_assert_msg(eng.current() != this,
                    "cannot restore the running thread");
    fib.restore(snap);
    ++gen;
    st = ThreadState::Runnable;
    pendingWake = WakeStatus::Restarted;
    hasPendingWake = true;
    eng.scheduleResume(*this);
}

} // namespace rsvm

#include "sim/engine.hh"

#include "base/log.hh"
#include "base/panic.hh"

namespace rsvm {

Engine::Engine(const Config &config)
    : cfg(config), engineRng(config.seed)
{
    Logger::instance().setTimeSource([this] { return currentTime; });
}

Engine::~Engine()
{
    Logger::instance().setTimeSource(nullptr);
}

void
Engine::schedule(SimTime delta, std::function<void()> fn)
{
    at(currentTime + delta, std::move(fn));
}

void
Engine::at(SimTime when, std::function<void()> fn)
{
    rsvm_assert(when >= currentTime);
    events.push(Event{when, nextSeq++, std::move(fn)});
}

SimThread &
Engine::createThread(std::string name, std::size_t stack_size)
{
    if (stack_size == 0)
        stack_size = cfg.ckptStackReserve;
    threadPool.push_back(std::make_unique<SimThread>(
        *this, nextTid++, std::move(name), stack_size));
    return *threadPool.back();
}

void
Engine::scheduleResume(SimThread &thread)
{
    SimThread *t = &thread;
    std::uint64_t gen = thread.generation();
    schedule(0, [this, t, gen] {
        if (t->generation() != gen || t->state() != ThreadState::Runnable)
            return;
        t->st = ThreadState::Running;
        running = t;
        t->fib.resume(engineCtx);
        running = nullptr;
        // Stamped here — on the engine stack, after the fiber yielded
        // back — so completion tracking cannot change any frame a
        // checkpoint stack image captures.
        if (t->state() == ThreadState::Finished)
            lastFinish = currentTime;
    });
}

void
Engine::yieldFrom(SimThread &thread)
{
    thread.fib.yieldTo(engineCtx);
}

void
Engine::dispatch(Event &ev)
{
    currentTime = ev.when;
    ++dispatchCount;
    if ((dispatchCount & 0xfffff) == 0) {
        RSVM_LOG(LogComp::Sim,
                 "dispatched %llu events, now=%llu, queued=%zu",
                 static_cast<unsigned long long>(dispatchCount),
                 static_cast<unsigned long long>(currentTime),
                 events.size());
        for (const auto &t : threadPool) {
            RSVM_LOG(LogComp::Sim, "  thread %s state=%d comp=%d",
                     t->name().c_str(), static_cast<int>(t->state()),
                     static_cast<int>(t->parkComp));
        }
    }
    ev.fn();
}

void
Engine::run(bool tolerate_parked)
{
    while (!events.empty()) {
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        dispatch(ev);
    }
    if (!tolerate_parked) {
        for (const auto &t : threadPool) {
            if (t->state() == ThreadState::Parked) {
                rsvm_panic("deadlock: thread '" + t->name() +
                           "' still parked after event queue drained");
            }
        }
    }
}

bool
Engine::runUntil(SimTime deadline)
{
    while (!events.empty()) {
        if (events.top().when > deadline) {
            currentTime = deadline;
            return false;
        }
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        dispatch(ev);
    }
    return true;
}

std::size_t
Engine::countThreads(ThreadState state) const
{
    std::size_t n = 0;
    for (const auto &t : threadPool)
        n += (t->state() == state) ? 1 : 0;
    return n;
}

} // namespace rsvm

/**
 * @file
 * Cooperative fibers (ucontext-based) with stack snapshot/restore.
 *
 * Every simulated compute thread runs on a Fiber. The discrete-event
 * engine swaps between its own (native) context and fiber contexts;
 * only one fiber ever runs at a time, so the whole simulation is
 * single-threaded and deterministic.
 *
 * Fibers support capturing a Snapshot — the saved machine context plus
 * the live portion of the stack — and restoring it later into the SAME
 * stack buffer. This is exactly the paper's thread-migration mechanism
 * (§4.4): shadow threads on the backup node reserve an identical
 * virtual address range for the stack, so a restored stack needs no
 * pointer fixup. In our single-process emulation the "identical
 * address" property holds trivially because the restore target is the
 * original buffer.
 */

#ifndef RSVM_SIM_FIBER_HH
#define RSVM_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace rsvm {

/** One cooperative execution context with a private stack. */
class Fiber
{
  public:
    /** A restorable image of a fiber: context + live stack bytes. */
    struct Snapshot
    {
        ucontext_t ctx{};
        /** Live stack contents, from the saved stack pointer upward. */
        std::vector<std::byte> stack;
        /** Value of the saved stack pointer (start of live region). */
        std::uintptr_t sp = 0;
        /**
         * True when captured via captureSelf(): a restore must make the
         * in-fiber captureSelf() call return false ("restored" path).
         */
        bool selfCapture = false;
        /** Total bytes a transfer of this snapshot moves. */
        std::size_t bytes() const { return stack.size() + sizeof(ctx); }
        bool valid() const { return sp != 0; }
    };

    explicit Fiber(std::size_t stack_size);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Arm the fiber to execute @p entry on its next resume. Resets any
     * previous execution state.
     */
    void prepare(std::function<void()> entry);

    /**
     * Switch from the caller's context (saved into @p from) into this
     * fiber. Returns when the fiber switches back.
     */
    void resume(ucontext_t &from);

    /**
     * Called from inside the fiber: save into the fiber context and
     * switch to @p to (normally the engine context).
     */
    void yieldTo(ucontext_t &to);

    /**
     * Capture a snapshot of a fiber that is currently *parked* (its
     * state was saved by yieldTo). Must not be called on the running
     * fiber — use captureSelf() for that.
     */
    Snapshot capture() const;

    /**
     * Capture a snapshot anchored at an arbitrary saved context whose
     * stack pointer lies within this fiber's stack (the restartable-
     * operation boundary contexts recorded by SimThread).
     */
    Snapshot captureAt(const ucontext_t &c) const { return captureFrom(c); }

    /**
     * Capture a snapshot of the *running* fiber (must be called from
     * the fiber itself). Returns true on the capturing path and false
     * when execution re-enters through restore(), setjmp-style.
     */
    bool captureSelf(Snapshot &snap);

    /**
     * Overwrite this fiber's stack and saved context from @p snap. The
     * fiber must be parked or dead; its next resume continues from the
     * snapshot point.
     */
    void restore(const Snapshot &snap);

    /** Lowest stack address. */
    std::byte *stackBase() { return stack.get(); }
    /** Stack size in bytes. */
    std::size_t stackSize() const { return size; }
    /** Live stack bytes at the last yield (approximate usage). */
    std::size_t liveStackBytes() const;

  private:
    static void trampoline();

    /** Extract the stack pointer register from a saved context. */
    static std::uintptr_t contextSp(const ucontext_t &c);

    Snapshot captureFrom(const ucontext_t &c) const;

    std::unique_ptr<std::byte[]> stack;
    std::size_t size;
    ucontext_t ctx{};
    std::function<void()> entry;
    bool restoredFlag = false;
};

} // namespace rsvm

#endif // RSVM_SIM_FIBER_HH

#include "sim/fiber.hh"

#include <cstring>

#include "base/panic.hh"

#if defined(__SANITIZE_ADDRESS__)
#define RSVM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RSVM_ASAN 1
#endif
#endif
#ifndef RSVM_ASAN
#define RSVM_ASAN 0
#endif
#if RSVM_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace rsvm {

namespace {
/** Target of the next trampoline invocation (single-threaded engine). */
Fiber *g_starting = nullptr;

/**
 * Copy raw fiber-stack bytes. The live region legitimately contains
 * AddressSanitizer red zones of the frames stacked on it; both the
 * memcpy interceptor and instrumented loads would (falsely) flag
 * them, so under ASan this copy must be uninstrumented.
 */
#if RSVM_ASAN
__attribute__((no_sanitize_address)) void
rawStackCopy(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<unsigned char *>(dst);
    const auto *s = static_cast<const unsigned char *>(src);
    for (std::size_t i = 0; i < n; ++i)
        d[i] = s[i];
}
#else
void
rawStackCopy(void *dst, const void *src, std::size_t n)
{
    std::memcpy(dst, src, n);
}
#endif

/**
 * Clear shadow poison left on a fiber stack by its previous occupant
 * (red zones of frames that will never unwind). Fresh execution or a
 * restored snapshot re-poisons as frames are entered.
 */
void
unpoisonStack(std::byte *base, std::size_t size)
{
#if RSVM_ASAN
    __asan_unpoison_memory_region(base, size);
#else
    (void)base;
    (void)size;
#endif
}
} // namespace

Fiber::Fiber(std::size_t stack_size)
    : stack(new std::byte[stack_size]), size(stack_size)
{
    rsvm_assert(stack_size >= 16 * 1024);
}

Fiber::~Fiber() = default;

void
Fiber::trampoline()
{
    Fiber *self = g_starting;
    g_starting = nullptr;
    rsvm_assert(self && self->entry);
    // Move the closure onto the fiber stack before invoking it: the
    // Fiber object may be re-prepared while this body runs, and the
    // closure must stay alive for as long as it executes.
    std::function<void()> fn = std::move(self->entry);
    self->entry = nullptr;
    fn();
    // A fiber entry function must never return: the engine-facing
    // wrapper parks the thread in a terminal state instead.
    rsvm_panic("fiber entry returned");
}

void
Fiber::prepare(std::function<void()> fn)
{
    entry = std::move(fn);
    restoredFlag = false;
    unpoisonStack(stack.get(), size);
    rsvm_assert(getcontext(&ctx) == 0);
    ctx.uc_stack.ss_sp = stack.get();
    ctx.uc_stack.ss_size = size;
    ctx.uc_link = nullptr;
    makecontext(&ctx, &Fiber::trampoline, 0);
}

void
Fiber::resume(ucontext_t &from)
{
    if (entry)
        g_starting = this;
    rsvm_assert(swapcontext(&from, &ctx) == 0);
}

void
Fiber::yieldTo(ucontext_t &to)
{
    rsvm_assert(swapcontext(&ctx, &to) == 0);
}

std::uintptr_t
Fiber::contextSp(const ucontext_t &c)
{
#if defined(__x86_64__)
    return static_cast<std::uintptr_t>(c.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
    return static_cast<std::uintptr_t>(c.uc_mcontext.sp);
#else
#error "unsupported architecture for fiber snapshots"
#endif
}

Fiber::Snapshot
Fiber::captureFrom(const ucontext_t &c) const
{
    Snapshot snap;
    snap.ctx = c;
    snap.sp = contextSp(c);
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    rsvm_assert_msg(snap.sp > base && snap.sp <= base + size,
                    "context stack pointer outside fiber stack");
    std::size_t live = base + size - snap.sp;
    snap.stack.resize(live);
    rawStackCopy(snap.stack.data(), reinterpret_cast<void *>(snap.sp),
                 live);
    return snap;
}

Fiber::Snapshot
Fiber::capture() const
{
    return captureFrom(ctx);
}

bool
Fiber::captureSelf(Snapshot &snap)
{
    ucontext_t here{};
    rsvm_assert(getcontext(&here) == 0);
    if (restoredFlag) {
        // Second return: we are being resumed from a restored snapshot.
        restoredFlag = false;
        return false;
    }
    snap = captureFrom(here);
    snap.selfCapture = true;
    return true;
}

void
Fiber::restore(const Snapshot &snap)
{
    rsvm_assert(snap.valid());
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    rsvm_assert(snap.sp > base && snap.sp <= base + size);
    rsvm_assert(snap.sp + snap.stack.size() == base + size);
    unpoisonStack(stack.get(), size);
    rawStackCopy(reinterpret_cast<void *>(snap.sp), snap.stack.data(),
                 snap.stack.size());
    ctx = snap.ctx;
    entry = nullptr;
    // Parked-thread snapshots resume through the normal yield path and
    // learn about the restore from their wake status; only self-captured
    // snapshots re-enter through captureSelf() and need the flag.
    restoredFlag = snap.selfCapture;
}

std::size_t
Fiber::liveStackBytes() const
{
    std::uintptr_t sp = contextSp(ctx);
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    if (sp <= base || sp > base + size)
        return 0;
    return base + size - sp;
}

} // namespace rsvm

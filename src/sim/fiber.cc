#include "sim/fiber.hh"

#include <cstring>

#include "base/panic.hh"

namespace rsvm {

namespace {
/** Target of the next trampoline invocation (single-threaded engine). */
Fiber *g_starting = nullptr;
} // namespace

Fiber::Fiber(std::size_t stack_size)
    : stack(new std::byte[stack_size]), size(stack_size)
{
    rsvm_assert(stack_size >= 16 * 1024);
}

Fiber::~Fiber() = default;

void
Fiber::trampoline()
{
    Fiber *self = g_starting;
    g_starting = nullptr;
    rsvm_assert(self && self->entry);
    // Move the closure onto the fiber stack before invoking it: the
    // Fiber object may be re-prepared while this body runs, and the
    // closure must stay alive for as long as it executes.
    std::function<void()> fn = std::move(self->entry);
    self->entry = nullptr;
    fn();
    // A fiber entry function must never return: the engine-facing
    // wrapper parks the thread in a terminal state instead.
    rsvm_panic("fiber entry returned");
}

void
Fiber::prepare(std::function<void()> fn)
{
    entry = std::move(fn);
    restoredFlag = false;
    rsvm_assert(getcontext(&ctx) == 0);
    ctx.uc_stack.ss_sp = stack.get();
    ctx.uc_stack.ss_size = size;
    ctx.uc_link = nullptr;
    makecontext(&ctx, &Fiber::trampoline, 0);
}

void
Fiber::resume(ucontext_t &from)
{
    if (entry)
        g_starting = this;
    rsvm_assert(swapcontext(&from, &ctx) == 0);
}

void
Fiber::yieldTo(ucontext_t &to)
{
    rsvm_assert(swapcontext(&ctx, &to) == 0);
}

std::uintptr_t
Fiber::contextSp(const ucontext_t &c)
{
#if defined(__x86_64__)
    return static_cast<std::uintptr_t>(c.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
    return static_cast<std::uintptr_t>(c.uc_mcontext.sp);
#else
#error "unsupported architecture for fiber snapshots"
#endif
}

Fiber::Snapshot
Fiber::captureFrom(const ucontext_t &c) const
{
    Snapshot snap;
    snap.ctx = c;
    snap.sp = contextSp(c);
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    rsvm_assert_msg(snap.sp > base && snap.sp <= base + size,
                    "context stack pointer outside fiber stack");
    std::size_t live = base + size - snap.sp;
    snap.stack.resize(live);
    std::memcpy(snap.stack.data(), reinterpret_cast<void *>(snap.sp),
                live);
    return snap;
}

Fiber::Snapshot
Fiber::capture() const
{
    return captureFrom(ctx);
}

bool
Fiber::captureSelf(Snapshot &snap)
{
    ucontext_t here{};
    rsvm_assert(getcontext(&here) == 0);
    if (restoredFlag) {
        // Second return: we are being resumed from a restored snapshot.
        restoredFlag = false;
        return false;
    }
    snap = captureFrom(here);
    snap.selfCapture = true;
    return true;
}

void
Fiber::restore(const Snapshot &snap)
{
    rsvm_assert(snap.valid());
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    rsvm_assert(snap.sp > base && snap.sp <= base + size);
    rsvm_assert(snap.sp + snap.stack.size() == base + size);
    std::memcpy(reinterpret_cast<void *>(snap.sp), snap.stack.data(),
                snap.stack.size());
    ctx = snap.ctx;
    entry = nullptr;
    // Parked-thread snapshots resume through the normal yield path and
    // learn about the restore from their wake status; only self-captured
    // snapshots re-enter through captureSelf() and need the flag.
    restoredFlag = snap.selfCapture;
}

std::size_t
Fiber::liveStackBytes() const
{
    std::uintptr_t sp = contextSp(ctx);
    auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    if (sp <= base || sp > base + size)
        return 0;
    return base + size - sp;
}

} // namespace rsvm

#include "svm/base_protocol.hh"

#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"
#include "svm/homing/profiler.hh"

namespace rsvm {

BaseProtocolNode::BaseProtocolNode(SvmContext &context, NodeId node_id)
    : SvmNode(context, node_id)
{
}

bool
BaseProtocolNode::writeNeedsTwin(PageId page) const
{
    // Home nodes write their own pages in place: no twin, no diff.
    return ctx.as.primaryHome(page) != nodeId;
}

bool
BaseProtocolNode::skipInvalidate(PageId page) const
{
    // The home's working copy receives remote diffs directly and is
    // always current: never invalidate our own home pages.
    return ctx.as.primaryHome(page) == nodeId;
}

// ------------------------------------------------------------- page fetch

void
BaseProtocolNode::fetchPage(SimThread &self, PageId page)
{
    for (;;) {
        NodeId home = ctx.as.primaryHome(page);
        if (home == nodeId) {
            // First touch of an own home page: the working copy is
            // authoritative from the start (zero-filled).
            PageEntry &e = pt.entry(page);
            pt.ensureData(e);
            if (e.state == PageState::Invalid)
                e.state = PageState::ReadOnly;
            stats.localPageFetches++;
            return;
        }
        PageEntry &e = pt.entry(page);
        VectorClock req(ctx.cfg.numNodes);
        for (NodeId n = 0; n < ctx.cfg.numNodes; ++n)
            req[n] = e.reqVer[n];

        auto out = std::make_shared<std::vector<std::byte>>();
        SvmNode *home_node = ctx.nodes[home];
        CommStatus st = ctx.vmmc.fetch(
            self, nodeId, home, 64 + 4 * ctx.cfg.numNodes,
            [home_node, page, req, out](std::shared_ptr<Replier> rep) {
                home_node->handleFetch(page, req, std::move(rep), out);
            },
            Comp::DataWait);
        if (st == CommStatus::Ok) {
            if (ctx.homing)
                ctx.homing->recordFetch(page, nodeId);
            PageEntry &e2 = pt.entry(page);
            if (e2.state != PageState::Invalid) {
                // Another local thread faulted the page in while we
                // waited; installing our (possibly older) copy would
                // clobber writes made since. Discard ours.
                stats.remotePageFetches++;
                return;
            }
            // Write notices may have raised the required version while
            // the reply was in flight: the copy is stale — refetch.
            bool stale = false;
            for (NodeId n = 0; n < ctx.cfg.numNodes; ++n) {
                if (e2.reqVer[n] > req[n]) {
                    stale = true;
                    break;
                }
            }
            if (stale)
                continue;
            std::byte *data = pt.ensureData(e2);
            rsvm_assert(out->size() == ctx.cfg.pageSize);
            std::memcpy(data, out->data(), ctx.cfg.pageSize);
            applyPendingLocal(page, data);
            e2.state = PageState::ReadOnly;
            stats.remotePageFetches++;
            return;
        }
        if (st == CommStatus::Error) {
            if (ctx.cfg.protocol == ProtocolKind::Base) {
                // A congestion-abandoned fetch just retries; an actual
                // node death is unrecoverable under the base protocol.
                if (ctx.vmmc.anyNodeDead())
                    rsvm_panic("node failure under the base protocol");
            } else {
                parkUntilRecovered(self, Comp::DataWait);
            }
        }
        // Restarted / post-recovery: retry with fresh home mapping.
    }
}

void
BaseProtocolNode::replyWithPage(PageId page,
                                std::shared_ptr<Replier> rep,
                                std::shared_ptr<std::vector<std::byte>>
                                    out)
{
    PageEntry &e = pt.entry(page);
    std::byte *data = pt.ensureData(e);
    std::vector<std::byte> copy(data, data + ctx.cfg.pageSize);
    rep->reply(ctx.cfg.pageSize,
               [out, copy = std::move(copy)]() mutable {
                   *out = std::move(copy);
               });
}

void
BaseProtocolNode::handleFetch(PageId page, const VectorClock &req_ver,
                              std::shared_ptr<Replier> rep,
                              std::shared_ptr<std::vector<std::byte>>
                                  out)
{
    HomeInfo &hi = homeInfo(page);
    // Our own writes are always current in the working copy.
    VectorClock effective = hi.appliedVer;
    effective[nodeId] = intervalCtr;
    if (effective.dominates(req_ver)) {
        replyWithPage(page, std::move(rep), std::move(out));
        return;
    }
    hi.waiters.push_back(
        DeferredFetch{req_ver, std::move(rep), std::move(out)});
}

void
BaseProtocolNode::serviceFetchWaiters(PageId page)
{
    HomeInfo *hi = findHomeInfo(page);
    if (!hi)
        return;
    if (!hi->waiters.empty()) {
        VectorClock effective = hi->appliedVer;
        effective[nodeId] = intervalCtr;
        std::vector<DeferredFetch> still;
        for (auto &w : hi->waiters) {
            if (effective.dominates(w.reqVer))
                replyWithPage(page, std::move(w.rep),
                              std::move(w.out));
            else
                still.push_back(std::move(w));
        }
        hi->waiters.swap(still);
    }
    // Home threads blocked in waitHomeVersions() re-check on wake.
    wakeWaiters(hi->localWaiters);
}

void
BaseProtocolNode::waitHomeVersions(SimThread &self)
{
    while (!homeWaits.empty()) {
        auto it = homeWaits.begin();
        PageId page = it->first;
        VectorClock need = it->second;
        for (;;) {
            HomeInfo &hi = homeInfo(page);
            if (hi.appliedVer.size() == 0)
                hi.appliedVer = VectorClock(ctx.cfg.numNodes);
            VectorClock effective = hi.appliedVer;
            effective[nodeId] = intervalCtr;
            if (effective.dominates(need))
                break;
            hi.localWaiters.push_back({&self, self.generation()});
            (void)self.parkFor(ctx.cfg.heartbeatTimeout,
                               Comp::DataWait);
            // Any wake (diff applied, timeout, restart) re-checks.
        }
        homeWaits.erase(page);
    }
}

const std::byte *
BaseProtocolNode::homeBytes(PageId page)
{
    PageEntry *e = pt.find(page);
    return e ? e->data.get() : nullptr;
}

void
BaseProtocolNode::applyIncomingDiff(const Diff &d, int phase)
{
    rsvm_assert(phase == 0);
    RSVM_LOG(LogComp::Mem,
             "node %u applies diff page=%u origin=%u interval=%u "
             "prev=%u bytes=%u",
             nodeId, d.page, d.origin, d.interval, d.prevInterval,
             d.modifiedBytes());
    HomeInfo &hi = homeInfo(d.page);
    applyDiffChain(hi, hi.appliedVer, 0, d, [this](const Diff &dd) {
        PageEntry &e = pt.entry(dd.page);
        std::byte *data = pt.ensureData(e);
        diff::apply(dd, data, ctx.cfg.pageSize);
    });
    serviceFetchWaiters(d.page);
}

// ---------------------------------------------------------------- release

void
BaseProtocolNode::doRelease(SimThread &self, LockId lock,
                            bool is_barrier)
{
    releasesActive++;
    CommitResult cr = commitInterval(&self);
    propagation.stage(&self, cr.diffs);

    // Fig. 1 order: hand the lock to the next requester first, then
    // propagate the diffs (version waits at the homes keep fetches
    // correct).
    if (!is_barrier) {
        for (;;) {
            CommStatus st = globalRelease(self, lock);
            if (st == CommStatus::Ok)
                break;
            if (st == CommStatus::Error) {
                if (ctx.cfg.protocol == ProtocolKind::Base) {
                    if (ctx.vmmc.anyNodeDead())
                        rsvm_panic(
                            "node failure under the base protocol");
                } else {
                    parkUntilRecovered(self, Comp::LockWait);
                }
            }
        }
    }

    // One-phase pipeline instantiation: every diff goes to its
    // primary home; completion is awaited only at barriers (flush:
    // every update visible before the rendezvous completes). A home
    // never diffs its own pages (written in place), hence the assert.
    AddressSpace &as = ctx.as;
    NodeId me = nodeId;
    propagation.runPhase(
        self, cr.diffs, 0,
        [&as, me](const Diff &d) {
            NodeId home = as.primaryHome(d.page);
            rsvm_assert(home != me);
            return home;
        },
        /*wait=*/is_barrier);
    releasesActive--;
}

// ------------------------------------------------------------------- locks

CommStatus
BaseProtocolNode::globalAcquire(SimThread &self, LockId lock,
                                VectorClock &out_ts)
{
    return ctx.cfg.lockAlgo == LockAlgo::Queuing
               ? queueAcquire(self, lock, out_ts)
               : pollAcquire(self, lock, out_ts);
}

CommStatus
BaseProtocolNode::globalRelease(SimThread &self, LockId lock)
{
    return ctx.cfg.lockAlgo == LockAlgo::Queuing
               ? queueRelease(self, lock)
               : pollRelease(self, lock);
}

CommStatus
BaseProtocolNode::pollAcquire(SimThread &self, LockId lock,
                              VectorClock &out_ts)
{
    NodeId home = ctx.locks.primaryHome(lock);
    SimTime backoff = ctx.cfg.lockBackoffMin;
    for (;;) {
        SvmNode *home_node = ctx.nodes[home];
        NodeId me = nodeId;
        // Remote-write a nonzero value into our slot.
        CommStatus st = ctx.vmmc.deposit(
            self, nodeId, home, 16,
            [home_node, lock, me] {
                home_node->pollHome(lock).slots[me] = 1;
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
        // Read the whole vector (plus the timestamp if we won).
        auto sole = std::make_shared<bool>(false);
        auto got = std::make_shared<VectorClock>();
        std::uint32_t n = ctx.cfg.numNodes;
        st = ctx.vmmc.fetch(
            self, nodeId, home, 16,
            [home_node, lock, me, sole, got, n]
            (std::shared_ptr<Replier> rep) {
                PollLockHome &pl = home_node->pollHome(lock);
                // Winning requires our own slot present too: a home
                // remap can lose an in-flight slot write, and treating
                // that as a win would break mutual exclusion.
                bool s = pl.slots[me] != 0;
                for (NodeId i = 0; s && i < n; ++i) {
                    if (i != me && pl.slots[i])
                        s = false;
                }
                VectorClock t = pl.ts;
                rep->reply(n + 4 * n,
                           [sole, got, s, t = std::move(t)]() mutable {
                               *sole = s;
                               *got = std::move(t);
                           });
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
        stats.lockPollRounds++;
        if (*sole) {
            out_ts = *got;
            return CommStatus::Ok;
        }
        // Contended: reset our slot and back off (avoids livelock).
        st = ctx.vmmc.deposit(
            self, nodeId, home, 16,
            [home_node, lock, me] {
                home_node->pollHome(lock).slots[me] = 0;
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
        // §4.1: while waiting, heart-beat — the contending slot we see
        // may belong to a dead node.
        PhysNodeId dead;
        if (ctx.vmmc.sweepForFailures(self, &dead))
            return CommStatus::Error;
        SimTime jitter =
            backoff / 2 + ctx.eng.rng().below(backoff / 2 + 1);
        WakeStatus ws = self.delay(jitter, Comp::LockWait);
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        backoff = std::min<SimTime>(backoff * 2,
                                    ctx.cfg.lockBackoffMax);
    }
}

CommStatus
BaseProtocolNode::pollRelease(SimThread &self, LockId lock)
{
    NodeId home = ctx.locks.primaryHome(lock);
    SvmNode *home_node = ctx.nodes[home];
    NodeId me = nodeId;
    VectorClock my_ts = ts;
    return ctx.vmmc.deposit(
        self, nodeId, home, 16 + 4 * ctx.cfg.numNodes,
        [home_node, lock, me, my_ts] {
            PollLockHome &pl = home_node->pollHome(lock);
            // Max-merge keeps the timestamp monotonic even when a
            // restored thread re-executes a release (§4.5).
            pl.ts.maxWith(my_ts);
            pl.slots[me] = 0;
        },
        Comp::LockWait);
}

CommStatus
BaseProtocolNode::queueAcquire(SimThread &self, LockId lock,
                               VectorClock &out_ts)
{
    NodeId home = ctx.locks.primaryHome(lock);
    SvmNode *home_node = ctx.nodes[home];
    NodeId me = nodeId;
    grantWaits[lock] = GrantWait{};

    auto granted = std::make_shared<bool>(false);
    auto gts = std::make_shared<VectorClock>();
    CommStatus st = ctx.vmmc.fetch(
        self, nodeId, home, 32,
        [this, home_node, lock, me, granted, gts]
        (std::shared_ptr<Replier> rep) {
            QueueLockHome &q = home_node->queueHome(lock);
            std::uint32_t n = ctx.cfg.numNodes;
            if (!q.held) {
                q.held = true;
                q.tail = me;
                VectorClock t = q.ts;
                rep->reply(16 + 4 * n,
                           [granted, gts, t = std::move(t)]() mutable {
                               *granted = true;
                               *gts = std::move(t);
                           });
            } else {
                NodeId old_tail = q.tail;
                q.tail = me;
                rep->reply(16, [granted] { *granted = false; });
                // Forward the request to the latest requester: the
                // holder chain grants directly, bypassing the home.
                SvmNode *old_node = ctx.nodes[old_tail];
                ctx.vmmc.depositFromEvent(
                    home_node->id(), old_tail, 16,
                    [old_node, lock, me] {
                        old_node->setPendingNext(lock, me);
                    });
            }
        },
        Comp::LockWait);
    if (st != CommStatus::Ok)
        return st;
    if (*granted) {
        out_ts = *gts;
        return CommStatus::Ok;
    }
    // Wait for the direct grant from the previous holder.
    for (;;) {
        GrantWait &gw = grantWaits[lock];
        if (gw.granted) {
            out_ts = gw.ts;
            grantWaits.erase(lock);
            return CommStatus::Ok;
        }
        gw.waiter = &self;
        gw.gen = self.generation();
        WakeStatus ws =
            self.parkFor(ctx.cfg.heartbeatTimeout, Comp::LockWait);
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        if (ws == WakeStatus::Timeout) {
            PhysNodeId dead;
            if (ctx.vmmc.sweepForFailures(self, &dead))
                return CommStatus::Error;
        }
    }
}

CommStatus
BaseProtocolNode::queueRelease(SimThread &self, LockId lock)
{
    NodeId me = nodeId;
    for (;;) {
        NodeLockState &ls = nodeLocks[lock];
        if (ls.pendingNext != kInvalidNode) {
            NodeId next = ls.pendingNext;
            ls.pendingNext = kInvalidNode;
            SvmNode *next_node = ctx.nodes[next];
            VectorClock my_ts = ts;
            return ctx.vmmc.deposit(
                self, nodeId, next, 16 + 4 * ctx.cfg.numNodes,
                [next_node, lock, my_ts] {
                    next_node->receiveGrant(lock, my_ts);
                },
                Comp::LockWait);
        }
        // No successor known: ask the home to free the lock.
        NodeId home = ctx.locks.primaryHome(lock);
        SvmNode *home_node = ctx.nodes[home];
        auto freed = std::make_shared<bool>(false);
        VectorClock my_ts = ts;
        CommStatus st = ctx.vmmc.fetch(
            self, nodeId, home, 16 + 4 * ctx.cfg.numNodes,
            [home_node, lock, me, my_ts, freed]
            (std::shared_ptr<Replier> rep) {
                QueueLockHome &q = home_node->queueHome(lock);
                if (q.tail == me) {
                    q.held = false;
                    q.tail = kInvalidNode;
                    q.ts.maxWith(my_ts);
                    rep->reply(16, [freed] { *freed = true; });
                } else {
                    // A request is already being forwarded to us:
                    // wait for it and grant directly.
                    rep->reply(16, [freed] { *freed = false; });
                }
            },
            Comp::LockWait);
        if (st != CommStatus::Ok)
            return st;
        if (*freed)
            return CommStatus::Ok;
        // Wait for pendingNext to arrive, then loop to grant it.
        for (;;) {
            NodeLockState &ls2 = nodeLocks[lock];
            if (ls2.pendingNext != kInvalidNode)
                break;
            releaseWaits[lock] = {&self, self.generation()};
            WakeStatus ws = self.parkFor(ctx.cfg.heartbeatTimeout,
                                         Comp::LockWait);
            if (ws == WakeStatus::Restarted)
                return CommStatus::Restarted;
            if (ws == WakeStatus::Timeout) {
                PhysNodeId dead;
                if (ctx.vmmc.sweepForFailures(self, &dead))
                    return CommStatus::Error;
            }
        }
    }
}

} // namespace rsvm

/**
 * @file
 * Vector timestamps (lock timestamps in the paper, §3.2).
 *
 * ts[n] is the highest interval of node n whose updates have been
 * "performed locally" (write notices applied). Intervals start at 1;
 * 0 means "nothing from that node yet".
 */

#ifndef RSVM_SVM_TIMESTAMP_HH
#define RSVM_SVM_TIMESTAMP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/panic.hh"
#include "base/types.hh"

namespace rsvm {

/** A per-node vector of interval numbers. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(std::uint32_t n) : v(n, 0) {}

    IntervalNum &operator[](NodeId n)
    {
        rsvm_assert(n < v.size());
        return v[n];
    }
    IntervalNum operator[](NodeId n) const
    {
        rsvm_assert(n < v.size());
        return v[n];
    }

    std::uint32_t size() const
    { return static_cast<std::uint32_t>(v.size()); }

    /** Element-wise maximum merge (monotonic: never loses knowledge). */
    void
    maxWith(const VectorClock &o)
    {
        rsvm_assert(o.size() == size());
        for (std::uint32_t i = 0; i < v.size(); ++i)
            if (o.v[i] > v[i])
                v[i] = o.v[i];
    }

    /** True if this >= o element-wise. */
    bool
    dominates(const VectorClock &o) const
    {
        rsvm_assert(o.size() == size());
        for (std::uint32_t i = 0; i < v.size(); ++i)
            if (v[i] < o.v[i])
                return false;
        return true;
    }

    bool
    operator==(const VectorClock &o) const
    {
        return v == o.v;
    }

    std::string
    toString() const
    {
        std::string s = "[";
        for (std::uint32_t i = 0; i < v.size(); ++i) {
            if (i)
                s += ",";
            s += std::to_string(v[i]);
        }
        return s + "]";
    }

  private:
    std::vector<IntervalNum> v;
};

} // namespace rsvm

#endif // RSVM_SVM_TIMESTAMP_HH

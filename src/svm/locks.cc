#include "svm/locks.hh"

#include "base/panic.hh"

namespace rsvm {

LockDirectory::LockDirectory(std::uint32_t num_locks,
                             std::uint32_t num_nodes)
    : locks(num_locks), nodes(num_nodes)
{
    primary.resize(locks);
    secondary.resize(locks);
    for (LockId l = 0; l < locks; ++l) {
        primary[l] = l % nodes;
        secondary[l] = (primary[l] + 1) % nodes;
    }
}

NodeId
LockDirectory::primaryHome(LockId l) const
{
    rsvm_assert(l < locks);
    return primary[l];
}

NodeId
LockDirectory::secondaryHome(LockId l) const
{
    rsvm_assert(l < locks);
    return secondary[l];
}

NodeId
LockDirectory::nextEligible(
    NodeId after, NodeId other,
    const std::function<bool(NodeId, NodeId)> &eligible) const
{
    for (std::uint32_t step = 1; step <= nodes; ++step) {
        NodeId cand = (after + step) % nodes;
        if (cand != other && eligible(cand, other))
            return cand;
    }
    rsvm_panic("no eligible lock home candidate (too many failures)");
}

void
LockDirectory::remapHomes(
    NodeId failed,
    const std::function<bool(NodeId, NodeId)> &eligible,
    const std::function<void(LockId, NodeId)> &moved)
{
    for (LockId l = 0; l < locks; ++l) {
        bool changed = false;
        if (primary[l] == failed) {
            primary[l] = secondary[l];
            secondary[l] = nextEligible(primary[l], primary[l],
                                        eligible);
            changed = true;
        } else if (secondary[l] == failed) {
            secondary[l] = nextEligible(primary[l], primary[l],
                                        eligible);
            changed = true;
        } else if (!eligible(secondary[l], primary[l])) {
            secondary[l] = nextEligible(secondary[l], primary[l],
                                        eligible);
            changed = true;
        }
        if (changed)
            moved(l, primary[l]);
    }
}

} // namespace rsvm

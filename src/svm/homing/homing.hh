/**
 * @file
 * The homing manager: epoch-driven online page migration.
 *
 * Every Config::homingEpoch of simulated time, on a quiescent cluster
 * (no release in flight, no failure pending), the manager asks the
 * placement policy for mis-homed hot pages and performs a live home
 * handoff for each elected page:
 *
 *  1. plan      — elect (page, newPrimary, newSecondary) moves;
 *  2. transfer  — freeze the page at every involved node (migration
 *                 lock, same stall machinery as release page locks),
 *                 then copy the committed role (bytes, version,
 *                 deferred-diff chains) to the new primary and the
 *                 tentative role (plus undo records) to the new
 *                 secondary. Old copies stay intact;
 *  3. commit    — flip the directory (AddressSpace::setHomes), the
 *                 single atomic step that makes the new homes
 *                 authoritative;
 *  4. cleanup   — retire the old copies, hand deferred remote fetches
 *                 to the new primary, wake local waiters (their fetch
 *                 loops re-read the directory).
 *
 * A migration:* failpoint fires after each step on every live physical
 * node. A fail-stop before the directory flip rolls the handoff back
 * (remove the new copies, old homes still authoritative); one at or
 * after the flip rolls it forward (the old copies are left behind as
 * dominated orphans, exactly like the orphan tentative copies
 * recovery's co-host remap already produces). Either way the epoch
 * aborts and the death is handed to the recovery manager, which runs
 * after the current engine event — i.e. after the handoff reached a
 * consistent side.
 *
 * The modelled handoff latency is charged by keeping the migration
 * locks set until a single unlock event at now + cost; data movement
 * itself happens at one engine instant, so no protocol message can
 * interleave with a half-moved page.
 */

#ifndef RSVM_SVM_HOMING_HOMING_HH
#define RSVM_SVM_HOMING_HOMING_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "svm/homing/policy.hh"
#include "svm/homing/profiler.hh"
#include "svm/protocol.hh"

namespace rsvm {

class FtProtocolNode;

/** Drives profiling epochs and live home migrations (one per cluster). */
class HomingManager
{
  public:
    explicit HomingManager(SvmContext &context);

    /** Death sink for failpoint kills (RecoveryManager::onPhysFailure). */
    void setDeathHook(std::function<void(PhysNodeId)> hook)
    { deathHook = std::move(hook); }

    /** Schedule the first epoch tick. */
    void start();

    /**
     * Stop ticking permanently (cluster declared lost). Without this
     * the epoch timer would keep the engine alive forever: killed
     * compute threads sit in Dead — not Finished — state, so the
     * is-the-app-done check cannot tell a lost cluster from one whose
     * recovery is about to revive them.
     */
    void stop() { stopped = true; }

    /**
     * Resume ticking after a cold restart un-lost the cluster. Any
     * pre-stop tick event has already fired as a no-op, so scheduling
     * a fresh one cannot double-tick.
     */
    void
    restart()
    {
        stopped = false;
        quiesceRetries = 0;
        epochCost = 0;
        lockedByUs.clear();
        start();
    }

    /** True while an epoch's handoff locks are still held. */
    bool migrationInFlight() const { return !lockedByUs.empty(); }

    /** The profiler the protocol hot paths feed. */
    HomingProfiler &profiler() { return prof; }

    const Counters &counters() const { return stats; }

    /** Epochs actually evaluated (quiesced ticks). */
    std::uint64_t epochsEvaluated() const { return epoch; }

  private:
    /** Quiesce retries (50 us apart) before an epoch is skipped. */
    static constexpr int kMaxQuiesceRetries = 20;

    void tick();
    void runEpoch();
    /** One page's handoff; true when a failpoint death aborts the epoch. */
    bool migratePage(const Placement &pl);

    bool quiescedForMigration() const;
    bool anyComputeAlive() const;
    bool hostAlive(NodeId n) const;
    FtProtocolNode *ft(NodeId n) const;

    /** Set the migration lock (records it for the unlock event). */
    void lockEntry(NodeId n, PageId page);
    /** One event at now + accumulated handoff cost clears every lock. */
    void scheduleUnlock();

    void clearCommittedRole(FtProtocolNode *n, PageId page) const;
    void clearTentativeRole(FtProtocolNode *n, PageId page) const;

    /** Fire a migration failpoint on every live physical node; true if
     *  it killed someone (death already routed to the hook). */
    bool firePoint(const char *name);

    SvmContext &ctx;
    HomingProfiler prof;
    PlacementPolicy policy;
    std::function<void(PhysNodeId)> deathHook;
    Counters stats;

    bool stopped = false;
    std::uint64_t epoch = 0;
    /** ctx.recoveryEpoch as of the last evaluated epoch. */
    std::uint64_t seenRecoveryEpoch = 0;
    int quiesceRetries = 0;
    /** Modelled cost of this epoch's handoffs (drives the unlock). */
    SimTime epochCost = 0;
    /** (node, page) pairs whose migration lock we set this epoch. */
    std::vector<std::pair<NodeId, PageId>> lockedByUs;
};

} // namespace rsvm

#endif // RSVM_SVM_HOMING_HOMING_HH

#include "svm/homing/homing.hh"

#include <cstring>
#include <unordered_map>

#include "base/log.hh"
#include "base/panic.hh"
#include "ftsvm/ft_protocol.hh"
#include "sim/engine.hh"

namespace rsvm {

HomingManager::HomingManager(SvmContext &context)
    : ctx(context), prof(context.cfg.numNodes, context.cfg.pageSize),
      policy(context.cfg)
{
}

FtProtocolNode *
HomingManager::ft(NodeId n) const
{
    return static_cast<FtProtocolNode *>(ctx.nodes[n]);
}

bool
HomingManager::hostAlive(NodeId n) const
{
    return ctx.ops->physAlive(ctx.ops->hostOf(n));
}

void
HomingManager::start()
{
    ctx.eng.schedule(ctx.cfg.homingEpoch, [this] { tick(); });
}

bool
HomingManager::anyComputeAlive() const
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        for (SimThread *t : ctx.ops->computeThreads(n)) {
            // Dead (killed, awaiting restore) still counts as alive:
            // recovery will revive it and the run continues.
            if (t->state() != ThreadState::Finished)
                return true;
        }
    }
    return false;
}

bool
HomingManager::quiescedForMigration() const
{
    // Stricter than recovery's quiesce: migration moves committed
    // state, so it needs a cluster with NO release propagating and no
    // failure in any stage of detection or repair. A long-dead phys
    // node whose logical nodes were re-hosted does NOT block: only an
    // unrecovered death (some logical node still on a dead host) does.
    if (ctx.pendingRecovery)
        return false;
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (!hostAlive(n))
            return false;
    }
    for (SvmNode *n : ctx.nodes) {
        if (n->releaseInProgress())
            return false;
    }
    return true;
}

void
HomingManager::tick()
{
    if (stopped || !anyComputeAlive())
        return; // application done or cluster lost: let the engine drain
    if (!quiescedForMigration()) {
        // Retry at the recovery poll cadence; if the cluster never
        // goes idle, skip this epoch rather than spin.
        if (++quiesceRetries <= kMaxQuiesceRetries) {
            ctx.eng.schedule(50 * kMicrosecond, [this] { tick(); });
        } else {
            quiesceRetries = 0;
            ctx.eng.schedule(ctx.cfg.homingEpoch, [this] { tick(); });
        }
        return;
    }
    quiesceRetries = 0;
    runEpoch();
    ctx.eng.schedule(ctx.cfg.homingEpoch, [this] { tick(); });
}

bool
HomingManager::firePoint(const char *name)
{
    if (!ctx.injector)
        return false;
    std::vector<bool> live(ctx.cfg.numNodes);
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p)
        live[p] = ctx.ops->physAlive(p);
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
        if (live[p])
            ctx.injector->failpoint(p, name);
    }
    bool any = false;
    for (PhysNodeId p = 0; p < ctx.cfg.numNodes; ++p) {
        if (live[p] && !ctx.ops->physAlive(p)) {
            any = true;
            RSVM_LOG(LogComp::Ft,
                     "phys node %u died at migration point '%s'", p,
                     name);
            // The hook (RecoveryManager::onPhysFailure) counts the
            // detection and schedules its quiesce poll at delay 0 —
            // i.e. after this epoch finishes rolling back or forward.
            // A later heartbeat sweep must not re-announce the death.
            ctx.vmmc.markDeathObserved(p);
            if (deathHook)
                deathHook(p);
        }
    }
    return any;
}

void
HomingManager::lockEntry(NodeId n, PageId page)
{
    PageEntry &e = ctx.nodes[n]->pageTable().entry(page);
    if (e.migLocked)
        return; // still frozen by a pending unlock; keep that owner
    e.migLocked = true;
    lockedByUs.push_back({n, page});
}

void
HomingManager::scheduleUnlock()
{
    SimTime cost = epochCost;
    epochCost = 0;
    if (lockedByUs.empty())
        return;
    auto locked = std::move(lockedByUs);
    lockedByUs.clear();
    SvmContext *cx = &ctx;
    ctx.eng.schedule(cost, [cx, locked = std::move(locked)] {
        for (const auto &[n, p] : locked) {
            // find(), not entry(): a re-hosted node's page table was
            // reset and must not grow a fresh entry here.
            if (PageEntry *e = cx->nodes[n]->pageTable().find(p))
                e->migLocked = false;
        }
        std::vector<bool> woken(cx->numNodes(), false);
        for (const auto &[n, p] : locked) {
            if (!woken[n]) {
                woken[n] = true;
                cx->nodes[n]->wakePageLockWaiters();
            }
        }
    });
}

void
HomingManager::clearCommittedRole(FtProtocolNode *n, PageId page) const
{
    if (HomeInfo *hi = n->findHomeInfo(page)) {
        hi->committed.reset();
        // Zeroed, NOT empty: every HomeInfo clock is sized numNodes
        // (protocol code indexes them unconditionally).
        hi->committedVer = VectorClock(ctx.cfg.numNodes);
        hi->deferredDiffs[0].clear();
    }
}

void
HomingManager::clearTentativeRole(FtProtocolNode *n, PageId page) const
{
    if (HomeInfo *hi = n->findHomeInfo(page)) {
        hi->tentative.reset();
        hi->tentativeVer = VectorClock(ctx.cfg.numNodes);
        hi->deferredDiffs[1].clear();
        hi->tentUndo.clear();
    }
}

void
HomingManager::runEpoch()
{
    epoch++;
    prof.noteEpoch(epoch);
    stats.epochMisHomedBytesHist.sample(prof.epochMisHomedBytes());

    if (ctx.recoveryEpoch != seenRecoveryEpoch) {
        // A recovery remapped homes underneath the profile; what it
        // describes no longer exists. Start over.
        seenRecoveryEpoch = ctx.recoveryEpoch;
        prof.clear();
        stats.epochMigrationsHist.sample(0);
        return;
    }

    auto eligible = [this](NodeId cand, NodeId other) {
        return hostAlive(cand) &&
               ctx.ops->hostOf(cand) != ctx.ops->hostOf(other);
    };
    const bool want_secondary =
        ctx.cfg.protocol == ProtocolKind::FaultTolerant;
    std::vector<Placement> picks =
        policy.plan(prof, ctx.as, ctx.numNodes(), want_secondary,
                    eligible, epoch);

    std::uint64_t before = stats.homeMigrations;
    if (!firePoint(failpoints::kMigPlan)) {
        for (const Placement &pl : picks) {
            if (migratePage(pl))
                break; // a failpoint killed a node: epoch over
        }
    }
    stats.epochMigrationsHist.sample(stats.homeMigrations - before);
    prof.decay();
    scheduleUnlock();
}

bool
HomingManager::migratePage(const Placement &pl)
{
    const PageId page = pl.page;
    const NodeId oldPrim = ctx.as.primaryHome(page);
    const NodeId oldSec = ctx.as.secondaryHome(page);
    const NodeId newPrim = pl.newPrimary;
    const NodeId newSec = pl.newSecondary;
    if (newPrim == oldPrim && newSec == oldSec)
        return false;
    // Migration is a two-replica flip; pages under a per-page
    // replication-degree policy (k=1 scratch, k>=3 hot) are placed by
    // recovery/join instead.
    if (ctx.as.replicationDegree(page) != 2 ||
        ctx.as.effectiveDegree(page) != 2)
        return false;
    rsvm_assert(newPrim != oldPrim);

    RSVM_LOG(LogComp::Ft,
             "migrating page %u homes (%u,%u) -> (%u,%u)", page,
             oldPrim, oldSec, newPrim, newSec);

    FtProtocolNode *src_p = ft(oldPrim);
    FtProtocolNode *src_s = ft(oldSec);
    FtProtocolNode *dst_p = ft(newPrim);
    FtProtocolNode *dst_s = ft(newSec);

    // Freeze the page at every involved node for the handoff window.
    lockEntry(oldPrim, page);
    lockEntry(oldSec, page);
    lockEntry(newPrim, page);
    lockEntry(newSec, page);

    // Snapshot both role states into locals before installing: the
    // installs create HomeInfo entries, and an unordered_map rehash
    // would invalidate any reference still pointing into a source
    // node's table (newSec may be the old primary, newPrim the old
    // secondary).
    const std::uint32_t psz = ctx.cfg.pageSize;
    struct RoleSnap
    {
        bool have = false;
        std::vector<std::byte> bytes;
        VectorClock ver;
        std::unordered_map<NodeId, std::vector<Diff>> deferred;
        std::unordered_map<NodeId, Diff> undo;
    };
    RoleSnap cs, tsnap;
    // A source that never materialized a HomeInfo contributes a zeroed
    // (but properly sized) clock, matching homeInfo()'s own init.
    cs.ver = VectorClock(ctx.cfg.numNodes);
    tsnap.ver = VectorClock(ctx.cfg.numNodes);
    if (HomeInfo *hi = src_p->findHomeInfo(page)) {
        if (hi->committed) {
            cs.have = true;
            cs.bytes.assign(hi->committed.get(),
                            hi->committed.get() + psz);
        }
        cs.ver = hi->committedVer;
        cs.deferred = hi->deferredDiffs[0];
    }
    // An unchanged secondary keeps its tentative copy in place.
    const bool move_tent = newSec != oldSec;
    if (move_tent) {
        if (HomeInfo *hi = src_s->findHomeInfo(page)) {
            if (hi->tentative) {
                tsnap.have = true;
                tsnap.bytes.assign(hi->tentative.get(),
                                   hi->tentative.get() + psz);
            }
            tsnap.ver = hi->tentativeVer;
            tsnap.deferred = hi->deferredDiffs[1];
            tsnap.undo = hi->tentUndo;
        }
    }

    // Transfer: install the roles at the new homes (old copies intact).
    std::uint64_t moved = 0;
    {
        HomeInfo &hi = dst_p->homeInfo(page);
        if (cs.have) {
            std::memcpy(dst_p->committedData(page), cs.bytes.data(),
                        psz);
            moved += psz;
        }
        hi.committedVer = cs.ver;
        hi.deferredDiffs[0] = cs.deferred;
    }
    if (move_tent) {
        HomeInfo &hi = dst_s->homeInfo(page);
        if (tsnap.have) {
            std::memcpy(dst_s->tentativeData(page), tsnap.bytes.data(),
                        psz);
            moved += psz;
        }
        hi.tentativeVer = tsnap.ver;
        hi.deferredDiffs[1] = tsnap.deferred;
        hi.tentUndo = tsnap.undo;
    }

    if (firePoint(failpoints::kMigTransfer)) {
        // Roll back: the directory still names the old homes; discard
        // the copies just installed. Role-wise clearing keeps any
        // other role the destination nodes legitimately hold.
        clearCommittedRole(dst_p, page);
        if (move_tent)
            clearTentativeRole(dst_s, page);
        stats.migrationsRolledBack++;
        return true;
    }

    // Commit: flip the directory. The single atomic step after which
    // the new homes are authoritative.
    ctx.as.setHomes(page, newPrim, newSec);
    stats.homeMigrations++;
    stats.migratedBytes += moved;
    epochCost += ctx.cfg.wireTime(moved + 128);
    prof.setCooldown(page, epoch + ctx.cfg.homingCooldownEpochs);

    if (firePoint(failpoints::kMigCommit)) {
        // Roll forward: skip cleanup. The stale old copies stay behind
        // as dominated orphans — the same shape recovery's co-host
        // remap already leaves — and recovery (which runs next) treats
        // them like any other non-home copy. Local waiters at the old
        // primary re-read the directory when woken.
        if (HomeInfo *hi = src_p->findHomeInfo(page))
            wakeWaiters(hi->localWaiters);
        return true;
    }

    // Cleanup: retire the old copies and move the fetch waiters. At a
    // quiesced instant both waiter lists are normally empty (every
    // committed version a fetch could require has been applied), but
    // handle them anyway: deferred remote fetches follow the committed
    // role, local waiters re-evaluate the directory on wake.
    if (HomeInfo *hi = src_p->findHomeInfo(page)) {
        for (auto &w : hi->waiters)
            dst_p->homeInfo(page).waiters.push_back(std::move(w));
        hi->waiters.clear();
        wakeWaiters(hi->localWaiters);
    }
    clearCommittedRole(src_p, page);
    if (move_tent)
        clearTentativeRole(src_s, page);
    dst_p->serviceFetchWaiters(page);

    return firePoint(failpoints::kMigCleanup);
}

} // namespace rsvm

#include "svm/homing/policy.hh"

#include <algorithm>

namespace rsvm {

std::vector<Placement>
PlacementPolicy::plan(const HomingProfiler &prof, const AddressSpace &as,
                      std::uint32_t num_nodes, bool want_secondary,
                      const EligibleFn &eligible,
                      std::uint64_t epoch) const
{
    std::vector<Placement> out;
    for (const auto &[page, p] : prof.profiles()) {
        if (p.cooldownUntilEpoch > epoch)
            continue;
        if (p.diffBytes.empty())
            continue;

        NodeId cur = as.primaryHome(page);
        NodeId best = 0;
        std::uint64_t best_t = 0, total = 0;
        for (NodeId n = 0; n < num_nodes; ++n) {
            std::uint64_t t = prof.traffic(p, n);
            total += t;
            // Ties break toward the lower node id: deterministic, and
            // a tie with the current home keeps the page put below.
            if (t > best_t) {
                best_t = t;
                best = n;
            }
        }
        if (total < cfg.homingMinBytes || best == cur)
            continue;

        std::uint64_t cur_t = prof.traffic(p, cur);
        double threshold =
            cfg.homingHysteresis * static_cast<double>(
                                       cur_t ? cur_t : 1);
        if (static_cast<double>(best_t) < threshold)
            continue;

        Placement pl;
        pl.page = page;
        pl.newPrimary = best;
        pl.newSecondary = best; // overwritten below
        pl.score = best_t - cur_t;
        if (want_secondary) {
            // Prefer swapping with the old primary: it already holds
            // the committed bytes, so the pair flips without creating
            // a third copy site.
            NodeId sec = num_nodes; // sentinel: none found
            if (cur != best && eligible(cur, best)) {
                sec = cur;
            } else {
                // Next-best traffic node on a distinct physical host.
                std::uint64_t sec_t = 0;
                for (NodeId n = 0; n < num_nodes; ++n) {
                    if (n == best || !eligible(n, best))
                        continue;
                    std::uint64_t t = prof.traffic(p, n);
                    if (sec == num_nodes || t > sec_t) {
                        sec = n;
                        sec_t = t;
                    }
                }
            }
            if (sec == num_nodes)
                continue; // no eligible secondary: page stays put
            pl.newSecondary = sec;
        }
        out.push_back(pl);
    }

    std::sort(out.begin(), out.end(),
              [](const Placement &a, const Placement &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.page < b.page;
              });
    if (out.size() > cfg.homingBudget)
        out.resize(cfg.homingBudget);
    return out;
}

} // namespace rsvm

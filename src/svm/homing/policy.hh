/**
 * @file
 * Epoch-driven placement policy: elect new homes for mis-homed hot
 * pages.
 *
 * Given the profiler's per-page traffic view and the current
 * directory, the policy nominates (page, newPrimary, newSecondary)
 * moves subject to:
 *
 *  - activity floor: pages below Config::homingMinBytes of epoch
 *    traffic stay put (migration costs two page transfers);
 *  - hysteresis: the candidate must out-weigh the current home by
 *    Config::homingHysteresis, so pages with oscillating ownership
 *    do not ping-pong;
 *  - cooldown: a freshly migrated page is ineligible for
 *    Config::homingCooldownEpochs epochs;
 *  - budget: at most Config::homingBudget moves per epoch, highest
 *    traffic advantage first;
 *  - secondary distinctness: the new secondary must be a different
 *    logical node on a different *physical* host than the new primary
 *    (the same eligibility rule recovery's home remap uses). The old
 *    primary is preferred — it already holds the page bytes, so a
 *    swap keeps a warm copy site.
 *
 * Pure function of its inputs; no protocol dependencies, so tests
 * drive it directly.
 */

#ifndef RSVM_SVM_HOMING_POLICY_HH
#define RSVM_SVM_HOMING_POLICY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"
#include "mem/addrspace.hh"
#include "svm/homing/profiler.hh"

namespace rsvm {

/** One elected migration. */
struct Placement
{
    PageId page;
    NodeId newPrimary;
    NodeId newSecondary;
    /** Traffic advantage of the new primary over the current home. */
    std::uint64_t score;
};

/** The placement engine (stateless between plan() calls). */
class PlacementPolicy
{
  public:
    /** Same contract as AddressSpace::remapHomes eligibility. */
    using EligibleFn = std::function<bool(NodeId cand, NodeId other)>;

    explicit PlacementPolicy(const Config &config) : cfg(config) {}

    /**
     * Elect this epoch's migrations. @p want_secondary selects the FT
     * dual-home form (a page without an eligible distinct secondary is
     * skipped). Results are sorted by descending score and truncated
     * to the migration budget.
     */
    std::vector<Placement>
    plan(const HomingProfiler &prof, const AddressSpace &as,
         std::uint32_t num_nodes, bool want_secondary,
         const EligibleFn &eligible, std::uint64_t epoch) const;

  private:
    const Config &cfg;
};

} // namespace rsvm

#endif // RSVM_SVM_HOMING_POLICY_HH

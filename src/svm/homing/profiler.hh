/**
 * @file
 * Per-page sharing profiler for adaptive home placement.
 *
 * The existing release/fetch paths feed it two cheap signals:
 *
 *  - recordDiff: a committed-copy diff left a writer for its page's
 *    primary home (diff bytes per origin; a self-targeted diff is the
 *    home's own write traffic, so "home-local writes" fall out of the
 *    same table);
 *  - recordFetch: a node pulled a remote copy of a page.
 *
 * Counters accumulate into per-page profiles and age by halving at
 * every epoch boundary, so the policy sees an exponentially weighted
 * view of recent sharing rather than all-time totals. Pure
 * bookkeeping: no engine, protocol, or directory dependencies.
 */

#ifndef RSVM_SVM_HOMING_PROFILER_HH
#define RSVM_SVM_HOMING_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace rsvm {

/** One page's accumulated sharing profile. */
struct PageProfile
{
    /** Diff bytes produced per origin node (aged). */
    std::vector<std::uint64_t> diffBytes;
    /** Remote fetches issued per requesting node (aged). */
    std::vector<std::uint64_t> fetches;
    /** Epoch before which the page may not migrate again. */
    std::uint64_t cooldownUntilEpoch = 0;
};

/** Cluster-wide access profiler (one per HomingManager). */
class HomingProfiler
{
  public:
    HomingProfiler(std::uint32_t num_nodes, std::uint32_t page_size)
        : nodes(num_nodes), pageBytes(page_size)
    {
    }

    void
    recordDiff(PageId page, NodeId origin, std::uint32_t bytes,
               bool mis_homed)
    {
        profileOf(page).diffBytes[origin] += bytes;
        if (mis_homed)
            epochMisHomed += bytes;
    }

    void
    recordFetch(PageId page, NodeId requester)
    {
        profileOf(page).fetches[requester]++;
    }

    /**
     * A node's traffic weight on a page: diff bytes written plus one
     * page worth of bytes per remote fetch (a fetch moves a full
     * page, so both signals share one unit).
     */
    std::uint64_t
    traffic(const PageProfile &p, NodeId n) const
    {
        return p.diffBytes[n] + pageBytes * p.fetches[n];
    }

    const std::unordered_map<PageId, PageProfile> &
    profiles() const
    {
        return table;
    }

    PageProfile *
    find(PageId page)
    {
        auto it = table.find(page);
        return it == table.end() ? nullptr : &it->second;
    }

    /** Mis-homed diff bytes observed since the last decay(). */
    std::uint64_t epochMisHomedBytes() const { return epochMisHomed; }

    /**
     * Epoch boundary: halve every counter (exponential aging) and
     * drop pages whose profile decayed to nothing. Cooldown stamps
     * survive until they expire.
     */
    void
    decay()
    {
        epochMisHomed = 0;
        for (auto it = table.begin(); it != table.end();) {
            PageProfile &p = it->second;
            std::uint64_t remaining = 0;
            for (NodeId n = 0; n < nodes; ++n) {
                p.diffBytes[n] /= 2;
                p.fetches[n] /= 2;
                remaining += p.diffBytes[n] + p.fetches[n];
            }
            if (remaining == 0 && p.cooldownUntilEpoch <= curEpoch)
                it = table.erase(it);
            else
                ++it;
        }
    }

    /** Forget everything (recovery remapped homes under us). */
    void
    clear()
    {
        table.clear();
        epochMisHomed = 0;
    }

    void
    setCooldown(PageId page, std::uint64_t until_epoch)
    {
        profileOf(page).cooldownUntilEpoch = until_epoch;
    }

    /** Policy epoch bookkeeping (used by decay's cooldown retention). */
    void noteEpoch(std::uint64_t epoch) { curEpoch = epoch; }

  private:
    PageProfile &
    profileOf(PageId page)
    {
        PageProfile &p = table[page];
        if (p.diffBytes.empty()) {
            p.diffBytes.assign(nodes, 0);
            p.fetches.assign(nodes, 0);
        }
        return p;
    }

    std::uint32_t nodes;
    std::uint32_t pageBytes;
    std::uint64_t epochMisHomed = 0;
    std::uint64_t curEpoch = 0;
    std::unordered_map<PageId, PageProfile> table;
};

} // namespace rsvm

#endif // RSVM_SVM_HOMING_PROFILER_HH

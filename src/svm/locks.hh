/**
 * @file
 * Lock synchronization state (§3.2, §4.3).
 *
 * Two algorithms are provided:
 *
 *  - The *distributed queuing lock* of the original GeNIMA protocol:
 *    each lock's home tracks the tail of a virtual requester queue and
 *    forwards new requests to the latest requester; the previous
 *    holder grants the lock directly to its successor.
 *
 *  - The *centralized polling lock* that the paper adopts for the
 *    extended protocol: each lock is a vector with one slot per node
 *    at a home node; a node acquires by remote-writing its slot and
 *    reading the whole vector; if any other slot is set it resets its
 *    own slot and backs off. The scheme is stateless, which is what
 *    makes lock recovery trivial (§4.3): a failed node's slot simply
 *    persists until its replayed thread re-acquires or re-releases.
 *
 * Both algorithms share the intra-SMP layer: threads on one node
 * exchange a held lock locally without any message traffic.
 *
 * The LockDirectory assigns each lock a primary and (for the
 * fault-tolerant protocol) a secondary home and supports the same
 * failure remapping as page homes.
 */

#ifndef RSVM_SVM_LOCKS_HH
#define RSVM_SVM_LOCKS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "svm/timestamp.hh"

namespace rsvm {

class SimThread;

/** Home-side state of one centralized polling lock. */
struct PollLockHome
{
    /** One slot per logical node: nonzero while that node contends or
     *  holds the lock. */
    std::vector<std::uint8_t> slots;
    /** Timestamp left by the last releaser (max-merged, monotonic). */
    VectorClock ts;

    explicit PollLockHome(std::uint32_t nodes)
        : slots(nodes, 0), ts(nodes)
    {}
};

/** Home-side state of one distributed queuing lock. */
struct QueueLockHome
{
    /** A node currently owns the lock (or is being granted it). */
    bool held = false;
    /** Latest requester: new requests are forwarded to it. */
    NodeId tail = kInvalidNode;
    /** Timestamp of the last release (only valid while free). */
    VectorClock ts;

    explicit QueueLockHome(std::uint32_t nodes) : ts(nodes) {}
};

/** Node-local (intra-SMP) state of one lock. */
struct NodeLockState
{
    enum class Status : std::uint8_t {
        /** This node neither holds nor wants the lock. */
        Free,
        /** A local thread is performing the global acquire. */
        Acquiring,
        /** A local thread holds the lock. */
        Held,
    };
    Status status = Status::Free;
    /** Thread currently holding (valid while Held). */
    ThreadId holder = kInvalidThread;
    /** Local threads waiting for an intra-node handoff (with their
     *  generation, so stale entries from restored threads are skipped). */
    std::vector<std::pair<SimThread *, std::uint64_t>> waiters;
    /**
     * Queuing lock only: the node that should receive the lock next
     * (set when the home forwards a request to us as queue tail).
     */
    NodeId pendingNext = kInvalidNode;
};

/** Global lock-home assignment with failure remapping. */
class LockDirectory
{
  public:
    LockDirectory(std::uint32_t num_locks, std::uint32_t num_nodes);

    std::uint32_t numLocks() const { return locks; }
    NodeId primaryHome(LockId l) const;
    NodeId secondaryHome(LockId l) const;

    /**
     * Rewrite homes after logical node @p failed lost its state; see
     * AddressSpace::remapHomes for the eligibility contract. @p moved
     * is called for each lock whose home set changed, with the
     * surviving home to re-replicate from.
     */
    void remapHomes(
        NodeId failed,
        const std::function<bool(NodeId candidate, NodeId other)> &eligible,
        const std::function<void(LockId lock, NodeId survivor)> &moved);

    /**
     * Install a persisted home assignment verbatim (cold restart).
     * Bypasses the eligibility contract: the persistence tier recorded
     * an assignment that was valid at the watermark cut.
     */
    void
    restoreHomes(LockId l, NodeId prim, NodeId sec)
    {
        primary[l] = prim;
        secondary[l] = sec;
    }

  private:
    NodeId nextEligible(NodeId after, NodeId other,
                        const std::function<bool(NodeId, NodeId)> &
                            eligible) const;

    std::uint32_t locks;
    std::uint32_t nodes;
    std::vector<NodeId> primary;
    std::vector<NodeId> secondary;
};

} // namespace rsvm

#endif // RSVM_SVM_LOCKS_HH

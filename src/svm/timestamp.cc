// VectorClock is header-only; this translation unit exists so the
// build system has a stable anchor for the svm module.
#include "svm/timestamp.hh"

#include "svm/propagation.hh"

#include <utility>

#include "sim/engine.hh"
#include "svm/homing/profiler.hh"
#include "svm/protocol.hh"

namespace rsvm {

namespace {

const char *
applyEventName(int phase)
{
    switch (phase) {
      case 1:
        return "phase1-apply";
      case 2:
        return "phase2-apply";
      default:
        return "diff-apply";
    }
}

} // namespace

void
PropagationPipeline::recordPlacement(const Diff &d, NodeId dst,
                                     int phase)
{
    if (phase == 1)
        return;
    if (dst != nodeId)
        stats.misHomedDiffBytes += d.wireBytes();
    if (ctx.homing)
        ctx.homing->recordDiff(d.page, nodeId, d.wireBytes(),
                               dst != nodeId);
}

void
PropagationPipeline::stage(SimThread *self, std::vector<Diff> &diffs)
{
    if (!ctx.cfg.batchDiffs || diffs.empty())
        return;
    diff::CoalesceStats cs = diff::coalesce(diffs);
    stats.propRunsMerged += cs.runsMerged;
    stats.propPagesMerged += cs.pagesMerged;
    if (self && cs.bytesRebuilt) {
        self->charge(Comp::Diff,
                     static_cast<SimTime>(
                         static_cast<double>(cs.bytesRebuilt) *
                         ctx.cfg.diffApplyNsPerByte));
    }
}

CommStatus
PropagationPipeline::runPhase(SimThread &self,
                              const std::vector<Diff> &diffs, int phase,
                              const TargetFn &target, bool wait,
                              const Hook &after_first_post)
{
    return runPhase(
        self, diffs, phase,
        [&target](const Diff &d, std::vector<NodeId> &out) {
            out.push_back(target(d));
        },
        wait, after_first_post);
}

CommStatus
PropagationPipeline::runPhase(SimThread &self,
                              const std::vector<Diff> &diffs, int phase,
                              const TargetsFn &targets, bool wait,
                              const Hook &after_first_post)
{
    stats.propPhases++;
    const SimTime t0 = ctx.eng.now();
    CompletionBatch batch(self);
    SvmContext *cx = &ctx;
    const char *event = applyEventName(phase);
    bool first = true;

    auto after_post = [&first, &after_first_post] {
        if (first) {
            first = false;
            if (after_first_post)
                after_first_post();
        }
    };

    if (ctx.cfg.batchDiffs) {
        // Stage 2b: group per destination home, preserving the diffs'
        // first-appearance order (per-origin chains stay in order on
        // each FIFO channel).
        std::vector<std::pair<NodeId, std::vector<Diff>>> groups;
        std::vector<int> slot_of(ctx.numNodes(), -1);
        std::vector<NodeId> dsts;
        for (const Diff &d : diffs) {
            dsts.clear();
            targets(d, dsts);
            for (NodeId dst : dsts) {
                recordPlacement(d, dst, phase);
                if (slot_of[dst] < 0) {
                    slot_of[dst] = static_cast<int>(groups.size());
                    groups.emplace_back(dst, std::vector<Diff>());
                }
                groups[static_cast<std::size_t>(slot_of[dst])]
                    .second.push_back(d);
            }
        }

        for (auto &[dst, group] : groups) {
            // Stage 3: pack into bounded scatter-gather chunks and
            // post with one completion slot for the whole batch.
            std::vector<BatchChunk> chunks;
            for (auto &cdiffs :
                 diff::pack(std::move(group), ctx.cfg.maxDiffMsgBytes)) {
                std::uint32_t bytes = 0;
                for (const Diff &d : cdiffs)
                    bytes += d.wireBytes();
                stats.diffMsgsSent++;
                stats.diffBytesSent += bytes;
                stats.propPagesPacked += cdiffs.size();
                stats.batchBytesHist.sample(bytes);
                stats.batchPagesHist.sample(cdiffs.size());
                SvmNode *tnode = ctx.nodes[dst];
                chunks.push_back(BatchChunk{
                    bytes,
                    [cx, tnode, phase, event,
                     cdiffs = std::move(cdiffs)] {
                        for (const Diff &d : cdiffs) {
                            if (cx->traceProbe)
                                cx->traceProbe(event, d.origin,
                                               d.interval);
                            tnode->applyIncomingDiff(d, phase);
                        }
                    }});
            }
            stats.propDestBatches++;
            CommStatus st = ctx.vmmc.postBatch(
                self, nodeId, dst, std::move(chunks), &batch,
                Comp::Diff);
            if (st == CommStatus::Restarted)
                return CommStatus::Restarted;
            // Error: the slot already completed with failure; keep
            // posting to the remaining destinations and report once
            // the batch drains (both protocols retry the whole phase).
            after_post();
        }
    } else {
        std::vector<NodeId> dsts;
        for (const Diff &d : diffs) {
            dsts.clear();
            targets(d, dsts);
            for (NodeId dst : dsts) {
                recordPlacement(d, dst, phase);
                stats.diffMsgsSent++;
                stats.diffBytesSent += d.wireBytes();
                SvmNode *tnode = ctx.nodes[dst];
                CommStatus st = ctx.vmmc.depositAsync(
                    self, nodeId, dst, d.wireBytes(),
                    [cx, tnode, phase, event, d] {
                        if (cx->traceProbe)
                            cx->traceProbe(event, d.origin, d.interval);
                        tnode->applyIncomingDiff(d, phase);
                    },
                    &batch, Comp::Diff);
                if (st == CommStatus::Restarted)
                    return CommStatus::Restarted;
                after_post();
            }
        }
    }

    CommStatus result = CommStatus::Ok;
    if (wait) {
        result = batch.wait(Comp::Diff);
        if (result == CommStatus::Restarted)
            return result;
    }

    const SimTime dt = ctx.eng.now() - t0;
    (phase == 1 ? stats.phase1WallNs : stats.phase2WallNs) += dt;
    stats.phaseWallHist.sample(dt);
    return result;
}

} // namespace rsvm

/**
 * @file
 * Shared diff-propagation pipeline (§3.2 eager propagation, §4.2
 * two-phase propagation, §6 batching optimization).
 *
 * Both protocols end a release the same way: take the interval's
 * diffs and ship each one to a home chosen per page. Historically
 * each protocol re-implemented that fan-out inline; this layer
 * factors it into four explicit stages:
 *
 *   stage 1 — collect: the caller commits the interval and hands the
 *             pipeline the resulting diff set (stage());
 *   stage 2 — coalesce + group: normalize each diff's run list
 *             (adjacent/overlapping runs merge, later bytes win) and
 *             group diffs per destination home in stable order;
 *   stage 3 — pack + post: split each destination's diffs into
 *             scatter-gather chunks bounded by Config::maxDiffMsgBytes
 *             and post them through Vmmc::postBatch with ONE
 *             completion slot per destination (runPhase());
 *   stage 4 — hooks + accounting: an after-first-post hook preserves
 *             the FT protocol's mid-phase failpoints, a context-level
 *             trace probe observes every delivery, and per-stage
 *             counters/histograms land in base/stats.
 *
 * The base protocol instantiates one phase (primary homes, wait only
 * at barriers); the FT protocol instantiates the same machinery twice
 * per release (phase 1 -> tentative copies at secondary homes,
 * phase 2 -> committed copies at primary homes) with its ordering,
 * page-locking and failpoint semantics supplied from outside.
 *
 * The pipeline is stateless across calls (references only): the base
 * protocol runs concurrent releases on one node, so all working state
 * is per-invocation.
 */

#ifndef RSVM_SVM_PROPAGATION_HH
#define RSVM_SVM_PROPAGATION_HH

#include <functional>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "mem/diff.hh"
#include "net/vmmc.hh"

namespace rsvm {

struct SvmContext;
class SimThread;

/** The shared release-side diff fan-out driven by both protocols. */
class PropagationPipeline
{
  public:
    /** Chooses the destination home of one diff (phase-dependent). */
    using TargetFn = std::function<NodeId(const Diff &)>;
    /**
     * Chooses ALL destination homes of one diff (appended to the
     * passed vector, which arrives empty). A diff may fan out to any
     * number of destinations — phase 1 under per-page replication
     * degree targets every secondary home, and a degree-1 page yields
     * none at all.
     */
    using TargetsFn =
        std::function<void(const Diff &, std::vector<NodeId> &)>;
    /** Stage-4 hook; see runPhase(). */
    using Hook = std::function<void()>;

    PropagationPipeline(SvmContext &context, NodeId node_id,
                        Counters &counters)
        : ctx(context), nodeId(node_id), stats(counters)
    {}

    PropagationPipeline(const PropagationPipeline &) = delete;
    PropagationPipeline &operator=(const PropagationPipeline &) = delete;

    /**
     * Stages 1+2a: take ownership of an interval's diff set and
     * normalize it in place (duplicate (page, origin, interval) diffs
     * merge, run lists coalesce). No-op unless Config::batchDiffs;
     * the rebuild cost is charged to @p self (null = engine context,
     * nothing charged). Safe to call once and retry propagation many
     * times — coalescing is idempotent.
     */
    void stage(SimThread *self, std::vector<Diff> &diffs);

    /**
     * Stages 2b-4: group @p diffs per destination via @p target, pack
     * each group into bounded chunks, post the batches and (iff
     * @p wait) block until every destination confirmed delivery.
     *
     * @p after_first_post runs once, after the first message of the
     * phase has been posted and before the second — the exact point
     * the FT protocol's kMidPhase1/kMidPhase2 failpoints need.
     *
     * Returns Restarted immediately if a post observes a checkpoint
     * restore (the caller re-issues the whole phase). An Error on one
     * destination does not stop posting to the others; with @p wait it
     * is reported once the posted sends drain, matching the retry
     * discipline both protocols already use. @p phase tags the
     * delivery (0 = base working copy, 1 = tentative, 2 = committed)
     * and selects the wall-time bucket (phase 1 vs everything else).
     */
    CommStatus runPhase(SimThread &self, const std::vector<Diff> &diffs,
                        int phase, const TargetFn &target, bool wait,
                        const Hook &after_first_post = {});

    /**
     * Multi-destination variant: each diff is shipped to every home
     * @p targets names for it (possibly none). Placement accounting
     * still counts each diff once per destination.
     */
    CommStatus runPhase(SimThread &self, const std::vector<Diff> &diffs,
                        int phase, const TargetsFn &targets, bool wait,
                        const Hook &after_first_post = {});

  private:
    /**
     * Placement accounting for one diff about to be posted: mis-homed
     * wire bytes (destination home != writer) and the adaptive-homing
     * profile. Phase 1 is skipped so a two-phase release counts each
     * diff once, against its committed-copy destination.
     */
    void recordPlacement(const Diff &d, NodeId dst, int phase);

    SvmContext &ctx;
    NodeId nodeId;
    Counters &stats;
};

} // namespace rsvm

#endif // RSVM_SVM_PROPAGATION_HH

#include "svm/protocol.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"

namespace rsvm {

void
wakeWaiters(std::vector<std::pair<SimThread *, std::uint64_t>> &list)
{
    // Swap out first: a woken thread may re-register immediately.
    std::vector<std::pair<SimThread *, std::uint64_t>> local;
    local.swap(list);
    for (auto &[thread, gen] : local) {
        if (thread->generation() == gen &&
            thread->state() == ThreadState::Parked) {
            thread->wake(WakeStatus::Normal);
        }
    }
}

SvmNode::SvmNode(SvmContext &context, NodeId node_id)
    : ctx(context), nodeId(node_id),
      pt(context.cfg, context.cfg.numNodes),
      ts(context.cfg.numNodes),
      propagation(context, node_id, stats)
{
}

SvmNode::~SvmNode() = default;

// ------------------------------------------------------------ page access

void
SvmNode::readBytes(SimThread &self, Addr addr, void *dst,
                   std::uint64_t len)
{
    auto *out = static_cast<std::byte *>(dst);
    while (len > 0) {
        PageId page = ctx.as.pageOf(addr);
        std::uint32_t off = ctx.as.pageOffset(addr);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, ctx.cfg.pageSize - off);
        ensureReadable(self, page);
        PageEntry &e = pt.entry(page);
        pt.ensureData(e);
        std::memcpy(out, e.data.get() + off, chunk);
        out += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
SvmNode::writeBytes(SimThread &self, Addr addr, const void *src,
                    std::uint64_t len)
{
    auto *in = static_cast<const std::byte *>(src);
    while (len > 0) {
        PageId page = ctx.as.pageOf(addr);
        std::uint32_t off = ctx.as.pageOffset(addr);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, ctx.cfg.pageSize - off);
        ensureWritable(self, page);
        PageEntry &e = pt.entry(page);
        std::memcpy(e.data.get() + off, in, chunk);
        in += chunk;
        addr += chunk;
        len -= chunk;
    }
}

bool
SvmNode::tryFastRead(Addr addr, void *dst, std::uint64_t len)
{
    auto *out = static_cast<std::byte *>(dst);
    while (len > 0) {
        PageId page = ctx.as.pageOf(addr);
        std::uint32_t off = ctx.as.pageOffset(addr);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, ctx.cfg.pageSize - off);
        PageEntry *e = pt.find(page);
        if (!e || e->state == PageState::Invalid || !e->data)
            return false;
        std::memcpy(out, e->data.get() + off, chunk);
        out += chunk;
        addr += chunk;
        len -= chunk;
    }
    return true;
}

bool
SvmNode::tryFastWrite(Addr addr, const void *src, std::uint64_t len)
{
    auto *in = static_cast<const std::byte *>(src);
    while (len > 0) {
        PageId page = ctx.as.pageOf(addr);
        std::uint32_t off = ctx.as.pageOffset(addr);
        std::uint64_t chunk =
            std::min<std::uint64_t>(len, ctx.cfg.pageSize - off);
        PageEntry *e = pt.find(page);
        if (!e || e->state != PageState::ReadWrite || e->locked ||
            e->migLocked || !e->data)
            return false;
        std::memcpy(e->data.get() + off, in, chunk);
        in += chunk;
        addr += chunk;
        len -= chunk;
    }
    return true;
}

bool
SvmNode::stallOnLockedPage(SimThread &, PageEntry &)
{
    // Base protocol: pages are never locked.
    return false;
}

void
SvmNode::ensureReadable(SimThread &self, PageId page)
{
    for (;;) {
        PageEntry &e = pt.entry(page);
        if ((e.locked || e.migLocked) &&
            e.state == PageState::Invalid) {
            // Extended protocol: fault handling on a locked page is
            // blocked until the outstanding release completes (§4.2).
            if (stallOnLockedPage(self, e))
                continue;
        }
        if (e.state != PageState::Invalid)
            return;
        stats.pageFaults++;
        self.charge(Comp::DataWait, ctx.cfg.pageFaultCost);
        fetchPage(self, page);
        // fetchPage returns with the page valid (it retries across
        // failures internally); loop to re-check against races.
    }
}

void
SvmNode::ensureWritable(SimThread &self, PageId page)
{
    for (;;) {
        PageEntry &e = pt.entry(page);
        if (e.locked || e.migLocked) {
            // New writes to pages committed by an outstanding release
            // (or mid-handoff in a home migration) must stall until it
            // completes (§4.2).
            if (stallOnLockedPage(self, e))
                continue;
        }
        if (e.state == PageState::ReadWrite)
            return;
        if (e.state == PageState::Invalid) {
            stats.pageFaults++;
            self.charge(Comp::DataWait, ctx.cfg.pageFaultCost);
            fetchPage(self, page);
            continue;
        }
        // Write fault on a read-only page.
        stats.pageFaults++;
        self.charge(Comp::DataWait, ctx.cfg.pageFaultCost);
        PageEntry &e2 = pt.entry(page);
        pt.ensureData(e2);
        if (writeNeedsTwin(page)) {
            pt.makeTwin(e2);
            stats.twinsCreated++;
            self.charge(Comp::DataWait,
                        ctx.cfg.twinSetupCost +
                            static_cast<SimTime>(
                                ctx.cfg.pageSize *
                                ctx.cfg.memCopyNsPerByte));
        }
        e2.state = PageState::ReadWrite;
        if (!e2.inUpdateList) {
            e2.inUpdateList = true;
            curUpdateList.push_back(page);
        }
        return;
    }
}

void
SvmNode::flushDirtyPage(SimThread &self, PageId page, PageEntry &entry)
{
    rsvm_assert(entry.state == PageState::ReadWrite);
    if (entry.twin) {
        self.charge(Comp::Diff,
                    static_cast<SimTime>(ctx.cfg.pageSize *
                                         ctx.cfg.diffScanNsPerByte));
        Diff d = diff::compute(
            page, nodeId, 0,
            {entry.data.get(), ctx.cfg.pageSize},
            {entry.twin.get(), ctx.cfg.pageSize});
        pt.dropTwin(entry);
        // Even an empty diff must travel: the write notice for this
        // page makes readers require this interval at the home, and
        // only the diff's arrival bumps the home version.
        pendingDiffs.push_back(std::move(d));
    }
    entry.state = PageState::Invalid;
}

void
SvmNode::applyPendingLocal(PageId page, std::byte *data)
{
    for (const Diff &d : pendingDiffs) {
        if (d.page == page)
            diff::apply(d, data, ctx.cfg.pageSize);
    }
}

// ------------------------------------------------------------- intervals

CommitResult
SvmNode::commitInterval(SimThread *self)
{
    CommitResult r;
    if (curUpdateList.empty() && pendingDiffs.empty())
        return r;
    auto charge = [&](Comp c, SimTime ns) {
        if (self)
            self->charge(c, ns);
    };

    r.any = true;
    r.interval = ++intervalCtr;
    ts[nodeId] = intervalCtr;

    // Early-flushed diffs first: they carry older values of words that
    // may also appear in this commit's fresh diffs. All diffs of one
    // page must merge into a SINGLE per-interval diff (runs applied in
    // order), because homes drop duplicate (page, origin, interval)
    // deliveries to stay safe against post-recovery redo of releases.
    std::unordered_map<PageId, std::size_t> diff_of_page;
    for (Diff &d : pendingDiffs) {
        d.interval = r.interval;
        auto [it, inserted] =
            diff_of_page.try_emplace(d.page, r.diffs.size());
        if (inserted) {
            stats.pagesDiffed++;
            r.diffs.push_back(std::move(d));
        } else {
            Diff &merged = r.diffs[it->second];
            for (DiffRun &run : d.runs)
                merged.runs.push_back(std::move(run));
        }
    }
    pendingDiffs.clear();

    for (PageId page : curUpdateList) {
        PageEntry &e = pt.entry(page);
        e.inUpdateList = false;
        r.pages.push_back(page);
        // This page's previous interval from us: the home applies our
        // diffs for one page strictly in this chain order.
        IntervalNum prev = e.reqVer[nodeId];
        // Our own updates must reach the home before any later
        // re-fetch of this page is usable (diffs travel async).
        if (e.reqVer[nodeId] < r.interval)
            e.reqVer[nodeId] = r.interval;
        if (e.state != PageState::ReadWrite) {
            // Flushed early: the page's merged pending diff carries
            // the chain link.
            auto pit = diff_of_page.find(page);
            if (pit != diff_of_page.end())
                r.diffs[pit->second].prevInterval = prev;
            continue;
        }
        if (e.twin) {
            charge(Comp::Diff,
                   static_cast<SimTime>(ctx.cfg.pageSize *
                                        ctx.cfg.diffScanNsPerByte));
            Diff d = diff::compute(
                page, nodeId, r.interval,
                {e.data.get(), ctx.cfg.pageSize},
                {e.twin.get(), ctx.cfg.pageSize});
            pt.dropTwin(e);
            if (ctx.as.isHome(page, nodeId))
                stats.homePagesDiffed++;
            // Empty (silent-store) diffs still travel: the home
            // version must reach this interval or readers holding the
            // write notice would wait forever. A page flushed earlier
            // this interval merges into its pending diff (fresh runs
            // last: they carry the newer values).
            auto it = diff_of_page.find(page);
            if (it != diff_of_page.end()) {
                Diff &merged = r.diffs[it->second];
                merged.prevInterval = prev;
                for (DiffRun &run : d.runs)
                    merged.runs.push_back(std::move(run));
            } else {
                d.prevInterval = prev;
                stats.pagesDiffed++;
                r.diffs.push_back(std::move(d));
            }
        } else {
            // Base protocol home page: local writes went straight into
            // the authoritative working copy; only the write notice is
            // needed. Mark the home version as applied.
            HomeInfo &hi = homeInfo(page);
            if (hi.appliedVer.size() == 0)
                hi.appliedVer = VectorClock(ctx.cfg.numNodes);
            hi.appliedVer[nodeId] = r.interval;
        }
        // Re-protect: the next write starts a new twin in the next
        // interval.
        e.state = PageState::ReadOnly;
    }

    curUpdateList.clear();
    intervalTable.push_back(IntervalRecord{r.interval, r.pages});
    stats.intervalsCommitted++;
    charge(Comp::Protocol,
           ctx.cfg.commitPerPageCost *
               static_cast<SimTime>(r.pages.size()));
    RSVM_LOG(LogComp::Svm, "node %u committed interval %u (%zu pages)",
             nodeId, r.interval, r.pages.size());
    return r;
}

std::vector<IntervalRecord>
SvmNode::intervalsInRange(IntervalNum from, IntervalNum to) const
{
    std::vector<IntervalRecord> out;
    for (const auto &rec : intervalTable) {
        if (rec.interval > from && rec.interval <= to)
            out.push_back(rec);
    }
    return out;
}

// ---------------------------------------------------------- write notices

void
SvmNode::applyNotices(SimThread &self, NodeId origin,
                      const std::vector<IntervalRecord> &records)
{
    rsvm_assert(origin != nodeId);
    for (const auto &rec : records) {
        for (PageId page : rec.pages) {
            PageEntry &e = pt.entry(page);
            if (rec.interval > e.reqVer[origin])
                e.reqVer[origin] = rec.interval;
            if (skipInvalidate(page)) {
                // Base-protocol home page: the working copy receives
                // the remote diff directly, but it may still be in
                // flight — record the requirement; the acquire blocks
                // on it in waitHomeVersions().
                auto [it, inserted] = homeWaits.try_emplace(
                    page, VectorClock(ctx.cfg.numNodes));
                if (it->second[origin] < rec.interval)
                    it->second[origin] = rec.interval;
                continue;
            }
            if (e.state == PageState::ReadWrite) {
                // Keep local modifications (false sharing): flush the
                // diff before dropping the page.
                flushDirtyPage(self, page, e);
                stats.invalidations++;
                self.charge(Comp::Protocol, ctx.cfg.invalidateCost);
            } else if (e.state == PageState::ReadOnly) {
                e.state = PageState::Invalid;
                stats.invalidations++;
                self.charge(Comp::Protocol, ctx.cfg.invalidateCost);
            }
        }
    }
}

void
SvmNode::applyTimestamp(SimThread &self, const VectorClock &target)
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (n == nodeId)
            continue;
        for (;;) {
            IntervalNum from = ts[n];
            IntervalNum want = target[n];
            if (want <= from)
                break;
            SvmNode *peer = ctx.nodes[n];
            auto records =
                std::make_shared<std::vector<IntervalRecord>>();
            auto avail = std::make_shared<IntervalNum>(0);
            CommStatus st = ctx.vmmc.fetch(
                self, nodeId, n, 64,
                [peer, from, want, records, avail]
                (std::shared_ptr<Replier> rep) {
                    auto recs = peer->intervalsInRange(from, want);
                    IntervalNum cur = peer->currentInterval();
                    std::uint32_t bytes = 16;
                    for (const auto &r : recs)
                        bytes += 8 + 4 * static_cast<std::uint32_t>(
                                         r.pages.size());
                    rep->reply(bytes,
                               [records, avail, cur,
                                recs = std::move(recs)]() mutable {
                                   *records = std::move(recs);
                                   *avail = cur;
                               });
                },
                Comp::Protocol);
            if (st == CommStatus::Ok) {
                RSVM_LOG(LogComp::Svm,
                         "node %u notices from %u (%u,%u] got=%zu "
                         "avail=%u",
                         nodeId, n, from, want, records->size(),
                         *avail);
                applyNotices(self, n, *records);
                // Cap by what the peer actually has: intervals beyond
                // it were cancelled by a recovery rollback.
                ts[n] = std::min<IntervalNum>(want,
                                              std::max(from, *avail));
                break;
            }
            if (st == CommStatus::Error) {
                parkUntilRecovered(self, Comp::Protocol);
                continue;
            }
            // Restarted: state was rolled back; re-evaluate from/want.
        }
    }
    waitHomeVersions(self);
}

// ------------------------------------------------------------------- locks

PollLockHome &
SvmNode::pollHome(LockId lock)
{
    auto [it, inserted] =
        pollLocks.try_emplace(lock, ctx.cfg.numNodes);
    return it->second;
}

QueueLockHome &
SvmNode::queueHome(LockId lock)
{
    auto [it, inserted] =
        queueLocks.try_emplace(lock, ctx.cfg.numNodes);
    return it->second;
}

HomeInfo &
SvmNode::homeInfo(PageId page)
{
    auto [it, inserted] = homePages.try_emplace(page);
    if (inserted) {
        it->second.appliedVer = VectorClock(ctx.cfg.numNodes);
        it->second.committedVer = VectorClock(ctx.cfg.numNodes);
        it->second.tentativeVer = VectorClock(ctx.cfg.numNodes);
    }
    return it->second;
}

HomeInfo *
SvmNode::findHomeInfo(PageId page)
{
    auto it = homePages.find(page);
    return it == homePages.end() ? nullptr : &it->second;
}

void
SvmNode::acquire(SimThread &self, LockId lock)
{
    self.charge(Comp::Protocol, ctx.cfg.syncOpCost);
    for (;;) {
        NodeLockState &ls = nodeLocks[lock];
        if (ls.status != NodeLockState::Status::Free) {
            // A local thread holds or is acquiring: queue for an
            // intra-SMP handoff (no message traffic, §3.2).
            ls.waiters.push_back({&self, self.generation()});
            (void)self.park(Comp::LockWait);
            NodeLockState &after = nodeLocks[lock];
            if (after.status == NodeLockState::Status::Held &&
                after.holder == self.id()) {
                stats.lockAcquires++;
                return;
            }
            continue; // spurious / restart / lock went free: retry
        }
        ls.status = NodeLockState::Status::Acquiring;
        VectorClock rel_ts(ctx.cfg.numNodes);
        CommStatus st = globalAcquire(self, lock, rel_ts);
        NodeLockState &after = nodeLocks[lock];
        if (st == CommStatus::Ok) {
            after.status = NodeLockState::Status::Held;
            after.holder = self.id();
            stats.lockAcquires++;
            stats.lockRemoteAcquires++;
            applyTimestamp(self, rel_ts);
            return;
        }
        if (after.status == NodeLockState::Status::Acquiring)
            after.status = NodeLockState::Status::Free;
        wakeWaiters(after.waiters);
        if (st == CommStatus::Error)
            parkUntilRecovered(self, Comp::LockWait);
        // Restarted or post-recovery: retry from scratch.
    }
}

void
SvmNode::release(SimThread &self, LockId lock)
{
    self.charge(Comp::Protocol, ctx.cfg.syncOpCost);
    {
        NodeLockState &ls = nodeLocks[lock];
        if (ls.status != NodeLockState::Status::Held ||
            ls.holder != self.id()) {
            // Checkpoint-restore path: we resumed inside a critical
            // section whose node-local record was reset by recovery;
            // the home-side slot still marks us as the owner (§4.3).
            ls.status = NodeLockState::Status::Held;
            ls.holder = self.id();
        }
        if (ls.pendingNext == kInvalidNode) {
            // Prefer the intra-SMP handoff: a few instructions, no
            // protocol actions (updates stay visible locally).
            while (!ls.waiters.empty()) {
                auto [thread, gen] = ls.waiters.front();
                ls.waiters.erase(ls.waiters.begin());
                if (thread->generation() == gen &&
                    thread->state() == ThreadState::Parked) {
                    ls.holder = thread->id();
                    thread->wake(WakeStatus::Normal);
                    return;
                }
            }
        }
    }
    // Full release operation (Fig. 1 / Fig. 2).
    stats.releases++;
    doRelease(self, lock, false);
    NodeLockState &after = nodeLocks[lock];
    after.status = NodeLockState::Status::Free;
    after.holder = kInvalidThread;
    wakeWaiters(after.waiters);
}

void
SvmNode::setPendingNext(LockId lock, NodeId next)
{
    NodeLockState &ls = nodeLocks[lock];
    ls.pendingNext = next;
    auto it = releaseWaits.find(lock);
    if (it != releaseWaits.end()) {
        auto [thread, gen] = it->second;
        releaseWaits.erase(it);
        if (thread->generation() == gen &&
            thread->state() == ThreadState::Parked)
            thread->wake(WakeStatus::Normal);
    }
}

void
SvmNode::receiveGrant(LockId lock, const VectorClock &granted_ts)
{
    GrantWait &gw = grantWaits[lock];
    gw.granted = true;
    gw.ts = granted_ts;
    if (gw.waiter && gw.waiter->generation() == gw.gen &&
        gw.waiter->state() == ThreadState::Parked)
        gw.waiter->wake(WakeStatus::Normal);
}

// ----------------------------------------------------------------- barrier

NodeId
SvmNode::barrierManager() const
{
    for (NodeId n = 0; n < ctx.numNodes(); ++n) {
        if (ctx.vmmc.reachable(n))
            return n;
    }
    rsvm_panic("no reachable barrier manager");
}

void
SvmNode::barrierArrive(std::uint64_t epoch, NodeId node,
                       const VectorClock &node_ts)
{
    BarrierHome &b = barrierHome;
    RSVM_LOG(LogComp::Barrier,
             "mgr %u arrive: node=%u epoch=%llu (home epoch=%llu "
             "count=%u)",
             nodeId, node, static_cast<unsigned long long>(epoch),
             static_cast<unsigned long long>(b.epoch), b.count);
    if (epoch < b.epoch) {
        // A recovered node replaying an already-completed barrier.
        // The merged clock of that epoch is gone, but any clock that
        // dominates it is safe to hand out: applyTimestamp caps each
        // component by what the peer actually has, and our own ts
        // absorbed the merge when we completed the epoch ourselves.
        // Dropping the arrival would livelock the replayer (it
        // re-sends forever; nobody answers).
        VectorClock go_ts = ts;
        go_ts.maxWith(node_ts);
        SvmNode *dst_node = ctx.nodes[node];
        ctx.vmmc.depositFromEvent(
            nodeId, node, 64 + 4 * ctx.cfg.numNodes,
            [dst_node, epoch, go_ts] {
                dst_node->barrierGo(epoch, go_ts);
            });
        return;
    }
    if (epoch > b.epoch) {
        b.epoch = epoch;
        b.arrived.assign(ctx.numNodes(), 0);
        b.merged = VectorClock(ctx.cfg.numNodes);
        b.count = 0;
    }
    if (b.merged.size() == 0)
        b.merged = VectorClock(ctx.cfg.numNodes);
    b.merged.maxWith(node_ts);
    bool complete_before = (b.count == ctx.numNodes());
    if (!b.arrived[node]) {
        b.arrived[node] = 1;
        b.count++;
    }
    auto send_go = [this, epoch](NodeId dst) {
        SvmNode *dst_node = ctx.nodes[dst];
        VectorClock merged = barrierHome.merged;
        ctx.vmmc.depositFromEvent(
            nodeId, dst,
            64 + 4 * ctx.cfg.numNodes,
            [dst_node, epoch, merged] {
                dst_node->barrierGo(epoch, merged);
            });
    };
    if (b.count == ctx.numNodes() && !complete_before) {
        for (NodeId n = 0; n < ctx.numNodes(); ++n)
            send_go(n);
    } else if (complete_before) {
        // Re-sent arrival after the broadcast (the original go was
        // lost with a dead host): re-send go to that node only.
        send_go(node);
    }
}

void
SvmNode::barrierGo(std::uint64_t epoch, const VectorClock &merged)
{
    RSVM_LOG(LogComp::Barrier, "node %u go: epoch=%llu (goEpoch=%llu)",
             nodeId, static_cast<unsigned long long>(epoch),
             static_cast<unsigned long long>(barrierGoEpoch));
    if (epoch <= barrierGoEpoch)
        return;
    barrierGoEpoch = epoch;
    barrierGoTs = merged;
    if (barrierRepWaiter &&
        barrierRepWaiter->generation() == barrierRepGen &&
        barrierRepWaiter->state() == ThreadState::Parked)
        barrierRepWaiter->wake(WakeStatus::Normal);
}

void
SvmNode::barrier(SimThread &self)
{
    self.charge(Comp::Protocol, ctx.cfg.syncOpCost);
    for (;;) {
        self.inBarrierPhase = true;
        std::uint64_t e = barrierEpoch + 1;
        barrierLocalCount++;

        std::uint32_t live_threads = 0;
        for (SimThread *t : ctx.ops->computeThreads(nodeId)) {
            if (t->state() != ThreadState::Finished &&
                t->state() != ThreadState::Dead)
                live_threads++;
        }

        if (barrierLocalCount < live_threads) {
            // Not the last local arrival: wait for the representative.
            bool restarted = false;
            while (barrierEpoch < e) {
                barrierLocalWaiters.push_back(
                    {&self, self.generation()});
                WakeStatus ws = self.park(Comp::BarrierWait);
                if (ws == WakeStatus::Restarted) {
                    restarted = true;
                    break;
                }
            }
            if (restarted)
                continue; // recovery reset node state: re-arrive
            self.inBarrierPhase = false;
            return;
        }

        // Representative: this node's release-equivalent, then the
        // inter-node rendezvous.
        stats.barriers++;
        doRelease(self, 0, true);

        bool restarted = false;
        for (;;) {
            NodeId mgr = barrierManager();
            SvmNode *mgr_node = ctx.nodes[mgr];
            VectorClock my_ts = ts;
            NodeId me = nodeId;
            RSVM_LOG(LogComp::Barrier,
                     "node %u rep sends arrive epoch=%llu to mgr %u",
                     nodeId, static_cast<unsigned long long>(e), mgr);
            CommStatus st = ctx.vmmc.deposit(
                self, nodeId, mgr, 64 + 4 * ctx.cfg.numNodes,
                [mgr_node, e, me, my_ts] {
                    mgr_node->barrierArrive(e, me, my_ts);
                },
                Comp::BarrierWait);
            if (st == CommStatus::Restarted) {
                restarted = true;
                break;
            }
            if (st == CommStatus::Error) {
                parkUntilRecovered(self, Comp::BarrierWait);
                continue;
            }
            // Wait for the go message.
            bool resend = false;
            while (barrierGoEpoch < e) {
                barrierRepWaiter = &self;
                barrierRepGen = self.generation();
                WakeStatus ws = self.parkFor(ctx.cfg.heartbeatTimeout,
                                             Comp::BarrierWait);
                if (ws == WakeStatus::Restarted) {
                    restarted = true;
                    break;
                }
                if (barrierGoEpoch >= e)
                    break;
                if (ws == WakeStatus::Timeout ||
                    ws == WakeStatus::Error) {
                    PhysNodeId dead;
                    if (ctx.vmmc.sweepForFailures(self, &dead)) {
                        parkUntilRecovered(self, Comp::BarrierWait);
                    }
                    // Re-send the arrival either way: it may have been
                    // recorded at a manager that has since failed.
                    resend = true;
                    break;
                }
            }
            barrierRepWaiter = nullptr;
            if (restarted || !resend)
                break;
        }
        if (restarted)
            continue;

        // Apply the merged timestamp: fetch write notices from peers
        // and invalidate.
        applyTimestamp(self, barrierGoTs);
        barrierEpoch = e;
        barrierLocalCount = 0;
        wakeWaiters(barrierLocalWaiters);
        self.inBarrierPhase = false;
        if (ctx.cfg.paranoidChecks && ctx.ops)
            ctx.ops->paranoidCheck();
        return;
    }
}

// ---------------------------------------------------------------- recovery

void
SvmNode::parkUntilRecovered(SimThread &self, Comp comp)
{
    while (ctx.pendingRecovery) {
        ctx.recoveryWaiters.push_back({&self, self.generation()});
        WakeStatus ws = self.parkFor(4 * ctx.cfg.heartbeatTimeout, comp);
        if (ws == WakeStatus::Restarted)
            return;
    }
}

void
SvmNode::wakePageLockWaiters()
{
    wakeWaiters(pageLockWaiters);
}

void
SvmNode::resetNodeLockState()
{
    for (auto &[lock, ls] : nodeLocks) {
        ls.status = NodeLockState::Status::Free;
        ls.holder = kInvalidThread;
        ls.waiters.clear();
        // pendingNext survives: it names a remote successor and is
        // only meaningful for the queuing lock (not used under FT).
    }
    grantWaits.clear();
    releaseWaits.clear();
    barrierLocalCount = 0;
    barrierLocalWaiters.clear();
    barrierRepWaiter = nullptr;
    pageLockWaiters.clear();
    releasesActive = 0;
}

void
SvmNode::failpoint(SimThread &self, const char *name)
{
    if (!ctx.injector)
        return;
    PhysNodeId phys = ctx.vmmc.host(nodeId);
    if (ctx.injector->failpoint(phys, name))
        self.killSelf();
}

} // namespace rsvm

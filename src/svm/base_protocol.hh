/**
 * @file
 * The base GeNIMA protocol (§3.2): home-based lazy release consistency
 * with eager diff propagation to a single home per page.
 *
 * Characteristics reproduced from the paper:
 *  - homes do not create twins or diffs for their own pages: local
 *    writes go straight into the authoritative working copy;
 *  - remote updates are applied to the home's working copy, so homes
 *    never invalidate their own pages on write notices;
 *  - a release commits the node's interval, hands the lock to the next
 *    requester, and then propagates diffs asynchronously; remote
 *    fetches carry a required version and wait at the home until the
 *    needed diffs have been applied;
 *  - both lock algorithms (distributed queuing and centralized
 *    polling) are available; the paper's baseline measurements use the
 *    polling lock for an apples-to-apples comparison (§5.2).
 *
 * No fault tolerance: a node failure under this protocol is fatal.
 */

#ifndef RSVM_SVM_BASE_PROTOCOL_HH
#define RSVM_SVM_BASE_PROTOCOL_HH

#include <memory>
#include <vector>

#include "svm/protocol.hh"

namespace rsvm {

/** One logical node running the base GeNIMA protocol. */
class BaseProtocolNode : public SvmNode
{
  public:
    BaseProtocolNode(SvmContext &context, NodeId node_id);

    void handleFetch(PageId page, const VectorClock &req_ver,
                     std::shared_ptr<Replier> rep,
                     std::shared_ptr<std::vector<std::byte>> out)
        override;
    void applyIncomingDiff(const Diff &d, int phase) override;
    const std::byte *homeBytes(PageId page) override;

  protected:
    void fetchPage(SimThread &self, PageId page) override;
    bool writeNeedsTwin(PageId page) const override;
    bool skipInvalidate(PageId page) const override;
    void doRelease(SimThread &self, LockId lock, bool is_barrier)
        override;
    CommStatus globalAcquire(SimThread &self, LockId lock,
                             VectorClock &out_ts) override;
    CommStatus globalRelease(SimThread &self, LockId lock) override;

    // ---- Polling lock (centralized, §4.3) --------------------------------
    CommStatus pollAcquire(SimThread &self, LockId lock,
                           VectorClock &out_ts);
    CommStatus pollRelease(SimThread &self, LockId lock);

    // ---- Queuing lock (original GeNIMA) ---------------------------------
    CommStatus queueAcquire(SimThread &self, LockId lock,
                            VectorClock &out_ts);
    CommStatus queueRelease(SimThread &self, LockId lock);

    /** Re-check deferred fetches after a version bump at this home. */
    void serviceFetchWaiters(PageId page);

    /** Block until in-flight diffs for own home pages have applied. */
    void waitHomeVersions(SimThread &self) override;

    /** Reply to a fetch from this home's authoritative copy. */
    void replyWithPage(PageId page, std::shared_ptr<Replier> rep,
                       std::shared_ptr<std::vector<std::byte>> out);
};

} // namespace rsvm

#endif // RSVM_SVM_BASE_PROTOCOL_HH

/**
 * @file
 * Shared SVM protocol infrastructure (§3.2).
 *
 * SvmNode is one logical protocol instance — the paper's "node". It
 * owns the node's page table, interval records, vector timestamp,
 * node-local lock state, and home-side state for the pages and locks
 * it homes. The two concrete protocols derive from it:
 *
 *   BaseProtocolNode (svm/base_protocol.hh) — GeNIMA: home-based lazy
 *   release consistency, eager diff propagation to a single home,
 *   no fault tolerance.
 *
 *   FtProtocolNode (ftsvm/ft_protocol.hh) — the paper's extended
 *   protocol: dual homes, two-phase diff propagation, page locking,
 *   thread checkpointing, failure detection and recovery.
 *
 * Logical vs physical nodes: protocol state is per *logical* node;
 * after a failure the recovery manager re-hosts the failed logical
 * node on its backup physical node. Communication is addressed
 * logically and resolved through the Vmmc host map.
 */

#ifndef RSVM_SVM_PROTOCOL_HH
#define RSVM_SVM_PROTOCOL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/config.hh"
#include "base/lossreason.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/addrspace.hh"
#include "mem/diff.hh"
#include "mem/pagetable.hh"
#include "net/failure.hh"
#include "net/vmmc.hh"
#include "svm/locks.hh"
#include "svm/propagation.hh"
#include "svm/timestamp.hh"

namespace rsvm {

class Engine;
class SvmNode;
class HomingProfiler;

/** Runtime services the recovery manager needs from the cluster. */
class ClusterOps
{
  public:
    virtual ~ClusterOps() = default;
    /** Logical nodes currently hosted on a physical node. */
    virtual std::vector<NodeId> logicalNodesOn(PhysNodeId phys) const = 0;
    /** Compute threads of a logical node. */
    virtual std::vector<SimThread *> computeThreads(NodeId node)
        const = 0;
    /** Move a logical node (and its threads) to another host. */
    virtual void rehost(NodeId node, PhysNodeId phys) = 0;
    virtual PhysNodeId hostOf(NodeId node) const = 0;
    virtual bool physAlive(PhysNodeId phys) const = 0;
    /** Logical node holding checkpoints/saved state for @p node. */
    virtual NodeId backupOf(NodeId node) const = 0;
    virtual void setBackupOf(NodeId node, NodeId backup) = 0;

    /**
     * Paranoid-mode hook (Config::paranoidChecks): verify global
     * protocol invariants; panics on violation. Invoked by barrier
     * representatives after their rendezvous completes.
     */
    virtual void paranoidCheck() {}

    /**
     * Recovery determined the cluster cannot continue (checkpoint
     * store and both replicas of some state are gone, or too few
     * physical nodes survive). The runtime records the reason code
     * and detail, tears the remaining threads down and reports the
     * loss to the caller of run() — it must not assert or crash.
     */
    virtual void
    clusterLost(LossReason code, const std::string &detail)
    {
        (void)code;
        (void)detail;
    }
};

/** Cluster-wide state shared by every SvmNode. */
struct SvmContext
{
    Engine &eng;
    const Config &cfg;
    AddressSpace &as;
    Vmmc &vmmc;
    LockDirectory &locks;
    std::vector<SvmNode *> nodes;
    ClusterOps *ops = nullptr;
    FailureInjector *injector = nullptr;

    /**
     * Test/trace hook observing propagation-pipeline events engine-
     * side: "phase1-apply"/"phase2-apply"/"diff-apply" fire at a home
     * as a pipeline-delivered diff is applied, "ts-save" fires at the
     * backup as a releaser's timestamp save lands. Recovery's direct
     * diff re-application intentionally bypasses it. Null in
     * production runs.
     */
    std::function<void(const char *event, NodeId origin,
                       IntervalNum interval)> traceProbe;

    /**
     * Adaptive-placement profiler fed by the release/fetch hot paths
     * (svm/homing). Null unless Config::dynamicHoming.
     */
    HomingProfiler *homing = nullptr;

    /** True between failure detection and recovery completion. */
    bool pendingRecovery = false;
    /** Bumped when a recovery completes. */
    std::uint64_t recoveryEpoch = 0;
    /** Threads parked waiting for recovery completion. */
    std::vector<std::pair<SimThread *, std::uint64_t>> recoveryWaiters;

    SvmContext(Engine &e, const Config &c, AddressSpace &a, Vmmc &v,
               LockDirectory &l)
        : eng(e), cfg(c), as(a), vmmc(v), locks(l)
    {}

    std::uint32_t numNodes() const
    { return static_cast<std::uint32_t>(nodes.size()); }
};

/** One interval's write notices: the pages a node dirtied. */
struct IntervalRecord
{
    IntervalNum interval = 0;
    std::vector<PageId> pages;
};

/** A remote fetch waiting at a home for a page version. */
struct DeferredFetch
{
    VectorClock reqVer;
    std::shared_ptr<Replier> rep;
    /** Requester-side buffer the reply fills. */
    std::shared_ptr<std::vector<std::byte>> out;
};

/** Home-side per-page state (superset for both protocols). */
struct HomeInfo
{
    /**
     * Base protocol: versions applied to the home's working copy.
     * FT protocol: unused (committedVer/tentativeVer used instead).
     */
    VectorClock appliedVer;

    // ---- FT protocol (§4.2) ------------------------------------------
    /** Committed copy: what remote fetches return (primary home). */
    std::unique_ptr<std::byte[]> committed;
    VectorClock committedVer;
    /** Tentative copy: phase-1 target (secondary home). */
    std::unique_ptr<std::byte[]> tentative;
    VectorClock tentativeVer;

    /** Remote fetches waiting for a version. */
    std::vector<DeferredFetch> waiters;
    /** Local threads waiting for a committed version (FT home fault). */
    std::vector<std::pair<SimThread *, std::uint64_t>> localWaiters;

    /**
     * FT: per-origin undo of the last *uncommitted* phase-1 diff
     * applied to the tentative copy (same runs, pre-application
     * bytes). Erased when the matching phase 2 commits. Recovery uses
     * it to cancel a failed primary home's phase-1 updates when the
     * tentative copy must be promoted (no committed copy survived to
     * roll back from).
     */
    std::unordered_map<NodeId, Diff> tentUndo;

    /**
     * Diffs that arrived ahead of a predecessor in their per-origin
     * chain (parallel SMP releases post out of order); applied once
     * the chain links up. Keyed by the copy they target: 0 = base
     * working / FT committed, 1 = FT tentative.
     */
    std::unordered_map<NodeId, std::vector<Diff>> deferredDiffs[2];
};

/** Result of committing an interval at a release/barrier. */
struct CommitResult
{
    IntervalNum interval = 0;
    std::vector<PageId> pages;
    std::vector<Diff> diffs;
    bool any = false;
};

/** Abstract logical protocol node. */
class SvmNode
{
  public:
    SvmNode(SvmContext &context, NodeId node_id);
    virtual ~SvmNode();

    SvmNode(const SvmNode &) = delete;
    SvmNode &operator=(const SvmNode &) = delete;

    // ---- Application-facing operations (called from app fibers) -------

    /** Shared-memory read of [addr, addr+len). */
    void readBytes(SimThread &self, Addr addr, void *dst,
                   std::uint64_t len);
    /** Shared-memory write of [addr, addr+len). */
    void writeBytes(SimThread &self, Addr addr, const void *src,
                    std::uint64_t len);
    /** Copy without faulting; false if any page is not readable. */
    bool tryFastRead(Addr addr, void *dst, std::uint64_t len);
    /** Write without faulting; false if any page is not writable. */
    bool tryFastWrite(Addr addr, const void *src, std::uint64_t len);
    /** Acquire an application lock (consistency actions included). */
    void acquire(SimThread &self, LockId lock);
    /** Release an application lock (release operation, §3.2/Fig. 1). */
    void release(SimThread &self, LockId lock);
    /** Global barrier across all compute threads. */
    void barrier(SimThread &self);

    // ---- Introspection -----------------------------------------------------

    NodeId id() const { return nodeId; }
    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }
    VectorClock &timestamp() { return ts; }
    PageTable &pageTable() { return pt; }
    IntervalNum currentInterval() const { return intervalCtr; }
    const std::vector<IntervalRecord> &intervals() const
    { return intervalTable; }
    SvmContext &context() { return ctx; }
    /** True while a release operation is propagating updates. */
    bool releaseInProgress() const { return releasesActive > 0; }

    // ---- Remote handlers (invoked via message closures at this node) ---

    /** Home-side page fetch (protocol-specific version check). */
    virtual void handleFetch(PageId page, const VectorClock &req_ver,
                             std::shared_ptr<Replier> rep,
                             std::shared_ptr<std::vector<std::byte>>
                                 out) = 0;

    /**
     * Home-side diff application. @p phase is 0 for the base protocol,
     * 1 for phase-1 (tentative copy) and 2 for phase-2 (committed
     * copy) of the extended protocol's two-phase propagation.
     */
    virtual void applyIncomingDiff(const Diff &d, int phase) = 0;
    /** Home-side poll-lock state (created on demand). */
    PollLockHome &pollHome(LockId lock);
    /** Home-side queue-lock state (created on demand). */
    QueueLockHome &queueHome(LockId lock);
    /** Queuing lock: a forwarded request names us as predecessor. */
    void setPendingNext(LockId lock, NodeId next);
    /** Queuing lock: a direct grant arrived from the previous holder. */
    void receiveGrant(LockId lock, const VectorClock &granted_ts);
    /** Barrier home: record an arrival (idempotent per epoch/node). */
    void barrierArrive(std::uint64_t epoch, NodeId node,
                       const VectorClock &node_ts);
    /** Barrier participant: the go message for an epoch arrived. */
    void barrierGo(std::uint64_t epoch, const VectorClock &merged);

    /** Interval records in (from, to] — read by remote fetch handlers. */
    std::vector<IntervalRecord> intervalsInRange(IntervalNum from,
                                                 IntervalNum to) const;

    /**
     * Authoritative bytes of a page this node homes, for engine-side
     * inspection (result verification). Base protocol: the home's
     * working copy; extended protocol: the committed copy. May return
     * nullptr when the page was never written (all zeroes).
     */
    virtual const std::byte *homeBytes(PageId page) = 0;

    /** Home-side info for a page this node homes (created on demand). */
    HomeInfo &homeInfo(PageId page);
    HomeInfo *findHomeInfo(PageId page);

    // ---- Recovery support ------------------------------------------------

    /** Park until the in-progress recovery completes (no-op if none). */
    void parkUntilRecovered(SimThread &self, Comp comp);

    /**
     * Wake every thread parked on a locked page (used by the recovery
     * manager after it clears page locks).
     */
    void wakePageLockWaiters();

    /** Wake threads queued on node-local lock state (recovery reset). */
    void resetNodeLockState();

  protected:
    friend class RecoveryManager;
    friend class JoinManager;
    friend class PersistManager;

    // ---- Page access machinery ---------------------------------------------

    /** Make @p page readable, faulting as needed. */
    void ensureReadable(SimThread &self, PageId page);
    /** Make @p page writable: fault + twin + update-list recording. */
    void ensureWritable(SimThread &self, PageId page);

    /** Protocol-specific fetch of a page into the working copy. */
    virtual void fetchPage(SimThread &self, PageId page) = 0;
    /** Does a write to @p page need a twin at this node? */
    virtual bool writeNeedsTwin(PageId page) const = 0;
    /** Skip invalidation of @p page on a write notice? */
    virtual bool skipInvalidate(PageId page) const = 0;
    /** Extended protocol: stall while the page is locked (§4.2). */
    virtual bool stallOnLockedPage(SimThread &self, PageEntry &entry);

    // ---- Interval/commit machinery -----------------------------------------

    /**
     * End the current interval: assign an interval number, record
     * write notices, compute diffs (twins dropped, pages re-protected)
     * and return everything needed for propagation. @p self may be
     * null when invoked engine-side by the recovery manager (no time
     * is charged then).
     */
    CommitResult commitInterval(SimThread *self);

    /**
     * Flush a dirty page's modifications into pendingDiffs so the page
     * can be invalidated without losing local writes (false sharing).
     */
    void flushDirtyPage(SimThread &self, PageId page, PageEntry &entry);

    /**
     * Re-apply retained (flushed but not yet propagated) local diffs
     * onto a freshly fetched copy of @p page: local reads must keep
     * seeing the node's own writes after a flush+refetch cycle.
     */
    void applyPendingLocal(PageId page, std::byte *data);

    /** Apply write notices received from @p origin. */
    void applyNotices(SimThread &self, NodeId origin,
                      const std::vector<IntervalRecord> &records);

    /**
     * Protocol hook run after an acquire's notices are applied. The
     * base protocol uses it to block on in-flight diffs for pages
     * homed at this node (a home never invalidates its own pages, so
     * the acquire itself must wait for the required versions).
     */
    virtual void waitHomeVersions(SimThread &self) { (void)self; }

    /**
     * Pending home-version requirements collected by applyNotices for
     * pages whose invalidation was skipped (base-protocol homes):
     * page -> per-origin required interval.
     */
    std::unordered_map<PageId, VectorClock> homeWaits;

    /**
     * Bring this node's knowledge up to @p target: fetch write notices
     * from every peer with newer intervals and invalidate accordingly.
     * Retries across failures; never gives up.
     */
    void applyTimestamp(SimThread &self, const VectorClock &target);

    /** The release operation (protocol-specific; see Fig. 1 / Fig. 2). */
    virtual void doRelease(SimThread &self, LockId lock,
                           bool is_barrier) = 0;

    /**
     * Apply @p d to one of a home's page copies, respecting the
     * per-origin chain order (Diff::prevInterval). Exact duplicates
     * (post-recovery redo) are dropped; out-of-order arrivals are
     * deferred and drained once their predecessor applies. @p which
     * selects the deferred bucket (0 = committed/working,
     * 1 = tentative); @p apply performs the actual data application
     * and is invoked once per applied diff, in chain order.
     */
    template <typename ApplyFn>
    void
    applyDiffChain(HomeInfo &hi, VectorClock &ver, int which, Diff d,
                   ApplyFn &&apply)
    {
        if (ver.size() == 0)
            ver = VectorClock(ctx.cfg.numNodes);
        NodeId origin = d.origin;
        if (d.interval <= ver[origin])
            return; // already applied (duplicate or post-recovery redo)
        if (ver[origin] != d.prevInterval) {
            hi.deferredDiffs[which][origin].push_back(std::move(d));
            return;
        }
        apply(d);
        ver[origin] = d.interval;
        // Drain any successors that were waiting on us.
        auto it = hi.deferredDiffs[which].find(origin);
        if (it == hi.deferredDiffs[which].end())
            return;
        bool progress = true;
        while (progress && !it->second.empty()) {
            progress = false;
            auto &vec = it->second;
            for (std::size_t i = 0; i < vec.size(); ++i) {
                if (vec[i].interval <= ver[origin]) {
                    vec.erase(vec.begin() +
                              static_cast<std::ptrdiff_t>(i));
                    progress = true;
                    break;
                }
                if (vec[i].prevInterval == ver[origin]) {
                    Diff next = std::move(vec[i]);
                    vec.erase(vec.begin() +
                              static_cast<std::ptrdiff_t>(i));
                    apply(next);
                    ver[origin] = next.interval;
                    progress = true;
                    break;
                }
            }
        }
    }

    // ---- Lock plumbing ----------------------------------------------------------

    /** Global lock acquisition; fills @p out_ts with the releaser's. */
    virtual CommStatus globalAcquire(SimThread &self, LockId lock,
                                     VectorClock &out_ts) = 0;
    /** Global lock release (write timestamp, clear slot / free queue). */
    virtual CommStatus globalRelease(SimThread &self, LockId lock) = 0;

    // ---- Barrier plumbing ---------------------------------------------

    /** Logical node currently serving as barrier manager. */
    NodeId barrierManager() const;

    /** Convenience: trigger a failpoint; kills self when armed. */
    void failpoint(SimThread &self, const char *name);

    SvmContext &ctx;
    NodeId nodeId;
    PageTable pt;
    VectorClock ts;
    IntervalNum intervalCtr = 0;
    std::vector<IntervalRecord> intervalTable;

    /** Pages dirtied in the current interval. */
    std::vector<PageId> curUpdateList;
    /** Diffs flushed early (invalidation of dirty pages). */
    std::vector<Diff> pendingDiffs;

    /** Node-local lock state (intra-SMP layer). */
    std::unordered_map<LockId, NodeLockState> nodeLocks;
    /** Home-side poll locks. */
    std::unordered_map<LockId, PollLockHome> pollLocks;
    /** Home-side queue locks. */
    std::unordered_map<LockId, QueueLockHome> queueLocks;
    /** Queuing lock: grant-in-flight state per lock. */
    struct GrantWait
    {
        bool granted = false;
        VectorClock ts;
        SimThread *waiter = nullptr;
        std::uint64_t gen = 0;
    };
    std::unordered_map<LockId, GrantWait> grantWaits;
    /** Threads waiting for a pendingNext to arrive (queuing release). */
    std::unordered_map<LockId, std::pair<SimThread *, std::uint64_t>>
        releaseWaits;

    /** Home-side page state. */
    std::unordered_map<PageId, HomeInfo> homePages;

    // ---- Barrier state ----------------------------------------------------
    /** This node's barrier epoch counter (how many barriers entered). */
    std::uint64_t barrierEpoch = 0;
    /** Intra-node rendezvous. */
    std::uint32_t barrierLocalCount = 0;
    std::vector<std::pair<SimThread *, std::uint64_t>> barrierLocalWaiters;
    /** Highest epoch for which a go message arrived, and its ts. */
    std::uint64_t barrierGoEpoch = 0;
    VectorClock barrierGoTs;
    /** Rep thread waiting for go. */
    SimThread *barrierRepWaiter = nullptr;
    std::uint64_t barrierRepGen = 0;

    /** Manager-side barrier state (valid while we are the manager). */
    struct BarrierHome
    {
        std::uint64_t epoch = 0;
        std::vector<std::uint8_t> arrived;
        VectorClock merged;
        std::uint32_t count = 0;
    };
    BarrierHome barrierHome;

    /** Threads stalled on locked pages (§4.2 page locking). */
    std::vector<std::pair<SimThread *, std::uint64_t>> pageLockWaiters;

    /** Number of release operations currently propagating. */
    int releasesActive = 0;

  public:
    /**
     * Releasers of this node currently parked waiting for recovery;
     * the recovery manager's quiesce condition is
     * releasesActive == releasersWaitingRecovery on every live node.
     */
    int releasersWaitingRecovery = 0;

  protected:
    Counters stats;
    /** Shared release-side diff fan-out (must follow stats). */
    PropagationPipeline propagation;
};

/** Wake helpers used by home-side state transitions. */
void wakeWaiters(std::vector<std::pair<SimThread *, std::uint64_t>> &list);

} // namespace rsvm

#endif // RSVM_SVM_PROTOCOL_HH

/**
 * @file
 * Network interface model with a finite asynchronous post queue.
 *
 * The paper (§5.2 "Diffs") stresses that diff messages cluster at
 * releases: when the post queue fills, the sending processor blocks
 * until the NIC drains it. We model exactly that: post() from a fiber
 * blocks while the queue is at capacity; the NIC serializes departures
 * at sendOverhead + bytes/bandwidth per message, and the receive side
 * serializes deliveries at recvOverhead per message.
 */

#ifndef RSVM_NET_NIC_HH
#define RSVM_NET_NIC_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "base/config.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/message.hh"
#include "sim/thread.hh"

namespace rsvm {

class Engine;
class Network;

/** One physical node's network interface. */
class Nic
{
  public:
    Nic(Engine &engine, Network &network, PhysNodeId id,
        const Config &config);

    Nic(const Nic &) = delete;
    Nic &operator=(const Nic &) = delete;

    PhysNodeId id() const { return nodeId; }
    bool alive() const { return isAlive; }

    /**
     * Post a message from a fiber. Blocks (parks the poster, charging
     * Comp::Protocol) while the post queue is full. Returns the park
     * status that ended the wait: Normal means posted; Restarted means
     * the poster was checkpoint-restored and must abort the operation;
     * Error means this NIC died while waiting.
     */
    WakeStatus post(SimThread &poster, Message msg,
                    Comp comp = Comp::Protocol);

    /**
     * Post from engine context (control traffic, deferred replies).
     * Never blocks; the queue may transiently exceed capacity.
     */
    void postAsync(Message msg);

    /**
     * Reliability probe: report whether @p dst is reachable, after a
     * round-trip delay. Used by the heart-beat failure detector.
     */
    void probe(PhysNodeId dst, std::function<void(bool alive)> cb);

    /** Receive-side entry, called by the Network at wire arrival. */
    void arrive(Message msg);

    /**
     * Fail-stop this NIC. Queued (not yet departed) messages are
     * dropped; in-flight messages still deliver (they left before the
     * failure). Subsequent posts/arrivals are discarded.
     */
    void kill();

    /** Bring a killed NIC back (a repaired node rejoining as spare). */
    void revive() { isAlive = true; }

    /** Current send-queue depth (for contention modelling/tests). */
    std::size_t sendQueueDepth() const { return sendQueue.size(); }

    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }

  private:
    void pumpSend();
    void pumpRecv();
    void wakeOnePoster();

    Engine &eng;
    Network &net;
    PhysNodeId nodeId;
    const Config &cfg;
    bool isAlive = true;

    std::deque<Message> sendQueue;
    bool sendBusy = false;
    std::deque<Message> recvQueue;
    bool recvBusy = false;

    /** Fibers blocked on a full post queue: (thread, generation). */
    std::deque<std::pair<SimThread *, std::uint64_t>> posterWaiters;

    Counters stats;
};

} // namespace rsvm

#endif // RSVM_NET_NIC_HH

#include "net/nic.hh"

#include "base/log.hh"
#include "base/panic.hh"
#include "net/network.hh"
#include "sim/engine.hh"

namespace rsvm {

Nic::Nic(Engine &engine, Network &network, PhysNodeId id,
         const Config &config)
    : eng(engine), net(network), nodeId(id), cfg(config)
{
}

WakeStatus
Nic::post(SimThread &poster, Message msg, Comp comp)
{
    rsvm_assert(msg.src == nodeId);
    while (sendQueue.size() >= cfg.nicPostQueue) {
        if (!isAlive)
            return WakeStatus::Error;
        stats.postQueueStalls++;
        posterWaiters.emplace_back(&poster, poster.generation());
        WakeStatus ws = poster.park(comp);
        if (ws == WakeStatus::Restarted || ws == WakeStatus::Error)
            return ws;
        // Normal wake: space may be available now; re-check the queue.
    }
    if (!isAlive)
        return WakeStatus::Error;
    poster.charge(comp, cfg.postCost);
    if (msg.stamp)
        msg.stamp(msg); // transport sequencing at queue-accept time
    stats.messagesSent++;
    stats.bytesSent += msg.payloadBytes + cfg.msgHeaderBytes;
    sendQueue.push_back(std::move(msg));
    pumpSend();
    return WakeStatus::Normal;
}

void
Nic::postAsync(Message msg)
{
    rsvm_assert(msg.src == nodeId);
    if (!isAlive)
        return; // dropped with the dead node; never sequenced
    if (msg.stamp)
        msg.stamp(msg);
    stats.messagesSent++;
    stats.bytesSent += msg.payloadBytes + cfg.msgHeaderBytes;
    sendQueue.push_back(std::move(msg));
    pumpSend();
}

void
Nic::pumpSend()
{
    if (sendBusy || sendQueue.empty() || !isAlive)
        return;
    sendBusy = true;
    Message msg = std::move(sendQueue.front());
    sendQueue.pop_front();
    wakeOnePoster();
    SimTime occupancy =
        cfg.sendOverhead +
        cfg.wireTime(msg.payloadBytes + cfg.msgHeaderBytes);
    eng.schedule(occupancy, [this, m = std::move(msg)]() mutable {
        sendBusy = false;
        // The message departed before any failure that happens later;
        // hand it to the wire even if this NIC dies in the meantime
        // (kill() only drops *queued* messages).
        net.transmit(std::move(m));
        pumpSend();
    });
}

void
Nic::wakeOnePoster()
{
    while (!posterWaiters.empty()) {
        auto [thread, gen] = posterWaiters.front();
        posterWaiters.pop_front();
        if (thread->generation() == gen &&
            thread->state() == ThreadState::Parked) {
            thread->wake(WakeStatus::Normal);
            return;
        }
    }
}

void
Nic::arrive(Message msg)
{
    if (!isAlive)
        return; // silently lost; the sender's transport retransmits
    if (msg.kind == MsgKind::Ack || msg.kind == MsgKind::Heartbeat) {
        // NIC-firmware control traffic: delivered without occupying
        // the receive pipeline (and without recvOverhead).
        if (msg.deliver)
            msg.deliver();
        return;
    }
    recvQueue.push_back(std::move(msg));
    pumpRecv();
}

void
Nic::pumpRecv()
{
    if (recvBusy || recvQueue.empty() || !isAlive)
        return;
    recvBusy = true;
    eng.schedule(cfg.recvOverhead, [this] {
        recvBusy = false;
        if (!isAlive || recvQueue.empty())
            return;
        Message msg = std::move(recvQueue.front());
        recvQueue.pop_front();
        if (msg.deliver)
            msg.deliver();
        if (msg.onComplete) {
            // Completion notification travels back to the sender.
            eng.schedule(cfg.wireLatency,
                         [cb = std::move(msg.onComplete)] { cb(true); });
        }
        pumpRecv();
    });
}

void
Nic::probe(PhysNodeId dst, std::function<void(bool)> cb)
{
    stats.heartbeatsSent++;
    // Tiny control message: round trip without queueing.
    eng.schedule(2 * cfg.wireLatency + cfg.heartbeatProbeCost,
                 [this, dst, cb = std::move(cb)] {
                     cb(net.nodeAlive(dst));
                 });
}

void
Nic::kill()
{
    if (!isAlive)
        return;
    isAlive = false;
    // Queued-but-not-departed messages are lost with the node. Their
    // completions never fire (the sender is dead too).
    sendQueue.clear();
    // Received-but-undelivered messages came from LIVE senders; they
    // are simply lost. The senders' reliable transport keeps
    // retransmitting until the failure detector declares this node
    // dead and fails the channel.
    recvQueue.clear();
    // Posters blocked on the queue belong to the dead node; they are
    // killed by the node-failure path, not woken here.
    posterWaiters.clear();
    RSVM_LOG(LogComp::Net, "nic %u failed", nodeId);
}

} // namespace rsvm

#include "net/failure.hh"

#include <algorithm>

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"

namespace rsvm {

FailureInjector::FailureInjector(Engine &engine)
    : eng(engine)
{
}

void
FailureInjector::killAt(PhysNodeId node, SimTime when)
{
    timedKills++;
    eng.at(when, [this, node] {
        timedKills--;
        killNow(node);
    });
}

void
FailureInjector::armFailpoint(PhysNodeId node, std::string name,
                              std::uint64_t occurrence)
{
    rsvm_assert(occurrence >= 1);
    armed.push_back(Armed{node, std::move(name), occurrence});
}

bool
FailureInjector::failpoint(PhysNodeId node, const char *name)
{
    for (auto it = armed.begin(); it != armed.end(); ++it) {
        if (it->node != node || it->name != name)
            continue;
        if (--it->remaining > 0)
            return false;
        armed.erase(it);
        RSVM_LOG(LogComp::Ft, "failpoint '%s' fires on node %u", name,
                 node);
        killNow(node);
        return true;
    }
    return false;
}

void
FailureInjector::killNow(PhysNodeId node)
{
    if (std::find(killedNodes.begin(), killedNodes.end(), node) !=
        killedNodes.end())
        return;
    killedNodes.push_back(node);
    rsvm_assert_msg(static_cast<bool>(killAction),
                    "no kill action installed");
    killAction(node);
}

} // namespace rsvm

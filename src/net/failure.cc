#include "net/failure.hh"

#include <algorithm>

#include "base/log.hh"
#include "base/panic.hh"
#include "sim/engine.hh"

namespace rsvm {

namespace failpoints {

bool
isKnown(const std::string &name)
{
    for (const char *p : kReleasePoints)
        if (name == p)
            return true;
    for (const char *p : kRecoveryPoints)
        if (name == p)
            return true;
    for (const char *p : kMigrationPoints)
        if (name == p)
            return true;
    for (const char *p : kJoinPoints)
        if (name == p)
            return true;
    for (const char *p : kOtherPoints)
        if (name == p)
            return true;
    for (const char *p : kPersistPoints)
        if (name == p)
            return true;
    for (const char *p : kNetFaultPoints)
        if (name == p)
            return true;
    return false;
}

} // namespace failpoints

FailureInjector::FailureInjector(Engine &engine)
    : eng(engine)
{
}

void
FailureInjector::killAt(PhysNodeId node, SimTime when)
{
    auto rec = std::make_shared<TimedKill>(TimedKill{node, true});
    timed.push_back(rec);
    eng.at(when, [this, rec] {
        if (!rec->live)
            return; // the victim already died through another kill
        rec->live = false;
        killNow(rec->node);
    });
}

void
FailureInjector::armFailpoint(PhysNodeId node, std::string name,
                              std::uint64_t occurrence)
{
    rsvm_assert(occurrence >= 1);
    if (!failpoints::isKnown(name))
        rsvm_fatal("unknown failpoint '" + name +
                   "' (see the failpoints::k*Points tables)");
    armed.push_back(Armed{node, std::move(name), occurrence});
}

bool
FailureInjector::failpoint(PhysNodeId node, const char *name)
{
    if (isDead(node))
        return false;
    for (auto it = armed.begin(); it != armed.end(); ++it) {
        if (it->node != node || it->name != name)
            continue;
        if (--it->remaining > 0)
            return false;
        armed.erase(it);
        RSVM_LOG(LogComp::Ft, "failpoint '%s' fires on node %u", name,
                 node);
        killNow(node);
        return true;
    }
    return false;
}

void
FailureInjector::killNow(PhysNodeId node)
{
    if (isDead(node))
        return;
    if (node >= dead.size())
        dead.resize(node + 1, false);
    dead[node] = true;
    killedNodes.push_back(node);
    rsvm_assert_msg(static_cast<bool>(killAction),
                    "no kill action installed");
    killAction(node);
}

void
FailureInjector::readmit(PhysNodeId node)
{
    if (node < dead.size())
        dead[node] = false;
}

bool
FailureInjector::anyArmed() const
{
    // Kills aimed at a currently-dead node are dormant, not armed:
    // they cannot fire unless the node rejoins, and quiesce loops
    // must not wait on them.
    for (const Armed &a : armed) {
        if (!isDead(a.node))
            return true;
    }
    for (const auto &rec : timed) {
        if (rec->live && !isDead(rec->node))
            return true;
    }
    return false;
}

} // namespace rsvm

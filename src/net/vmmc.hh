/**
 * @file
 * VMMC-style one-sided communication, logical-node addressed.
 *
 * The SVM protocols talk to *logical* nodes; the Vmmc object resolves
 * them to physical nodes through a host map that the recovery manager
 * rewrites when a failed logical node is re-hosted on its backup.
 *
 * Operations mirror the paper's communication layer (§3.1/§4.1):
 *  - remote deposit: data lands in the destination's memory without
 *    interrupting the destination processor;
 *  - remote fetch: the destination side produces a reply, possibly
 *    deferred (e.g. a home delaying a page reply until the required
 *    version has been applied);
 *  - reliable FIFO delivery per channel; completion notifications;
 *  - errors returned when the destination node is unreachable;
 *  - heart-beats with a timeout while waiting for remote responses.
 *
 * Every blocking call returns a Status and is safe to re-issue, which
 * is the foundation of the checkpoint/restore retry discipline.
 */

#ifndef RSVM_NET_VMMC_HH
#define RSVM_NET_VMMC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "sim/thread.hh"

namespace rsvm {

class Engine;

/** Outcome of a blocking communication call. */
enum class CommStatus {
    /** Operation performed remotely. */
    Ok,
    /** A peer failure was detected; the caller must enter recovery. */
    Error,
    /** Caller was checkpoint-restored; re-issue the whole operation. */
    Restarted,
};

/**
 * Reply handle given to a fetch handler at the destination. The
 * handler may reply immediately or stash the Replier and reply later
 * (deferred replies implement the home's page-version wait).
 */
class Replier
{
  public:
    Replier(Engine &engine, Network &network, const Config &config,
            PhysNodeId reply_src, PhysNodeId reply_dst,
            SimThread *requester, std::uint64_t requester_gen,
            std::shared_ptr<bool> op_active);

    /**
     * Send the reply: @p bytes sized payload whose effect at the
     * requester is @p apply. apply is skipped if the requester was
     * killed or restored in the meantime. Idempotent (second call is
     * ignored).
     */
    void reply(std::uint32_t bytes, std::function<void()> apply);

    /** True once reply() has been called. */
    bool replied() const { return done; }

    /** Invoked at the requester just before the wake (fetch uses this
     *  to validate Normal wakes against spurious ones). */
    void setDeliveredHook(std::function<void()> hook)
    { deliveredHook = std::move(hook); }

  private:
    Engine &eng;
    Network &net;
    const Config &cfg;
    PhysNodeId srcPhys;
    PhysNodeId dstPhys;
    SimThread *reqThread;
    std::uint64_t reqGen;
    /** Cleared by the requester when it abandons the fetch. */
    std::shared_ptr<bool> opActive;
    std::function<void()> deliveredHook;
    bool done = false;
};

/**
 * Tracks a batch of asynchronous deposits so a fiber can overlap many
 * sends and then wait for all completions (eager diff propagation).
 */
class CompletionBatch
{
  public:
    explicit CompletionBatch(SimThread &owner);

    /** Reserve one completion slot; pass the result as onComplete. */
    std::function<void(bool ok)> slot();

    /**
     * Park until every slot has completed. Error if any completion
     * failed; Restarted if the owner was checkpoint-restored.
     */
    CommStatus wait(Comp comp);

    /** True if any completed slot reported failure so far. */
    bool anyError() const { return st->error; }
    /** Completions still outstanding. */
    int outstanding() const { return st->outstanding; }

  private:
    struct State
    {
        SimThread *owner;
        std::uint64_t gen;
        int outstanding = 0;
        bool error = false;
        bool waiting = false;
    };
    std::shared_ptr<State> st;
};

/**
 * One message of a scatter-gather batch: @p bytes on the wire whose
 * destination effect is @p apply.
 */
struct BatchChunk
{
    std::uint32_t bytes = 0;
    std::function<void()> apply;
};

/** The communication layer bound to a host map. */
class Vmmc
{
  public:
    /** Destination-side fetch logic; runs at delivery (must not block). */
    using FetchHandler = std::function<void(std::shared_ptr<Replier>)>;

    Vmmc(Engine &engine, Network &network, const Config &config);

    // ---- Logical-to-physical mapping -----------------------------------
    void setHost(NodeId logical, PhysNodeId phys);
    PhysNodeId host(NodeId logical) const;
    /** True if the logical node's current host is alive. */
    bool reachable(NodeId logical) const;

    /** True if any physical node is currently dead. */
    bool anyNodeDead() const;

    /** Hook invoked (once per dead node) when an op detects a death. */
    void setPeerDeathHook(std::function<void(PhysNodeId)> hook)
    { peerDeath = std::move(hook); }

    /**
     * Hook telling the failure sweep whether a recovery is still in
     * progress. Once a dead node has been recovered (its logical state
     * re-hosted elsewhere), its carcass must no longer trip sweeps.
     */
    void setRecoveryPendingCheck(std::function<bool()> check)
    { recoveryPending = std::move(check); }

    /**
     * Mark a death as already observed without firing the peer-death
     * hook. Used by the recovery manager for failures it detects
     * itself (a node dying at a recovery failpoint): the enlarged
     * failed set is handled in the current recovery cycle, so a later
     * sweep must not re-announce the carcass.
     */
    void markDeathObserved(PhysNodeId phys);

    // ---- Blocking operations (call from fibers) --------------------------

    /**
     * Remote deposit of @p bytes with destination effect @p apply;
     * blocks until the completion notification arrives.
     */
    CommStatus deposit(SimThread &self, NodeId src, NodeId dst,
                       std::uint32_t bytes, std::function<void()> apply,
                       Comp comp);

    /**
     * Asynchronous remote deposit; completion is recorded in @p batch
     * (if non-null). Returns Ok once posted (may block briefly on a
     * full post queue).
     */
    CommStatus depositAsync(SimThread &self, NodeId src, NodeId dst,
                            std::uint32_t bytes,
                            std::function<void()> apply,
                            CompletionBatch *batch,
                            Comp comp = Comp::Protocol);

    /**
     * Scatter-gather batch post: ship every chunk to @p dst in FIFO
     * order with ONE completion slot in @p batch covering them all.
     * Channels are FIFO and failures propagate to every queued send,
     * so completion of the final chunk implies delivery of the whole
     * batch; one slot per destination replaces one per page. Returns
     * Ok once every chunk is posted (may block on a full post queue);
     * on Error/Restarted mid-batch the completion slot is released
     * with failure so a subsequent wait() cannot hang.
     */
    CommStatus postBatch(SimThread &self, NodeId src, NodeId dst,
                         std::vector<BatchChunk> chunks,
                         CompletionBatch *batch,
                         Comp comp = Comp::Diff);

    /**
     * Remote fetch: runs @p handler at the destination; blocks until
     * the handler's reply has been applied locally.
     */
    CommStatus fetch(SimThread &self, NodeId src, NodeId dst,
                     std::uint32_t req_bytes, FetchHandler handler,
                     Comp comp);

    /**
     * Remote deposit from engine context (home-side forwarding,
     * barrier go broadcasts). Never blocks; no completion tracking.
     */
    void depositFromEvent(NodeId src, NodeId dst, std::uint32_t bytes,
                          std::function<void()> apply);

    /**
     * Heart-beat sweep (§4.1): probe every physical node; report the
     * first dead one found, charging the probe cost to @p self.
     * Invokes the peer-death hook for newly discovered deaths.
     */
    bool sweepForFailures(SimThread &self, PhysNodeId *dead_out);

    Network &network() { return net; }

  private:
    void notifyDeath(PhysNodeId phys);

    Engine &eng;
    Network &net;
    const Config &cfg;
    std::vector<PhysNodeId> hostMap;
    std::vector<bool> deathNotified;
    std::function<void(PhysNodeId)> peerDeath;
    std::function<bool()> recoveryPending;
};

} // namespace rsvm

#endif // RSVM_NET_VMMC_HH

/**
 * @file
 * VMMC-style one-sided communication, logical-node addressed.
 *
 * The SVM protocols talk to *logical* nodes; the Vmmc object resolves
 * them to physical nodes through a host map that the recovery manager
 * rewrites when a failed logical node is re-hosted on its backup.
 *
 * Operations mirror the paper's communication layer (§3.1/§4.1):
 *  - remote deposit: data lands in the destination's memory without
 *    interrupting the destination processor;
 *  - remote fetch: the destination side produces a reply, possibly
 *    deferred (e.g. a home delaying a page reply until the required
 *    version has been applied);
 *  - reliable FIFO delivery per channel; completion notifications;
 *  - errors returned when the destination node is unreachable;
 *  - heart-beats with a timeout while waiting for remote responses.
 *
 * Every blocking call returns a Status and is safe to re-issue, which
 * is the foundation of the checkpoint/restore retry discipline.
 *
 * Reliability is *implemented*, not assumed: the wire may drop,
 * duplicate, reorder, and delay messages (net/netfault). Every
 * cross-node protocol message rides a per-(src,dst) channel with a
 * sequence number assigned at NIC-accept time, cumulative acks
 * (dedicated and piggybacked on reverse traffic), retransmission with
 * exponential backoff + seeded jitter, and receive-side duplicate /
 * reorder suppression — so handlers observe exactly-once, in-order
 * delivery. Completion notifications fire on the cumulative ack.
 *
 * Death is observed, not divined: with a failure detector installed
 * (FT clusters), a peer counts as dead only once the detector fences
 * it; sends to it fail fast and every delivery *from* it is rejected
 * (fencing). A cluster epoch, bumped when recovery starts, is stamped
 * on each (re)transmission: deliveries stamped with an older epoch
 * are rejected, so a falsely-suspected node's delayed messages can
 * never corrupt state that recovery has remapped. Without a detector
 * (base protocol, unit fixtures), the retransmission timer falls back
 * to the NIC-liveness oracle, preserving the historical semantics.
 */

#ifndef RSVM_NET_VMMC_HH
#define RSVM_NET_VMMC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/network.hh"
#include "sim/thread.hh"

namespace rsvm {

class Engine;

/** Outcome of a blocking communication call. */
enum class CommStatus {
    /** Operation performed remotely. */
    Ok,
    /** A peer failure was detected; the caller must enter recovery. */
    Error,
    /** Caller was checkpoint-restored; re-issue the whole operation. */
    Restarted,
};

/**
 * Reply handle given to a fetch handler at the destination. The
 * handler may reply immediately or stash the Replier and reply later
 * (deferred replies implement the home's page-version wait).
 */
class Vmmc;

class Replier
{
  public:
    Replier(Engine &engine, Vmmc &vmmc, const Config &config,
            PhysNodeId reply_src, PhysNodeId reply_dst,
            SimThread *requester, std::uint64_t requester_gen,
            std::shared_ptr<bool> op_active);

    /**
     * Send the reply: @p bytes sized payload whose effect at the
     * requester is @p apply. apply is skipped if the requester was
     * killed or restored in the meantime. Idempotent (second call is
     * ignored).
     */
    void reply(std::uint32_t bytes, std::function<void()> apply);

    /** True once reply() has been called. */
    bool replied() const { return done; }

    /** Invoked at the requester just before the wake (fetch uses this
     *  to validate Normal wakes against spurious ones). */
    void setDeliveredHook(std::function<void()> hook)
    { deliveredHook = std::move(hook); }

  private:
    Engine &eng;
    Vmmc &vm;
    const Config &cfg;
    PhysNodeId srcPhys;
    PhysNodeId dstPhys;
    SimThread *reqThread;
    std::uint64_t reqGen;
    /** Cleared by the requester when it abandons the fetch. */
    std::shared_ptr<bool> opActive;
    std::function<void()> deliveredHook;
    bool done = false;
};

/**
 * Tracks a batch of asynchronous deposits so a fiber can overlap many
 * sends and then wait for all completions (eager diff propagation).
 */
class CompletionBatch
{
  public:
    explicit CompletionBatch(SimThread &owner);

    /** Reserve one completion slot; pass the result as onComplete. */
    std::function<void(bool ok)> slot();

    /**
     * Park until every slot has completed. Error if any completion
     * failed; Restarted if the owner was checkpoint-restored.
     */
    CommStatus wait(Comp comp);

    /** True if any completed slot reported failure so far. */
    bool anyError() const { return st->error; }
    /** Completions still outstanding. */
    int outstanding() const { return st->outstanding; }

  private:
    struct State
    {
        SimThread *owner;
        std::uint64_t gen;
        int outstanding = 0;
        bool error = false;
        bool waiting = false;
    };
    std::shared_ptr<State> st;
};

/**
 * One message of a scatter-gather batch: @p bytes on the wire whose
 * destination effect is @p apply.
 */
struct BatchChunk
{
    std::uint32_t bytes = 0;
    std::function<void()> apply;
};

/** The communication layer bound to a host map. */
class Vmmc
{
  public:
    /** Destination-side fetch logic; runs at delivery (must not block). */
    using FetchHandler = std::function<void(std::shared_ptr<Replier>)>;

    Vmmc(Engine &engine, Network &network, const Config &config);

    // ---- Logical-to-physical mapping -----------------------------------
    void setHost(NodeId logical, PhysNodeId phys);
    PhysNodeId host(NodeId logical) const;
    /** True if the logical node's current host is alive. */
    bool reachable(NodeId logical) const;

    /** True if any physical node is currently dead. */
    bool anyNodeDead() const;

    /** Hook invoked (once per dead node) when an op detects a death. */
    void setPeerDeathHook(std::function<void(PhysNodeId)> hook)
    { peerDeath = std::move(hook); }

    /**
     * Hook telling the failure sweep whether a recovery is still in
     * progress. Once a dead node has been recovered (its logical state
     * re-hosted elsewhere), its carcass must no longer trip sweeps.
     */
    void setRecoveryPendingCheck(std::function<bool()> check)
    { recoveryPending = std::move(check); }

    /**
     * Mark a death as already observed without firing the peer-death
     * hook. Used by the recovery manager for failures it detects
     * itself (a node dying at a recovery failpoint): the enlarged
     * failed set is handled in the current recovery cycle, so a later
     * sweep must not re-announce the carcass.
     */
    void markDeathObserved(PhysNodeId phys);

    // ---- Blocking operations (call from fibers) --------------------------

    /**
     * Remote deposit of @p bytes with destination effect @p apply;
     * blocks until the completion notification arrives.
     */
    CommStatus deposit(SimThread &self, NodeId src, NodeId dst,
                       std::uint32_t bytes, std::function<void()> apply,
                       Comp comp);

    /**
     * Asynchronous remote deposit; completion is recorded in @p batch
     * (if non-null). Returns Ok once posted (may block briefly on a
     * full post queue).
     */
    CommStatus depositAsync(SimThread &self, NodeId src, NodeId dst,
                            std::uint32_t bytes,
                            std::function<void()> apply,
                            CompletionBatch *batch,
                            Comp comp = Comp::Protocol);

    /**
     * Scatter-gather batch post: ship every chunk to @p dst in FIFO
     * order with ONE completion slot in @p batch covering them all.
     * Channels are FIFO and failures propagate to every queued send,
     * so completion of the final chunk implies delivery of the whole
     * batch; one slot per destination replaces one per page. Returns
     * Ok once every chunk is posted (may block on a full post queue);
     * on Error/Restarted mid-batch the completion slot is released
     * with failure so a subsequent wait() cannot hang.
     */
    CommStatus postBatch(SimThread &self, NodeId src, NodeId dst,
                         std::vector<BatchChunk> chunks,
                         CompletionBatch *batch,
                         Comp comp = Comp::Diff);

    /**
     * Remote fetch: runs @p handler at the destination; blocks until
     * the handler's reply has been applied locally.
     */
    CommStatus fetch(SimThread &self, NodeId src, NodeId dst,
                     std::uint32_t req_bytes, FetchHandler handler,
                     Comp comp);

    /**
     * Remote deposit from engine context (home-side forwarding,
     * barrier go broadcasts). Never blocks; no completion tracking.
     */
    void depositFromEvent(NodeId src, NodeId dst, std::uint32_t bytes,
                          std::function<void()> apply);

    /**
     * Heart-beat sweep (§4.1): probe every physical node; report the
     * first dead one found, charging the probe cost to @p self.
     * Invokes the peer-death hook for newly discovered deaths. With a
     * failure detector installed, "dead" means fenced — the sweep no
     * longer reads NIC ground truth.
     */
    bool sweepForFailures(SimThread &self, PhysNodeId *dead_out);

    Network &network() { return net; }

    // ---- Reliable transport / fencing -----------------------------------

    /**
     * Install the failure-detector hooks: @p heard is invoked on each
     * transport delivery as a lease renewal (hearer, from); @p active
     * reports whether the detector is running — while it is, peer
     * death is *only* what the detector declares (fencing), never the
     * NIC-liveness oracle.
     */
    void
    setDetectorHooks(std::function<void(PhysNodeId, PhysNodeId)> heard,
                     std::function<bool()> active)
    {
        heardHook = std::move(heard);
        detectorActive = std::move(active);
    }

    /**
     * Declare @p phys dead for transport purposes: every unacked send
     * to it fails (Error at the callers), all undelivered state from
     * it is dropped, and every future delivery from it is rejected.
     * Idempotent. Called by the failure detector at declaration time.
     */
    void fence(PhysNodeId phys);

    /** True once fence(phys) has been called. */
    bool isFenced(PhysNodeId phys) const { return fenced_[phys]; }

    /**
     * Advance the cluster epoch (recovery start, §4.5) and publish it
     * to the surviving, unfenced nodes. In-flight deliveries stamped
     * with the old epoch — including everything a fenced node ever
     * sent — are rejected on arrival; survivors' rejected messages
     * are simply retransmitted under the new epoch. A fenced node
     * never learns the new epoch, so nothing it has in flight can
     * commit after recovery remaps its homes.
     */
    void bumpEpoch();

    /** Current cluster epoch. */
    std::uint64_t clusterEpoch() const { return epoch_; }

    /**
     * Release the per-(src,dst) channel state touching @p phys in both
     * directions: unacked retransmit queues, held out-of-order
     * deliveries, sequence counters and ack state all reset to the
     * fresh-boot state. Asserts the fence already disarmed every
     * retransmit timer aimed at the carcass. Idempotent.
     */
    void reclaimChannels(PhysNodeId phys);

    /**
     * Reclaim the channels of every node that is both fenced and
     * NIC-dead. Called when a recovery cycle commits its remap: the
     * survivors will never ack or deliver anything on those channels
     * again, so keeping their queues is a leak. A later rejoin starts
     * from the reset (fresh-boot) sequence state.
     */
    void reclaimDeadChannels();

    /**
     * Re-admit a previously fenced physical node (rejoin, §member-
     * ship): clears the fence and the death-notified latch, resets the
     * channel state in both directions, and teaches the node the
     * current cluster epoch so its fresh transmissions are accepted.
     * The caller must have revived the NIC first.
     */
    void readmit(PhysNodeId phys);

    /** Transport-layer counters (retransmits, dup drops, acks...). */
    Counters &transportCounters() { return tstats; }
    const Counters &transportCounters() const { return tstats; }

    /**
     * Build a reliably-tracked message (used internally and by the
     * Replier): sequenced at NIC accept, retransmitted until acked,
     * with @p on_complete fired true on the cumulative ack or false
     * when the peer is declared dead.
     */
    Message makeReliable(PhysNodeId src_phys, PhysNodeId dst_phys,
                         std::uint32_t bytes, MsgKind kind,
                         std::function<void()> apply,
                         std::function<void(bool ok)> on_complete);

  private:
    /** One in-flight (or queued) reliable transfer. */
    struct TxEntry
    {
        std::uint64_t seq = 0;
        std::uint32_t bytes = 0;
        MsgKind kind = MsgKind::Data;
        std::function<void()> apply;
        std::function<void(bool ok)> onComplete;
    };

    struct TxChannel
    {
        std::uint64_t nextSeq = 1;
        std::deque<std::shared_ptr<TxEntry>> unacked;
        SimTime rto = 0;
        /** Bumped to invalidate outstanding timer events. */
        std::uint64_t timerId = 0;
        bool timerArmed = false;
    };

    struct RxChannel
    {
        std::uint64_t expected = 1;
        /** Out-of-order arrivals held for in-order delivery. */
        std::map<std::uint64_t, std::shared_ptr<TxEntry>> held;
        bool ackScheduled = false;
    };

    void notifyDeath(PhysNodeId phys);
    friend class Replier;
    friend class FailureDetector;

    TxChannel &txOf(PhysNodeId s, PhysNodeId d)
    { return tx_[s * net.numNodes() + d]; }
    RxChannel &rxOf(PhysNodeId s, PhysNodeId d)
    { return rx_[s * net.numNodes() + d]; }

    /** Peer-death view for upfront checks: fenced (detector mode) or
     *  NIC-dead (oracle fallback). */
    bool peerKnownDead(PhysNodeId phys) const;
    bool detectorMode() const
    { return detectorActive && detectorActive(); }
    static MsgKind kindFor(Comp comp);

    std::function<void()> deliverClosure(PhysNodeId s, PhysNodeId d,
                                         std::shared_ptr<TxEntry> e);
    void rxDeliver(PhysNodeId s, PhysNodeId d,
                   const std::shared_ptr<TxEntry> &e,
                   std::uint64_t stamp_epoch, std::uint64_t piggy_ack);
    bool processAck(PhysNodeId s, PhysNodeId d, std::uint64_t cum);
    void scheduleAck(PhysNodeId s, PhysNodeId d);
    void sendAckNow(PhysNodeId s, PhysNodeId d);
    void armRetxTimer(PhysNodeId s, PhysNodeId d);
    void onRetxTimer(PhysNodeId s, PhysNodeId d, std::uint64_t id);
    void retransmit(PhysNodeId s, PhysNodeId d,
                    const std::shared_ptr<TxEntry> &e);
    void failChannel(PhysNodeId s, PhysNodeId d);

    Engine &eng;
    Network &net;
    const Config &cfg;
    std::vector<PhysNodeId> hostMap;
    std::vector<bool> deathNotified;
    std::function<void(PhysNodeId)> peerDeath;
    std::function<bool()> recoveryPending;

    std::vector<TxChannel> tx_;
    std::vector<RxChannel> rx_;
    std::vector<bool> fenced_;
    /** Epoch each node stamps on its transmissions. */
    std::vector<std::uint64_t> epochKnown_;
    std::uint64_t epoch_ = 0;
    Rng rng_;
    Counters tstats;
    std::function<void(PhysNodeId, PhysNodeId)> heardHook;
    std::function<bool()> detectorActive;
};

} // namespace rsvm

#endif // RSVM_NET_VMMC_HH

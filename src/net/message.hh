/**
 * @file
 * The unit of communication between physical nodes.
 *
 * Because the whole cluster lives in one process, a message does not
 * serialize bytes: it carries a payload *size* (for wire timing) and a
 * closure that performs the remote-memory effect at delivery time.
 * This models VMMC remote deposit/fetch exactly: data lands in the
 * destination's memory without involving the destination processor.
 */

#ifndef RSVM_NET_MESSAGE_HH
#define RSVM_NET_MESSAGE_HH

#include <cstdint>
#include <functional>

#include "base/types.hh"

namespace rsvm {

/** One network message (always physical-node addressed). */
struct Message
{
    PhysNodeId src = 0;
    PhysNodeId dst = 0;
    /** Payload bytes; header bytes are added by the wire model. */
    std::uint32_t payloadBytes = 0;
    /**
     * Remote effect, executed at the destination at delivery time
     * (NIC/DMA context: must not block).
     */
    std::function<void()> deliver;
    /**
     * Sender-side completion notification: true once the message has
     * been performed remotely, false if the destination is dead
     * (VMMC retransmission gave up). May be empty.
     */
    std::function<void(bool ok)> onComplete;
};

} // namespace rsvm

#endif // RSVM_NET_MESSAGE_HH

/**
 * @file
 * The unit of communication between physical nodes.
 *
 * Because the whole cluster lives in one process, a message does not
 * serialize bytes: it carries a payload *size* (for wire timing) and a
 * closure that performs the remote-memory effect at delivery time.
 * This models VMMC remote deposit/fetch exactly: data lands in the
 * destination's memory without involving the destination processor.
 */

#ifndef RSVM_NET_MESSAGE_HH
#define RSVM_NET_MESSAGE_HH

#include <cstdint>
#include <functional>

#include "base/types.hh"

namespace rsvm {

/**
 * Traffic class of a message. Data/Diff/Ckpt messages flow through
 * the NIC send/receive pipelines; Ack and Heartbeat are NIC-firmware
 * control traffic handled without occupying the receive pipeline.
 * The class also keys targeted netfault:* injection ("drop the n-th
 * diff to node k").
 */
enum class MsgKind : std::uint8_t {
    Data,
    Diff,
    Ckpt,
    Ack,
    Heartbeat,
};

/** One network message (always physical-node addressed). */
struct Message
{
    PhysNodeId src = 0;
    PhysNodeId dst = 0;
    /** Payload bytes; header bytes are added by the wire model. */
    std::uint32_t payloadBytes = 0;
    /** Traffic class (wire-fault targeting, control fast path). */
    MsgKind kind = MsgKind::Data;
    /**
     * Remote effect, executed at the destination at delivery time
     * (NIC/DMA context: must not block).
     */
    std::function<void()> deliver;
    /**
     * Sender-side completion notification: true once the message has
     * been performed remotely, false if the destination is dead
     * (VMMC retransmission gave up). May be empty.
     */
    std::function<void(bool ok)> onComplete;
    /**
     * Invoked by the NIC at the instant the message is accepted into
     * the send queue. The reliable transport assigns its sequence
     * number here — not earlier — so sequence order equals wire order
     * and a post that fails (full queue, restart) never burns a
     * number the receiver would wait on forever. May be empty.
     */
    std::function<void(Message &)> stamp;
};

} // namespace rsvm

#endif // RSVM_NET_MESSAGE_HH

/**
 * @file
 * Fail-stop failure injection (§4.1).
 *
 * Failures are injected either at an absolute simulated time or at a
 * named *failpoint* — a protocol location such as "release:phase1" —
 * optionally on its n-th occurrence at a given node. The actual
 * tear-down (killing the NIC, fibers, and memory of a physical node)
 * is supplied by the runtime through setKillAction(), keeping this
 * class free of upward dependencies.
 */

#ifndef RSVM_NET_FAILURE_HH
#define RSVM_NET_FAILURE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"

namespace rsvm {

class Engine;

/** Well-known failpoint names used by the extended protocol. */
namespace failpoints {
inline constexpr const char *kBeforeRelease = "release:before";
inline constexpr const char *kAfterCommit = "release:after-commit";
inline constexpr const char *kAfterPointA = "release:after-point-a";
inline constexpr const char *kMidPhase1 = "release:mid-phase1";
inline constexpr const char *kAfterPhase1 = "release:after-phase1";
inline constexpr const char *kAfterTsSave = "release:after-ts-save";
inline constexpr const char *kAfterPointB = "release:after-point-b";
inline constexpr const char *kMidPhase2 = "release:mid-phase2";
inline constexpr const char *kAfterRelease = "release:after";
inline constexpr const char *kInBarrier = "barrier:inside";
inline constexpr const char *kInCompute = "compute";
inline constexpr const char *kInAcquire = "acquire:inside";

// Home-migration failpoints: fired by the HomingManager around each
// step of a live home handoff (svm/homing). A kill at kMigPlan or
// kMigTransfer rolls the migration back to the old homes; a kill at
// kMigCommit or kMigCleanup rolls forward to the new ones.
inline constexpr const char *kMigPlan = "migration:plan";
inline constexpr const char *kMigTransfer = "migration:transfer";
inline constexpr const char *kMigCommit = "migration:commit";
inline constexpr const char *kMigCleanup = "migration:cleanup";

// Recovery-path failpoints (§4.5): fired by the RecoveryManager after
// each recovery step, so a second fail-stop can land mid-recovery.
inline constexpr const char *kRecQuiesce = "recovery:quiesce";
inline constexpr const char *kRecPageRestore = "recovery:page-restore";
inline constexpr const char *kRecHomeRemap = "recovery:home-remap";
inline constexpr const char *kRecReReplicate = "recovery:re-replicate";
inline constexpr const char *kRecLockCleanup = "recovery:lock-cleanup";
inline constexpr const char *kRecResume = "recovery:resume";
inline constexpr const char *kRecReProtect = "recovery:re-protect";

/** Release-path failpoints, in protocol order (for sweeps/campaigns). */
inline constexpr const char *kReleasePoints[] = {
    kBeforeRelease, kAfterCommit,  kAfterPointA, kMidPhase1,
    kAfterPhase1,   kAfterTsSave,  kAfterPointB, kMidPhase2,
    kAfterRelease,  kInAcquire,
};

/** Recovery-path failpoints, in recovery-step order. */
inline constexpr const char *kRecoveryPoints[] = {
    kRecQuiesce,    kRecPageRestore, kRecHomeRemap, kRecReReplicate,
    kRecLockCleanup, kRecResume,     kRecReProtect,
};

/** Home-migration failpoints, in handoff order. */
inline constexpr const char *kMigrationPoints[] = {
    kMigPlan, kMigTransfer, kMigCommit, kMigCleanup,
};

// Membership failpoints: fired by the JoinManager around each step of
// a node join/rejoin (runtime/membership). A kill of the joiner at
// kJoinAdmit or kJoinTransfer rolls the join back out (the joiner is
// re-fenced and holds no cluster state); a kill at or after
// kJoinCommit is an ordinary member death handled by recovery.
inline constexpr const char *kJoinAdmit = "join:admit";
inline constexpr const char *kJoinTransfer = "join:transfer";
inline constexpr const char *kJoinCommit = "join:commit";
inline constexpr const char *kJoinActivate = "join:activate";

/** Membership failpoints, in join-step order. */
inline constexpr const char *kJoinPoints[] = {
    kJoinAdmit, kJoinTransfer, kJoinCommit, kJoinActivate,
};

// Wire-fault points: armed on NetFaultInjector (not as kills) to hit
// one targeted message — "drop the n-th phase-1 diff to node k".
inline constexpr const char *kNetDrop = "netfault:drop";
inline constexpr const char *kNetDup = "netfault:dup";
inline constexpr const char *kNetDelay = "netfault:delay";

/** Targeted wire-fault points (NetFaultInjector::arm). */
inline constexpr const char *kNetFaultPoints[] = {
    kNetDrop, kNetDup, kNetDelay,
};

// Persistence-tier failpoints (base/persist, runtime/persist_manager):
// fired on a record's writer as it is enqueued and as its simulated
// disk write completes, on the completing node when the cluster-wide
// watermark advances, and on every node around the two cold-restart
// stages (log scan and state rebuild), so the campaign can kill
// mid-persist and mid-restart.
inline constexpr const char *kPersistEnqueue = "persist:enqueue";
inline constexpr const char *kPersistDrain = "persist:drain";
inline constexpr const char *kPersistWatermark =
    "persist:watermark-advance";
inline constexpr const char *kPersistRestartScan = "persist:restart-scan";
inline constexpr const char *kPersistRebuild = "persist:rebuild";

/** Persistence failpoints, in pipeline/restart order. */
inline constexpr const char *kPersistPoints[] = {
    kPersistEnqueue, kPersistDrain, kPersistWatermark,
    kPersistRestartScan, kPersistRebuild,
};

/** Standalone points fired outside the release/recovery sweeps. */
inline constexpr const char *kOtherPoints[] = {
    kInBarrier, kInCompute,
};

/**
 * True if @p name appears in any failpoint table (release, recovery,
 * migration, standalone, netfault). Arming an unknown name is a
 * campaign-script bug that would otherwise silently never fire.
 */
bool isKnown(const std::string &name);
} // namespace failpoints

/** Schedules and triggers fail-stop node failures. */
class FailureInjector
{
  public:
    explicit FailureInjector(Engine &engine);

    /** Install the runtime's node tear-down procedure. */
    void setKillAction(std::function<void(PhysNodeId)> action)
    { killAction = std::move(action); }

    /** Kill @p node at absolute simulated time @p when. */
    void killAt(PhysNodeId node, SimTime when);

    /**
     * Kill @p node at the @p occurrence-th hit of failpoint @p name on
     * that node (1-based).
     */
    void armFailpoint(PhysNodeId node, std::string name,
                      std::uint64_t occurrence = 1);

    /**
     * Protocol-side hook. Returns true if this call just killed
     * @p node — the caller, if running on that node, must killSelf().
     */
    bool failpoint(PhysNodeId node, const char *name);

    /** Kill a node immediately (engine context or foreign fiber). */
    void killNow(PhysNodeId node);

    /**
     * The node rejoined the cluster: it is killable again. Armed
     * failpoints survive a death, so a point armed before the node's
     * first life ended can still fire in its second; kill history
     * (killed()) is never rewritten.
     */
    void readmit(PhysNodeId node);

    /**
     * True if any time- or failpoint-based kill is armed on a
     * currently-live node. Kills aimed at a dead node are dormant —
     * they do not keep quiesce loops spinning, but wake up again if
     * the node rejoins.
     */
    bool anyArmed() const;

    /** Kill events so far, in order (a rejoined node can appear twice). */
    const std::vector<PhysNodeId> &killed() const { return killedNodes; }

  private:
    struct Armed
    {
        PhysNodeId node;
        std::string name;
        std::uint64_t remaining;
    };

    /**
     * One pending timed kill. Kept behind a shared_ptr so killNow()
     * can retire kills aimed at a node that already died through a
     * failpoint: the engine callback still fires but becomes a no-op.
     */
    struct TimedKill
    {
        PhysNodeId node;
        bool live = true;
    };

    bool isDead(PhysNodeId node) const
    { return node < dead.size() && dead[node]; }

    Engine &eng;
    std::function<void(PhysNodeId)> killAction;
    std::vector<Armed> armed;
    std::vector<std::shared_ptr<TimedKill>> timed;
    std::vector<PhysNodeId> killedNodes;
    /** Currently-dead nodes (cleared by readmit); dedupes kills. */
    std::vector<bool> dead;
};

} // namespace rsvm

#endif // RSVM_NET_FAILURE_HH

#include "net/network.hh"

#include "base/panic.hh"
#include "net/nic.hh"
#include "sim/engine.hh"

namespace rsvm {

Network::Network(Engine &engine, const Config &config,
                 std::uint32_t num_nodes)
    : eng(engine), cfg(config), faults_(config)
{
    nics.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i)
        nics.push_back(std::make_unique<Nic>(engine, *this, i, cfg));
}

Network::~Network() = default;

Nic &
Network::nic(PhysNodeId id)
{
    rsvm_assert(id < nics.size());
    return *nics[id];
}

const Nic &
Network::nic(PhysNodeId id) const
{
    rsvm_assert(id < nics.size());
    return *nics[id];
}

bool
Network::nodeAlive(PhysNodeId id) const
{
    return id < nics.size() && nics[id]->alive();
}

void
Network::transmit(Message msg)
{
    rsvm_assert(msg.dst < nics.size());
    if (!faults_.active()) {
        eng.schedule(cfg.wireLatency,
                     [this, m = std::move(msg)]() mutable {
                         nics[m.dst]->arrive(std::move(m));
                     });
        return;
    }
    NetFaultInjector::Plan plan = faults_.plan(msg, eng.now());
    if (plan.drop)
        return;
    for (std::size_t i = 0; i < plan.extraDelays.size(); ++i) {
        const bool last = i + 1 == plan.extraDelays.size();
        // Duplicated deliveries need a copy; reliable-transport
        // closures are shared_ptr-backed and copy safely.
        Message m = last ? std::move(msg) : msg;
        eng.schedule(cfg.wireLatency + plan.extraDelays[i],
                     [this, m = std::move(m)]() mutable {
                         nics[m.dst]->arrive(std::move(m));
                     });
    }
}

} // namespace rsvm

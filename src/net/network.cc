#include "net/network.hh"

#include "base/panic.hh"
#include "net/nic.hh"
#include "sim/engine.hh"

namespace rsvm {

Network::Network(Engine &engine, const Config &config,
                 std::uint32_t num_nodes)
    : eng(engine), cfg(config)
{
    nics.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i)
        nics.push_back(std::make_unique<Nic>(engine, *this, i, cfg));
}

Network::~Network() = default;

Nic &
Network::nic(PhysNodeId id)
{
    rsvm_assert(id < nics.size());
    return *nics[id];
}

const Nic &
Network::nic(PhysNodeId id) const
{
    rsvm_assert(id < nics.size());
    return *nics[id];
}

bool
Network::nodeAlive(PhysNodeId id) const
{
    return id < nics.size() && nics[id]->alive();
}

void
Network::transmit(Message msg)
{
    rsvm_assert(msg.dst < nics.size());
    eng.schedule(cfg.wireLatency, [this, m = std::move(msg)]() mutable {
        nics[m.dst]->arrive(std::move(m));
    });
}

} // namespace rsvm

#include "net/vmmc.hh"

#include "base/log.hh"
#include "base/panic.hh"
#include "net/nic.hh"
#include "sim/engine.hh"

namespace rsvm {

// ---------------------------------------------------------------- Replier

Replier::Replier(Engine &engine, Network &network, const Config &config,
                 PhysNodeId reply_src, PhysNodeId reply_dst,
                 SimThread *requester, std::uint64_t requester_gen,
                 std::shared_ptr<bool> op_active)
    : eng(engine), net(network), cfg(config), srcPhys(reply_src),
      dstPhys(reply_dst), reqThread(requester), reqGen(requester_gen),
      opActive(std::move(op_active))
{
}

void
Replier::reply(std::uint32_t bytes, std::function<void()> apply)
{
    if (done)
        return;
    done = true;
    SimThread *t = reqThread;
    std::uint64_t gen = reqGen;
    auto deliver = [t, gen, guard = opActive, hook = deliveredHook,
                    apply = std::move(apply)] {
        // Skip stale replies: the requester died, was restored, or
        // abandoned the fetch; it re-issues the operation itself. The
        // guard matters for *deferred* replies whose fetch timed out:
        // their apply closures reference stack state that is gone.
        if (t->generation() != gen || (guard && !*guard))
            return;
        if (apply)
            apply();
        if (hook)
            hook();
        t->wake(WakeStatus::Normal);
    };
    if (srcPhys == dstPhys) {
        // Loopback: the replying node hosts the requester (possible
        // after re-hosting); skip the wire.
        eng.schedule(cfg.localLoopback, std::move(deliver));
        return;
    }
    Message msg;
    msg.src = srcPhys;
    msg.dst = dstPhys;
    msg.payloadBytes = bytes;
    msg.deliver = std::move(deliver);
    net.nic(srcPhys).postAsync(std::move(msg));
}

// ---------------------------------------------------------- CompletionBatch

CompletionBatch::CompletionBatch(SimThread &owner)
    : st(std::make_shared<State>())
{
    st->owner = &owner;
    st->gen = owner.generation();
}

std::function<void(bool)>
CompletionBatch::slot()
{
    st->outstanding++;
    auto state = st;
    return [state](bool ok) {
        state->outstanding--;
        if (!ok)
            state->error = true;
        if (state->waiting &&
            (state->outstanding == 0 || state->error) &&
            state->owner->generation() == state->gen) {
            state->waiting = false;
            state->owner->wake(ok ? WakeStatus::Normal
                                  : WakeStatus::Error);
        }
    };
}

CommStatus
CompletionBatch::wait(Comp comp)
{
    while (st->outstanding > 0 && !st->error) {
        st->waiting = true;
        WakeStatus ws = st->owner->park(comp);
        st->waiting = false;
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        if (ws == WakeStatus::Error)
            break;
    }
    return st->error ? CommStatus::Error : CommStatus::Ok;
}

// ------------------------------------------------------------------- Vmmc

Vmmc::Vmmc(Engine &engine, Network &network, const Config &config)
    : eng(engine), net(network), cfg(config)
{
    hostMap.resize(network.numNodes());
    for (PhysNodeId i = 0; i < network.numNodes(); ++i)
        hostMap[i] = i;
    deathNotified.assign(network.numNodes(), false);
}

void
Vmmc::setHost(NodeId logical, PhysNodeId phys)
{
    rsvm_assert(logical < hostMap.size());
    hostMap[logical] = phys;
}

PhysNodeId
Vmmc::host(NodeId logical) const
{
    rsvm_assert(logical < hostMap.size());
    return hostMap[logical];
}

bool
Vmmc::reachable(NodeId logical) const
{
    return net.nodeAlive(host(logical));
}

bool
Vmmc::anyNodeDead() const
{
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        if (!net.nodeAlive(p))
            return true;
    }
    return false;
}

void
Vmmc::notifyDeath(PhysNodeId phys)
{
    if (phys < deathNotified.size() && !deathNotified[phys]) {
        deathNotified[phys] = true;
        if (peerDeath)
            peerDeath(phys);
    }
}

void
Vmmc::markDeathObserved(PhysNodeId phys)
{
    if (phys < deathNotified.size())
        deathNotified[phys] = true;
}

bool
Vmmc::sweepForFailures(SimThread &self, PhysNodeId *dead_out)
{
    self.charge(Comp::Protocol, cfg.heartbeatProbeCost);
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        if (net.nodeAlive(p))
            continue;
        if (p < deathNotified.size() && deathNotified[p]) {
            // Already-handled carcass: only relevant while its
            // recovery is still in progress.
            if (recoveryPending && recoveryPending()) {
                if (dead_out)
                    *dead_out = p;
                return true;
            }
            continue;
        }
        if (dead_out)
            *dead_out = p;
        notifyDeath(p);
        return true;
    }
    return false;
}

CommStatus
Vmmc::deposit(SimThread &self, NodeId src, NodeId dst,
              std::uint32_t bytes, std::function<void()> apply,
              Comp comp)
{
    CompletionBatch batch(self);
    CommStatus post = depositAsync(self, src, dst, bytes,
                                   std::move(apply), &batch, comp);
    if (post != CommStatus::Ok)
        return post;
    return batch.wait(comp);
}

CommStatus
Vmmc::depositAsync(SimThread &self, NodeId src, NodeId dst,
                   std::uint32_t bytes, std::function<void()> apply,
                   CompletionBatch *batch, Comp comp)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    auto on_complete = batch ? batch->slot()
                             : std::function<void(bool)>();

    if (src_phys == dst_phys) {
        self.charge(comp, cfg.postCost);
        eng.schedule(cfg.localLoopback,
                     [apply = std::move(apply),
                      on_complete = std::move(on_complete)] {
                         if (apply)
                             apply();
                         if (on_complete)
                             on_complete(true);
                     });
        return CommStatus::Ok;
    }

    if (!net.nodeAlive(dst_phys)) {
        notifyDeath(dst_phys);
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return CommStatus::Error;
    }

    Message msg;
    msg.src = src_phys;
    msg.dst = dst_phys;
    msg.payloadBytes = bytes;
    msg.deliver = std::move(apply);
    msg.onComplete = std::move(on_complete);
    WakeStatus ws = net.nic(src_phys).post(self, std::move(msg), comp);
    switch (ws) {
      case WakeStatus::Normal:
        return CommStatus::Ok;
      case WakeStatus::Restarted:
        return CommStatus::Restarted;
      default:
        return CommStatus::Error;
    }
}

CommStatus
Vmmc::postBatch(SimThread &self, NodeId src, NodeId dst,
                std::vector<BatchChunk> chunks,
                CompletionBatch *batch, Comp comp)
{
    if (chunks.empty())
        return CommStatus::Ok;

    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    auto on_complete = batch ? batch->slot()
                             : std::function<void(bool)>();

    if (src_phys == dst_phys) {
        // Loopback (e.g. an FT node that is its own secondary home, or
        // a re-hosted logical node): apply all chunks locally in order.
        self.charge(comp, cfg.postCost *
                              static_cast<SimTime>(chunks.size()));
        eng.schedule(cfg.localLoopback,
                     [chunks = std::move(chunks),
                      on_complete = std::move(on_complete)]() mutable {
                         for (auto &c : chunks) {
                             if (c.apply)
                                 c.apply();
                         }
                         if (on_complete)
                             on_complete(true);
                     });
        return CommStatus::Ok;
    }

    if (!net.nodeAlive(dst_phys)) {
        notifyDeath(dst_phys);
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return CommStatus::Error;
    }

    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const bool last = i + 1 == chunks.size();
        Message msg;
        msg.src = src_phys;
        msg.dst = dst_phys;
        msg.payloadBytes = chunks[i].bytes;
        msg.deliver = std::move(chunks[i].apply);
        // The channel is FIFO and any failure (dead destination,
        // killed sender queue) reaches the final chunk's completion,
        // so one notification on the last chunk covers the batch.
        if (last && on_complete)
            msg.onComplete = on_complete;
        WakeStatus ws = net.nic(src_phys).post(self, std::move(msg),
                                               comp);
        if (ws == WakeStatus::Normal)
            continue;
        // A failed post never enqueued its message, so the NIC holds
        // no copy of the completion; release our slot with failure so
        // a later wait() cannot hang on it.
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return ws == WakeStatus::Restarted ? CommStatus::Restarted
                                           : CommStatus::Error;
    }
    return CommStatus::Ok;
}

CommStatus
Vmmc::fetch(SimThread &self, NodeId src, NodeId dst,
            std::uint32_t req_bytes, FetchHandler handler, Comp comp)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);

    // Per-operation guard: a deferred reply from an *abandoned* fetch
    // (same thread, same generation) must not be applied to, or wake,
    // a later operation. The flag is cleared on every return path.
    auto active = std::make_shared<bool>(true);
    std::uint64_t my_gen = self.generation();

    auto replier = std::make_shared<Replier>(
        eng, net, cfg, dst_phys, src_phys, &self, my_gen, active);
    // Validate Normal wakes: only the reply's delivery sets 'done', so
    // spurious wakes (stale lock handoffs etc.) keep us parked.
    auto done = std::make_shared<bool>(false);
    replier->setDeliveredHook([done] { *done = true; });

    // Wrap the requester-side wake in the active-guard by interposing
    // at delivery: the Replier checks the generation, and we addition-
    // ally gate on 'active' via a wrapper handler closure.
    auto guarded_handler = [handler = std::move(handler), active,
                            replier] {
        if (!*active) {
            // Requester abandoned the fetch before the request even
            // executed; still run the handler so destination-side
            // bookkeeping (none today) stays uniform, but mute the
            // reply by marking the Replier done.
            return;
        }
        handler(replier);
    };

    if (src_phys == dst_phys) {
        self.charge(Comp::Protocol, cfg.postCost);
        eng.schedule(cfg.localLoopback, guarded_handler);
    } else {
        if (!net.nodeAlive(dst_phys)) {
            notifyDeath(dst_phys);
            return CommStatus::Error;
        }
        Message msg;
        msg.src = src_phys;
        msg.dst = dst_phys;
        msg.payloadBytes = req_bytes;
        msg.deliver = guarded_handler;
        msg.onComplete = [active, &self, my_gen](bool ok) {
            if (!ok && *active && self.generation() == my_gen) {
                self.wake(WakeStatus::Error);
            }
        };
        WakeStatus post = net.nic(src_phys).post(self, std::move(msg));
        if (post == WakeStatus::Restarted) {
            *active = false;
            return CommStatus::Restarted;
        }
        if (post == WakeStatus::Error) {
            *active = false;
            return CommStatus::Error;
        }
    }

    // Wait for the reply's wake. The Replier skips stale generations;
    // any Normal wake with 'active' set means our reply was applied.
    // A fetch whose deferred reply was lost (its holder's state was
    // cleared by a recovery) is abandoned after a few clean heartbeat
    // rounds — fetches are idempotent, so the caller simply re-issues.
    int clean_timeouts = 0;
    for (;;) {
        WakeStatus ws = self.parkFor(cfg.heartbeatTimeout, comp);
        switch (ws) {
          case WakeStatus::Normal:
            if (!*done)
                continue; // spurious wake: keep waiting for the reply
            *active = false;
            return CommStatus::Ok;
          case WakeStatus::Restarted:
            *active = false;
            return CommStatus::Restarted;
          case WakeStatus::Error:
            *active = false;
            return CommStatus::Error;
          case WakeStatus::Timeout: {
            if (*done) {
                *active = false;
                return CommStatus::Ok;
            }
            PhysNodeId dead;
            if (sweepForFailures(self, &dead)) {
                *active = false;
                return CommStatus::Error;
            }
            if (++clean_timeouts >= 3) {
                *active = false;
                return CommStatus::Error;
            }
            break;
          }
        }
    }
}

void
Vmmc::depositFromEvent(NodeId src, NodeId dst, std::uint32_t bytes,
                       std::function<void()> apply)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    if (src_phys == dst_phys) {
        eng.schedule(cfg.localLoopback,
                     [apply = std::move(apply)] { apply(); });
        return;
    }
    if (!net.nodeAlive(dst_phys)) {
        notifyDeath(dst_phys);
        return;
    }
    Message msg;
    msg.src = src_phys;
    msg.dst = dst_phys;
    msg.payloadBytes = bytes;
    msg.deliver = std::move(apply);
    net.nic(src_phys).postAsync(std::move(msg));
}

} // namespace rsvm

#include "net/vmmc.hh"

#include <algorithm>

#include "base/log.hh"
#include "base/panic.hh"
#include "net/nic.hh"
#include "sim/engine.hh"

namespace rsvm {

// ---------------------------------------------------------------- Replier

Replier::Replier(Engine &engine, Vmmc &vmmc, const Config &config,
                 PhysNodeId reply_src, PhysNodeId reply_dst,
                 SimThread *requester, std::uint64_t requester_gen,
                 std::shared_ptr<bool> op_active)
    : eng(engine), vm(vmmc), cfg(config), srcPhys(reply_src),
      dstPhys(reply_dst), reqThread(requester), reqGen(requester_gen),
      opActive(std::move(op_active))
{
}

void
Replier::reply(std::uint32_t bytes, std::function<void()> apply)
{
    if (done)
        return;
    done = true;
    SimThread *t = reqThread;
    std::uint64_t gen = reqGen;
    auto deliver = [t, gen, guard = opActive, hook = deliveredHook,
                    apply = std::move(apply)] {
        // Skip stale replies: the requester died, was restored, or
        // abandoned the fetch; it re-issues the operation itself. The
        // guard matters for *deferred* replies whose fetch timed out:
        // their apply closures reference stack state that is gone.
        if (t->generation() != gen || (guard && !*guard))
            return;
        if (apply)
            apply();
        if (hook)
            hook();
        t->wake(WakeStatus::Normal);
    };
    if (srcPhys == dstPhys) {
        // Loopback: the replying node hosts the requester (possible
        // after re-hosting); skip the wire.
        eng.schedule(cfg.localLoopback, std::move(deliver));
        return;
    }
    Message msg = vm.makeReliable(srcPhys, dstPhys, bytes,
                                  MsgKind::Data, std::move(deliver),
                                  {});
    vm.network().nic(srcPhys).postAsync(std::move(msg));
}

// ---------------------------------------------------------- CompletionBatch

CompletionBatch::CompletionBatch(SimThread &owner)
    : st(std::make_shared<State>())
{
    st->owner = &owner;
    st->gen = owner.generation();
}

std::function<void(bool)>
CompletionBatch::slot()
{
    st->outstanding++;
    auto state = st;
    return [state](bool ok) {
        state->outstanding--;
        if (!ok)
            state->error = true;
        if (state->waiting &&
            (state->outstanding == 0 || state->error) &&
            state->owner->generation() == state->gen) {
            state->waiting = false;
            state->owner->wake(ok ? WakeStatus::Normal
                                  : WakeStatus::Error);
        }
    };
}

CommStatus
CompletionBatch::wait(Comp comp)
{
    while (st->outstanding > 0 && !st->error) {
        st->waiting = true;
        WakeStatus ws = st->owner->park(comp);
        st->waiting = false;
        if (ws == WakeStatus::Restarted)
            return CommStatus::Restarted;
        if (ws == WakeStatus::Error)
            break;
    }
    return st->error ? CommStatus::Error : CommStatus::Ok;
}

// ------------------------------------------------------------------- Vmmc

Vmmc::Vmmc(Engine &engine, Network &network, const Config &config)
    : eng(engine), net(network), cfg(config),
      rng_(config.seed ^ 0x7e7a45ull)
{
    hostMap.resize(network.numNodes());
    for (PhysNodeId i = 0; i < network.numNodes(); ++i)
        hostMap[i] = i;
    deathNotified.assign(network.numNodes(), false);
    const std::size_t n = network.numNodes();
    tx_.resize(n * n);
    rx_.resize(n * n);
    fenced_.assign(n, false);
    epochKnown_.assign(n, 0);
}

void
Vmmc::setHost(NodeId logical, PhysNodeId phys)
{
    rsvm_assert(logical < hostMap.size());
    hostMap[logical] = phys;
}

PhysNodeId
Vmmc::host(NodeId logical) const
{
    rsvm_assert(logical < hostMap.size());
    return hostMap[logical];
}

bool
Vmmc::reachable(NodeId logical) const
{
    return net.nodeAlive(host(logical));
}

bool
Vmmc::anyNodeDead() const
{
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        if (!net.nodeAlive(p))
            return true;
    }
    return false;
}

void
Vmmc::notifyDeath(PhysNodeId phys)
{
    if (phys < deathNotified.size() && !deathNotified[phys]) {
        deathNotified[phys] = true;
        if (peerDeath)
            peerDeath(phys);
    }
}

void
Vmmc::markDeathObserved(PhysNodeId phys)
{
    if (phys < deathNotified.size())
        deathNotified[phys] = true;
}

// --------------------------------------------------- reliable transport

bool
Vmmc::peerKnownDead(PhysNodeId phys) const
{
    return detectorMode() ? fenced_[phys] : !net.nodeAlive(phys);
}

MsgKind
Vmmc::kindFor(Comp comp)
{
    switch (comp) {
      case Comp::Diff: return MsgKind::Diff;
      case Comp::Ckpt: return MsgKind::Ckpt;
      default: return MsgKind::Data;
    }
}

Message
Vmmc::makeReliable(PhysNodeId src_phys, PhysNodeId dst_phys,
                   std::uint32_t bytes, MsgKind kind,
                   std::function<void()> apply,
                   std::function<void(bool)> on_complete)
{
    rsvm_assert(src_phys != dst_phys);
    Message msg;
    msg.src = src_phys;
    msg.dst = dst_phys;
    msg.payloadBytes = bytes;
    msg.kind = kind;
    auto e = std::make_shared<TxEntry>();
    e->bytes = bytes;
    e->kind = kind;
    e->apply = std::move(apply);
    e->onComplete = std::move(on_complete);
    // Sequencing happens at NIC-accept time, not here: a post that
    // fails (full-queue restart, dead NIC) must not burn a sequence
    // number the receiver would wait on forever.
    msg.stamp = [this, e](Message &m) {
        TxChannel &ch = txOf(m.src, m.dst);
        e->seq = ch.nextSeq++;
        ch.unacked.push_back(e);
        if (!ch.timerArmed) {
            ch.rto = cfg.netRtoMin;
            armRetxTimer(m.src, m.dst);
        }
        m.deliver = deliverClosure(m.src, m.dst, e);
    };
    return msg;
}

std::function<void()>
Vmmc::deliverClosure(PhysNodeId s, PhysNodeId d,
                     std::shared_ptr<TxEntry> e)
{
    // The epoch stamp and the piggybacked cumulative ack are read at
    // (re)transmission time; a retransmission rebuilds this closure
    // and so carries fresh values.
    return [this, s, d, e = std::move(e), stamp_epoch = epochKnown_[s],
            pig = rxOf(d, s).expected - 1] {
        rxDeliver(s, d, e, stamp_epoch, pig);
    };
}

void
Vmmc::rxDeliver(PhysNodeId s, PhysNodeId d,
                const std::shared_ptr<TxEntry> &e,
                std::uint64_t stamp_epoch, std::uint64_t piggy_ack)
{
    if (fenced_[s]) {
        // Fencing invariant: nothing a declared-dead node sent may
        // apply after the declaration. Not acked either — a falsely
        // suspected (still live) sender keeps retransmitting until it
        // is killed, and never learns the new epoch.
        tstats.fencedDrops++;
        return;
    }
    if (heardHook)
        heardHook(d, s); // any delivery renews the sender's lease
    if (stamp_epoch < epoch_) {
        // Stamped before a recovery started: reject. A surviving
        // sender retransmits under the current epoch; a fenced one
        // cannot.
        tstats.staleEpochRejected++;
        return;
    }
    // Piggybacked cumulative ack for the reverse channel d -> s.
    if (processAck(d, s, piggy_ack))
        tstats.acksPiggybacked++;
    RxChannel &rx = rxOf(s, d);
    if (e->seq < rx.expected) {
        // Wire duplicate or a retransmission of something already
        // delivered: suppress, but re-ack so the sender stops.
        tstats.dupDrops++;
        scheduleAck(s, d);
        return;
    }
    if (e->seq > rx.expected) {
        auto [it, fresh] = rx.held.emplace(e->seq, e);
        (void)it;
        if (fresh)
            tstats.reorderDepthHist.sample(e->seq - rx.expected);
        else
            tstats.dupDrops++;
        return;
    }
    // In order: deliver, then drain any directly-following holds.
    if (e->apply)
        e->apply();
    rx.expected++;
    while (!rx.held.empty() &&
           rx.held.begin()->first == rx.expected) {
        std::shared_ptr<TxEntry> h = rx.held.begin()->second;
        rx.held.erase(rx.held.begin());
        if (h->apply)
            h->apply();
        rx.expected++;
    }
    scheduleAck(s, d);
}

bool
Vmmc::processAck(PhysNodeId s, PhysNodeId d, std::uint64_t cum)
{
    TxChannel &ch = txOf(s, d);
    bool advanced = false;
    while (!ch.unacked.empty() && ch.unacked.front()->seq <= cum) {
        std::shared_ptr<TxEntry> e = std::move(ch.unacked.front());
        ch.unacked.pop_front();
        advanced = true;
        if (e->onComplete)
            e->onComplete(true);
    }
    if (advanced) {
        // Progress: reset the backoff and restart the timer for
        // whatever is still outstanding.
        ch.rto = cfg.netRtoMin;
        ch.timerId++;
        ch.timerArmed = false;
        if (!ch.unacked.empty())
            armRetxTimer(s, d);
    }
    return advanced;
}

void
Vmmc::scheduleAck(PhysNodeId s, PhysNodeId d)
{
    RxChannel &rx = rxOf(s, d);
    if (rx.ackScheduled)
        return;
    rx.ackScheduled = true;
    eng.schedule(cfg.netAckDelay, [this, s, d] { sendAckNow(s, d); });
}

void
Vmmc::sendAckNow(PhysNodeId s, PhysNodeId d)
{
    RxChannel &rx = rxOf(s, d);
    rx.ackScheduled = false;
    if (!net.nodeAlive(d))
        return; // a dead node acks nothing
    std::uint64_t cum = rx.expected - 1;
    tstats.acksSent++;
    // Acks are NIC-firmware control messages: straight onto the wire,
    // no send-queue occupancy — but still subject to wire faults.
    Message a;
    a.src = d;
    a.dst = s;
    a.kind = MsgKind::Ack;
    a.payloadBytes = 0;
    a.deliver = [this, s, d, cum] {
        if (fenced_[d])
            return; // stale ack from a fenced node; channel is gone
        if (heardHook)
            heardHook(s, d);
        processAck(s, d, cum);
    };
    net.transmit(std::move(a));
}

void
Vmmc::armRetxTimer(PhysNodeId s, PhysNodeId d)
{
    TxChannel &ch = txOf(s, d);
    ch.timerArmed = true;
    std::uint64_t id = ++ch.timerId;
    SimTime delay = ch.rto + rng_.below(ch.rto / 4 + 1);
    eng.schedule(delay, [this, s, d, id] { onRetxTimer(s, d, id); });
}

void
Vmmc::onRetxTimer(PhysNodeId s, PhysNodeId d, std::uint64_t id)
{
    TxChannel &ch = txOf(s, d);
    if (id != ch.timerId)
        return; // superseded by an ack or a fence
    ch.timerArmed = false;
    if (ch.unacked.empty())
        return;
    if (!net.nodeAlive(s)) {
        // The sender died; its queued transfers die with it (the
        // completions belong to killed fibers).
        ch.unacked.clear();
        return;
    }
    if (fenced_[d] || (!detectorMode() && !net.nodeAlive(d))) {
        // Peer declared dead — or, without a running detector, the
        // historical NIC-liveness oracle (raw fixtures, base
        // protocol, post-run stragglers).
        failChannel(s, d);
        return;
    }
    // Retransmit only the oldest unacked message: it is the one
    // blocking the receiver's cumulative ack; anything after it may
    // well be sitting in the receiver's hold queue already.
    retransmit(s, d, ch.unacked.front());
    ch.rto = std::min(ch.rto * 2, cfg.netRtoMax);
    armRetxTimer(s, d);
}

void
Vmmc::retransmit(PhysNodeId s, PhysNodeId d,
                 const std::shared_ptr<TxEntry> &e)
{
    tstats.retransmits++;
    tstats.retransmittedBytes += e->bytes + cfg.msgHeaderBytes;
    RSVM_LOG(LogComp::Net, "retransmit %u->%u seq=%llu", s, d,
             (unsigned long long)e->seq);
    Message m;
    m.src = s;
    m.dst = d;
    m.payloadBytes = e->bytes;
    m.kind = e->kind;
    m.deliver = deliverClosure(s, d, e); // fresh epoch + piggyback
    net.nic(s).postAsync(std::move(m));
}

void
Vmmc::failChannel(PhysNodeId s, PhysNodeId d)
{
    TxChannel &ch = txOf(s, d);
    ch.timerId++;
    ch.timerArmed = false;
    std::deque<std::shared_ptr<TxEntry>> dead;
    dead.swap(ch.unacked);
    for (auto &e : dead) {
        if (e->onComplete)
            e->onComplete(false);
    }
}

void
Vmmc::fence(PhysNodeId phys)
{
    if (fenced_[phys])
        return;
    fenced_[phys] = true;
    RSVM_LOG(LogComp::Net, "phys node %u fenced (epoch %llu)", phys,
             (unsigned long long)epoch_);
    for (PhysNodeId q = 0; q < net.numNodes(); ++q) {
        if (q == phys)
            continue;
        // Survivors' pending sends to the fenced node fail now.
        failChannel(q, phys);
        // The fenced node's own channels die with it: no completions
        // (its fibers are being killed), no deliveries.
        TxChannel &own = txOf(phys, q);
        own.timerId++;
        own.timerArmed = false;
        own.unacked.clear();
        tstats.fencedDrops += rxOf(phys, q).held.size();
        rxOf(phys, q).held.clear();
        rxOf(q, phys).held.clear();
    }
}

void
Vmmc::reclaimChannels(PhysNodeId phys)
{
    for (PhysNodeId q = 0; q < net.numNodes(); ++q) {
        if (q == phys)
            continue;
        for (TxChannel *ch : {&txOf(phys, q), &txOf(q, phys)}) {
            // fence() disarmed every timer and drained every queue
            // aimed at the carcass; a still-armed timer here means a
            // retransmit path survived the fence — a leak.
            rsvm_assert(!ch->timerArmed &&
                        "retransmit timer armed for a dead peer");
            if (!ch->unacked.empty()) {
                tstats.reclaimedTxEntries += ch->unacked.size();
                ch->unacked.clear();
            }
            ch->nextSeq = 1;
            ch->rto = 0;
            ch->timerId++;
        }
        for (RxChannel *rx : {&rxOf(phys, q), &rxOf(q, phys)}) {
            tstats.reclaimedTxEntries += rx->held.size();
            rx->held.clear();
            rx->expected = 1;
            rx->ackScheduled = false;
        }
    }
    tstats.channelsReclaimed++;
}

void
Vmmc::reclaimDeadChannels()
{
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        if (fenced_[p] && !net.nodeAlive(p))
            reclaimChannels(p);
    }
}

void
Vmmc::readmit(PhysNodeId phys)
{
    rsvm_assert(net.nodeAlive(phys) &&
                "readmit requires a revived NIC");
    reclaimChannels(phys);
    fenced_[phys] = false;
    if (phys < deathNotified.size())
        deathNotified[phys] = false;
    epochKnown_[phys] = epoch_;
    RSVM_LOG(LogComp::Net, "phys node %u readmitted (epoch %llu)",
             phys, (unsigned long long)epoch_);
}

void
Vmmc::bumpEpoch()
{
    epoch_++;
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        if (net.nodeAlive(p) && !fenced_[p])
            epochKnown_[p] = epoch_;
    }
    // Out-of-order holds were stamped before the bump; they must not
    // apply after recovery's state surgery. Drop them — surviving
    // senders still hold the entries unacked and will retransmit them
    // under the new epoch.
    for (auto &rx : rx_) {
        tstats.staleEpochRejected += rx.held.size();
        rx.held.clear();
    }
    RSVM_LOG(LogComp::Net, "cluster epoch -> %llu",
             (unsigned long long)epoch_);
}

bool
Vmmc::sweepForFailures(SimThread &self, PhysNodeId *dead_out)
{
    self.charge(Comp::Protocol, cfg.heartbeatProbeCost);
    for (PhysNodeId p = 0; p < net.numNodes(); ++p) {
        // With a detector running, death is what the detector has
        // declared (fencing); only the oracle fallback reads the NIC.
        bool dead = detectorMode() ? fenced_[p] : !net.nodeAlive(p);
        if (!dead)
            continue;
        if (p < deathNotified.size() && deathNotified[p]) {
            // Already-handled carcass: only relevant while its
            // recovery is still in progress.
            if (recoveryPending && recoveryPending()) {
                if (dead_out)
                    *dead_out = p;
                return true;
            }
            continue;
        }
        if (dead_out)
            *dead_out = p;
        notifyDeath(p);
        return true;
    }
    return false;
}

CommStatus
Vmmc::deposit(SimThread &self, NodeId src, NodeId dst,
              std::uint32_t bytes, std::function<void()> apply,
              Comp comp)
{
    CompletionBatch batch(self);
    CommStatus post = depositAsync(self, src, dst, bytes,
                                   std::move(apply), &batch, comp);
    if (post != CommStatus::Ok)
        return post;
    return batch.wait(comp);
}

CommStatus
Vmmc::depositAsync(SimThread &self, NodeId src, NodeId dst,
                   std::uint32_t bytes, std::function<void()> apply,
                   CompletionBatch *batch, Comp comp)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    auto on_complete = batch ? batch->slot()
                             : std::function<void(bool)>();

    if (src_phys == dst_phys) {
        self.charge(comp, cfg.postCost);
        eng.schedule(cfg.localLoopback,
                     [apply = std::move(apply),
                      on_complete = std::move(on_complete)] {
                         if (apply)
                             apply();
                         if (on_complete)
                             on_complete(true);
                     });
        return CommStatus::Ok;
    }

    if (peerKnownDead(dst_phys)) {
        notifyDeath(dst_phys);
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return CommStatus::Error;
    }

    Message msg = makeReliable(src_phys, dst_phys, bytes,
                               kindFor(comp), std::move(apply),
                               std::move(on_complete));
    WakeStatus ws = net.nic(src_phys).post(self, std::move(msg), comp);
    switch (ws) {
      case WakeStatus::Normal:
        return CommStatus::Ok;
      case WakeStatus::Restarted:
        return CommStatus::Restarted;
      default:
        return CommStatus::Error;
    }
}

CommStatus
Vmmc::postBatch(SimThread &self, NodeId src, NodeId dst,
                std::vector<BatchChunk> chunks,
                CompletionBatch *batch, Comp comp)
{
    if (chunks.empty())
        return CommStatus::Ok;

    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    auto on_complete = batch ? batch->slot()
                             : std::function<void(bool)>();

    if (src_phys == dst_phys) {
        // Loopback (e.g. an FT node that is its own secondary home, or
        // a re-hosted logical node): apply all chunks locally in order.
        self.charge(comp, cfg.postCost *
                              static_cast<SimTime>(chunks.size()));
        eng.schedule(cfg.localLoopback,
                     [chunks = std::move(chunks),
                      on_complete = std::move(on_complete)]() mutable {
                         for (auto &c : chunks) {
                             if (c.apply)
                                 c.apply();
                         }
                         if (on_complete)
                             on_complete(true);
                     });
        return CommStatus::Ok;
    }

    if (peerKnownDead(dst_phys)) {
        notifyDeath(dst_phys);
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return CommStatus::Error;
    }

    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const bool last = i + 1 == chunks.size();
        // The channel delivers in order and acks cumulatively, and
        // any failure (peer declared dead) fails every unacked entry,
        // so one completion on the last chunk covers the batch.
        Message msg = makeReliable(
            src_phys, dst_phys, chunks[i].bytes, kindFor(comp),
            std::move(chunks[i].apply),
            last && on_complete ? on_complete
                                : std::function<void(bool)>());
        WakeStatus ws = net.nic(src_phys).post(self, std::move(msg),
                                               comp);
        if (ws == WakeStatus::Normal)
            continue;
        // A failed post never enqueued its message, so the NIC holds
        // no copy of the completion; release our slot with failure so
        // a later wait() cannot hang on it.
        if (on_complete)
            eng.schedule(0, [cb = std::move(on_complete)] { cb(false); });
        return ws == WakeStatus::Restarted ? CommStatus::Restarted
                                           : CommStatus::Error;
    }
    return CommStatus::Ok;
}

CommStatus
Vmmc::fetch(SimThread &self, NodeId src, NodeId dst,
            std::uint32_t req_bytes, FetchHandler handler, Comp comp)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);

    // Per-operation guard: a deferred reply from an *abandoned* fetch
    // (same thread, same generation) must not be applied to, or wake,
    // a later operation. The flag is cleared on every return path.
    auto active = std::make_shared<bool>(true);
    std::uint64_t my_gen = self.generation();

    auto replier = std::make_shared<Replier>(
        eng, *this, cfg, dst_phys, src_phys, &self, my_gen, active);
    // Validate Normal wakes: only the reply's delivery sets 'done', so
    // spurious wakes (stale lock handoffs etc.) keep us parked.
    auto done = std::make_shared<bool>(false);
    replier->setDeliveredHook([done] { *done = true; });

    // Wrap the requester-side wake in the active-guard by interposing
    // at delivery: the Replier checks the generation, and we addition-
    // ally gate on 'active' via a wrapper handler closure.
    auto guarded_handler = [handler = std::move(handler), active,
                            replier] {
        if (!*active) {
            // Requester abandoned the fetch before the request even
            // executed; still run the handler so destination-side
            // bookkeeping (none today) stays uniform, but mute the
            // reply by marking the Replier done.
            return;
        }
        handler(replier);
    };

    if (src_phys == dst_phys) {
        self.charge(Comp::Protocol, cfg.postCost);
        eng.schedule(cfg.localLoopback, guarded_handler);
    } else {
        if (peerKnownDead(dst_phys)) {
            notifyDeath(dst_phys);
            return CommStatus::Error;
        }
        Message msg = makeReliable(
            src_phys, dst_phys, req_bytes, MsgKind::Data,
            guarded_handler, [active, &self, my_gen](bool ok) {
                if (!ok && *active && self.generation() == my_gen) {
                    self.wake(WakeStatus::Error);
                }
            });
        WakeStatus post = net.nic(src_phys).post(self, std::move(msg));
        if (post == WakeStatus::Restarted) {
            *active = false;
            return CommStatus::Restarted;
        }
        if (post == WakeStatus::Error) {
            *active = false;
            return CommStatus::Error;
        }
    }

    // Wait for the reply's wake. The Replier skips stale generations;
    // any Normal wake with 'active' set means our reply was applied.
    // A fetch whose deferred reply was lost (its holder's state was
    // cleared by a recovery) is abandoned after a few clean heartbeat
    // rounds — fetches are idempotent, so the caller simply re-issues.
    int clean_timeouts = 0;
    for (;;) {
        WakeStatus ws = self.parkFor(cfg.heartbeatTimeout, comp);
        switch (ws) {
          case WakeStatus::Normal:
            if (!*done)
                continue; // spurious wake: keep waiting for the reply
            *active = false;
            return CommStatus::Ok;
          case WakeStatus::Restarted:
            *active = false;
            return CommStatus::Restarted;
          case WakeStatus::Error:
            *active = false;
            return CommStatus::Error;
          case WakeStatus::Timeout: {
            if (*done) {
                *active = false;
                return CommStatus::Ok;
            }
            PhysNodeId dead;
            if (sweepForFailures(self, &dead)) {
                *active = false;
                return CommStatus::Error;
            }
            if (++clean_timeouts >= 3) {
                *active = false;
                return CommStatus::Error;
            }
            break;
          }
        }
    }
}

void
Vmmc::depositFromEvent(NodeId src, NodeId dst, std::uint32_t bytes,
                       std::function<void()> apply)
{
    PhysNodeId src_phys = host(src);
    PhysNodeId dst_phys = host(dst);
    if (src_phys == dst_phys) {
        eng.schedule(cfg.localLoopback,
                     [apply = std::move(apply)] { apply(); });
        return;
    }
    if (peerKnownDead(dst_phys)) {
        notifyDeath(dst_phys);
        return;
    }
    Message msg = makeReliable(src_phys, dst_phys, bytes,
                               MsgKind::Data, std::move(apply), {});
    net.nic(src_phys).postAsync(std::move(msg));
}

} // namespace rsvm

#include "net/netfault.hh"

#include "base/log.hh"
#include "base/panic.hh"
#include "net/failure.hh"

namespace rsvm {

NetFaultInjector::NetFaultInjector(const Config &config)
    : cfg(config), rng(config.seed ^ 0x77eefa1111ull)
{
    refreshActive();
}

void
NetFaultInjector::refreshActive()
{
    active_ = cfg.netDropProb > 0 || cfg.netDupProb > 0 ||
              cfg.netReorderProb > 0 || cfg.netJitterMax > 0 ||
              !overrides.empty() || !stalls.empty() ||
              !armedFaults.empty();
}

void
NetFaultInjector::setLinkFaults(PhysNodeId src, PhysNodeId dst,
                                double drop, double dup, double reorder)
{
    overrides.push_back(LinkOverride{src, dst, drop, dup, reorder});
    refreshActive();
}

void
NetFaultInjector::stallNode(PhysNodeId node, SimTime from, SimTime until)
{
    rsvm_assert(from < until);
    stalls.push_back(Stall{node, from, until});
    refreshActive();
}

void
NetFaultInjector::arm(const std::string &point, PhysNodeId src,
                      PhysNodeId dst, int kind,
                      std::uint64_t occurrence, SimTime delay)
{
    rsvm_assert(occurrence >= 1);
    Action action;
    if (point == failpoints::kNetDrop)
        action = Action::Drop;
    else if (point == failpoints::kNetDup)
        action = Action::Dup;
    else if (point == failpoints::kNetDelay)
        action = Action::Delay;
    else
        rsvm_fatal("unknown netfault point '" + point +
                   "' (see failpoints::kNetFaultPoints)");
    armedFaults.push_back(
        ArmedFault{action, src, dst, kind, occurrence, delay});
    refreshActive();
}

NetFaultInjector::Plan
NetFaultInjector::plan(const Message &msg, SimTime now)
{
    Plan p;
    SimTime delay = 0;
    bool forced_dup = false;
    bool forced_drop = false;

    for (auto it = armedFaults.begin(); it != armedFaults.end(); ++it) {
        if ((it->src != kAnyNode && it->src != msg.src) ||
            (it->dst != kAnyNode && it->dst != msg.dst) ||
            (it->kind != kAnyKind &&
             it->kind != static_cast<int>(msg.kind)))
            continue;
        if (--it->remaining > 0)
            continue;
        Action action = it->action;
        SimTime extra = it->delay;
        armedFaults.erase(it);
        refreshActive();
        RSVM_LOG(LogComp::Net,
                 "netfault fires on %u->%u kind=%u action=%d",
                 msg.src, msg.dst, (unsigned)msg.kind, (int)action);
        switch (action) {
          case Action::Drop: forced_drop = true; break;
          case Action::Dup: forced_dup = true; break;
          case Action::Delay:
            delay += extra;
            stats.netDelaysInjected++;
            break;
        }
        break; // at most one targeted fault per message
    }

    double drop_p = cfg.netDropProb;
    double dup_p = cfg.netDupProb;
    double reorder_p = cfg.netReorderProb;
    for (const auto &o : overrides) {
        if (o.src == msg.src && o.dst == msg.dst) {
            drop_p = o.drop;
            dup_p = o.dup;
            reorder_p = o.reorder;
            break;
        }
    }

    if (forced_drop || (drop_p > 0 && rng.chance(drop_p))) {
        stats.netDropsInjected++;
        p.drop = true;
        return p;
    }

    for (const auto &s : stalls) {
        if ((msg.src == s.node || msg.dst == s.node) && now >= s.from &&
            now < s.until) {
            // Held back until after the window, with a small spread so
            // the backlog does not arrive as one burst.
            delay += (s.until - now) + rng.below(50 * kMicrosecond);
            stats.netDelaysInjected++;
            break;
        }
    }

    if (cfg.netJitterMax > 0)
        delay += rng.below(cfg.netJitterMax + 1);

    if (reorder_p > 0 && rng.chance(reorder_p)) {
        // Enough extra latency to slip behind several back-to-back
        // successors on the same channel.
        delay += rng.range(1, 4) * (cfg.sendOverhead + cfg.wireLatency);
        stats.netReordersInjected++;
    }

    p.extraDelays.push_back(delay);
    if (forced_dup || (dup_p > 0 && rng.chance(dup_p))) {
        stats.netDupsInjected++;
        p.extraDelays.push_back(delay + rng.below(cfg.wireLatency + 1));
    }
    return p;
}

} // namespace rsvm

/**
 * @file
 * Deterministic wire fault injection.
 *
 * The reliable-wire assumption of VMMC does not hold on the clusters
 * the ROADMAP targets, so Network::transmit consults this injector
 * for a *delivery plan* per message: drop it, deliver one copy
 * (possibly delayed — jitter, reordering, a node-wide stall window),
 * or deliver two copies. All randomness flows through one SplitMix64
 * stream seeded from Config::seed, so a lossy run is exactly
 * reproducible.
 *
 * Two targeting mechanisms complement the background probabilities:
 *  - netfault:* failpoints ("drop the n-th diff from node s to node
 *    k"), armed by name against the failpoints::kNetFaultPoints table
 *    and fired exactly once at the matching occurrence;
 *  - stallNode(): every message touching one node inside a time
 *    window is held back until after the window — the slow-but-alive
 *    scenario that drives false suspicion in the failure detector.
 */

#ifndef RSVM_NET_NETFAULT_HH
#define RSVM_NET_NETFAULT_HH

#include <string>
#include <vector>

#include "base/config.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "net/message.hh"

namespace rsvm {

/** Seed-driven wire fault model consulted by Network::transmit. */
class NetFaultInjector
{
  public:
    /** Wildcard endpoint for targeted faults. */
    static constexpr PhysNodeId kAnyNode = static_cast<PhysNodeId>(-1);
    /** Wildcard traffic class for targeted faults. */
    static constexpr int kAnyKind = -1;

    explicit NetFaultInjector(const Config &config);

    /**
     * Per-message delivery plan: if @p drop, no copy arrives;
     * otherwise one delivery per entry of @p extraDelays, each
     * delayed by that much beyond the normal wire latency.
     */
    struct Plan
    {
        bool drop = false;
        std::vector<SimTime> extraDelays;
    };

    /** Decide the fate of @p msg departing at @p now. */
    Plan plan(const Message &msg, SimTime now);

    /** Cheap gate for the transmit hot path. */
    bool active() const { return active_; }

    /**
     * Override the background probabilities for one directed link
     * (src -> dst); the global Config knobs cover all other links.
     */
    void setLinkFaults(PhysNodeId src, PhysNodeId dst, double drop,
                       double dup, double reorder);

    /**
     * Delay every message sent or received by @p node inside
     * [from, until) to past @p until: a live node that looks dead.
     */
    void stallNode(PhysNodeId node, SimTime from, SimTime until);

    /**
     * Arm a targeted fault: on the @p occurrence-th message matching
     * (src, dst, kind) — kAnyNode / kAnyKind are wildcards — apply
     * the action named by @p point (one of
     * failpoints::kNetFaultPoints), then disarm. For
     * "netfault:delay", @p delay is the extra delivery delay.
     */
    void arm(const std::string &point, PhysNodeId src, PhysNodeId dst,
             int kind, std::uint64_t occurrence = 1, SimTime delay = 0);

    Counters &counters() { return stats; }
    const Counters &counters() const { return stats; }

  private:
    struct LinkOverride
    {
        PhysNodeId src, dst;
        double drop, dup, reorder;
    };

    struct Stall
    {
        PhysNodeId node;
        SimTime from, until;
    };

    enum class Action { Drop, Dup, Delay };

    struct ArmedFault
    {
        Action action;
        PhysNodeId src, dst;
        int kind;
        std::uint64_t remaining;
        SimTime delay;
    };

    void refreshActive();

    const Config &cfg;
    Rng rng;
    std::vector<LinkOverride> overrides;
    std::vector<Stall> stalls;
    std::vector<ArmedFault> armedFaults;
    bool active_ = false;
    Counters stats;
};

} // namespace rsvm

#endif // RSVM_NET_NETFAULT_HH

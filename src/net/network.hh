/**
 * @file
 * The cluster interconnect: a full crossbar of NICs (the paper's eight
 * nodes hang off one 8-way Myrinet switch, so there is no switch-level
 * contention to model — per-NIC serialization dominates).
 */

#ifndef RSVM_NET_NETWORK_HH
#define RSVM_NET_NETWORK_HH

#include <memory>
#include <vector>

#include "base/config.hh"
#include "base/types.hh"
#include "net/message.hh"
#include "net/netfault.hh"

namespace rsvm {

class Engine;
class Nic;

/** Wire + switch model connecting all NICs. */
class Network
{
  public:
    Network(Engine &engine, const Config &config,
            std::uint32_t num_nodes);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    Nic &nic(PhysNodeId id);
    const Nic &nic(PhysNodeId id) const;
    std::uint32_t numNodes() const
    { return static_cast<std::uint32_t>(nics.size()); }

    /**
     * Called by the source NIC at message departure time: propagate
     * across the wire and hand to the destination NIC — or, if the
     * destination is dead, notify the sender of the error after the
     * retransmission layer gives up.
     */
    void transmit(Message msg);

    /** True if the physical node's NIC is alive. */
    bool nodeAlive(PhysNodeId id) const;

    /** Wire fault model applied to every transmit. */
    NetFaultInjector &faults() { return faults_; }
    const NetFaultInjector &faults() const { return faults_; }

  private:
    Engine &eng;
    const Config &cfg;
    NetFaultInjector faults_;
    std::vector<std::unique_ptr<Nic>> nics;
};

} // namespace rsvm

#endif // RSVM_NET_NETWORK_HH
